package wsupgrade

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
)

// The capstone scenario: a managed upgrade that survives the new release
// crashing mid-transition. The health checker marks the dead release
// down, consumers keep being served by the old release, and when the new
// release is redeployed the upgrade resumes and completes.
func TestUpgradeSurvivesMidFlightCrash(t *testing.T) {
	oldRel, err := NewRelease(service.DemoContract("1.0"), service.DemoBehaviours(),
		FaultPlan{Profile: relmodel.Profile{CR: 0.9, NER: 0.1}, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	oldTS := httptest.NewServer(oldRel.Handler())
	defer oldTS.Close()

	newRel, err := NewRelease(service.DemoContract("1.1"), service.DemoBehaviours(), FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	newTS := httptest.NewServer(newRel.Handler())

	prior := ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.4}
	engine, err := NewEngine(EngineConfig{
		Releases: []Endpoint{
			{Version: "1.0", URL: oldTS.URL},
			{Version: "1.1", URL: newTS.URL},
		},
		InitialPhase: PhaseParallel,
		Oracle:       oracle.Header{},
		Timeout:      time.Second,
		Inference: &WhiteBoxConfig{
			PriorA: prior, PriorB: prior,
			GridA: 30, GridB: 30, GridC: 8, GridAB: 32,
		},
		Policy: &PolicyConfig{
			Criterion:  Criterion3{Confidence: 0.9},
			CheckEvery: 25,
			MinDemands: 150, // long enough that the crash happens first
		},
		Seed: 72,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	proxy := httptest.NewServer(engine.Handler())
	defer proxy.Close()

	client := &SOAPClient{URL: proxy.URL}
	ctx := context.Background()
	call := func(i int) error {
		var out service.AddResponse
		return client.Call(ctx, "add", service.AddRequest{A: i, B: 1}, &out)
	}

	// Normal parallel operation.
	for i := 0; i < 40; i++ {
		if err := call(i); err != nil {
			t.Fatalf("pre-crash demand %d: %v", i, err)
		}
	}

	// The new release crashes mid-upgrade.
	newTS.Close()
	engine.CheckHealth(ctx)
	if !engine.Down("1.1") {
		t.Fatal("crashed release not marked down")
	}
	// Consumers are still served (by the old release alone), quickly.
	for i := 0; i < 20; i++ {
		start := time.Now()
		if err := call(i); err != nil {
			t.Fatalf("during-crash demand %d: %v", i, err)
		}
		if time.Since(start) > 800*time.Millisecond {
			t.Fatal("demand waited on the crashed release")
		}
	}

	// The provider redeploys 1.1; the prober notices; the upgrade
	// resumes and eventually completes.
	newTS2 := httptest.NewServer(newRel.Handler())
	defer newTS2.Close()
	if err := engine.RemoveRelease("1.1"); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddRelease(Endpoint{Version: "1.1", URL: newTS2.URL}); err != nil {
		t.Fatal(err)
	}
	if err := engine.SetPhase(PhaseParallel); err != nil {
		t.Fatal(err)
	}
	engine.CheckHealth(ctx)
	if engine.Down("1.1") {
		t.Fatal("redeployed release still marked down")
	}
	for i := 0; i < 400 && engine.Phase() != PhaseNewOnly; i++ {
		if err := call(i); err != nil {
			// Rare: both releases failing the same demand.
			continue
		}
	}
	if engine.Phase() != PhaseNewOnly {
		t.Fatalf("upgrade never completed after recovery; joint = %+v", engine.Monitor().Joint())
	}
	// Post-switch service is healthy and fully attributable.
	rep, err := engine.Confidence("")
	if err != nil {
		t.Fatal(err)
	}
	if rep.New <= rep.Old {
		t.Fatalf("confidence ordering wrong after upgrade: new %v old %v", rep.New, rep.Old)
	}
	avail, err := engine.AvailabilityConfidence("1.0", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if avail < 0.9 {
		t.Fatalf("old release availability confidence = %v despite responding throughout", avail)
	}
}
