// Quickstart: a managed upgrade in one file.
//
// Two releases of a Web Service run side by side: the old 1.0 is
// dependable; the new 1.1 is better on average but unproven. The upgrade
// middleware intercepts consumer requests, runs the releases
// back-to-back, adjudicates, measures confidence in the new release by
// Bayesian inference, and switches to it only when the §5.1.1.2
// criterion is met.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"wsupgrade"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// serve starts an HTTP handler on an ephemeral local port.
func serve(h http.Handler) (url string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func run() error {
	// --- The two releases -------------------------------------------------
	// Old release: occasionally raises an exception (evident failure).
	oldRel, err := wsupgrade.NewRelease(service.DemoContract("1.0"), service.DemoBehaviours(),
		wsupgrade.FaultPlan{Profile: relmodel.Profile{CR: 0.95, ER: 0.04, NER: 0.01}, Seed: 1})
	if err != nil {
		return err
	}
	// New release: fewer failures, but nobody knows that yet.
	newRel, err := wsupgrade.NewRelease(service.DemoContract("1.1"), service.DemoBehaviours(),
		wsupgrade.FaultPlan{Profile: relmodel.Profile{CR: 0.99, ER: 0.008, NER: 0.002}, Seed: 2})
	if err != nil {
		return err
	}
	oldURL, stopOld, err := serve(oldRel.Handler())
	if err != nil {
		return err
	}
	defer stopOld()
	newURL, stopNew, err := serve(newRel.Handler())
	if err != nil {
		return err
	}
	defer stopNew()

	// --- The managed-upgrade middleware ------------------------------------
	prior := wsupgrade.ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.3}
	engine, err := wsupgrade.NewEngine(wsupgrade.EngineConfig{
		Releases: []wsupgrade.Endpoint{
			{Version: "1.0", URL: oldURL},
			{Version: "1.1", URL: newURL},
		},
		InitialPhase: wsupgrade.PhaseObservation, // deliver old, observe new (§3.1)
		Oracle:       oracle.Reference{Release: "1.0"},
		Inference: &wsupgrade.WhiteBoxConfig{
			PriorA: prior, PriorB: prior,
			GridA: 50, GridB: 50, GridC: 12, GridAB: 60,
		},
		Policy: &wsupgrade.PolicyConfig{
			Criterion:  bayes.Criterion3{Confidence: 0.95}, // new no worse than old
			CheckEvery: 50,
			MinDemands: 100,
		},
		ConfidenceTarget: 0.05,
		// One retry of transient transport failures, and a tight bound
		// on release response bodies — a misbehaving release cannot make
		// the proxy buffer an unbounded body. (With Retry unset the
		// engine still applies the default 10 MB cap.)
		Retry: wsupgrade.RetryPolicy{
			Attempts:         2,
			Backoff:          25 * time.Millisecond,
			MaxResponseBytes: 1 << 20,
		},
		Seed: 3,
	})
	if err != nil {
		return err
	}
	defer engine.Close()
	proxyURL, stopProxy, err := serve(engine.Handler())
	if err != nil {
		return err
	}
	defer stopProxy()

	// --- Consumer traffic ---------------------------------------------------
	// The pooled client keeps warm keep-alive connections to the proxy —
	// the same transport tuning the engine uses toward the releases.
	client := &wsupgrade.SOAPClient{URL: proxyURL, HTTP: wsupgrade.NewPooledClient(5*time.Second, 1)}
	fmt.Println("driving consumer traffic through the managed upgrade...")
	var switched bool
	for i := 1; i <= 600; i++ {
		var out service.AddResponse
		err := client.Call(context.Background(), "add", service.AddRequest{A: i, B: i}, &out)
		if err != nil {
			// Evident failures of the composite are possible but rare:
			// both releases must fail on the same demand.
			continue
		}
		if i%100 == 0 {
			rep, err := engine.Confidence("")
			if err != nil {
				return err
			}
			fmt.Printf("after %4d demands: phase=%-12v P(pfd_old<=%.2f)=%.3f  P(pfd_new<=%.2f)=%.3f\n",
				i, engine.Phase(), rep.Target, rep.Old, rep.Target, rep.New)
		}
		if !switched && engine.Phase() == wsupgrade.PhaseNewOnly {
			at, _ := engine.SwitchedAt()
			fmt.Printf(">>> switched to release 1.1 after %d back-to-back demands\n", at)
			switched = true
		}
	}
	if !switched {
		fmt.Println("no switch yet — the criterion wants more evidence")
	}

	old10, _ := engine.Stats("1.0")
	new11, _ := engine.Stats("1.1")
	fmt.Printf("release 1.0: %d demands, availability %.3f, %d judged failures\n",
		old10.Demands, old10.Availability(), old10.JudgedFailures)
	fmt.Printf("release 1.1: %d demands, availability %.3f, %d judged failures\n",
		new11.Demands, new11.Availability(), new11.JudgedFailures)
	return nil
}
