// Third-party component upgrade, end to end (Fig 4).
//
// A composite Web Service depends on a third-party component WS found
// through a UDDI-style registry. The component's provider publishes a new
// release while keeping the old one operational (§3.1). The composite:
//
//  1. is notified by the registry of the new release (§7.2);
//  2. deploys a managed-upgrade middleware over the two releases and
//     rebinds its component to the middleware — consumers notice nothing;
//  3. lets the middleware compare the releases back-to-back, building
//     Bayesian confidence in the new release;
//  4. when the switch criterion fires, rebinds straight to the new
//     release and phases the middleware out.
//
// Run with: go run ./examples/thirdparty
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"wsupgrade"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// compositeContract: one operation, implemented by calling the component.
func compositeContract() wsdl.Contract {
	return wsdl.Contract{
		Name:            "TravelBooking",
		TargetNamespace: "urn:example:travel",
		Version:         "1.0",
		Operations: []wsdl.Operation{{
			Name:   "quote",
			Input:  []wsdl.Param{{Name: "nights", Type: "s:int"}, {Name: "ratePerNight", Type: "s:int"}},
			Output: []wsdl.Param{{Name: "price", Type: "s:int"}},
		}},
	}
}

type quoteRequest struct {
	XMLName struct{} `xml:"quoteRequest"`
	Nights  int      `xml:"nights"`
	Rate    int      `xml:"ratePerNight"`
}

type quoteResponse struct {
	XMLName struct{} `xml:"quoteResponse"`
	Price   int      `xml:"price"`
}

func run() error {
	ctx := context.Background()

	// --- The registry (UDDI role) ------------------------------------------
	regURL, stopReg, err := serve(wsupgrade.NewRegistry())
	if err != nil {
		return err
	}
	defer stopReg()
	reg := &wsupgrade.RegistryClient{Base: regURL}
	fmt.Println("registry up at", regURL)

	// --- The third-party component, release 1.0 ----------------------------
	oldRel, err := wsupgrade.NewRelease(service.DemoContract("1.0"), service.DemoBehaviours(),
		wsupgrade.FaultPlan{Profile: relmodel.Profile{CR: 0.97, ER: 0.02, NER: 0.01}, Seed: 11})
	if err != nil {
		return err
	}
	oldURL, stopOld, err := serve(oldRel.Handler())
	if err != nil {
		return err
	}
	defer stopOld()
	if err := reg.Publish(ctx, wsupgrade.RegistryEntry{
		Name: "WebService1", Version: "1.0", URL: oldURL, Provider: "third-party"}); err != nil {
		return err
	}
	fmt.Println("third party published WebService1 1.0")

	// --- The composite WS ----------------------------------------------------
	comp, err := wsupgrade.NewComposite(compositeContract())
	if err != nil {
		return err
	}
	if err := comp.Handle("quote", func(ctx context.Context, req *soap.Request, deps *wsupgrade.CompositeDeps) (interface{}, error) {
		var in quoteRequest
		if err := req.Decode(&in); err != nil {
			return nil, soap.ClientFault(err.Error())
		}
		// Glue: price = nights*rate computed by repeated use of the
		// component's add operation (a toy orchestration).
		total := 0
		for i := 0; i < in.Nights; i++ {
			var sum service.AddResponse
			if err := deps.Call(ctx, "ws1", "add", service.AddRequest{A: total, B: in.Rate}, &sum); err != nil {
				return nil, err
			}
			total = sum.Sum
		}
		return quoteResponse{Price: total}, nil
	}); err != nil {
		return err
	}
	if err := comp.ResolveNewest(ctx, reg, "ws1", "WebService1"); err != nil {
		return err
	}

	// The upgrade reaction: deploy a managed upgrade when a new release
	// of the component appears.
	var (
		mu     sync.Mutex
		engine *wsupgrade.Engine
	)
	upgradeStarted := make(chan struct{})
	comp.OnUpgrade(func(e registry.Entry) {
		mu.Lock()
		defer mu.Unlock()
		if engine != nil || e.Version == "1.0" {
			return
		}
		fmt.Printf("notification: %s %s published at %s — starting managed upgrade\n",
			e.Name, e.Version, e.URL)
		prior := wsupgrade.ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.3}
		eng, err := wsupgrade.NewEngine(wsupgrade.EngineConfig{
			Releases: []wsupgrade.Endpoint{
				{Version: "1.0", URL: oldURL},
				{Version: e.Version, URL: e.URL},
			},
			InitialPhase: wsupgrade.PhaseObservation,
			Oracle:       oracle.Reference{Release: "1.0"},
			Inference: &wsupgrade.WhiteBoxConfig{
				PriorA: prior, PriorB: prior,
				GridA: 50, GridB: 50, GridC: 12, GridAB: 60,
			},
			Policy: &wsupgrade.PolicyConfig{
				Criterion:  bayes.Criterion3{Confidence: 0.95},
				CheckEvery: 40,
				MinDemands: 80,
			},
			ConfidenceTarget: 0.05,
			Seed:             13,
		})
		if err != nil {
			log.Println("engine:", err)
			return
		}
		engineURL, _, err := serve(eng.Handler())
		if err != nil {
			log.Println("serving engine:", err)
			return
		}
		if err := comp.Bind("ws1", engineURL); err != nil {
			log.Println("rebind:", err)
			return
		}
		engine = eng
		close(upgradeStarted)
		fmt.Println("composite rebound to the managed-upgrade middleware at", engineURL)
	})

	compURL, stopComp, err := serve(comp.Handler())
	if err != nil {
		return err
	}
	defer stopComp()
	if err := reg.Subscribe(ctx, "WebService1", compURL+"/notify"); err != nil {
		return err
	}
	fmt.Println("composite up at", compURL, "— bound directly to 1.0")

	// --- Consumers start using the composite --------------------------------
	client := &wsupgrade.SOAPClient{URL: compURL, HTTP: wsupgrade.NewPooledClient(10*time.Second, 1)}
	call := func(i int) error {
		var out quoteResponse
		err := client.Call(ctx, "quote", quoteRequest{Nights: 3, Rate: 100 + i%7}, &out)
		if err == nil && out.Price != 3*(100+i%7) {
			return fmt.Errorf("wrong price %d", out.Price)
		}
		return err
	}
	for i := 0; i < 30; i++ {
		if err := call(i); err != nil {
			fmt.Println("  (transient consumer-visible failure:", err, ")")
		}
	}
	fmt.Println("30 quotes served against release 1.0")

	// --- The third party publishes release 1.1 ------------------------------
	newRel, err := wsupgrade.NewRelease(service.DemoContract("1.1"), service.DemoBehaviours(),
		wsupgrade.FaultPlan{Profile: relmodel.Profile{CR: 0.995, ER: 0.004, NER: 0.001}, Seed: 12})
	if err != nil {
		return err
	}
	newURL, stopNew, err := serve(newRel.Handler())
	if err != nil {
		return err
	}
	defer stopNew()
	if err := reg.Publish(ctx, wsupgrade.RegistryEntry{
		Name: "WebService1", Version: "1.1", URL: newURL, Provider: "third-party"}); err != nil {
		return err
	}
	select {
	case <-upgradeStarted:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("upgrade notification never arrived")
	}

	// --- Traffic drives the managed upgrade ---------------------------------
	for i := 0; i < 400; i++ {
		_ = call(i)
		mu.Lock()
		eng := engine
		mu.Unlock()
		if eng != nil && eng.Phase() == wsupgrade.PhaseNewOnly {
			at, _ := eng.SwitchedAt()
			fmt.Printf("criterion satisfied after %d back-to-back demands — switching\n", at)
			break
		}
	}
	mu.Lock()
	eng := engine
	mu.Unlock()
	if eng == nil {
		return fmt.Errorf("engine never started")
	}
	if eng.Phase() != wsupgrade.PhaseNewOnly {
		fmt.Println("criterion not yet satisfied; composite keeps the middleware in place")
	} else {
		// Phase out: bind the composite straight to 1.1.
		if err := comp.Bind("ws1", newURL); err != nil {
			return err
		}
		fmt.Println("composite rebound directly to release 1.1; middleware phased out")
	}
	rep, err := eng.Confidence("")
	if err != nil {
		return err
	}
	fmt.Printf("final confidence: P(pfd_1.0<=%.2f)=%.3f  P(pfd_1.1<=%.2f)=%.3f over %d paired demands\n",
		rep.Target, rep.Old, rep.Target, rep.New, rep.Demands)
	for _, v := range []string{"1.0", "1.1"} {
		if s, err := eng.Stats(v); err == nil {
			fmt.Printf("release %s: %d demands, availability %.3f, %d judged failures\n",
				v, s.Demands, s.Availability(), s.JudgedFailures)
		}
	}
	// A final quote through the fully upgraded path.
	if err := call(0); err != nil {
		return err
	}
	fmt.Println("quotes continue uninterrupted on release 1.1")
	return eng.Close()
}
