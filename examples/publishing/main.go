// Publishing the confidence in a Web Service (§6.2).
//
// The paper discusses several ways a provider can expose its confidence
// in a service's correctness. This example demonstrates all of them on a
// live deployment:
//
//  1. WSDL option 1 — the operation response element itself is extended
//     with a confidence value (not backward compatible; shown as a
//     contract diff).
//  2. WSDL option 2 — a dedicated OperationConf operation.
//  3. WSDL option 3 — a backward-compatible "<op>Conf" variant whose
//     response carries the result plus the confidence.
//  4. Protocol handlers — a confidence SOAP header transparently added
//     to every response.
//  5. The UDDI archive — confidence values attached to the registry
//     entry.
//
// Run with: go run ./examples/publishing
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"wsupgrade"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func run() error {
	ctx := context.Background()

	// --- Contract-level view (the WSDL transformations) --------------------
	base := service.DemoContract("1.1")
	fmt.Println("== WSDL mechanisms ==")

	opt1, err := base.WithConfidenceInResponse("operation1")
	if err != nil {
		return err
	}
	op1, _ := opt1.Operation("operation1")
	fmt.Printf("option 1: operation1 response now ends with element %q (breaks old clients)\n",
		op1.Output[len(op1.Output)-1].Name)

	opt2 := base.WithConfidenceOperation()
	fmt.Printf("option 2: contract gains operation %q (backward compatible)\n",
		opt2.Operations[len(opt2.Operations)-1].Name)

	opt3, err := base.WithConfVariant("operation1")
	if err != nil {
		return err
	}
	fmt.Printf("option 3: contract gains twin operation %q (backward compatible)\n",
		opt3.Operations[len(opt3.Operations)-1].Name)

	// --- Live deployment ------------------------------------------------------
	oldRel, err := wsupgrade.NewRelease(service.DemoContract("1.0"), service.DemoBehaviours(),
		wsupgrade.FaultPlan{Profile: relmodel.Profile{CR: 0.97, ER: 0.02, NER: 0.01}, Seed: 31})
	if err != nil {
		return err
	}
	newRel, err := wsupgrade.NewRelease(service.DemoContract("1.1"), service.DemoBehaviours(),
		wsupgrade.FaultPlan{Profile: relmodel.Profile{CR: 0.99, ER: 0.005, NER: 0.005}, Seed: 32})
	if err != nil {
		return err
	}
	oldURL, stopOld, err := serve(oldRel.Handler())
	if err != nil {
		return err
	}
	defer stopOld()
	newURL, stopNew, err := serve(newRel.Handler())
	if err != nil {
		return err
	}
	defer stopNew()

	prior := wsupgrade.ScaledBeta{Alpha: 1, Beta: 9, Upper: 0.4}
	contract := service.DemoContract("1.1")
	engine, err := wsupgrade.NewEngine(wsupgrade.EngineConfig{
		Releases: []wsupgrade.Endpoint{
			{Version: "1.0", URL: oldURL},
			{Version: "1.1", URL: newURL},
		},
		Oracle: oracle.Reference{Release: "1.0"},
		Inference: &wsupgrade.WhiteBoxConfig{
			PriorA: prior, PriorB: prior,
			GridA: 50, GridB: 50, GridC: 12, GridAB: 60,
		},
		ConfidenceTarget: 0.05,
		EnableConfOps:    true, // options 2 and 3
		PublishHeader:    true, // protocol-handler mechanism
		Contract:         &contract,
		Seed:             33,
	})
	if err != nil {
		return err
	}
	defer engine.Close()
	engineURL, stopEngine, err := serve(engine.Handler())
	if err != nil {
		return err
	}
	defer stopEngine()

	client := &wsupgrade.SOAPClient{URL: engineURL, HTTP: &http.Client{Timeout: 10 * time.Second}}
	// Build up some operational evidence first.
	for i := 0; i < 150; i++ {
		_ = client.Call(ctx, "add", service.AddRequest{A: i, B: 1}, nil)
	}
	fmt.Println("\n== live mechanisms (after 150 monitored demands) ==")

	// Option 2: the dedicated confidence operation.
	var conf struct {
		XMLName    struct{} `xml:"OperationConfResponse"`
		Confidence float64  `xml:"confidence"`
	}
	if err := client.Call(ctx, "OperationConf", struct {
		XMLName   struct{} `xml:"OperationConfRequest"`
		Operation string   `xml:"operation"`
	}{Operation: "add"}, &conf); err != nil {
		return err
	}
	fmt.Printf("OperationConf(add) = %.3f\n", conf.Confidence)

	// Option 3: the addConf twin returns the result plus the confidence.
	env := soap.EnvelopeRaw([]byte(`<addConfRequest><a>20</a><b>22</b></addConfRequest>`))
	respEnv, err := client.CallRaw(ctx, "addConf", env)
	if err != nil {
		return err
	}
	fmt.Println("addConf response body:", compact(extractBody(respEnv)))

	// Protocol handler: the confidence header on a plain add call.
	respEnv, err = client.CallRaw(ctx, "add",
		soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`)))
	if err != nil {
		return err
	}
	parsed, err := soap.Parse(respEnv)
	if err != nil {
		return err
	}
	fmt.Println("response SOAP header:", compact(string(parsed.HeaderXML)))

	// UDDI archive: the registry entry with per-operation confidence.
	regURL, stopReg, err := serve(wsupgrade.NewRegistry())
	if err != nil {
		return err
	}
	defer stopReg()
	reg := &wsupgrade.RegistryClient{Base: regURL}
	if err := reg.Publish(ctx, engine.RegistryEntry("WebService1", engineURL)); err != nil {
		return err
	}
	entry, err := reg.Get(ctx, "WebService1", "1.1")
	if err != nil {
		return err
	}
	for _, c := range entry.Confidence {
		fmt.Printf("registry entry: confidence[%s] = %.3f\n", c.Name, c.Value)
	}

	// The extended WSDL consumers can fetch.
	resp, err := http.Get(engineURL + "/wsdl")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<17)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	fmt.Printf("served WSDL declares OperationConf: %v, addConf: %v\n",
		strings.Contains(text, "OperationConf"), strings.Contains(text, "addConf"))
	return nil
}

func extractBody(envelope []byte) string {
	p, err := soap.Parse(envelope)
	if err != nil {
		return string(envelope)
	}
	return string(p.BodyXML)
}

func compact(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
