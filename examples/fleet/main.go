// Fleet: the paper's composite scenario (Figs 1 and 4, §7) end to end.
//
// A travel-agency composite Web Service books trips by calling two
// component services — flights and hotels — provided by third parties.
// Each component is upgrading independently: two releases run side by
// side behind ONE fleet listener that hosts a managed-upgrade unit per
// component (path routing: /flights/…, /hotels/…). The composite's glue
// code is bound to the fleet endpoints and never notices the upgrades.
//
// While the travel agency serves bookings, each unit observes its new
// release back-to-back with the old one, accumulates Bayesian
// confidence, and switches when criterion 3 (new no worse than old) is
// met — independently, at its own pace. Afterwards a brand-new hotels
// release is published to the registry, whose §7.2 upgrade notification
// fans into the fleet and deploys the release online.
//
// Run with: go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"wsupgrade"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/fleet"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// serve starts an HTTP handler on an ephemeral local port.
func serve(h http.Handler) (url string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// component boots two releases of one component service and returns its
// fleet unit configuration: the old release visibly fails now and then,
// the new one is better but unproven.
func component(name string, seed uint64) (fleet.UnitConfig, []func(), error) {
	var stops []func()
	prior := wsupgrade.ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.3}
	releases := make([]core.Endpoint, 0, 2)
	for i, plan := range []wsupgrade.FaultPlan{
		{Profile: relmodel.Profile{CR: 0.93, ER: 0.05, NER: 0.02}, Seed: seed},
		{Profile: relmodel.Profile{CR: 0.99, ER: 0.008, NER: 0.002}, Seed: seed + 1},
	} {
		version := fmt.Sprintf("%d.%d", 1, i)
		rel, err := wsupgrade.NewRelease(service.DemoContract(version), service.DemoBehaviours(), plan)
		if err != nil {
			return fleet.UnitConfig{}, stops, err
		}
		url, stop, err := serve(rel.Handler())
		if err != nil {
			return fleet.UnitConfig{}, stops, err
		}
		stops = append(stops, stop)
		releases = append(releases, core.Endpoint{Version: version, URL: url})
	}
	return fleet.UnitConfig{
		Name: name,
		Engine: core.Config{
			Releases:     releases,
			InitialPhase: wsupgrade.PhaseObservation, // deliver old, observe new (§3.1)
			Oracle:       oracle.Reference{Release: releases[0].Version},
			Inference: &wsupgrade.WhiteBoxConfig{
				PriorA: prior, PriorB: prior,
				GridA: 50, GridB: 50, GridC: 12, GridAB: 60,
			},
			Policy: &wsupgrade.PolicyConfig{
				Criterion:  bayes.Criterion3{Confidence: 0.95},
				CheckEvery: 50,
				MinDemands: 100,
			},
			ConfidenceTarget: 0.05,
			Seed:             seed,
		},
	}, stops, nil
}

// bookTripRequest/Response are the travel agency's own contract.
type bookTripRequest struct {
	XMLName struct{} `xml:"bookTripRequest"`
	Nights  int      `xml:"nights"`
	Bags    int      `xml:"bags"`
}

type bookTripResponse struct {
	XMLName struct{} `xml:"bookTripResponse"`
	Total   int      `xml:"total"`
}

func run() error {
	// --- The two upgrading components behind one fleet ---------------------
	flights, stopsF, err := component("flights", 11)
	defer func() {
		for _, s := range stopsF {
			s()
		}
	}()
	if err != nil {
		return err
	}
	hotels, stopsH, err := component("hotels", 22)
	defer func() {
		for _, s := range stopsH {
			s()
		}
	}()
	if err != nil {
		return err
	}

	fl, err := fleet.New(fleet.Config{Units: []fleet.UnitConfig{flights, hotels}})
	if err != nil {
		return err
	}
	defer fl.Close()
	fleetURL, stopFleet, err := serve(fl)
	if err != nil {
		return err
	}
	defer stopFleet()
	fmt.Printf("fleet: hosting %d upgrade units on %s (units /flights, /hotels; admin /fleet)\n",
		len(fl.Units()), fleetURL)

	fl.OnTransition(func(tr wsupgrade.Transition) {
		fmt.Printf("fleet: unit %-8s %v → %v (%v)\n", tr.Unit, tr.From, tr.To, tr.Cause)
	})

	// --- The registry and the §7.2 notification fan-in ----------------------
	reg := wsupgrade.NewRegistry()
	regURL, stopReg, err := serve(reg)
	if err != nil {
		return err
	}
	defer stopReg()
	regClient := &wsupgrade.RegistryClient{Base: regURL}
	ctx := context.Background()
	for _, u := range fl.Units() {
		newest := u.Engine().Releases()
		if err := regClient.Publish(ctx, registry.Entry{
			Name:    u.Service(),
			Version: newest[len(newest)-1].Version,
			URL:     fleetURL + "/" + u.Name(),
		}); err != nil {
			return err
		}
	}
	if err := fl.Subscribe(ctx, regClient, fleetURL); err != nil {
		return err
	}

	// --- The travel-agency composite (Fig 1's glue code) -------------------
	contract := wsdl.Contract{
		Name:            "TravelAgency",
		TargetNamespace: "urn:wsupgrade:travel",
		Version:         "1.0",
		Operations: []wsdl.Operation{{
			Name:   "bookTrip",
			Doc:    "Books a flight and a hotel; returns the total price.",
			Input:  []wsdl.Param{{Name: "nights", Type: "s:int"}, {Name: "bags", Type: "s:int"}},
			Output: []wsdl.Param{{Name: "total", Type: "s:int"}},
		}},
	}
	agency, err := wsupgrade.NewComposite(contract)
	if err != nil {
		return err
	}
	// The components are bound at the FLEET, not at any concrete release:
	// the upgrades stay invisible to the glue.
	if err := agency.Bind("flights", fleetURL+"/flights"); err != nil {
		return err
	}
	if err := agency.Bind("hotels", fleetURL+"/hotels"); err != nil {
		return err
	}
	err = agency.Handle("bookTrip", func(ctx context.Context, req *soap.Request, deps *wsupgrade.CompositeDeps) (interface{}, error) {
		var in bookTripRequest
		if err := req.Decode(&in); err != nil {
			return nil, err
		}
		var flight, hotel service.AddResponse
		// Flight price: base fare 100 plus 25 per bag.
		if err := deps.Call(ctx, "flights", "add", service.AddRequest{A: 100, B: 25 * in.Bags}, &flight); err != nil {
			return nil, err
		}
		// Hotel price: 80 per night plus a 30 city tax.
		if err := deps.Call(ctx, "hotels", "add", service.AddRequest{A: 80 * in.Nights, B: 30}, &hotel); err != nil {
			return nil, err
		}
		return bookTripResponse{Total: flight.Sum + hotel.Sum}, nil
	})
	if err != nil {
		return err
	}
	agencyURL, stopAgency, err := serve(agency.Handler())
	if err != nil {
		return err
	}
	defer stopAgency()

	// --- Consumer traffic through the whole composite ----------------------
	fmt.Println("travel-agency: booking trips while both components upgrade...")
	client := &wsupgrade.SOAPClient{URL: agencyURL, HTTP: wsupgrade.NewPooledClient(10*time.Second, 1)}
	booked, failed := 0, 0
	for i := 1; i <= 800; i++ {
		nights, bags := 1+i%7, i%3
		var out bookTripResponse
		err := client.Call(ctx, "bookTrip", bookTripRequest{Nights: nights, Bags: bags}, &out)
		if err != nil {
			failed++ // rare: a component failed evidently on both releases
			continue
		}
		want := 100 + 25*bags + 80*nights + 30
		if out.Total != want {
			// A non-evident failure slipped through adjudication — the
			// §5.2 exposure the paper quantifies.
			failed++
			continue
		}
		booked++
		if done := bothSwitched(fl); done && i >= 300 {
			break
		}
	}
	fmt.Printf("travel-agency: %d trips booked, %d demands failed\n", booked, failed)

	for _, st := range fl.Status() {
		conf := 0.0
		if st.Confidence != nil {
			conf = *st.Confidence
		}
		fmt.Printf("fleet: unit %-8s phase=%-11s switchedAt=%-5d confidence=%.3f releases=%d\n",
			st.Unit, st.Phase, st.SwitchedAt, conf, len(st.Releases))
	}

	// --- A new hotels release appears in the registry -----------------------
	// The §7.2 notification fans into the fleet and deploys it online on
	// exactly the hotels unit. The unit was resting in NewOnly, so the
	// fan-in restarts the campaign in Observation: the proven release
	// keeps delivering while 1.2 is observed — never served unvetted.
	newHotel, err := wsupgrade.NewRelease(service.DemoContract("1.2"), service.DemoBehaviours(),
		wsupgrade.FaultPlan{Profile: relmodel.Profile{CR: 0.999, ER: 0.001}, Seed: 99})
	if err != nil {
		return err
	}
	newHotelURL, stopNewHotel, err := serve(newHotel.Handler())
	if err != nil {
		return err
	}
	defer stopNewHotel()
	if err := regClient.Publish(ctx, registry.Entry{
		Name: "hotels", Version: "1.2", URL: newHotelURL,
	}); err != nil {
		return err
	}
	hotelsUnit, err := fl.Unit("hotels")
	if err != nil {
		return err
	}
	rels := hotelsUnit.Engine().Releases()
	fmt.Printf("registry: published hotels 1.2 — unit now deploys %d releases (newest %s), phase %v\n",
		len(rels), rels[len(rels)-1].Version, hotelsUnit.Engine().Phase())
	return nil
}

func bothSwitched(fl *fleet.Fleet) bool {
	for _, u := range fl.Units() {
		if u.Engine().Phase() != wsupgrade.PhaseNewOnly {
			return false
		}
	}
	return true
}
