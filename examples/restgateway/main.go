// Restgateway: the managed-upgrade engine behind a REST/JSON face
// (DESIGN.md §9).
//
// Two JSON releases of the demo service run side by side behind one
// upgrade unit configured with protocol "json": consumers POST JSON
// bodies to /api/<operation>, the unit fans each demand out, judges
// and adjudicates the replies, and answers in JSON — the §4 mediation
// pipeline is exactly the one the SOAP gateway uses, only the codec
// differs. The published §6.2 confidence rides the
// X-Wsupgrade-Confidence response header (JSON has no native header
// representation), and a demand whose Content-Type contradicts the
// unit's protocol is refused with 415 before it can be charged to any
// release.
//
// Run with: go run ./examples/restgateway
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"wsupgrade"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/fleet"
	"wsupgrade/internal/httpx"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/protocol/jsoncodec"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// serve starts an HTTP handler on an ephemeral local port.
func serve(h http.Handler) (url string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func run() error {
	// --- Two JSON releases: old proven-but-flawed, new better-but-unproven --
	var releases []core.Endpoint
	var stops []func()
	defer func() {
		for _, s := range stops {
			s()
		}
	}()
	for i, plan := range []service.FaultPlan{
		{Profile: relmodel.Profile{CR: 0.93, ER: 0.05, NER: 0.02}, Seed: 41},
		{Profile: relmodel.Profile{CR: 0.99, ER: 0.008, NER: 0.002}, Seed: 42},
	} {
		version := fmt.Sprintf("1.%d", i)
		rel, err := service.NewJSON(version, service.DemoJSONBehaviours(), plan)
		if err != nil {
			return err
		}
		url, stop, err := serve(rel.Handler())
		if err != nil {
			return err
		}
		stops = append(stops, stop)
		releases = append(releases, core.Endpoint{Version: version, URL: url})
	}

	// --- One upgrade unit, protocol "json" ---------------------------------
	prior := wsupgrade.ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.3}
	fl, err := fleet.New(fleet.Config{Units: []fleet.UnitConfig{{
		Name:     "api",
		Protocol: "json",
		Engine: core.Config{
			Releases:     releases,
			InitialPhase: wsupgrade.PhaseObservation,
			Oracle:       oracle.Reference{Release: releases[0].Version, Codec: jsoncodec.Default},
			Inference: &wsupgrade.WhiteBoxConfig{
				PriorA: prior, PriorB: prior,
				GridA: 50, GridB: 50, GridC: 12, GridAB: 60,
			},
			Policy: &wsupgrade.PolicyConfig{
				Criterion:  bayes.Criterion3{Confidence: 0.95},
				CheckEvery: 50,
				MinDemands: 100,
			},
			ConfidenceTarget: 0.05,
			PublishHeader:    true,
			Seed:             7,
		},
	}}})
	if err != nil {
		return err
	}
	defer fl.Close()
	gatewayURL, stopGateway, err := serve(fl)
	if err != nil {
		return err
	}
	defer stopGateway()
	fmt.Printf("gateway: REST unit on %s/api (POST /api/add, /api/operation1)\n", gatewayURL)

	fl.OnTransition(func(tr wsupgrade.Transition) {
		fmt.Printf("gateway: unit %s %v → %v (%v)\n", tr.Unit, tr.From, tr.To, tr.Cause)
	})

	// --- JSON demands through the mediated unit ----------------------------
	client := &http.Client{Timeout: 10 * time.Second}
	ok, failed := 0, 0
	var lastConfidence string
	for i := 1; i <= 600; i++ {
		body, _ := json.Marshal(service.AddJSONRequest{A: i, B: 2 * i})
		resp, err := client.Post(gatewayURL+"/api/add", "application/json", bytes.NewReader(body))
		if err != nil {
			failed++
			continue
		}
		raw, readErr := httpx.ReadBounded(resp.Body, 1<<20)
		if c := resp.Header.Get(core.ConfidenceHeader); c != "" {
			lastConfidence = c
		}
		resp.Body.Close()
		var out service.AddJSONResponse
		if readErr == nil {
			readErr = json.Unmarshal(raw, &out)
		}
		if resp.StatusCode != http.StatusOK || readErr != nil || out.Sum != 3*i {
			failed++ // evident failure on both releases, or a §5.2 escape
			continue
		}
		ok++
	}
	fmt.Printf("consumer: %d demands adjudicated OK, %d failed; published confidence %s\n",
		ok, failed, lastConfidence)

	// --- The 415 front door ------------------------------------------------
	// A SOAP envelope aimed at the JSON unit never reaches a release.
	resp, err := client.Post(gatewayURL+"/api/add", "text/xml",
		strings.NewReader(`<Envelope/>`))
	if err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Printf("gateway: text/xml demand at the JSON unit → HTTP %d\n", resp.StatusCode)

	st := fl.Status()[0]
	conf := 0.0
	if st.Confidence != nil {
		conf = *st.Confidence
	}
	fmt.Printf("gateway: unit %s phase=%s confidence=%.3f releases=%d\n",
		st.Unit, st.Phase, conf, len(st.Releases))
	return nil
}
