// Package wsupgrade is the public API of the reproduction of
// "Dependable Composite Web Services with Components Upgraded Online"
// (Gorbenko, Kharchenko, Popov, Romanovsky — DSN/WADS 2004).
//
// It re-exports the building blocks a downstream user composes:
//
//   - Engine — the managed-upgrade middleware (§4): runs several releases
//     of a Web Service side by side, adjudicates their responses,
//     monitors dependability, and switches to the new release when the
//     Bayesian confidence criterion is met.
//   - WhiteBox / BlackBox — the confidence engines (§5.1) with the three
//     switch criteria of §5.1.1.2 and the imperfect-detection models of
//     §5.1.1.3.
//   - Registry — the UDDI-style registry with confidence publication and
//     upgrade notification (§6.2, §7.2).
//   - Composite — composite-service orchestration over upgrade-aware
//     component bindings (Figs 1 and 4).
//   - Service — a fault-injecting WS runtime standing in for real
//     third-party releases.
//   - The §5.2 availability/performance simulator and the experiment
//     harness that regenerates every table and figure of the paper.
//
// See examples/ for runnable end-to-end scenarios and DESIGN.md for the
// per-experiment index.
package wsupgrade

import (
	"net/http"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/composite"
	"wsupgrade/internal/core"
	"wsupgrade/internal/fleet"
	"wsupgrade/internal/httpx"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/repro"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/stats"
	"wsupgrade/internal/upgsim"
	"wsupgrade/internal/wire"
	"wsupgrade/internal/wsdl"
)

// ---------------------------------------------------------------------------
// Managed-upgrade middleware (the paper's contribution, §4).

// Engine is the managed-upgrade middleware; see core.Engine.
type Engine = core.Engine

// EngineConfig parameterizes the middleware.
type EngineConfig = core.Config

// Endpoint identifies one deployed release.
type Endpoint = core.Endpoint

// PolicyConfig is the automatic switch rule.
type PolicyConfig = core.PolicyConfig

// ConfidenceReport is a confidence snapshot for a release pair.
type ConfidenceReport = core.ConfidenceReport

// Phase is the upgrade lifecycle state.
type Phase = core.Phase

// Lifecycle phases (§3.3, §4.2).
const (
	PhaseOldOnly     = core.PhaseOldOnly
	PhaseObservation = core.PhaseObservation
	PhaseParallel    = core.PhaseParallel
	PhaseNewOnly     = core.PhaseNewOnly
)

// Mode is the fan-out strategy (§4.2 operating modes).
type Mode = core.Mode

// Operating modes.
const (
	ModeReliability    = core.ModeReliability
	ModeResponsiveness = core.ModeResponsiveness
	ModeDynamic        = core.ModeDynamic
	ModeSequential     = core.ModeSequential
)

// NewEngine builds a managed-upgrade middleware.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.New(cfg) }

// Transition is one observed lifecycle transition; see
// Engine.OnTransition and Fleet.OnTransition.
type Transition = lifecycle.Transition

// TransitionRules parameterize which §4.1 phase transitions the
// lifecycle machine accepts (lifecycle.DefaultRules is what Engine
// enforces: forward movement with skips, abort to OldOnly, restart out
// of NewOnly).
type TransitionRules = lifecycle.Rules

// ---------------------------------------------------------------------------
// Multi-unit upgrade fabric (Figs 1 and 4, §7).

// Fleet hosts many upgrade units — the components of a composite
// service, each upgrading independently — behind one listener with
// host/path routing, a shared release transport pool, aggregated
// health/confidence, a JSON admin API under /fleet/, and registry
// upgrade-notification fan-in; see fleet.Fleet.
type Fleet = fleet.Fleet

// FleetConfig parameterizes a fleet.
type FleetConfig = fleet.Config

// FleetUnit is one hosted upgrade unit's configuration.
type FleetUnit = fleet.UnitConfig

// NewFleet builds a multi-unit upgrade fabric.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// RetryPolicy tolerates transient transport failures per release call
// (EngineConfig.Retry) and bounds release response bodies via
// MaxResponseBytes.
type RetryPolicy = httpx.RetryPolicy

// WireClient is the lean HTTP/1.1 release-call transport the engine
// uses by default: per-endpoint persistent connection pools, pooled
// request/response state, precomputed header prefixes, and bounded
// reads — see internal/wire. Engines and fleets build their own unless
// EngineConfig.Wire injects a shared one; EngineConfig.HTTP or
// EngineConfig.UseNetHTTP selects the net/http path instead (TLS,
// proxies, exotic transports).
type WireClient = wire.Client

// WireOptions parameterizes a WireClient.
type WireOptions = wire.Options

// NewWireClient builds a wire transport, e.g. to share one connection
// pool across several independently constructed engines.
func NewWireClient(opts WireOptions) *WireClient { return wire.NewClient(opts) }

// NewPooledClient returns an HTTP client whose transport is tuned for
// the middleware's traffic shape: keep-alive fan-out to a small set of
// release hosts. The engine builds one automatically when
// EngineConfig.UseNetHTTP is set; it is exported for consumers that
// want the same pooling toward the proxy itself.
func NewPooledClient(timeout time.Duration, hosts int) *http.Client {
	return httpx.NewPooledClient(timeout, hosts)
}

// ---------------------------------------------------------------------------
// Confidence (§5.1).

// ScaledBeta is a Beta prior on [0, Upper] for a release's pfd.
type ScaledBeta = stats.ScaledBeta

// WhiteBox infers the trivariate posterior over (P_A, P_B, P_AB).
type WhiteBox = bayes.WhiteBox

// WhiteBoxConfig parameterizes the white-box inference.
type WhiteBoxConfig = bayes.WhiteBoxConfig

// BlackBox infers a single release's pfd.
type BlackBox = bayes.BlackBox

// JointCounts is the Table 1 observation record.
type JointCounts = bayes.JointCounts

// Posterior carries the marginal posteriors after an observation.
type Posterior = bayes.Posterior

// Criterion decides when the upgrade may switch (§5.1.1.2).
type Criterion = bayes.Criterion

// Criterion1 switches when the new release reaches the old release's
// prior dependability level.
type Criterion1 = bayes.Criterion1

// Criterion2 switches on an explicit pfd target.
type Criterion2 = bayes.Criterion2

// Criterion3 switches when the new release is no worse than the old.
type Criterion3 = bayes.Criterion3

// NewWhiteBox builds the trivariate inference engine.
func NewWhiteBox(cfg WhiteBoxConfig) (*WhiteBox, error) { return bayes.NewWhiteBox(cfg) }

// NewBlackBox builds the single-release inference engine.
func NewBlackBox(prior ScaledBeta, grid int) (*BlackBox, error) {
	return bayes.NewBlackBox(prior, grid)
}

// NewCriterion1 derives criterion 1's target from the old release's prior.
func NewCriterion1(priorA ScaledBeta, confidence float64) (Criterion1, error) {
	return bayes.NewCriterion1(priorA, confidence)
}

// ---------------------------------------------------------------------------
// Adjudication and oracles (§4.2, §4.3).

// Adjudicator selects the delivered response.
type Adjudicator = adjudicate.Adjudicator

// RandomValid is the paper's §5.2.1 adjudication rule set.
type RandomValid = adjudicate.RandomValid

// Majority votes by payload equality.
type Majority = adjudicate.Majority

// FastestValid returns the quickest valid response.
type FastestValid = adjudicate.FastestValid

// Oracle judges response correctness for monitoring.
type Oracle = oracle.Oracle

// FaultOnlyOracle detects evident failures only.
type FaultOnlyOracle = oracle.FaultOnly

// ReferenceOracle trusts a named release as the correctness reference
// (§3.1: "use the old release as an 'oracle'").
type ReferenceOracle = oracle.Reference

// BackToBackOracle detects failures by response comparison (§5.1.1.3).
type BackToBackOracle = oracle.BackToBack

// Monitor is the monitoring subsystem (§4.3).
type Monitor = monitor.Monitor

// NewMonitor builds a monitoring subsystem.
func NewMonitor(opts ...monitor.Option) *Monitor { return monitor.New(opts...) }

// ---------------------------------------------------------------------------
// Registry, composite services and the WS substrate.

// Registry is the UDDI-style registry server.
type Registry = registry.Server

// RegistryClient talks to a registry.
type RegistryClient = registry.Client

// RegistryEntry is one published release.
type RegistryEntry = registry.Entry

// NewRegistry builds an empty registry.
func NewRegistry(opts ...registry.Option) *Registry { return registry.NewServer(opts...) }

// Composite is a composite Web Service runtime (Fig 1).
type Composite = composite.Service

// CompositeDeps gives glue code access to component bindings.
type CompositeDeps = composite.Deps

// NewComposite builds a composite service for a contract.
func NewComposite(contract wsdl.Contract) (*Composite, error) { return composite.New(contract) }

// Contract describes a service's operations (WSDL 1.1 abstraction).
type Contract = wsdl.Contract

// ContractOperation is one operation of a contract.
type ContractOperation = wsdl.Operation

// ReleaseRuntime hosts one release of a service with fault injection.
type ReleaseRuntime = service.Release

// FaultPlan is a release's injected dependability profile.
type FaultPlan = service.FaultPlan

// Behaviour is one operation's correct and faulty implementations.
type Behaviour = service.Behaviour

// NewRelease builds a release runtime.
func NewRelease(contract Contract, behaviours map[string]Behaviour, plan FaultPlan) (*ReleaseRuntime, error) {
	return service.New(contract, behaviours, plan)
}

// SOAPClient invokes operations on any SOAP endpoint in this system.
type SOAPClient = soap.Client

// ---------------------------------------------------------------------------
// Evaluation (§5).

// OutcomeProfile is a release's CR/ER/NER marginal distribution (Table 3).
type OutcomeProfile = relmodel.Profile

// Scenario bundles a Bayesian study's priors and ground truth (§5.1.1.1).
type Scenario = relmodel.Scenario

// Scenario1 returns the paper's first study.
func Scenario1() Scenario { return relmodel.Scenario1() }

// Scenario2 returns the paper's second study.
func Scenario2() Scenario { return relmodel.Scenario2() }

// SimConfig parameterizes the §5.2 availability/performance simulation.
type SimConfig = upgsim.Config

// SimResult is one simulation outcome (a Table 5/6 block).
type SimResult = upgsim.Result

// Simulate runs the §5.2 model.
func Simulate(cfg SimConfig) (*SimResult, error) { return upgsim.Simulate(cfg) }

// StudyConfig parameterizes a Table 2 / Fig 7 / Fig 8 sweep.
type StudyConfig = repro.StudyConfig

// StudyResult is a complete switch study.
type StudyResult = repro.StudyResult

// RunSwitchStudy regenerates Table 2 and the figures for one scenario.
func RunSwitchStudy(cfg StudyConfig) (*StudyResult, error) { return repro.RunSwitchStudy(cfg) }

// AvailabilityConfig parameterizes a Table 5/6 regeneration.
type AvailabilityConfig = repro.AvailabilityConfig

// RunAvailabilityStudy regenerates Table 5 (correlated) or 6 (independent).
func RunAvailabilityStudy(cfg AvailabilityConfig) ([]repro.AvailabilityRow, error) {
	return repro.RunAvailabilityStudy(cfg)
}
