package httpx

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A release streaming more than the configured cap must fail the
// exchange instead of growing the proxy's heap without bound.
func TestPostXMLRejectsOversizedResponse(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 1<<16+1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(big)
	}))
	defer ts.Close()
	_, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 1, MaxResponseBytes: 1 << 16})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized response returned %v, want ErrTooLarge", err)
	}
}

// A body exactly at the cap is fine.
func TestPostXMLAcceptsResponseAtCap(t *testing.T) {
	exact := bytes.Repeat([]byte("x"), 1<<12)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(exact)
	}))
	defer ts.Close()
	res, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 1, MaxResponseBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Body) != len(exact) {
		t.Fatalf("body length = %d, want %d", len(res.Body), len(exact))
	}
}

// With no explicit cap the default 10 MB bound applies — the unbounded
// io.ReadAll this replaces let one misbehaving release OOM the proxy.
func TestPostXMLDefaultResponseCap(t *testing.T) {
	chunk := bytes.Repeat([]byte("x"), 1<<20)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for written := int64(0); written <= DefaultMaxResponseBytes; written += int64(len(chunk)) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	defer ts.Close()
	_, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", nil, NoRetry)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-default response returned %v, want ErrTooLarge", err)
	}
}

// An oversized response is deterministic, not transient: it must not be
// retried.
func TestPostXMLDoesNotRetryOversizedResponse(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		_, _ = w.Write(bytes.Repeat([]byte("x"), 2048))
	}))
	defer ts.Close()
	_, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 3, Backoff: time.Millisecond, MaxResponseBytes: 1024})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("oversized response retried: %d calls", calls.Load())
	}
}

func TestPolicyRejectsNegativeResponseCap(t *testing.T) {
	if err := (RetryPolicy{Attempts: 1, MaxResponseBytes: -1}).Validate(); err == nil {
		t.Fatal("negative response cap accepted")
	}
}

func TestReadBounded(t *testing.T) {
	data, err := ReadBounded(strings.NewReader("hello"), 5)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadBounded = %q, %v", data, err)
	}
	if _, err := ReadBounded(strings.NewReader("hello!"), 5); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-limit read returned %v, want ErrTooLarge", err)
	}
	// The returned slice is caller-owned: a second read through the same
	// pooled buffer must not corrupt it.
	first, err := ReadBounded(strings.NewReader("first"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBounded(strings.NewReader("XXXXX"), 64); err != nil {
		t.Fatal(err)
	}
	if string(first) != "first" {
		t.Fatalf("pooled buffer reuse corrupted earlier result: %q", first)
	}
}

// The pooled client must keep enough idle connections per release host
// that a warm fan-out burst re-dials nothing. http.DefaultTransport
// (2 idle conns per host) fails this: the second burst re-dials most of
// its connections.
func TestPooledClientReusesConnections(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<ok/>"))
	}))
	defer ts.Close()
	client := NewPooledClient(5*time.Second, 1)

	const burst = 8
	round := func() int32 {
		var dialed atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				trace := &httptrace.ClientTrace{
					ConnectStart: func(network, addr string) { dialed.Add(1) },
				}
				ctx := httptrace.WithClientTrace(context.Background(), trace)
				res, err := PostXML(ctx, client, ts.URL, "text/xml", []byte("<in/>"), NoRetry)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Status != http.StatusOK {
					t.Errorf("status = %d", res.Status)
				}
			}()
		}
		wg.Wait()
		return dialed.Load()
	}

	if cold := round(); cold == 0 {
		t.Fatal("cold pool dialed nothing")
	}
	if warm := round(); warm != 0 {
		t.Fatalf("warm pool dialed %d new connections; the per-host idle pool is starved", warm)
	}
}

func TestPooledClientTransportTuning(t *testing.T) {
	client := NewPooledClient(time.Second, 3)
	transport, ok := client.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", client.Transport)
	}
	if transport.MaxIdleConnsPerHost != DefaultMaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConnsPerHost = %d", transport.MaxIdleConnsPerHost)
	}
	if transport.MaxIdleConns != 3*DefaultMaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConns = %d", transport.MaxIdleConns)
	}
	if client.Timeout != time.Second {
		t.Fatalf("timeout = %v", client.Timeout)
	}
}

// Backoff doubles per further attempt: the second attempt waits Backoff,
// the third 2×, the fourth 4×.
func TestBackoffDoubling(t *testing.T) {
	p := RetryPolicy{Attempts: 4, Backoff: 50 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		2: 50 * time.Millisecond,
		3: 100 * time.Millisecond,
		4: 200 * time.Millisecond,
	} {
		if got := p.BackoffFor(attempt); got != want {
			t.Errorf("BackoffFor(%d) = %v, want %v", attempt, got, want)
		}
	}
}

// Cancelling the context while PostXML sleeps between attempts must
// return promptly rather than finishing the backoff.
func TestPostXMLCancelledDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := PostXML(ctx, ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 3, Backoff: 10 * time.Second})
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if !strings.Contains(err.Error(), "cancelled during backoff") {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff was not interrupted", elapsed)
	}
}
