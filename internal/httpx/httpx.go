// Package httpx is the HTTP transport substrate: clients with sane
// timeouts, retry of transient failures, and latency instrumentation.
//
// Retrying maps directly onto the paper's failure taxonomy (§2.1):
// a *transient* failure "can be tolerated by using generic recovery
// techniques such as rollback and retry even if the same code is used",
// whereas non-transient failures need the diverse redundancy the upgrade
// middleware provides. This package supplies the first, cheap line of
// defence; internal/core supplies the second.
package httpx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"
)

// ErrBadPolicy reports an invalid retry policy.
var ErrBadPolicy = errors.New("httpx: bad retry policy")

// NewClient returns an HTTP client with an overall per-call timeout.
// An absent response within the deadline is the evident failure the
// middleware's availability monitoring counts (§4.3).
func NewClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// RetryPolicy controls PostXML's tolerance of transient failures.
type RetryPolicy struct {
	// Attempts is the total number of tries (≥ 1).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles for
	// each further attempt.
	Backoff time.Duration
	// RetryStatus reports whether an HTTP status code is transient.
	// Nil means "retry on 5xx".
	RetryStatus func(code int) bool
}

// NoRetry is the policy with a single attempt.
var NoRetry = RetryPolicy{Attempts: 1}

// DefaultRetry makes three attempts with a 50 ms initial backoff.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond}

// Validate checks the policy.
func (p RetryPolicy) Validate() error {
	if p.Attempts < 1 {
		return fmt.Errorf("%w: attempts %d", ErrBadPolicy, p.Attempts)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("%w: negative backoff", ErrBadPolicy)
	}
	return nil
}

func (p RetryPolicy) retryStatus(code int) bool {
	if p.RetryStatus != nil {
		return p.RetryStatus(code)
	}
	return code >= 500 && code != http.StatusInternalServerError
}

// Result is the outcome of a PostXML exchange.
type Result struct {
	// Status is the final HTTP status code.
	Status int
	// Body is the response body.
	Body []byte
	// Header is the final response's header set.
	Header http.Header
	// Attempts is how many tries were made.
	Attempts int
	// Latency is the total wall time including retries.
	Latency time.Duration
}

// PostXML posts an XML payload with retry of transient failures:
// transport errors and (by default) 5xx statuses other than 500 are
// retried with exponential backoff. HTTP 500 is NOT transient here — the
// SOAP 1.1 binding uses it for faults, which are deterministic evident
// failures that retrying the same release cannot fix.
func PostXML(ctx context.Context, client *http.Client, url, contentType string, body []byte, policy RetryPolicy) (*Result, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		if attempt > 1 {
			backoff := time.Duration(float64(policy.Backoff) * math.Pow(2, float64(attempt-2)))
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("httpx: cancelled during backoff: %w", ctx.Err())
			case <-time.After(backoff):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("httpx: building request: %w", err)
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break // deadline spent; no point retrying
			}
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if policy.retryStatus(resp.StatusCode) && attempt < policy.Attempts {
			lastErr = fmt.Errorf("httpx: transient HTTP %d from %s", resp.StatusCode, url)
			continue
		}
		return &Result{
			Status:   resp.StatusCode,
			Body:     data,
			Header:   resp.Header,
			Attempts: attempt,
			Latency:  time.Since(start),
		}, nil
	}
	return nil, fmt.Errorf("httpx: POST %s failed after retries: %w", url, lastErr)
}

// Instrumented wraps a RoundTripper and reports the latency and error of
// every exchange to the observe callback — the hook the monitoring
// subsystem (§4.3) uses to measure release execution times.
type Instrumented struct {
	// Base is the wrapped transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Observe receives every exchange outcome. It must be safe for
	// concurrent use.
	Observe func(req *http.Request, status int, latency time.Duration, err error)
}

var _ http.RoundTripper = (*Instrumented)(nil)

// RoundTrip implements http.RoundTripper.
func (i *Instrumented) RoundTrip(req *http.Request) (*http.Response, error) {
	base := i.Base
	if base == nil {
		base = http.DefaultTransport
	}
	start := time.Now()
	resp, err := base.RoundTrip(req)
	if i.Observe != nil {
		status := 0
		if resp != nil {
			status = resp.StatusCode
		}
		i.Observe(req, status, time.Since(start), err)
	}
	return resp, err
}
