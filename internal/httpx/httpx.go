// Package httpx is the HTTP transport substrate: clients with sane
// timeouts and tuned connection pools, retry of transient failures,
// bounded response reads, and latency instrumentation.
//
// Retrying maps directly onto the paper's failure taxonomy (§2.1):
// a *transient* failure "can be tolerated by using generic recovery
// techniques such as rollback and retry even if the same code is used",
// whereas non-transient failures need the diverse redundancy the upgrade
// middleware provides. This package supplies the first, cheap line of
// defence; internal/core supplies the second.
package httpx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"wsupgrade/internal/pool"
)

// ErrBadPolicy reports an invalid retry policy.
var ErrBadPolicy = errors.New("httpx: bad retry policy")

// ErrTooLarge reports a message body that exceeds its size bound. A
// release streaming an oversized response is an evident failure of that
// release, not a reason to exhaust the proxy's memory.
var ErrTooLarge = errors.New("httpx: message exceeds size limit")

// DefaultMaxResponseBytes caps release response bodies when RetryPolicy
// leaves MaxResponseBytes zero. It matches the proxy's consumer-side
// request limit, so neither direction of the mediated exchange is
// unbounded.
const DefaultMaxResponseBytes = 10 << 20

// DefaultMaxIdleConnsPerHost sizes the keep-alive pool NewPooledClient
// keeps per release endpoint. http.DefaultTransport keeps only 2, which
// starves a fan-out that hits the same release host from many concurrent
// dispatches: every burst re-dials most of its connections.
const DefaultMaxIdleConnsPerHost = 32

// NewClient returns an HTTP client with an overall per-call timeout.
// An absent response within the deadline is the evident failure the
// middleware's availability monitoring counts (§4.3).
//
// It shares http.DefaultTransport; for the middleware's fan-out traffic
// use NewPooledClient, whose per-host idle pool matches parallel
// dispatch.
func NewClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// NewPooledClient returns an HTTP client with a dedicated transport tuned
// for the middleware's traffic shape: every request goes to one of a
// small, known set of release hosts, and parallel dispatch multiplies the
// concurrency per host by the number of in-flight consumer requests.
// hosts is the expected number of distinct release endpoints (used to
// size the total idle pool); values below 1 are treated as 1.
func NewPooledClient(timeout time.Duration, hosts int) *http.Client {
	if hosts < 1 {
		hosts = 1
	}
	transport := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          DefaultMaxIdleConnsPerHost * hosts,
		MaxIdleConnsPerHost:   DefaultMaxIdleConnsPerHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
	}
	return &http.Client{Timeout: timeout, Transport: transport}
}

// maxPooledReadBuf keeps an occasional giant body from pinning its
// buffer in the pool forever.
const maxPooledReadBuf = 1 << 16

// bodyPool backs the bounded-read buffers. Bodies on the middleware's
// hot path are small SOAP envelopes; recycling the growth of a fresh
// buffer per exchange was measurable allocator traffic.
var bodyPool = pool.BufPool{MaxCap: maxPooledReadBuf}

// ReadBoundedBuf reads r to EOF into a pooled buffer and transfers
// ownership of that buffer to the caller: exactly one Release (plus one
// per extra Retain) must eventually pair with the returned buffer, and
// nothing may alias its contents past that Release. Reading more than
// max bytes returns ErrTooLarge. The read loop is hand-rolled (no
// io.LimitReader / bytes.Buffer plumbing): this runs at least twice per
// proxied request, and the wrapper structs alone were measurable.
//
//wsu:owns return
func ReadBoundedBuf(r io.Reader, max int64) (*pool.Buf, error) {
	b := bodyPool.Get()
	buf := b.B
	for {
		if len(buf) == cap(buf) {
			grown := 2 * cap(buf)
			if grown < 4096 {
				grown = 4096
			}
			next := make([]byte, len(buf), grown)
			copy(next, buf)
			buf = next
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if int64(len(buf)) > max {
			b.B = buf
			b.Release()
			return nil, fmt.Errorf("%w: more than %d bytes", ErrTooLarge, max)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			b.B = buf
			b.Release()
			return nil, err
		}
	}
	b.B = buf
	return b, nil
}

// ReadBounded reads r to EOF through a pooled scratch buffer and returns
// a right-sized, caller-owned copy. Reading more than max bytes returns
// ErrTooLarge. Callers on the request hot path use ReadBoundedBuf
// instead and skip the copy by owning the pooled buffer outright.
func ReadBounded(r io.Reader, max int64) ([]byte, error) {
	//wsu:allow poolcheck -- a non-nil error means no buffer was returned
	b, err := ReadBoundedBuf(r, max)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b.B))
	copy(out, b.B)
	b.Release()
	return out, nil
}

// RetryPolicy controls PostXML's tolerance of transient failures and the
// size bound on response bodies.
type RetryPolicy struct {
	// Attempts is the total number of tries (≥ 1).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles for
	// each further attempt.
	Backoff time.Duration
	// RetryStatus reports whether an HTTP status code is transient.
	// Nil means "retry on 5xx".
	RetryStatus func(code int) bool
	// MaxResponseBytes caps the response body; larger bodies fail the
	// exchange with ErrTooLarge (and are not retried — an oversized
	// response is not transient). Zero means DefaultMaxResponseBytes.
	MaxResponseBytes int64
}

// NoRetry is the policy with a single attempt.
var NoRetry = RetryPolicy{Attempts: 1}

// DefaultRetry makes three attempts with a 50 ms initial backoff.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond}

// Validate checks the policy.
func (p RetryPolicy) Validate() error {
	if p.Attempts < 1 {
		return fmt.Errorf("%w: attempts %d", ErrBadPolicy, p.Attempts)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("%w: negative backoff", ErrBadPolicy)
	}
	if p.MaxResponseBytes < 0 {
		return fmt.Errorf("%w: negative response size limit", ErrBadPolicy)
	}
	return nil
}

// ShouldRetryStatus reports whether the policy treats an HTTP status as
// transient. It is exported so alternate transports (internal/wire)
// share PostXML's retry semantics by construction rather than by copy.
func (p RetryPolicy) ShouldRetryStatus(code int) bool {
	if p.RetryStatus != nil {
		return p.RetryStatus(code)
	}
	return code >= 500 && code != http.StatusInternalServerError
}

// BackoffFor returns the delay before the given attempt (≥ 2): Backoff
// for the second attempt, doubling for each one after. Exported for
// alternate transports; see ShouldRetryStatus.
func (p RetryPolicy) BackoffFor(attempt int) time.Duration {
	return time.Duration(float64(p.Backoff) * math.Pow(2, float64(attempt-2)))
}

// EffectiveMaxResponseBytes resolves the response cap, applying the
// default when MaxResponseBytes is zero. Exported for alternate
// transports; see ShouldRetryStatus.
func (p RetryPolicy) EffectiveMaxResponseBytes() int64 {
	if p.MaxResponseBytes == 0 {
		return DefaultMaxResponseBytes
	}
	return p.MaxResponseBytes
}

// Result is the outcome of a PostXML exchange. It is returned by
// value: the exchange runs on the dispatch hot path, and the struct is
// small enough that a heap allocation per call was measurable.
type Result struct {
	// Status is the final HTTP status code.
	Status int
	// Body is the response body.
	Body []byte
	// Header is the final response's header set.
	Header http.Header
	// Attempts is how many tries were made.
	Attempts int
	// Latency is the total wall time including retries.
	Latency time.Duration
	// BodyBuf, when non-nil, is the pooled buffer backing Body, and its
	// ownership transfers to the caller: one Release pairs with the
	// reference carried here, and nothing may alias Body past it. A nil
	// BodyBuf means Body is unpooled and needs no release.
	BodyBuf *pool.Buf
}

// ---------------------------------------------------------------------------
// Pooled request state for PostXML

// urlCacheMax bounds the parsed-URL cache. The middleware posts to a
// small, known set of release endpoints; an unbounded caller-controlled
// URL stream must not grow the cache forever, so past the cap URLs are
// parsed fresh per call.
const urlCacheMax = 1024

var (
	urlCache sync.Map // raw URL string → *url.URL (immutable once stored)
	urlCount atomic.Int64
)

// cachedURL parses raw once and serves the immutable result from then
// on. Callers must copy the value before mutating (pooledReq does).
func cachedURL(raw string) (*url.URL, error) {
	if v, ok := urlCache.Load(raw); ok {
		return v.(*url.URL), nil
	}
	u, err := url.Parse(raw)
	if err != nil {
		return nil, err
	}
	// Concurrent first parses of the same URL race to LoadOrStore; the
	// losers give their capacity reservation back so racing goroutines
	// cannot burn cap slots on a single key.
	if urlCount.Add(1) > urlCacheMax {
		urlCount.Add(-1)
		return u, nil
	}
	if v, loaded := urlCache.LoadOrStore(raw, u); loaded {
		urlCount.Add(-1)
		return v.(*url.URL), nil
	}
	return u, nil
}

// reqBody is a resettable request body whose Close — which the
// transport is contractually required to call once it is finished with
// the reader, even on errors — records that the transport is done. The
// recycle decision keys off that flag: a response can arrive (and
// client.Do return) while the write side is still streaming the
// request, and recycling the reader under an in-flight Read would be a
// data race.
type reqBody struct {
	bytes.Reader
	done atomic.Bool
}

func (b *reqBody) Close() error {
	b.done.Store(true)
	return nil
}

// pooledReq is the per-exchange request state PostXML recycles instead
// of rebuilding via http.NewRequestWithContext on every attempt (the
// URL parse, header map and body-reader wrappers dominated the fallback
// transport's per-call allocations). The http.Request itself is still
// materialized per attempt — WithContext demands a fresh shallow copy —
// but everything it points at is reused.
type pooledReq struct {
	url     url.URL
	body    reqBody
	raw     []byte // the attempt's body bytes, for GetBody copies
	header  http.Header
	ctVal   [1]string // backing array of the Content-Type header value
	getBody func() (io.ReadCloser, error)
}

var reqPool = sync.Pool{New: func() interface{} {
	pr := &pooledReq{header: make(http.Header, 1)}
	pr.header["Content-Type"] = pr.ctVal[:1]
	pr.getBody = func() (io.ReadCloser, error) {
		// A genuinely fresh reader per call: the transport asks for one
		// when it replays the request on another connection, and the
		// abandoned connection's write loop may still be draining the
		// primary reader.
		return io.NopCloser(bytes.NewReader(pr.raw)), nil
	}
	return pr
}}

// request arms the pooled state for one attempt and materializes the
// per-attempt http.Request.
func (pr *pooledReq) request(ctx context.Context, u *url.URL, contentType string, body []byte) *http.Request {
	pr.url = *u
	pr.raw = body
	pr.body.Reset(body)
	pr.body.done.Store(false)
	pr.ctVal[0] = contentType
	req := &http.Request{
		Method:        http.MethodPost,
		URL:           &pr.url,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        pr.header,
		Body:          &pr.body,
		GetBody:       pr.getBody,
		ContentLength: int64(len(body)),
	}
	return req.WithContext(ctx)
}

// recycle returns the pooled state for reuse — but only once the
// transport has closed the body, proving no write loop can still be
// reading it. Otherwise the state is abandoned to the GC (rare: an
// early response that outran the request write).
//
//wsu:owns pr
//wsu:allow poolcheck -- state whose body the transport may still hold is abandoned to the GC
func (pr *pooledReq) recycle() {
	if pr.body.done.Load() {
		pr.raw = nil
		reqPool.Put(pr)
	}
}

// PostXML posts an XML payload with retry of transient failures:
// transport errors and (by default) 5xx statuses other than 500 are
// retried with exponential backoff. HTTP 500 is NOT transient here — the
// SOAP 1.1 binding uses it for faults, which are deterministic evident
// failures that retrying the same release cannot fix.
//
// The response body is read through a pooled buffer and bounded by the
// policy's MaxResponseBytes; an oversized body fails with ErrTooLarge
// without further attempts.
func PostXML(ctx context.Context, client *http.Client, url, contentType string, body []byte, policy RetryPolicy) (Result, error) {
	if err := policy.Validate(); err != nil {
		return Result{}, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	u, err := cachedURL(url)
	if err != nil {
		return Result{}, fmt.Errorf("httpx: building request: %w", err)
	}
	maxBytes := policy.EffectiveMaxResponseBytes()
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return Result{}, fmt.Errorf("httpx: cancelled during backoff: %w", ctx.Err())
			case <-time.After(policy.BackoffFor(attempt)):
			}
		}
		// The pooled state is recycled (see pooledReq.recycle) only when
		// the transport has provably finished with the body; on error
		// paths it is abandoned to the GC outright.
		//wsu:allow poolcheck -- error paths abandon the pooled request to the GC (see above)
		pr := reqPool.Get().(*pooledReq)
		resp, err := client.Do(pr.request(ctx, u, contentType, body))
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break // deadline spent; no point retrying
			}
			continue
		}
		//wsu:allow poolcheck -- ownership transfers to the caller via Result.BodyBuf
		data, err := ReadBoundedBuf(resp.Body, maxBytes)
		resp.Body.Close()
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				return Result{}, fmt.Errorf("httpx: POST %s: %w", url, err)
			}
			lastErr = err
			continue
		}
		if policy.ShouldRetryStatus(resp.StatusCode) && attempt < policy.Attempts {
			lastErr = fmt.Errorf("httpx: transient HTTP %d from %s", resp.StatusCode, url)
			data.Release()
			pr.recycle()
			continue
		}
		pr.recycle()
		return Result{
			Status:   resp.StatusCode,
			Body:     data.B,
			Header:   resp.Header,
			Attempts: attempt,
			Latency:  time.Since(start),
			BodyBuf:  data,
		}, nil
	}
	return Result{}, fmt.Errorf("httpx: POST %s failed after retries: %w", url, lastErr)
}

// Instrumented wraps a RoundTripper and reports the latency and error of
// every exchange to the observe callback — the hook the monitoring
// subsystem (§4.3) uses to measure release execution times.
type Instrumented struct {
	// Base is the wrapped transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Observe receives every exchange outcome. It must be safe for
	// concurrent use.
	Observe func(req *http.Request, status int, latency time.Duration, err error)
}

var _ http.RoundTripper = (*Instrumented)(nil)

// RoundTrip implements http.RoundTripper.
func (i *Instrumented) RoundTrip(req *http.Request) (*http.Response, error) {
	base := i.Base
	if base == nil {
		base = http.DefaultTransport
	}
	start := time.Now()
	resp, err := base.RoundTrip(req)
	if i.Observe != nil {
		status := 0
		if resp != nil {
			status = resp.StatusCode
		}
		i.Observe(req, status, time.Since(start), err)
	}
	return resp, err
}
