// Package httpx is the HTTP transport substrate: clients with sane
// timeouts and tuned connection pools, retry of transient failures,
// bounded response reads, and latency instrumentation.
//
// Retrying maps directly onto the paper's failure taxonomy (§2.1):
// a *transient* failure "can be tolerated by using generic recovery
// techniques such as rollback and retry even if the same code is used",
// whereas non-transient failures need the diverse redundancy the upgrade
// middleware provides. This package supplies the first, cheap line of
// defence; internal/core supplies the second.
package httpx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// ErrBadPolicy reports an invalid retry policy.
var ErrBadPolicy = errors.New("httpx: bad retry policy")

// ErrTooLarge reports a message body that exceeds its size bound. A
// release streaming an oversized response is an evident failure of that
// release, not a reason to exhaust the proxy's memory.
var ErrTooLarge = errors.New("httpx: message exceeds size limit")

// DefaultMaxResponseBytes caps release response bodies when RetryPolicy
// leaves MaxResponseBytes zero. It matches the proxy's consumer-side
// request limit, so neither direction of the mediated exchange is
// unbounded.
const DefaultMaxResponseBytes = 10 << 20

// DefaultMaxIdleConnsPerHost sizes the keep-alive pool NewPooledClient
// keeps per release endpoint. http.DefaultTransport keeps only 2, which
// starves a fan-out that hits the same release host from many concurrent
// dispatches: every burst re-dials most of its connections.
const DefaultMaxIdleConnsPerHost = 32

// NewClient returns an HTTP client with an overall per-call timeout.
// An absent response within the deadline is the evident failure the
// middleware's availability monitoring counts (§4.3).
//
// It shares http.DefaultTransport; for the middleware's fan-out traffic
// use NewPooledClient, whose per-host idle pool matches parallel
// dispatch.
func NewClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// NewPooledClient returns an HTTP client with a dedicated transport tuned
// for the middleware's traffic shape: every request goes to one of a
// small, known set of release hosts, and parallel dispatch multiplies the
// concurrency per host by the number of in-flight consumer requests.
// hosts is the expected number of distinct release endpoints (used to
// size the total idle pool); values below 1 are treated as 1.
func NewPooledClient(timeout time.Duration, hosts int) *http.Client {
	if hosts < 1 {
		hosts = 1
	}
	transport := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          DefaultMaxIdleConnsPerHost * hosts,
		MaxIdleConnsPerHost:   DefaultMaxIdleConnsPerHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
	}
	return &http.Client{Timeout: timeout, Transport: transport}
}

// readPool recycles the scratch buffers of ReadBounded. Bodies on the
// middleware's hot path are small SOAP envelopes; recycling the growth
// of a fresh buffer per exchange was measurable allocator traffic.
var readPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// maxPooledReadBuf keeps an occasional giant body from pinning its
// buffer in the pool forever.
const maxPooledReadBuf = 1 << 16

// ReadBounded reads r to EOF through a pooled scratch buffer and returns
// a right-sized, caller-owned copy. Reading more than max bytes returns
// ErrTooLarge.
func ReadBounded(r io.Reader, max int64) ([]byte, error) {
	b := readPool.Get().(*bytes.Buffer)
	b.Reset()
	defer func() {
		if b.Cap() <= maxPooledReadBuf {
			readPool.Put(b)
		}
	}()
	n, err := b.ReadFrom(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if n > max {
		return nil, fmt.Errorf("%w: more than %d bytes", ErrTooLarge, max)
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out, nil
}

// RetryPolicy controls PostXML's tolerance of transient failures and the
// size bound on response bodies.
type RetryPolicy struct {
	// Attempts is the total number of tries (≥ 1).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles for
	// each further attempt.
	Backoff time.Duration
	// RetryStatus reports whether an HTTP status code is transient.
	// Nil means "retry on 5xx".
	RetryStatus func(code int) bool
	// MaxResponseBytes caps the response body; larger bodies fail the
	// exchange with ErrTooLarge (and are not retried — an oversized
	// response is not transient). Zero means DefaultMaxResponseBytes.
	MaxResponseBytes int64
}

// NoRetry is the policy with a single attempt.
var NoRetry = RetryPolicy{Attempts: 1}

// DefaultRetry makes three attempts with a 50 ms initial backoff.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond}

// Validate checks the policy.
func (p RetryPolicy) Validate() error {
	if p.Attempts < 1 {
		return fmt.Errorf("%w: attempts %d", ErrBadPolicy, p.Attempts)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("%w: negative backoff", ErrBadPolicy)
	}
	if p.MaxResponseBytes < 0 {
		return fmt.Errorf("%w: negative response size limit", ErrBadPolicy)
	}
	return nil
}

func (p RetryPolicy) retryStatus(code int) bool {
	if p.RetryStatus != nil {
		return p.RetryStatus(code)
	}
	return code >= 500 && code != http.StatusInternalServerError
}

// backoffFor returns the delay before the given attempt (≥ 2): Backoff
// for the second attempt, doubling for each one after.
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	return time.Duration(float64(p.Backoff) * math.Pow(2, float64(attempt-2)))
}

// maxResponseBytes resolves the effective response cap.
func (p RetryPolicy) maxResponseBytes() int64 {
	if p.MaxResponseBytes == 0 {
		return DefaultMaxResponseBytes
	}
	return p.MaxResponseBytes
}

// Result is the outcome of a PostXML exchange.
type Result struct {
	// Status is the final HTTP status code.
	Status int
	// Body is the response body.
	Body []byte
	// Header is the final response's header set.
	Header http.Header
	// Attempts is how many tries were made.
	Attempts int
	// Latency is the total wall time including retries.
	Latency time.Duration
}

// PostXML posts an XML payload with retry of transient failures:
// transport errors and (by default) 5xx statuses other than 500 are
// retried with exponential backoff. HTTP 500 is NOT transient here — the
// SOAP 1.1 binding uses it for faults, which are deterministic evident
// failures that retrying the same release cannot fix.
//
// The response body is read through a pooled buffer and bounded by the
// policy's MaxResponseBytes; an oversized body fails with ErrTooLarge
// without further attempts.
func PostXML(ctx context.Context, client *http.Client, url, contentType string, body []byte, policy RetryPolicy) (*Result, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	maxBytes := policy.maxResponseBytes()
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("httpx: cancelled during backoff: %w", ctx.Err())
			case <-time.After(policy.backoffFor(attempt)):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("httpx: building request: %w", err)
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break // deadline spent; no point retrying
			}
			continue
		}
		data, err := ReadBounded(resp.Body, maxBytes)
		resp.Body.Close()
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				return nil, fmt.Errorf("httpx: POST %s: %w", url, err)
			}
			lastErr = err
			continue
		}
		if policy.retryStatus(resp.StatusCode) && attempt < policy.Attempts {
			lastErr = fmt.Errorf("httpx: transient HTTP %d from %s", resp.StatusCode, url)
			continue
		}
		return &Result{
			Status:   resp.StatusCode,
			Body:     data,
			Header:   resp.Header,
			Attempts: attempt,
			Latency:  time.Since(start),
		}, nil
	}
	return nil, fmt.Errorf("httpx: POST %s failed after retries: %w", url, lastErr)
}

// Instrumented wraps a RoundTripper and reports the latency and error of
// every exchange to the observe callback — the hook the monitoring
// subsystem (§4.3) uses to measure release execution times.
type Instrumented struct {
	// Base is the wrapped transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Observe receives every exchange outcome. It must be safe for
	// concurrent use.
	Observe func(req *http.Request, status int, latency time.Duration, err error)
}

var _ http.RoundTripper = (*Instrumented)(nil)

// RoundTrip implements http.RoundTripper.
func (i *Instrumented) RoundTrip(req *http.Request) (*http.Response, error) {
	base := i.Base
	if base == nil {
		base = http.DefaultTransport
	}
	start := time.Now()
	resp, err := base.RoundTrip(req)
	if i.Observe != nil {
		status := 0
		if resp != nil {
			status = resp.StatusCode
		}
		i.Observe(req, status, time.Since(start), err)
	}
	return resp, err
}
