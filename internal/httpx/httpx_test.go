package httpx

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPostXMLHappyPath(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Content-Type"))
		_, _ = w.Write([]byte("<ok/>"))
	}))
	defer ts.Close()
	res, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", []byte("<in/>"), NoRetry)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || string(res.Body) != "<ok/>" || res.Attempts != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got.Load() != "text/xml" {
		t.Fatalf("content type = %v", got.Load())
	}
}

func TestPostXMLRetriesTransientStatus(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("<ok/>"))
	}))
	defer ts.Close()
	res, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 || res.Status != 200 {
		t.Fatalf("result = %+v", res)
	}
}

// HTTP 500 carries SOAP faults: deterministic failures that must NOT be
// retried (retrying the same code cannot fix a non-transient failure).
func TestPostXMLDoesNotRetrySOAPFaultStatus(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "fault", http.StatusInternalServerError)
	}))
	defer ts.Close()
	res, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 500 {
		t.Fatalf("status = %d", res.Status)
	}
	if calls.Load() != 1 {
		t.Fatalf("500 was retried %d times", calls.Load())
	}
}

func TestPostXMLExhaustsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	res, err := PostXML(context.Background(), ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 2, Backoff: time.Millisecond})
	// The final attempt's response is returned even though it is transient.
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || res.Attempts != 2 {
		t.Fatalf("result = %+v", res)
	}
}

func TestPostXMLTransportErrorAfterRetries(t *testing.T) {
	_, err := PostXML(context.Background(), NewClient(200*time.Millisecond),
		"http://127.0.0.1:1", "text/xml", nil, RetryPolicy{Attempts: 2, Backoff: time.Millisecond})
	if err == nil {
		t.Fatal("dead endpoint did not error")
	}
	if !strings.Contains(err.Error(), "failed after retries") {
		t.Fatalf("err = %v", err)
	}
}

func TestPostXMLHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Second)
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := PostXML(ctx, ts.Client(), ts.URL, "text/xml", nil,
		RetryPolicy{Attempts: 5, Backoff: time.Second})
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("context not honoured promptly")
	}
}

func TestPolicyValidation(t *testing.T) {
	if err := (RetryPolicy{Attempts: 0}).Validate(); err == nil {
		t.Fatal("zero attempts accepted")
	}
	if err := (RetryPolicy{Attempts: 1, Backoff: -1}).Validate(); err == nil {
		t.Fatal("negative backoff accepted")
	}
	if _, err := PostXML(context.Background(), nil, "http://x", "t", nil, RetryPolicy{}); err == nil {
		t.Fatal("invalid policy accepted by PostXML")
	}
}

func TestInstrumentedObserves(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("hi"))
	}))
	defer ts.Close()
	var observed atomic.Int32
	var status atomic.Int32
	client := &http.Client{Transport: &Instrumented{
		Observe: func(req *http.Request, st int, latency time.Duration, err error) {
			observed.Add(1)
			status.Store(int32(st))
			if latency < 0 {
				t.Error("negative latency")
			}
		},
	}}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if observed.Load() != 1 || status.Load() != 200 {
		t.Fatalf("observed=%d status=%d", observed.Load(), status.Load())
	}
}

func TestInstrumentedObservesErrors(t *testing.T) {
	var sawErr atomic.Bool
	client := &http.Client{
		Timeout: 200 * time.Millisecond,
		Transport: &Instrumented{
			Observe: func(req *http.Request, st int, latency time.Duration, err error) {
				if err != nil && st == 0 {
					sawErr.Store(true)
				}
			},
		},
	}
	_, err := client.Get("http://127.0.0.1:1")
	if err == nil {
		t.Fatal("dead endpoint succeeded")
	}
	if !sawErr.Load() {
		t.Fatal("error exchange not observed")
	}
}
