// Package relmodel defines the stochastic behaviour models of Web Service
// releases used throughout the paper's evaluation:
//
//   - the per-demand response outcome kinds (correct / evident failure /
//     non-evident failure, §2.1 and §5.2.1);
//   - the marginal outcome probabilities of Table 3 and the conditional
//     correlation matrices of Table 4, packaged as the four simulation
//     runs of §5.2.2;
//   - the execution-time model Ex.Time(Release(i)) = T1 + T2(i) of eq. (7),
//     with exponentially distributed components;
//   - the Monte-Carlo demand generators of §5.1.1.1 (Scenarios 1 and 2)
//     that drive the Bayesian inference study, together with the scenario
//     priors.
//
// All sampling is deterministic given an *xrand.Rand.
package relmodel

import (
	"errors"
	"fmt"
	"math"

	"wsupgrade/internal/stats"
	"wsupgrade/internal/xrand"
)

// ErrBadModel reports inconsistent model parameters.
var ErrBadModel = errors.New("relmodel: bad model")

// OutcomeKind classifies a single response of a release (§2.1, §5.2.1).
type OutcomeKind int

const (
	// Correct (CR): the response satisfies the specification.
	Correct OutcomeKind = iota + 1
	// EvidentFailure (ER): a failure detectable without redundancy —
	// an exception, a denial of service, a malformed response.
	EvidentFailure
	// NonEvidentFailure (NER): a wrong but plausible response, detectable
	// only through application-level redundancy such as diversity.
	NonEvidentFailure
)

// Kinds lists the three outcome kinds in canonical (CR, ER, NER) order.
var Kinds = [3]OutcomeKind{Correct, EvidentFailure, NonEvidentFailure}

// String implements fmt.Stringer using the paper's abbreviations.
func (k OutcomeKind) String() string {
	switch k {
	case Correct:
		return "CR"
	case EvidentFailure:
		return "ER"
	case NonEvidentFailure:
		return "NER"
	default:
		return fmt.Sprintf("OutcomeKind(%d)", int(k))
	}
}

// Failed reports whether the outcome is a failure of any kind.
func (k OutcomeKind) Failed() bool { return k == EvidentFailure || k == NonEvidentFailure }

// index maps an OutcomeKind to its 0-based position in Kinds.
func (k OutcomeKind) index() int { return int(k) - 1 }

// Profile is a marginal outcome distribution for one release: the
// probabilities of CR, ER and NER on a demand (one row of Table 3).
type Profile struct {
	CR, ER, NER float64
}

// Validate checks the probabilities form a distribution.
func (p Profile) Validate() error {
	for _, v := range []float64{p.CR, p.ER, p.NER} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("%w: profile %+v", ErrBadModel, p)
		}
	}
	if s := p.CR + p.ER + p.NER; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("%w: profile sums to %v", ErrBadModel, s)
	}
	return nil
}

// Sample draws one outcome from the marginal distribution.
func (p Profile) Sample(rng *xrand.Rand) OutcomeKind {
	return Kinds[rng.Categorical([]float64{p.CR, p.ER, p.NER})]
}

// Prob returns the probability of the given kind.
func (p Profile) Prob(k OutcomeKind) float64 {
	switch k {
	case Correct:
		return p.CR
	case EvidentFailure:
		return p.ER
	case NonEvidentFailure:
		return p.NER
	default:
		return 0
	}
}

// CondMatrix is a conditional outcome distribution
// P(outcome of Release 2 | outcome of Release 1) — one block of Table 4.
// Rows are indexed by Release 1's outcome, columns by Release 2's, both in
// (CR, ER, NER) order.
type CondMatrix [3][3]float64

// Validate checks each row forms a distribution.
func (m CondMatrix) Validate() error {
	for i, row := range m {
		sum := 0.0
		for _, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return fmt.Errorf("%w: conditional row %d = %v", ErrBadModel, i, row)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("%w: conditional row %d sums to %v", ErrBadModel, i, sum)
		}
	}
	return nil
}

// Sample draws Release 2's outcome given Release 1's.
func (m CondMatrix) Sample(rel1 OutcomeKind, rng *xrand.Rand) OutcomeKind {
	row := m[rel1.index()]
	return Kinds[rng.Categorical(row[:])]
}

// Marginal2 returns the marginal outcome distribution of Release 2 implied
// by Release 1's marginal and this conditional matrix.
func (m CondMatrix) Marginal2(rel1 Profile) Profile {
	var out [3]float64
	for i, k := range Kinds {
		p1 := rel1.Prob(k)
		for j := range Kinds {
			out[j] += p1 * m[i][j]
		}
	}
	return Profile{CR: out[0], ER: out[1], NER: out[2]}
}

// Diagonal returns a conditional matrix with probability d on the diagonal
// and the remainder split evenly off-diagonal — the structure of Table 4.
func Diagonal(d float64) CondMatrix {
	off := (1 - d) / 2
	var m CondMatrix
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				m[i][j] = d
			} else {
				m[i][j] = off
			}
		}
	}
	return m
}

// Run is one simulation configuration of §5.2.2: the marginal profiles of
// the two releases (Table 3) and the correlation structure (Table 4).
type Run struct {
	// ID is the paper's run number, 1-4.
	ID int
	// Rel1 is Release 1's marginal outcome distribution (Table 3).
	Rel1 Profile
	// Rel2Independent is Release 2's marginal used when the releases are
	// sampled independently (Table 6 regime).
	Rel2Independent Profile
	// Cond is P(Rel2 | Rel1) used in the correlated regime (Table 5).
	Cond CondMatrix
}

// Validate checks all components.
func (r Run) Validate() error {
	if err := r.Rel1.Validate(); err != nil {
		return fmt.Errorf("run %d rel1: %w", r.ID, err)
	}
	if err := r.Rel2Independent.Validate(); err != nil {
		return fmt.Errorf("run %d rel2: %w", r.ID, err)
	}
	if err := r.Cond.Validate(); err != nil {
		return fmt.Errorf("run %d cond: %w", r.ID, err)
	}
	return nil
}

// SampleCorrelated draws the outcome pair with Release 2 conditioned on
// Release 1 (Table 5 regime).
func (r Run) SampleCorrelated(rng *xrand.Rand) (rel1, rel2 OutcomeKind) {
	o1 := r.Rel1.Sample(rng)
	return o1, r.Cond.Sample(o1, rng)
}

// SampleIndependent draws the outcomes independently from the two
// marginals (Table 6 regime).
func (r Run) SampleIndependent(rng *xrand.Rand) (rel1, rel2 OutcomeKind) {
	return r.Rel1.Sample(rng), r.Rel2Independent.Sample(rng)
}

// Runs returns the four simulation runs with the exact parameters of
// Tables 3 and 4.
func Runs() []Run {
	return []Run{
		{
			ID:              1,
			Rel1:            Profile{CR: 0.70, ER: 0.15, NER: 0.15},
			Rel2Independent: Profile{CR: 0.70, ER: 0.15, NER: 0.15},
			Cond:            Diagonal(0.90),
		},
		{
			ID:              2,
			Rel1:            Profile{CR: 0.70, ER: 0.15, NER: 0.15},
			Rel2Independent: Profile{CR: 0.60, ER: 0.20, NER: 0.20},
			Cond:            Diagonal(0.80),
		},
		{
			ID:              3,
			Rel1:            Profile{CR: 0.70, ER: 0.15, NER: 0.15},
			Rel2Independent: Profile{CR: 0.50, ER: 0.25, NER: 0.25},
			Cond:            Diagonal(0.70),
		},
		{
			ID:              4,
			Rel1:            Profile{CR: 0.60, ER: 0.20, NER: 0.20},
			Rel2Independent: Profile{CR: 0.40, ER: 0.30, NER: 0.30},
			Cond:            Diagonal(0.40),
		},
	}
}

// Latency is the execution-time model of eq. (7):
// Ex.Time(Release(i)) = T1 + T2(i), where T1 models the computational
// difficulty common to both releases and T2(i) the per-release part.
// All components are exponentially distributed. DT is the adjudication
// overhead added by the middleware (eq. 8).
type Latency struct {
	T1Mean  float64 // mean of the shared component, seconds
	T2Mean1 float64 // mean of Release 1's own component
	T2Mean2 float64 // mean of Release 2's own component
	DT      float64 // middleware adjudication time
}

// PaperLatency returns the §5.2.2 parameters: T1Mean = 0.7 s,
// T2Mean1 = T2Mean2 = 0.7 s, dT = 0.1 s.
func PaperLatency() Latency {
	return Latency{T1Mean: 0.7, T2Mean1: 0.7, T2Mean2: 0.7, DT: 0.1}
}

// Validate checks the means are non-negative.
func (l Latency) Validate() error {
	for _, v := range []float64{l.T1Mean, l.T2Mean1, l.T2Mean2, l.DT} {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: latency %+v", ErrBadModel, l)
		}
	}
	return nil
}

// Sample draws the two releases' execution times for one demand. The T1
// component is shared — the same draw enters both sums, as eq. (7)
// prescribes.
func (l Latency) Sample(rng *xrand.Rand) (t1, t2 float64) {
	shared := rng.Exp(l.T1Mean)
	return shared + rng.Exp(l.T2Mean1), shared + rng.Exp(l.T2Mean2)
}

// ---------------------------------------------------------------------------
// Bayesian-study scenarios (§5.1.1.1)

// Truth holds the ground-truth failure process from which observations are
// Monte-Carlo simulated: the old release fails with probability PA; the
// new release fails with probability PBGivenAFailed when the old one
// failed on the same demand and PBGivenAOK otherwise.
type Truth struct {
	PA             float64
	PBGivenAFailed float64
	PBGivenAOK     float64
}

// Validate checks the probabilities.
func (t Truth) Validate() error {
	for _, v := range []float64{t.PA, t.PBGivenAFailed, t.PBGivenAOK} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("%w: truth %+v", ErrBadModel, t)
		}
	}
	return nil
}

// MarginalPB returns the implied marginal pfd of the new release.
func (t Truth) MarginalPB() float64 {
	return t.PA*t.PBGivenAFailed + (1-t.PA)*t.PBGivenAOK
}

// Sample draws one demand's true failure indicators.
func (t Truth) Sample(rng *xrand.Rand) (aFailed, bFailed bool) {
	aFailed = rng.Bool(t.PA)
	if aFailed {
		bFailed = rng.Bool(t.PBGivenAFailed)
	} else {
		bFailed = rng.Bool(t.PBGivenAOK)
	}
	return aFailed, bFailed
}

// Scenario bundles a named inference study: the priors the assessor holds
// before the managed upgrade and the ground truth that generates the
// observations.
type Scenario struct {
	// Name is "scenario-1" or "scenario-2" for the paper's studies.
	Name string
	// PriorA is the assessor's prior for the old release's pfd.
	PriorA stats.ScaledBeta
	// PriorB is the assessor's prior for the new release's pfd.
	PriorB stats.ScaledBeta
	// Truth generates the observations.
	Truth Truth
	// Demands is the study length (50,000 in the paper).
	Demands int
	// Confidence is the level used by all three switch criteria (99%).
	Confidence float64
	// C2Target is Criterion 2's explicit pfd target (10⁻³).
	C2Target float64
}

// Validate checks all components.
func (s Scenario) Validate() error {
	if err := s.PriorA.Validate(); err != nil {
		return fmt.Errorf("%s prior A: %w", s.Name, err)
	}
	if err := s.PriorB.Validate(); err != nil {
		return fmt.Errorf("%s prior B: %w", s.Name, err)
	}
	if err := s.Truth.Validate(); err != nil {
		return fmt.Errorf("%s truth: %w", s.Name, err)
	}
	if s.Demands <= 0 {
		return fmt.Errorf("%w: %s demands %d", ErrBadModel, s.Name, s.Demands)
	}
	if s.Confidence <= 0 || s.Confidence >= 1 {
		return fmt.Errorf("%w: %s confidence %v", ErrBadModel, s.Name, s.Confidence)
	}
	if s.C2Target <= 0 {
		return fmt.Errorf("%w: %s c2 target %v", ErrBadModel, s.Name, s.C2Target)
	}
	return nil
}

// Scenario1 returns the paper's first study: the old release has a long,
// accurately measured history (pfd ≈ 10⁻³, tight prior Beta(20,20) on
// [0, 0.002]); the new release is believed slightly better (Beta(2,3) on
// the same range) but with high uncertainty. The ground truth makes the
// new release only marginally better (P_B = 0.8·10⁻³) with strongly
// correlated failures (P(B fails | A fails) = 0.3).
func Scenario1() Scenario {
	return Scenario{
		Name:   "scenario-1",
		PriorA: stats.ScaledBeta{Alpha: 20, Beta: 20, Upper: 0.002},
		PriorB: stats.ScaledBeta{Alpha: 2, Beta: 3, Upper: 0.002},
		Truth: Truth{
			PA:             1e-3,
			PBGivenAFailed: 0.3,
			PBGivenAOK:     0.5e-3,
		},
		Demands:    50000,
		Confidence: 0.99,
		C2Target:   1e-3,
	}
}

// Scenario2 returns the paper's second study: the old release has seen
// little use (diffuse prior Beta(1,10) on [0, 0.01]) and is actually much
// worse than believed (true P_A = 5·10⁻³); the new release is
// conservatively given the same diffuse treatment (Beta(2,3); we place it
// on the old release's [0, 0.01] range — the paper reuses "parameters as
// in the first scenario" without restating the range, and only this
// reading makes Criterion 1's target reachable rather than trivially
// satisfied at zero demands). The truth makes the new release an order of
// magnitude better (P_B = 0.5·10⁻³) and never failing alone.
func Scenario2() Scenario {
	return Scenario{
		Name:   "scenario-2",
		PriorA: stats.ScaledBeta{Alpha: 1, Beta: 10, Upper: 0.01},
		PriorB: stats.ScaledBeta{Alpha: 2, Beta: 3, Upper: 0.01},
		Truth: Truth{
			PA:             5e-3,
			PBGivenAFailed: 0.1,
			PBGivenAOK:     0,
		},
		Demands:    50000,
		Confidence: 0.99,
		C2Target:   1e-3,
	}
}
