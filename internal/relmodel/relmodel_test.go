package relmodel

import (
	"math"
	"testing"

	"wsupgrade/internal/xrand"
)

func TestOutcomeKindString(t *testing.T) {
	for k, want := range map[OutcomeKind]string{
		Correct:           "CR",
		EvidentFailure:    "ER",
		NonEvidentFailure: "NER",
		OutcomeKind(0):    "OutcomeKind(0)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestFailedClassification(t *testing.T) {
	if Correct.Failed() {
		t.Fatal("CR classified as failure")
	}
	if !EvidentFailure.Failed() || !NonEvidentFailure.Failed() {
		t.Fatal("failures not classified as failures")
	}
}

func TestProfileValidate(t *testing.T) {
	good := Profile{CR: 0.7, ER: 0.15, NER: 0.15}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{CR: 0.5, ER: 0.2, NER: 0.2},        // sums to 0.9
		{CR: -0.1, ER: 0.55, NER: 0.55},     // negative
		{CR: math.NaN(), ER: 0.5, NER: 0.5}, // NaN
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
}

func TestProfileSampleFrequencies(t *testing.T) {
	p := Profile{CR: 0.7, ER: 0.15, NER: 0.15}
	rng := xrand.New(1)
	counts := map[OutcomeKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[p.Sample(rng)]++
	}
	for _, k := range Kinds {
		got := float64(counts[k]) / n
		want := p.Prob(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("frequency of %v = %v, want ~%v", k, got, want)
		}
	}
}

func TestProfileProbUnknownKind(t *testing.T) {
	p := Profile{CR: 1}
	if p.Prob(OutcomeKind(42)) != 0 {
		t.Fatal("unknown kind has nonzero probability")
	}
}

func TestDiagonalMatrix(t *testing.T) {
	m := Diagonal(0.9)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.05
			if i == j {
				want = 0.9
			}
			if math.Abs(m[i][j]-want) > 1e-12 {
				t.Fatalf("Diagonal(0.9)[%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestCondMatrixValidate(t *testing.T) {
	m := Diagonal(0.8)
	m[0][0] = 0.5 // row 0 now sums to 0.7
	if err := m.Validate(); err == nil {
		t.Fatal("broken row accepted")
	}
}

func TestCondSampleConditionalFrequencies(t *testing.T) {
	m := Diagonal(0.9)
	rng := xrand.New(2)
	counts := map[OutcomeKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Sample(EvidentFailure, rng)]++
	}
	if got := float64(counts[EvidentFailure]) / n; math.Abs(got-0.9) > 0.01 {
		t.Fatalf("P(ER|ER) = %v, want ~0.9", got)
	}
	if got := float64(counts[Correct]) / n; math.Abs(got-0.05) > 0.01 {
		t.Fatalf("P(CR|ER) = %v, want ~0.05", got)
	}
}

func TestMarginal2(t *testing.T) {
	rel1 := Profile{CR: 0.7, ER: 0.15, NER: 0.15}
	m := Diagonal(0.9)
	got := m.Marginal2(rel1)
	if err := got.Validate(); err != nil {
		t.Fatalf("implied marginal invalid: %v", err)
	}
	// P2(CR) = 0.7*0.9 + 0.15*0.05 + 0.15*0.05 = 0.645
	if math.Abs(got.CR-0.645) > 1e-12 {
		t.Fatalf("implied P2(CR) = %v, want 0.645", got.CR)
	}
}

func TestRunsMatchPaperTables(t *testing.T) {
	runs := Runs()
	if len(runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(runs))
	}
	for i, r := range runs {
		if r.ID != i+1 {
			t.Errorf("run %d has ID %d", i, r.ID)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("run %d invalid: %v", r.ID, err)
		}
	}
	// Table 3 row 3: Rel2 = (0.50, 0.25, 0.25); Table 4 run 3 diag 0.70.
	r3 := runs[2]
	if r3.Rel2Independent.CR != 0.50 || r3.Rel2Independent.ER != 0.25 {
		t.Errorf("run 3 rel2 marginal = %+v", r3.Rel2Independent)
	}
	if r3.Cond[0][0] != 0.70 || math.Abs(r3.Cond[0][1]-0.15) > 1e-12 {
		t.Errorf("run 3 conditional = %+v", r3.Cond)
	}
	// Table 3 row 4: Rel1 = (0.60, 0.20, 0.20); diag 0.40.
	r4 := runs[3]
	if r4.Rel1.CR != 0.60 || r4.Cond[1][1] != 0.40 {
		t.Errorf("run 4 = %+v", r4)
	}
}

func TestSampleCorrelatedMatchesImpliedMarginal(t *testing.T) {
	run := Runs()[0]
	rng := xrand.New(3)
	counts := map[OutcomeKind]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		_, o2 := run.SampleCorrelated(rng)
		counts[o2]++
	}
	implied := run.Cond.Marginal2(run.Rel1)
	for _, k := range Kinds {
		got := float64(counts[k]) / n
		if math.Abs(got-implied.Prob(k)) > 0.01 {
			t.Errorf("correlated rel2 frequency of %v = %v, want ~%v", k, got, implied.Prob(k))
		}
	}
}

func TestSampleIndependentUsesOwnMarginal(t *testing.T) {
	run := Runs()[3] // rel2 marginal (0.40, 0.30, 0.30), far from rel1's
	rng := xrand.New(4)
	counts := map[OutcomeKind]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		_, o2 := run.SampleIndependent(rng)
		counts[o2]++
	}
	for _, k := range Kinds {
		got := float64(counts[k]) / n
		if math.Abs(got-run.Rel2Independent.Prob(k)) > 0.01 {
			t.Errorf("independent rel2 frequency of %v = %v, want ~%v",
				k, got, run.Rel2Independent.Prob(k))
		}
	}
}

func TestLatencySharedComponent(t *testing.T) {
	l := PaperLatency()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	const n = 300000
	var sum1, sum2, sumProd float64
	for i := 0; i < n; i++ {
		t1, t2 := l.Sample(rng)
		if t1 < 0 || t2 < 0 {
			t.Fatal("negative execution time")
		}
		sum1 += t1
		sum2 += t2
		sumProd += t1 * t2
	}
	m1, m2 := sum1/n, sum2/n
	// Mean = T1Mean + T2Mean = 1.4 for the paper's parameters.
	if math.Abs(m1-1.4) > 0.02 || math.Abs(m2-1.4) > 0.02 {
		t.Fatalf("means = %v, %v, want ~1.4", m1, m2)
	}
	// The shared T1 component induces positive covariance Var(T1) = 0.49.
	cov := sumProd/n - m1*m2
	if math.Abs(cov-0.49) > 0.03 {
		t.Fatalf("cov = %v, want ~0.49 from the shared T1 draw", cov)
	}
}

func TestLatencyValidate(t *testing.T) {
	bad := Latency{T1Mean: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative mean accepted")
	}
}

func TestTruthMarginalAndSampling(t *testing.T) {
	tr := Scenario1().Truth
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 1e-3*0.3 + (1-1e-3)*0.5e-3
	if got := tr.MarginalPB(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("marginal P_B = %v, want %v", got, want)
	}
	rng := xrand.New(6)
	const n = 2000000
	aFails, bFails, both := 0, 0, 0
	for i := 0; i < n; i++ {
		a, b := tr.Sample(rng)
		if a {
			aFails++
		}
		if b {
			bFails++
		}
		if a && b {
			both++
		}
	}
	if got := float64(aFails) / n; math.Abs(got-1e-3) > 2e-4 {
		t.Fatalf("P_A frequency = %v, want ~1e-3", got)
	}
	if got := float64(bFails) / n; math.Abs(got-want) > 2e-4 {
		t.Fatalf("P_B frequency = %v, want ~%v", got, want)
	}
	// Correlation: P(both) = PA * P(B|A) = 3e-4, far above independence.
	if got := float64(both) / n; math.Abs(got-3e-4) > 1e-4 {
		t.Fatalf("P_AB frequency = %v, want ~3e-4", got)
	}
}

func TestTruthValidate(t *testing.T) {
	if err := (Truth{PA: 1.5}).Validate(); err == nil {
		t.Fatal("PA > 1 accepted")
	}
}

func TestScenariosValidateAndMatchPaper(t *testing.T) {
	s1 := Scenario1()
	if err := s1.Validate(); err != nil {
		t.Fatal(err)
	}
	if s1.PriorA.Alpha != 20 || s1.PriorA.Beta != 20 || s1.PriorA.Upper != 0.002 {
		t.Errorf("scenario 1 prior A = %+v", s1.PriorA)
	}
	if got := s1.PriorB.Mean(); math.Abs(got-0.8e-3) > 1e-12 {
		t.Errorf("scenario 1 prior B mean = %v, want 0.8e-3", got)
	}
	if s1.Demands != 50000 || s1.Confidence != 0.99 || s1.C2Target != 1e-3 {
		t.Errorf("scenario 1 study parameters = %+v", s1)
	}

	s2 := Scenario2()
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	if s2.PriorA.Alpha != 1 || s2.PriorA.Beta != 10 || s2.PriorA.Upper != 0.01 {
		t.Errorf("scenario 2 prior A = %+v", s2.PriorA)
	}
	if got := s2.Truth.MarginalPB(); math.Abs(got-0.5e-3) > 1e-12 {
		t.Errorf("scenario 2 marginal P_B = %v, want 0.5e-3", got)
	}
	// Scenario 2's true P_A is five times its prior mean — the paper's
	// "actually significantly worse than assumed".
	if s2.Truth.PA <= s2.PriorA.Mean() {
		t.Error("scenario 2 truth should be worse than the prior mean")
	}
}

func TestScenarioValidateCatchesBadFields(t *testing.T) {
	s := Scenario1()
	s.Demands = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero demands accepted")
	}
	s = Scenario1()
	s.Confidence = 1
	if err := s.Validate(); err == nil {
		t.Fatal("confidence 1 accepted")
	}
	s = Scenario1()
	s.C2Target = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero C2 target accepted")
	}
}
