package core

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsupgrade/internal/faulty"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/testutil"
)

// TestGracefulDrainUnderLiveLoad: a SIGTERM-style drain (http.Server
// Shutdown, then engine Close — the cmd/upgraded teardown order) while
// consumers are mid-dispatch must let every accepted demand finish,
// account for exactly the completed demands in monitoring, and never
// deadlock. In ModeReliability the engine records each outcome before
// responding, so the monitor's joint count must equal the number of
// responses consumers actually received — no more, no fewer.
func TestGracefulDrainUnderLiveLoad(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, old := startRelease(t, "1.0", service.FaultPlan{MeanLatency: 2 * time.Millisecond})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{MeanLatency: 2 * time.Millisecond})
	e, err := New(Config{
		Releases:     []Endpoint{old, new_},
		InitialPhase: PhaseObservation,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: e.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// Live load: workers hammer the engine until told to stop, counting
	// every response they actually received.
	var completions atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &soap.Client{URL: url, HTTP: &http.Client{Timeout: 5 * time.Second}}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var out service.AddResponse
				if err := client.Call(context.Background(), "add", service.AddRequest{A: i, B: 1}, &out); err != nil {
					return // drain started; connection refused or reset
				}
				completions.Add(1)
			}
		}()
	}

	time.Sleep(250 * time.Millisecond) // demands are in flight now

	// Drain: Shutdown must complete within budget with workers live.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		t.Fatalf("graceful shutdown did not drain: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	got := completions.Load()
	if got == 0 {
		t.Fatal("no demands completed before the drain — load never started")
	}
	if n := int64(e.Monitor().Joint().N); n != got {
		t.Fatalf("monitor recorded %d joint outcomes, consumers received %d responses — drain broke demand accounting", n, got)
	}
}

// TestDrainNeverChargesAbortedDemands: demands the consumer abandons
// mid-dispatch (ConsumerGone) must not be charged to the monitoring
// record — §5.2's measurement validity depends on counting only demands
// with an observable outcome.
func TestDrainNeverChargesAbortedDemands(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Both releases answer correctly but 500ms late — deterministically
	// slower than the consumer's patience.
	slowRelease := func(version string) Endpoint {
		rel, err := service.New(service.DemoContract(version), service.DemoBehaviours(), service.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(faulty.Wrap(rel.Handler(), 1,
			faulty.Fault{Mode: faulty.LatencySpike, Rate: 1, Latency: 500 * time.Millisecond}))
		t.Cleanup(ts.Close)
		return Endpoint{Version: version, URL: ts.URL}
	}
	old, new_ := slowRelease("1.0"), slowRelease("1.1")
	e, ts := startEngine(t, Config{
		Releases:     []Endpoint{old, new_},
		InitialPhase: PhaseObservation,
	})

	// Impatient consumers: every demand aborted mid-dispatch.
	for i := 0; i < 4; i++ {
		client := &soap.Client{URL: ts.URL, HTTP: &http.Client{Timeout: 50 * time.Millisecond}}
		var out service.AddResponse
		if err := client.Call(context.Background(), "add", service.AddRequest{A: i, B: 2}, &out); err == nil {
			t.Fatal("50ms consumer outwaited a 500ms release")
		}
	}
	// Let the abandoned dispatches fully resolve: the releases reply at
	// ~500ms, after which the engine discards the ConsumerGone outcomes.
	time.Sleep(900 * time.Millisecond)
	if n := e.Monitor().Joint().N; n != 0 {
		t.Fatalf("%d aborted demands were charged to the joint record", n)
	}
	// The monitor interns a release on its first recorded outcome, so
	// "unknown release" IS the never-charged state; a successful lookup
	// must still show zero demands.
	if s, err := e.Monitor().Stats(old.Version); err == nil && s.Demands != 0 {
		t.Fatalf("aborted demands charged to release stats: %+v", s)
	}

	// A patient consumer still gets served and recorded: the engine
	// survived the aborts.
	patient := &soap.Client{URL: ts.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	var out service.AddResponse
	if err := patient.Call(context.Background(), "add", service.AddRequest{A: 20, B: 22}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sum != 42 {
		t.Fatalf("sum = %d", out.Sum)
	}
	if n := e.Monitor().Joint().N; n != 1 {
		t.Fatalf("joint count after one completed demand = %d, want 1", n)
	}
}
