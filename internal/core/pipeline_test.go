package core

// Tests for the PR-2 request/transport pipeline: the pooled default
// client, the WSDL scheme derivation, the contract-guarded "<op>Conf"
// routing, and the single-target dispatch fast path.

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
)

// The engine's default release transport is the wire client, owned and
// closed by the engine; a plain management client remains for health
// probes.
func TestDefaultTransportIsWire(t *testing.T) {
	e, err := New(Config{Releases: []Endpoint{
		{Version: "1.0", URL: "http://a.invalid"},
		{Version: "1.1", URL: "http://b.invalid"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if e.wire == nil || !e.ownsWire {
		t.Fatalf("default transport: wire=%v ownsWire=%v, want an owned wire client", e.wire != nil, e.ownsWire)
	}
	if e.client == nil {
		t.Fatal("no management client for health probes")
	}
}

// The UseNetHTTP fallback must carry the tuned pooled transport:
// http.DefaultTransport keeps only 2 idle connections per host, which
// starves parallel fan-out to the same release endpoint.
func TestNetHTTPFallbackUsesPooledTransport(t *testing.T) {
	e, err := New(Config{
		Releases: []Endpoint{
			{Version: "1.0", URL: "http://a.invalid"},
			{Version: "1.1", URL: "http://b.invalid"},
		},
		UseNetHTTP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if e.wire != nil {
		t.Fatal("UseNetHTTP built a wire client")
	}
	transport, ok := e.client.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("fallback client transport is %T, want *http.Transport", e.client.Transport)
	}
	if transport.MaxIdleConnsPerHost < 8 {
		t.Fatalf("MaxIdleConnsPerHost = %d; fan-out would thrash connections", transport.MaxIdleConnsPerHost)
	}
	if transport.MaxIdleConns < 2*transport.MaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConns = %d not sized for %d release hosts", transport.MaxIdleConns, 2)
	}
}

// An explicitly configured client is still honoured verbatim.
func TestConfiguredClientNotReplaced(t *testing.T) {
	custom := httpx.NewClient(time.Second)
	e, err := New(Config{
		Releases:     []Endpoint{{Version: "1.0", URL: "http://a.invalid"}},
		InitialPhase: PhaseNewOnly,
		HTTP:         custom,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if e.client != custom {
		t.Fatal("configured HTTP client was replaced")
	}
}

func fetchWSDL(t *testing.T, e *Engine, mutate func(*http.Request)) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "http://proxy.example/wsdl", nil)
	if mutate != nil {
		mutate(req)
	}
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /wsdl: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

// The published WSDL endpoint must use the scheme the consumer reached
// the engine with, not a hardcoded "http://".
func TestServeWSDLScheme(t *testing.T) {
	contract := service.DemoContract("1.1")
	e, err := New(Config{
		Releases:     []Endpoint{{Version: "1.1", URL: "http://rel.invalid"}},
		InitialPhase: PhaseNewOnly,
		Contract:     &contract,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	if text := fetchWSDL(t, e, nil); !strings.Contains(text, "http://proxy.example/") {
		t.Errorf("plain request: endpoint not http:\n%s", text)
	}
	text := fetchWSDL(t, e, func(r *http.Request) { r.TLS = &tls.ConnectionState{} })
	if !strings.Contains(text, "https://proxy.example/") {
		t.Errorf("TLS request: endpoint not https:\n%s", text)
	}
	text = fetchWSDL(t, e, func(r *http.Request) { r.Header.Set("X-Forwarded-Proto", "https") })
	if !strings.Contains(text, "https://proxy.example/") {
		t.Errorf("X-Forwarded-Proto https: endpoint not https:\n%s", text)
	}
	// A proxy chain reports the client-facing hop first.
	text = fetchWSDL(t, e, func(r *http.Request) { r.Header.Set("X-Forwarded-Proto", "https, http") })
	if !strings.Contains(text, "https://proxy.example/") {
		t.Errorf("forwarded chain: endpoint not https:\n%s", text)
	}
	// Terminated TLS downgraded by an internal hop: the header wins.
	text = fetchWSDL(t, e, func(r *http.Request) {
		r.TLS = &tls.ConnectionState{}
		r.Header.Set("X-Forwarded-Proto", "http")
	})
	if !strings.Contains(text, "http://proxy.example/") {
		t.Errorf("header downgrade: endpoint not http:\n%s", text)
	}
}

// A genuine contract operation whose name ends in "Conf" must be proxied
// as itself, not hijacked as a §6.2 confidence variant.
func TestGenuineConfOperationNotHijacked(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if !strings.Contains(string(body), "<GetConfRequest>") {
			t.Errorf("backend received a rewritten request: %s", body)
		}
		w.Header().Set("Content-Type", soap.ContentType)
		_, _ = w.Write(soap.EnvelopeRaw([]byte(`<GetConfResponse><value>7</value></GetConfResponse>`)))
	}))
	defer backend.Close()

	contract := wsdl.Contract{
		Name:            "ConfService",
		TargetNamespace: "urn:conf",
		Version:         "1.0",
		Operations: []wsdl.Operation{{
			Name:   "GetConf",
			Input:  []wsdl.Param{},
			Output: []wsdl.Param{{Name: "value", Type: "s:int"}},
		}},
	}
	e, ts := startEngine(t, Config{
		Releases:      []Endpoint{{Version: "1.0", URL: backend.URL}},
		InitialPhase:  PhaseNewOnly,
		Contract:      &contract,
		EnableConfOps: true,
	})
	_ = e
	c := &soap.Client{URL: ts.URL}
	respEnv, err := c.CallRaw(context.Background(), "GetConf",
		soap.EnvelopeRaw([]byte(`<GetConfRequest></GetConfRequest>`)))
	if err != nil {
		t.Fatalf("genuine GetConf hijacked as confidence variant: %v", err)
	}
	if !strings.Contains(string(respEnv), "<GetConfResponse>") {
		t.Fatalf("response = %s", respEnv)
	}
}

// With a contract configured, "<op>Conf" still works as a §6.2 variant
// when <op> is a real contract operation.
func TestConfVariantStillServedWithContract(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	contract := service.DemoContract("1.1")
	_, ts := startEngine(t, Config{
		Releases:      []Endpoint{old, new_},
		Oracle:        oracle.Header{},
		Inference:     testInference(),
		Contract:      &contract,
		EnableConfOps: true,
	})
	c := &soap.Client{URL: ts.URL}
	respEnv, err := c.CallRaw(context.Background(), "addConf",
		soap.EnvelopeRaw([]byte(`<addConfRequest><a>2</a><b>3</b></addConfRequest>`)))
	if err != nil {
		t.Fatal(err)
	}
	text := string(respEnv)
	if !strings.Contains(text, "<addConfResponse>") || !strings.Contains(text, "<addConf>") {
		t.Fatalf("conf variant not served: %s", text)
	}
	// An unknown "<op>Conf" with a contract is proxied (and rejected by
	// the releases as an evident failure), not served as a variant of a
	// nonexistent operation.
	_, err = c.CallRaw(context.Background(), "ghostConf",
		soap.EnvelopeRaw([]byte(`<ghostConfRequest/>`)))
	var fault *soap.Fault
	if err == nil || !errors.As(err, &fault) {
		t.Fatalf("unknown ghostConf: err = %v, want fault", err)
	}
}

// The single-target phases deliver through the synchronous fast path;
// monitoring must still see the exchange.
func TestSingleTargetFastPathRecords(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	for _, tc := range []struct {
		phase  Phase
		winner string
	}{
		{PhaseOldOnly, "1.0"},
		{PhaseNewOnly, "1.1"},
	} {
		e, ts := startEngine(t, Config{
			Releases:     []Endpoint{old, new_},
			InitialPhase: tc.phase,
			Oracle:       oracle.Header{},
		})
		out, err := callAdd(t, ts.URL, 20, 22)
		if err != nil {
			t.Fatalf("%v: %v", tc.phase, err)
		}
		if out.Sum != 42 {
			t.Fatalf("%v: sum = %d", tc.phase, out.Sum)
		}
		stats, err := e.Stats(tc.winner)
		if err != nil {
			t.Fatalf("%v: %v", tc.phase, err)
		}
		if stats.Demands != 1 || stats.Responses != 1 {
			t.Fatalf("%v: stats = %+v", tc.phase, stats)
		}
		otherVersion := "1.1"
		if tc.winner == "1.1" {
			otherVersion = "1.0"
		}
		if other, err := e.Stats(otherVersion); err == nil && other.Demands != 0 {
			t.Fatalf("%v: unused release was invoked: %+v", tc.phase, other)
		}
	}
}
