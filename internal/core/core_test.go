package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/stats"
	"wsupgrade/internal/wsdl"
)

// startRelease boots one live fault-injected release.
func startRelease(t *testing.T, version string, plan service.FaultPlan) (*service.Release, Endpoint) {
	t.Helper()
	rel, err := service.New(service.DemoContract(version), service.DemoBehaviours(), plan)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rel.Handler())
	t.Cleanup(ts.Close)
	return rel, Endpoint{Version: version, URL: ts.URL}
}

// startEngine boots a middleware over the given releases.
func startEngine(t *testing.T, cfg Config) (*Engine, *httptest.Server) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return e, ts
}

func callAdd(t *testing.T, url string, a, b int) (service.AddResponse, error) {
	t.Helper()
	c := &soap.Client{URL: url, HTTP: &http.Client{Timeout: 5 * time.Second}}
	var out service.AddResponse
	err := c.Call(context.Background(), "add", service.AddRequest{A: a, B: b}, &out)
	return out, err
}

func testInference() *bayes.WhiteBoxConfig {
	return &bayes.WhiteBoxConfig{
		PriorA: stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.4},
		PriorB: stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.4},
		GridA:  30, GridB: 30, GridC: 8, GridAB: 32,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]Config{
		"no releases":        {},
		"missing url":        {Releases: []Endpoint{{Version: "1.0"}}},
		"duplicate versions": {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}, {Version: "1.0", URL: "http://b"}}},
		"bad mode":           {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}}, Mode: Mode(99)},
		"bad quorum": {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}},
			Mode: ModeDynamic, Quorum: 5},
		"parallel with one release": {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}},
			InitialPhase: PhaseParallel},
		"policy without criterion": {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}, {Version: "1.1", URL: "http://b"}},
			Policy: &PolicyConfig{}},
		"policy without inference": {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}, {Version: "1.1", URL: "http://b"}},
			Policy: &PolicyConfig{Criterion: bayes.Criterion3{Confidence: 0.9}}},
		"negative timeout": {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}},
			InitialPhase: PhaseOldOnly, Timeout: -1},
		"bad confidence target": {Releases: []Endpoint{{Version: "1.0", URL: "http://a"}},
			InitialPhase: PhaseOldOnly, ConfidenceTarget: 1.5},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPhaseAndModeStrings(t *testing.T) {
	if PhaseOldOnly.String() != "old-only" || PhaseObservation.String() != "observation" ||
		PhaseParallel.String() != "parallel" || PhaseNewOnly.String() != "new-only" ||
		Phase(9).String() != "Phase(9)" {
		t.Fatal("phase strings wrong")
	}
	if ModeReliability.String() != "parallel-reliability" || ModeSequential.String() != "sequential" ||
		ModeResponsiveness.String() != "parallel-responsiveness" || ModeDynamic.String() != "parallel-dynamic" ||
		Mode(9).String() != "Mode(9)" {
		t.Fatal("mode strings wrong")
	}
}

func TestProxyHappyPath(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{Releases: []Endpoint{old, new_}})
	out, err := callAdd(t, ts.URL, 20, 22)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum != 42 {
		t.Fatalf("sum = %d", out.Sum)
	}
}

// The 1-out-of-2 architecture tolerates a release that fails evidently on
// every demand: consumers keep getting correct responses.
func TestToleratesEvidentlyFailingRelease(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{
		Profile: relmodel.Profile{ER: 1}, Seed: 1})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{Releases: []Endpoint{old, new_}})
	for i := 0; i < 20; i++ {
		out, err := callAdd(t, ts.URL, i, i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if out.Sum != 2*i {
			t.Fatalf("request %d: sum = %d", i, out.Sum)
		}
	}
	// The monitor saw the old release failing evidently every time.
	s, err := e.Stats("1.0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Evident != 20 || s.Demands != 20 {
		t.Fatalf("old stats = %+v", s)
	}
}

func TestAllEvidentYieldsFault(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{Profile: relmodel.Profile{ER: 1}, Seed: 2})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{Profile: relmodel.Profile{ER: 1}, Seed: 3})
	_, ts := startEngine(t, Config{Releases: []Endpoint{old, new_}})
	_, err := callAdd(t, ts.URL, 1, 1)
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

func TestUnavailableWhenNoReleaseResponds(t *testing.T) {
	// Endpoints that do not exist: transport errors, no responses.
	_, ts := startEngine(t, Config{
		Releases: []Endpoint{
			{Version: "1.0", URL: "http://127.0.0.1:1"},
			{Version: "1.1", URL: "http://127.0.0.1:1"},
		},
		Timeout: 300 * time.Millisecond,
	})
	_, err := callAdd(t, ts.URL, 1, 1)
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if !strings.Contains(f.String, "unavailable") {
		t.Fatalf("fault = %+v, want 'Web Service unavailable'", f)
	}
}

func TestPhaseOldOnlyCallsOnlyOld(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{})
	newRel, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{Releases: []Endpoint{old, new_}, InitialPhase: PhaseOldOnly})
	for i := 0; i < 5; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if oldRel.Calls() != 5 || newRel.Calls() != 0 {
		t.Fatalf("calls old=%d new=%d", oldRel.Calls(), newRel.Calls())
	}
}

// §3.1: during observation both releases run back-to-back, but the old
// release's response is the one delivered.
func TestPhaseObservationDeliversOldObservesNew(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{})
	// The new release always returns the wrong sum: consumers must not
	// see it during observation.
	newRel, new_ := startRelease(t, "1.1", service.FaultPlan{
		Profile: relmodel.Profile{NER: 1}, Seed: 4})
	e, ts := startEngine(t, Config{
		Releases:     []Endpoint{old, new_},
		InitialPhase: PhaseObservation,
		Oracle:       oracle.Header{},
	})
	for i := 0; i < 10; i++ {
		out, err := callAdd(t, ts.URL, i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Sum != i+1 {
			t.Fatalf("observation leaked the new release's wrong answer: %d", out.Sum)
		}
	}
	if oldRel.Calls() != 10 || newRel.Calls() != 10 {
		t.Fatalf("calls old=%d new=%d, both should be exercised", oldRel.Calls(), newRel.Calls())
	}
	// The monitor accumulated B-only failures.
	joint := e.Monitor().Joint()
	if joint.N != 10 || joint.BOnly != 10 {
		t.Fatalf("joint = %+v", joint)
	}
}

func TestPhaseNewOnlyCallsOnlyNew(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{})
	newRel, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{Releases: []Endpoint{old, new_}})
	if err := e.SetPhase(PhaseNewOnly); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if oldRel.Calls() != 0 || newRel.Calls() != 5 {
		t.Fatalf("calls old=%d new=%d", oldRel.Calls(), newRel.Calls())
	}
}

func TestSetPhaseValidation(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	e, err := New(Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetPhase(PhaseParallel); !errors.Is(err, ErrBadPhase) {
		t.Fatalf("parallel with one release: %v", err)
	}
	if err := e.SetPhase(Phase(42)); !errors.Is(err, ErrBadPhase) {
		t.Fatalf("unknown phase: %v", err)
	}
	if err := e.SetPhase(PhaseNewOnly); err != nil {
		t.Fatal(err)
	}
}

// The managed upgrade end to end: the new release is dependable, the old
// one visibly fails; the Bayesian policy switches to the new release.
func TestAutomaticSwitch(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{
		Profile: relmodel.Profile{CR: 0.7, NER: 0.3}, Seed: 5})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{
		Releases:     []Endpoint{old, new_},
		InitialPhase: PhaseObservation,
		Oracle:       oracle.Header{},
		Inference:    testInference(),
		Policy: &PolicyConfig{
			Criterion:  bayes.Criterion3{Confidence: 0.9},
			CheckEvery: 20,
			MinDemands: 40,
		},
	})
	for i := 0; i < 120; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if e.Phase() == PhaseNewOnly {
			break
		}
	}
	if e.Phase() != PhaseNewOnly {
		t.Fatalf("no switch after 120 demands; joint = %+v", e.Monitor().Joint())
	}
	at, ok := e.SwitchedAt()
	if !ok || at < 40 {
		t.Fatalf("switched at %d (ok=%v)", at, ok)
	}
	// After the switch the old release stops being invoked.
	before := oldRel.Calls()
	for i := 0; i < 5; i++ {
		if _, err := callAdd(t, ts.URL, i, 2); err != nil {
			t.Fatal(err)
		}
	}
	if oldRel.Calls() != before {
		t.Fatalf("old release still invoked after switch: %d -> %d", before, oldRel.Calls())
	}
}

// A policy whose criterion cannot be met must never switch.
func TestPolicyDoesNotSwitchWithoutEvidence(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{
		Releases:     []Endpoint{old, new_},
		InitialPhase: PhaseObservation,
		Oracle:       oracle.Header{},
		Inference:    testInference(),
		Policy: &PolicyConfig{
			// pfd ≤ 1e-9 at 99.999% confidence: unreachable with the
			// diffuse test prior and a handful of demands.
			Criterion:  bayes.Criterion2{Confidence: 0.99999, Target: 1e-9},
			CheckEvery: 10,
		},
	})
	for i := 0; i < 40; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if e.Phase() != PhaseObservation {
		t.Fatalf("premature switch to %v", e.Phase())
	}
	if _, ok := e.SwitchedAt(); ok {
		t.Fatal("switchedAt set without switch")
	}
}

func TestMonitoringMatchesInjectedGroundTruth(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{
		Profile: relmodel.Profile{CR: 0.6, ER: 0.2, NER: 0.2}, Seed: 6})
	newRel, new_ := startRelease(t, "1.1", service.FaultPlan{
		Profile: relmodel.Profile{CR: 0.8, ER: 0.1, NER: 0.1}, Seed: 7})
	e, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Oracle:   oracle.Header{},
	})
	const n = 60
	for i := 0; i < n; i++ {
		_, _ = callAdd(t, ts.URL, i, i)
	}
	for rel, runtime := range map[string]*service.Release{"1.0": oldRel, "1.1": newRel} {
		s, err := e.Stats(rel)
		if err != nil {
			t.Fatal(err)
		}
		inj := runtime.Injected()
		if s.Demands != n {
			t.Fatalf("%s demands = %d", rel, s.Demands)
		}
		wantFailed := inj[relmodel.EvidentFailure] + inj[relmodel.NonEvidentFailure]
		if s.JudgedFailures != wantFailed {
			t.Fatalf("%s judged failures = %d, injected = %d", rel, s.JudgedFailures, wantFailed)
		}
		if s.Evident != inj[relmodel.EvidentFailure] {
			t.Fatalf("%s evident = %d, injected = %d", rel, s.Evident, inj[relmodel.EvidentFailure])
		}
	}
	if e.Monitor().Joint().N != n {
		t.Fatalf("joint N = %d", e.Monitor().Joint().N)
	}
}

func TestConfidenceQueryOperation(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{
		Releases:      []Endpoint{old, new_},
		Oracle:        oracle.Header{},
		Inference:     testInference(),
		EnableConfOps: true,
	})
	// Generate some evidence first.
	for i := 0; i < 10; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	c := &soap.Client{URL: ts.URL}
	var resp struct {
		XMLName    struct{} `xml:"OperationConfResponse"`
		Confidence float64  `xml:"confidence"`
	}
	err := c.Call(context.Background(), wsdl.ConfOperationName, struct {
		XMLName   struct{} `xml:"OperationConfRequest"`
		Operation string   `xml:"operation"`
	}{Operation: "add"}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Confidence <= 0 || resp.Confidence > 1 {
		t.Fatalf("confidence = %v", resp.Confidence)
	}
}

func TestConfVariantOperation(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{
		Releases:      []Endpoint{old, new_},
		Oracle:        oracle.Header{},
		Inference:     testInference(),
		EnableConfOps: true,
	})
	c := &soap.Client{URL: ts.URL}
	env := soap.EnvelopeRaw([]byte(`<addConfRequest><a>2</a><b>3</b></addConfRequest>`))
	respEnv, err := c.CallRaw(context.Background(), "addConf", env)
	if err != nil {
		t.Fatal(err)
	}
	text := string(respEnv)
	if !strings.Contains(text, "<addConfResponse>") {
		t.Fatalf("response not renamed: %s", text)
	}
	if !strings.Contains(text, "<sum>5</sum>") {
		t.Fatalf("result missing: %s", text)
	}
	if !strings.Contains(text, "<addConf>") {
		t.Fatalf("confidence element missing: %s", text)
	}
}

func TestPublishHeaderMechanism(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{
		Releases:      []Endpoint{old, new_},
		Oracle:        oracle.Header{},
		Inference:     testInference(),
		PublishHeader: true,
	})
	c := &soap.Client{URL: ts.URL}
	env := soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>1</b></addRequest>`))
	respEnv, err := c.CallRaw(context.Background(), "add", env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(respEnv), "Confidence") {
		t.Fatalf("confidence header missing: %s", respEnv)
	}
	parsed, err := soap.Parse(respEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.HeaderXML) == 0 {
		t.Fatal("no SOAP header in response")
	}
}

func TestExtendedWSDL(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	contract := service.DemoContract("1.1")
	_, ts := startEngine(t, Config{
		Releases:      []Endpoint{old, new_},
		EnableConfOps: true,
		Contract:      &contract,
	})
	resp, err := http.Get(ts.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<17)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{"OperationConf", "operation1Conf", "addConf"} {
		if !strings.Contains(text, want) {
			t.Errorf("extended WSDL missing %q", want)
		}
	}
}

func TestReleaseManagement(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	e, err := New(Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.AddRelease(Endpoint{Version: "1.1", URL: "http://b"}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRelease(Endpoint{Version: "1.1", URL: "http://c"}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := e.AddRelease(Endpoint{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty add: %v", err)
	}
	if got := len(e.Releases()); got != 2 {
		t.Fatalf("releases = %d", got)
	}
	if err := e.SetPhase(PhaseParallel); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveRelease("ghost"); !errors.Is(err, ErrUnknownRelease) {
		t.Fatalf("remove ghost: %v", err)
	}
	if err := e.RemoveRelease("1.0"); err != nil {
		t.Fatal(err)
	}
	// Down to one release in a parallel phase: forced to NewOnly.
	if e.Phase() != PhaseNewOnly {
		t.Fatalf("phase = %v", e.Phase())
	}
	if err := e.RemoveRelease("1.1"); !errors.Is(err, ErrBadPhase) {
		t.Fatalf("removing the last release: %v", err)
	}
}

func TestModeResponsivenessDeliversAndMonitors(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{MeanLatency: 30 * time.Millisecond, Seed: 8})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Mode:     ModeResponsiveness,
		Oracle:   oracle.Header{},
	})
	const n = 10
	for i := 0; i < n; i++ {
		out, err := callAdd(t, ts.URL, i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Sum != i+1 {
			t.Fatalf("sum = %d", out.Sum)
		}
	}
	// Drain the background collection, then both releases must have been
	// fully monitored.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"1.0", "1.1"} {
		s, err := e.Stats(rel)
		if err != nil {
			t.Fatal(err)
		}
		if s.Demands != n {
			t.Fatalf("%s demands = %d, want %d", rel, s.Demands, n)
		}
	}
}

func TestModeSequentialShortCircuits(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{})
	newRel, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Mode:     ModeSequential,
	})
	for i := 0; i < 8; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if oldRel.Calls() != 8 || newRel.Calls() != 0 {
		t.Fatalf("calls old=%d new=%d; healthy old must short-circuit", oldRel.Calls(), newRel.Calls())
	}
}

func TestModeSequentialFailsOver(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{Profile: relmodel.Profile{ER: 1}, Seed: 9})
	newRel, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Mode:     ModeSequential,
	})
	out, err := callAdd(t, ts.URL, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum != 7 {
		t.Fatalf("sum = %d", out.Sum)
	}
	if oldRel.Calls() != 1 || newRel.Calls() != 1 {
		t.Fatalf("calls old=%d new=%d", oldRel.Calls(), newRel.Calls())
	}
}

func TestModeDynamicQuorumOne(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Mode:     ModeDynamic,
		Quorum:   1,
		Oracle:   oracle.Header{},
	})
	const n = 10
	for i := 0; i < n; i++ {
		out, err := callAdd(t, ts.URL, i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Sum != i+1 {
			t.Fatalf("sum = %d", out.Sum)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Monitor().Joint().N != n {
		t.Fatalf("joint N = %d after drain", e.Monitor().Joint().N)
	}
}

func TestRegistryPublication(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	contract := service.DemoContract("1.1")
	e, ts := startEngine(t, Config{
		Releases:  []Endpoint{old, new_},
		Oracle:    oracle.Header{},
		Inference: testInference(),
		Contract:  &contract,
	})
	for i := 0; i < 10; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	reg := registry.NewServer()
	regTS := httptest.NewServer(reg)
	defer regTS.Close()
	entry := e.RegistryEntry("WebService1", ts.URL)
	if entry.Version != "1.1" {
		t.Fatalf("entry version = %s", entry.Version)
	}
	if len(entry.Confidence) != 2 {
		t.Fatalf("confidence entries = %+v", entry.Confidence)
	}
	client := &registry.Client{Base: regTS.URL}
	if err := client.Publish(context.Background(), entry); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(context.Background(), "WebService1", "1.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Confidence) != 2 {
		t.Fatalf("published confidence lost: %+v", got)
	}
}

func TestConfidenceWithoutInference(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	e, err := New(Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Confidence(""); !errors.Is(err, ErrNoInference) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfidenceReportSemantics(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{
		Profile: relmodel.Profile{CR: 0.5, NER: 0.5}, Seed: 10})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{
		Releases:     []Endpoint{old, new_},
		InitialPhase: PhaseParallel,
		Oracle:       oracle.Header{},
		Inference:    testInference(),
	})
	for i := 0; i < 60; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := e.Confidence("")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Demands != 60 {
		t.Fatalf("demands = %d", rep.Demands)
	}
	// The visibly failing old release must have lower confidence.
	if rep.Old >= rep.New {
		t.Fatalf("old confidence %v not below new %v", rep.Old, rep.New)
	}
	// Parallel phase publishes the conservative minimum.
	if rep.Published != rep.Old {
		t.Fatalf("published %v, want min %v", rep.Published, rep.Old)
	}
	if rep.OldP99 <= rep.NewP99 {
		t.Fatalf("old P99 %v should exceed new %v", rep.OldP99, rep.NewP99)
	}
	// Per-operation report works too.
	repOp, err := e.Confidence("add")
	if err != nil {
		t.Fatal(err)
	}
	if repOp.Demands != 60 {
		t.Fatalf("per-op demands = %d", repOp.Demands)
	}
}

func TestEventLogSink(t *testing.T) {
	var sink strings.Builder
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	mon := monitor.New(monitor.WithSink(&sink))
	_, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Monitor:  mon,
	})
	if _, err := callAdd(t, ts.URL, 1, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), `"operation":"add"`) {
		t.Fatalf("event log missing: %q", sink.String())
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	e, err := New(Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNonPOSTRejected(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, ts := startEngine(t, Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", resp.StatusCode)
	}
}

func TestGarbageRequestRejected(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, ts := startEngine(t, Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	resp, err := http.Post(ts.URL+"/", soap.ContentType, strings.NewReader("not xml"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("garbage = %d", resp.StatusCode)
	}
}
