package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/journal"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
)

func campaignTestConfig(phase Phase) Config {
	return Config{
		Releases: []Endpoint{
			{Version: "1.0", URL: "http://127.0.0.1:1/old"},
			{Version: "2.0", URL: "http://127.0.0.1:1/new"},
		},
		InitialPhase: phase,
		Inference:    testInference(),
	}
}

// driveJoint pushes n joint observations into the engine's monitor, the
// way recordOutcome would under live traffic.
func driveJoint(e *Engine, n int) {
	for i := 0; i < n; i++ {
		joint := bayes.NeitherFails
		if i%17 == 0 {
			joint = bayes.BOnlyFails
		}
		e.Monitor().Note(monitor.Record{
			Time:      time.Unix(int64(i), 0),
			Operation: "add",
			Releases: []monitor.Observation{
				{Release: "1.0", Responded: true, Latency: 12 * time.Millisecond},
				{Release: "2.0", Responded: true, Latency: 14 * time.Millisecond},
			},
			Winner: "1.0",
			Joint:  joint,
		})
	}
}

// A restarted engine restored from a snapshot must agree with the
// crashed one on phase, releases, and — decisively — the posterior the
// switch policy reads.
func TestRestoreCampaignResumesPosterior(t *testing.T) {
	before, err := New(campaignTestConfig(PhaseObservation))
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()
	driveJoint(before, 173)
	snap := before.CampaignSnapshot()
	wantConf, err := before.Confidence("")
	if err != nil {
		t.Fatal(err)
	}

	after, err := New(campaignTestConfig(PhaseOldOnly)) // config phase differs; journal must win
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if err := after.RestoreCampaign(journal.State{Snapshot: &snap, Phase: snap.Phase, Releases: snap.Releases}); err != nil {
		t.Fatalf("RestoreCampaign: %v", err)
	}

	if got := after.Phase(); got != PhaseObservation {
		t.Fatalf("restored phase %v, want observation", got)
	}
	if got, want := after.Monitor().Joint(), before.Monitor().Joint(); got != want {
		t.Fatalf("restored joint %+v, want %+v", got, want)
	}
	gotConf, err := after.Confidence("")
	if err != nil {
		t.Fatal(err)
	}
	if gotConf != wantConf {
		t.Fatalf("restored confidence %+v, want %+v", gotConf, wantConf)
	}
}

// Recovery restores backward positions the transition rules forbid as
// live transitions, and announces itself with CauseRecovery.
func TestRestoreCampaignBypassesTransitionRules(t *testing.T) {
	e, err := New(campaignTestConfig(PhaseParallel))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var mu sync.Mutex
	var seen []lifecycle.Transition
	e.OnTransition(func(tr lifecycle.Transition) {
		mu.Lock()
		seen = append(seen, tr)
		mu.Unlock()
	})
	// Parallel → Observation is a backward step inside a live campaign:
	// illegal as a management transition, mandatory as a recovery.
	if err := e.SetPhase(PhaseObservation); !errors.Is(err, lifecycle.ErrIllegalTransition) {
		t.Fatalf("SetPhase backward: err = %v, want illegal transition", err)
	}
	if err := e.RestoreCampaign(journal.State{Phase: PhaseObservation}); err != nil {
		t.Fatalf("RestoreCampaign: %v", err)
	}
	if got := e.Phase(); got != PhaseObservation {
		t.Fatalf("phase %v after recovery restore", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].Cause != lifecycle.CauseRecovery || seen[0].To != PhaseObservation {
		t.Fatalf("transitions observed: %+v", seen)
	}
}

// An invalid replayed phase must not be restored (a 1-release unit
// cannot resume Observation).
func TestRestoreCampaignValidatesPhase(t *testing.T) {
	cfg := campaignTestConfig(PhaseNewOnly)
	cfg.Releases = cfg.Releases[1:]
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.RestoreCampaign(journal.State{Phase: PhaseObservation}); !errors.Is(err, ErrBadPhase) {
		t.Fatalf("restore of unviable phase: err = %v, want ErrBadPhase", err)
	}
}

// Releases the journal knows but the config lost are re-deployed; the
// phase then validates against the merged set.
func TestRestoreCampaignMergesJournalReleases(t *testing.T) {
	cfg := campaignTestConfig(PhaseNewOnly)
	cfg.Releases = cfg.Releases[:1]
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	jst := journal.State{
		Phase: PhaseObservation,
		Releases: []journal.Release{
			{Version: "1.0", URL: "http://127.0.0.1:1/old"},
			{Version: "2.0", URL: "http://127.0.0.1:1/new"},
		},
	}
	if err := e.RestoreCampaign(jst); err != nil {
		t.Fatalf("RestoreCampaign: %v", err)
	}
	rels := e.Releases()
	if len(rels) != 2 || rels[1].Version != "2.0" {
		t.Fatalf("releases after restore: %+v", rels)
	}
	if e.Phase() != PhaseObservation {
		t.Fatalf("phase %v", e.Phase())
	}
}

func TestOnReleaseChangeObservesTopology(t *testing.T) {
	e, err := New(campaignTestConfig(PhaseParallel))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	type change struct {
		added bool
		ver   string
	}
	var mu sync.Mutex
	var changes []change
	e.OnReleaseChange(func(added bool, ep Endpoint) {
		mu.Lock()
		changes = append(changes, change{added, ep.Version})
		mu.Unlock()
	})
	if err := e.AddRelease(Endpoint{Version: "3.0", URL: "http://127.0.0.1:1/v3"}); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveRelease("1.0"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []change{{true, "3.0"}, {false, "1.0"}}
	if len(changes) != 2 || changes[0] != want[0] || changes[1] != want[1] {
		t.Fatalf("changes %+v, want %+v", changes, want)
	}
}

// A panicking release observer must not wedge the topology change or
// starve later observers.
func TestOnReleaseChangePanicContained(t *testing.T) {
	e, err := New(campaignTestConfig(PhaseParallel))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.OnReleaseChange(func(bool, Endpoint) { panic("observer bug") })
	var mu sync.Mutex
	ran := 0
	e.OnReleaseChange(func(bool, Endpoint) { mu.Lock(); ran++; mu.Unlock() })
	if err := e.AddRelease(Endpoint{Version: "3.0", URL: "http://127.0.0.1:1/v3"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != 1 {
		t.Fatalf("later observer ran %d times, want 1", ran)
	}
}

// The full loop: journal attached, campaign advances, process "dies"
// (writer closed), journal reopened, new engine restored — phase and
// posterior must match the last snapshot plus the replayed transitions.
func TestJournalRecoveryEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unit.journal")
	w, jst, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if jst.Entries != 0 {
		t.Fatalf("fresh journal: %+v", jst)
	}

	e1, err := New(campaignTestConfig(PhaseOldOnly))
	if err != nil {
		t.Fatal(err)
	}
	e1.AttachJournal(w)
	if err := e1.SetPhase(PhaseObservation); err != nil {
		t.Fatal(err)
	}
	driveJoint(e1, 90)
	snap := e1.CampaignSnapshot()
	w.Append(journal.Entry{Kind: journal.KindSnapshot, Time: 1, Snapshot: &snap})
	// A transition after the last snapshot: the replay must keep the
	// snapshot's posterior and still apply the later transition.
	if err := e1.SetPhase(PhaseParallel); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	wantJoint := e1.Monitor().Joint()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	w2, jst2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if jst2.Phase != PhaseParallel {
		t.Fatalf("replayed phase %v, want parallel", jst2.Phase)
	}
	if jst2.TransitionsAfterSnapshot != 1 {
		t.Fatalf("TransitionsAfterSnapshot = %d, want 1", jst2.TransitionsAfterSnapshot)
	}
	e2, err := New(campaignTestConfig(PhaseOldOnly))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.RestoreCampaign(jst2); err != nil {
		t.Fatal(err)
	}
	if e2.Phase() != PhaseParallel {
		t.Fatalf("restored phase %v", e2.Phase())
	}
	if got := e2.Monitor().Joint(); got != wantJoint {
		t.Fatalf("restored joint %+v, want %+v", got, wantJoint)
	}
}

// The snapshot loop must write decodable snapshots on its own.
func TestStartCampaignSnapshots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unit.journal")
	w, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(campaignTestConfig(PhaseObservation))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	driveJoint(e, 40)
	stop, err := e.StartCampaignSnapshots(w, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if st, _, err := journal.Decode(data); err == nil && st.Snapshot != nil {
			if st.Snapshot.Campaign.Joint.N != 40 {
				t.Fatalf("snapshot joint %+v", st.Snapshot.Campaign.Joint)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Bad arguments are rejected up front.
	if _, err := e.StartCampaignSnapshots(nil, time.Second); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil writer: err = %v", err)
	}
	w3, _, err := journal.Open(filepath.Join(t.TempDir(), "other.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if _, err := e.StartCampaignSnapshots(w3, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero interval: err = %v", err)
	}
}
