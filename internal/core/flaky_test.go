package core

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/service"
)

// newFlakyRelease wraps a healthy release with a front that rejects the
// first failuresPerRequest attempts of every request with HTTP 503 —
// the transient-failure model of §2.1.
func newFlakyRelease(t *testing.T, failuresPerRequest int) *httptest.Server {
	t.Helper()
	rel, err := service.New(service.DemoContract("1.0"), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	inner := rel.Handler()
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Only SOAP calls consume the failure schedule; health probes and
		// other GETs must not skew which retry attempt succeeds.
		if r.Method != http.MethodPost {
			inner.ServeHTTP(w, r)
			return
		}
		mu.Lock()
		attempts++
		reject := attempts%(failuresPerRequest+1) != 0
		mu.Unlock()
		if reject {
			http.Error(w, "transient overload", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func retry3() httpx.RetryPolicy {
	return httpx.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}
}
