package core

// Regression tests for the request-context dispatch deadline: dispatch
// used to bound release calls with context.WithTimeout(context.Background(), …)
// so a disconnected client never cancelled an in-flight fan-out — it
// kept burning release capacity until the full engine timeout.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
)

// A consumer that hangs up mid-dispatch cancels the in-flight release
// calls promptly — the engine must not hold them to its own (much
// longer) timeout — and the aborted exchange is not charged to the
// releases' monitoring record.
func TestConsumerCancelAbortsDispatch(t *testing.T) {
	inCall := make(chan struct{}, 2)
	released := make(chan struct{})
	defer close(released)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only notices a client abort
		// while reading, exactly like a real release runtime would.
		_, _ = io.Copy(io.Discard, r.Body)
		inCall <- struct{}{}
		select {
		case <-r.Context().Done(): // the cancellation we are testing for
		case <-released: // test teardown safety valve
		}
	}))
	defer backend.Close()

	e, err := New(Config{
		Releases: []Endpoint{
			{Version: "1.0", URL: backend.URL},
			{Version: "1.1", URL: backend.URL},
		},
		Oracle:  oracle.Header{},
		Timeout: time.Hour, // the engine timeout must NOT be what ends this
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	env := soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`))
	req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(env)).WithContext(ctx)
	req.Header.Set("Content-Type", soap.ContentType)

	go func() {
		// Cancel once both releases are mid-call.
		<-inCall
		<-inCall
		cancel()
	}()

	rec := httptest.NewRecorder()
	start := time.Now()
	e.ServeHTTP(rec, req)
	elapsed := time.Since(start)

	if elapsed > 30*time.Second {
		t.Fatalf("dispatch outlived its consumer by %v", elapsed)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("cancelled request delivered HTTP %d: %s", rec.Code, rec.Body.String())
	}
	// The consumer abort is not release behaviour: nothing recorded.
	for _, v := range []string{"1.0", "1.1"} {
		if s, err := e.Stats(v); err == nil && s.Demands != 0 {
			t.Fatalf("consumer abort charged to release %s: %+v", v, s)
		}
	}
}

// The same fast-path single-target dispatch also honours the consumer's
// context.
func TestConsumerCancelAbortsFastPath(t *testing.T) {
	inCall := make(chan struct{}, 1)
	released := make(chan struct{})
	defer close(released)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		inCall <- struct{}{}
		select {
		case <-r.Context().Done():
		case <-released:
		}
	}))
	defer backend.Close()

	e, err := New(Config{
		Releases:     []Endpoint{{Version: "1.0", URL: backend.URL}},
		InitialPhase: PhaseOldOnly,
		Timeout:      time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	env := soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`))
	req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(env)).WithContext(ctx)
	req.Header.Set("Content-Type", soap.ContentType)
	go func() {
		<-inCall
		cancel()
	}()
	rec := httptest.NewRecorder()
	start := time.Now()
	e.ServeHTTP(rec, req)
	if time.Since(start) > 30*time.Second {
		t.Fatal("fast path outlived its consumer")
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("cancelled request delivered HTTP %d", rec.Code)
	}
}

// An engine-timeout abort, by contrast, IS release behaviour: the
// non-responding release must be charged a missed demand.
func TestEngineTimeoutStillRecorded(t *testing.T) {
	released := make(chan struct{})
	defer close(released)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-released:
		}
	}))
	defer backend.Close()

	e, err := New(Config{
		Releases:     []Endpoint{{Version: "1.0", URL: backend.URL}},
		InitialPhase: PhaseOldOnly,
		Timeout:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	env := soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`))
	req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(env))
	req.Header.Set("Content-Type", soap.ContentType)
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("timed-out request delivered HTTP %d", rec.Code)
	}
	s, err := e.Stats("1.0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Demands != 1 || s.Responses != 0 {
		t.Fatalf("timeout not charged: %+v", s)
	}
}

// OnTransition hooks observe manual, policy and topology transitions.
func TestOnTransitionHooks(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	e, err := New(Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	events := make(chan string, 4)
	e.OnTransition(func(tr lifecycle.Transition) {
		events <- tr.From.String() + ">" + tr.To.String() + ":" + tr.Cause.String()
	})
	if err := e.AddRelease(Endpoint{Version: "1.1", URL: "http://b.invalid"}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetPhase(PhaseParallel); err != nil {
		t.Fatal(err)
	}
	if got := <-events; got != "old-only>parallel:manual" {
		t.Fatalf("manual transition event = %q", got)
	}
	// Topology-forced: removing below two releases collapses to NewOnly.
	if err := e.RemoveRelease("1.1"); err != nil {
		t.Fatal(err)
	}
	if got := <-events; got != "parallel>new-only:topology" {
		t.Fatalf("topology transition event = %q", got)
	}
}
