package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/protocol"
	"wsupgrade/internal/protocol/jsoncodec"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
)

// The cross-protocol conformance suite: the same logical demand stream,
// driven through a SOAP-fronted unit and a JSON-fronted unit whose
// releases inject identical seeded fault streams, must produce
// identical adjudication outcomes (per-demand winner and
// success/failure), identical per-release monitoring counts, and
// identical §5.1 joint (old, new) counts. The wire bytes differ —
// everything the mediator concludes from them must not.

// demandOutcome is one demand's protocol-independent observable result.
type demandOutcome struct {
	OK     bool   // HTTP 200 with a decodable payload
	Winner string // X-Wsupgrade-Winner
	Sum    int    // decoded add result (only when OK)
}

// conformanceCounts is the protocol-independent monitoring summary.
type conformanceCounts struct {
	Demands, Responses, Evident, Judged int
}

func releaseCounts(t *testing.T, e *Engine, version string) conformanceCounts {
	t.Helper()
	s, err := e.Stats(version)
	if err != nil {
		t.Fatalf("stats %s: %v", version, err)
	}
	return conformanceCounts{s.Demands, s.Responses, s.Evident, s.JudgedFailures}
}

// conformancePlans returns the two releases' fault plans; identical
// seeds on both sides of the comparison give identical injection
// streams.
func conformancePlans() (old, new_ service.FaultPlan) {
	old = service.FaultPlan{Profile: relmodel.Profile{CR: 0.9, ER: 0.05, NER: 0.05}, Seed: 101}
	new_ = service.FaultPlan{Profile: relmodel.Profile{CR: 0.7, ER: 0.15, NER: 0.15}, Seed: 202}
	return old, new_
}

func conformanceEngineConfig(targets []Endpoint, codec protocol.Codec) Config {
	return Config{
		Releases:     targets,
		Timeout:      5 * time.Second,
		InitialPhase: PhaseParallel,
		Oracle:       oracle.Reference{Release: targets[0].Version, Codec: codec},
		// Preferred is fully deterministic with two releases (the
		// fallback never has more than one valid reply to choose from).
		// RandomValid draws from a pooled per-goroutine RNG stream
		// whose identity is scheduling-dependent — demand-for-demand
		// winner identity across two engines is not part of its
		// contract, and this suite compares exactly that.
		Adjudicator: adjudicate.Preferred{Release: targets[0].Version},
		Codec:       codec,
		Seed:        7,
		Monitor:     monitor.New(),
	}
}

// driveSOAP posts one add demand through the SOAP gateway.
func driveSOAP(t *testing.T, client *http.Client, url string, a, b int) demandOutcome {
	t.Helper()
	env, err := soap.Envelope(service.AddRequest{A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Post(url, soap.ContentType, bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := demandOutcome{Winner: res.Header.Get("X-Wsupgrade-Winner")}
	if res.StatusCode != http.StatusOK {
		return out
	}
	parsed, err := soap.Parse(body)
	if err != nil || parsed.Fault != nil {
		return out
	}
	var resp service.AddResponse
	if err := parsed.DecodeBody(&resp); err != nil {
		return out
	}
	out.OK = true
	out.Sum = resp.Sum
	return out
}

// driveJSON posts the same logical demand through the JSON gateway.
func driveJSON(t *testing.T, client *http.Client, url string, a, b int) demandOutcome {
	t.Helper()
	body, err := json.Marshal(service.AddJSONRequest{A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Post(url+"/add", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := demandOutcome{Winner: res.Header.Get("X-Wsupgrade-Winner")}
	if res.StatusCode != http.StatusOK {
		return out
	}
	var resp service.AddJSONResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return out
	}
	out.OK = true
	out.Sum = resp.Sum
	return out
}

func TestCrossProtocolConformance(t *testing.T) {
	const demands = 150
	client := &http.Client{Timeout: 10 * time.Second}

	// SOAP side.
	oldPlan, newPlan := conformancePlans()
	soapOld, err := service.New(service.DemoContract("1.0"), service.DemoBehaviours(), oldPlan)
	if err != nil {
		t.Fatal(err)
	}
	soapNew, err := service.New(service.DemoContract("2.0"), service.DemoBehaviours(), newPlan)
	if err != nil {
		t.Fatal(err)
	}
	soapOldTS := httptest.NewServer(soapOld.Handler())
	t.Cleanup(soapOldTS.Close)
	soapNewTS := httptest.NewServer(soapNew.Handler())
	t.Cleanup(soapNewTS.Close)
	soapEngine, soapTS := startEngine(t, conformanceEngineConfig([]Endpoint{
		{Version: "1.0", URL: soapOldTS.URL},
		{Version: "2.0", URL: soapNewTS.URL},
	}, nil)) // nil codec = SOAP default

	// JSON side: identical versions, seeds and profiles.
	oldPlan, newPlan = conformancePlans()
	jsonOld, err := service.NewJSON("1.0", service.DemoJSONBehaviours(), oldPlan)
	if err != nil {
		t.Fatal(err)
	}
	jsonNew, err := service.NewJSON("2.0", service.DemoJSONBehaviours(), newPlan)
	if err != nil {
		t.Fatal(err)
	}
	jsonOldTS := httptest.NewServer(jsonOld.Handler())
	t.Cleanup(jsonOldTS.Close)
	jsonNewTS := httptest.NewServer(jsonNew.Handler())
	t.Cleanup(jsonNewTS.Close)
	jsonEngine, jsonTS := startEngine(t, conformanceEngineConfig([]Endpoint{
		{Version: "1.0", URL: jsonOldTS.URL},
		{Version: "2.0", URL: jsonNewTS.URL},
	}, jsoncodec.Default))

	for i := 0; i < demands; i++ {
		a, b := i, i*3+1
		so := driveSOAP(t, client, soapTS.URL, a, b)
		jo := driveJSON(t, client, jsonTS.URL, a, b)
		if so != jo {
			t.Fatalf("demand %d diverged: soap=%+v json=%+v", i, so, jo)
		}
		if so.OK && so.Sum != a+b && so.Sum != a+b+1 {
			t.Fatalf("demand %d: implausible sum %d for %d+%d", i, so.Sum, a, b)
		}
	}

	// Identical per-release monitoring counts.
	for _, v := range []string{"1.0", "2.0"} {
		sc := releaseCounts(t, soapEngine, v)
		jc := releaseCounts(t, jsonEngine, v)
		if sc != jc {
			t.Errorf("release %s counts diverged: soap=%+v json=%+v", v, sc, jc)
		}
		if sc.Demands != demands {
			t.Errorf("release %s: %d demands recorded, want %d", v, sc.Demands, demands)
		}
	}

	// Identical §5.1 joint (old, new) counts — the confidence inputs.
	if sj, jj := soapEngine.Monitor().Joint(), jsonEngine.Monitor().Joint(); sj != jj {
		t.Errorf("joint counts diverged: soap=%+v json=%+v", sj, jj)
	}

	// The injected ground truth matched demand for demand, so the
	// releases themselves must agree too.
	if so, jo := soapOld.Injected(), jsonOld.Injected(); !sameInjection(so, jo) {
		t.Errorf("old release injection diverged: soap=%v json=%v", so, jo)
	}
	if sn, jn := soapNew.Injected(), jsonNew.Injected(); !sameInjection(sn, jn) {
		t.Errorf("new release injection diverged: soap=%v json=%v", sn, jn)
	}
}

func sameInjection(a, b map[relmodel.OutcomeKind]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestContentTypeContradictionRejected covers the 415 gateway
// rejection on both codecs: a request whose Content-Type contradicts
// the unit's protocol is refused before any decode, instead of
// surfacing as a confusing client fault.
func TestContentTypeContradictionRejected(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, soapTS := startEngine(t, Config{
		Releases:     []Endpoint{old},
		InitialPhase: PhaseOldOnly,
	})

	jsonRel, err := service.NewJSON("1.0", service.DemoJSONBehaviours(), service.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	jsonRelTS := httptest.NewServer(jsonRel.Handler())
	t.Cleanup(jsonRelTS.Close)
	_, jsonTS := startEngine(t, Config{
		Releases:     []Endpoint{{Version: "1.0", URL: jsonRelTS.URL}},
		InitialPhase: PhaseOldOnly,
		Codec:        jsoncodec.Default,
	})

	client := &http.Client{Timeout: 5 * time.Second}

	// JSON posted to the SOAP unit: 415, not a SOAP client fault.
	res, err := client.Post(soapTS.URL, "application/json", bytes.NewReader([]byte(`{"a":1,"b":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("JSON body on SOAP unit: status %d, want 415", res.StatusCode)
	}

	// XML posted to the JSON unit: 415, with a JSON error body.
	env, err := soap.Envelope(service.AddRequest{A: 1, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err = client.Post(jsonTS.URL+"/add", soap.ContentType, bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("XML body on JSON unit: status %d, want 415", res.StatusCode)
	}
	var envlp struct {
		Error *struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envlp); err != nil || envlp.Error == nil {
		t.Errorf("415 body is not the JSON error shape: %q", body)
	}

	// Matching and absent Content-Types still pass on both units.
	for _, tc := range []struct {
		url, ct string
		payload []byte
	}{
		{soapTS.URL, soap.ContentType, env},
		{soapTS.URL, "", env},
		{jsonTS.URL + "/add", "application/json", []byte(`{"a":1,"b":2}`)},
		{jsonTS.URL + "/add", "", []byte(`{"a":1,"b":2}`)},
	} {
		req, err := http.NewRequest(http.MethodPost, tc.url, bytes.NewReader(tc.payload))
		if err != nil {
			t.Fatal(err)
		}
		if tc.ct != "" {
			req.Header.Set("Content-Type", tc.ct)
		}
		res, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("POST %s (ct %q): status %d, want 200", tc.url, tc.ct, res.StatusCode)
		}
	}
}

// TestJSONGatewayEndToEnd drives the §6.2 running example through the
// JSON gateway: routing, adjudication and error rendering all speak
// JSON.
func TestJSONGatewayEndToEnd(t *testing.T) {
	rel, err := service.NewJSON("1.0", service.DemoJSONBehaviours(), service.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	relTS := httptest.NewServer(rel.Handler())
	t.Cleanup(relTS.Close)
	_, ts := startEngine(t, Config{
		Releases:     []Endpoint{{Version: "1.0", URL: relTS.URL}},
		InitialPhase: PhaseOldOnly,
		Codec:        jsoncodec.Default,
	})
	client := &http.Client{Timeout: 5 * time.Second}

	res, err := client.Post(ts.URL+"/operation1", "application/json",
		bytes.NewReader([]byte(`{"param1":21,"param2":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("operation1: status %d body %q", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out service.Operation1JSONResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("x/%d", 21*2); out.Op1Result != want {
		t.Errorf("Op1Result = %q, want %q", out.Op1Result, want)
	}

	// A malformed body is a 400 JSON error, not a SOAP fault.
	res, err = client.Post(ts.URL+"/add", "application/json", bytes.NewReader([]byte(`{"a":`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d body %q, want 400", res.StatusCode, body)
	}

	// Method rejection speaks JSON too.
	res, err = client.Get(ts.URL + "/add")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", res.StatusCode)
	}
}
