package core

import (
	"testing"

	"wsupgrade/internal/service"
	"wsupgrade/internal/testutil"
)

// TestEngineCloseLeavesNoGoroutines: a served engine — live dispatches,
// both releases observed, monitoring recording — must tear down to
// nothing on Close: no collector goroutines, no pooled-transport
// watchers, no policy evaluators.
func TestEngineCloseLeavesNoGoroutines(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, ts := startEngine(t, Config{
		Releases:     []Endpoint{old, new_},
		InitialPhase: PhaseObservation,
	})
	for i := 0; i < 8; i++ {
		if _, err := callAdd(t, ts.URL, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	// startEngine's cleanup closes the engine; CheckGoroutines' cleanup
	// (registered first, so running last) asserts nothing survived.
}
