package core

import (
	"fmt"
	"sync"
	"time"

	"wsupgrade/internal/journal"
	"wsupgrade/internal/lifecycle"
)

// releaseHooks observes release-set changes, the topology counterpart
// of lifecycle.Hooks (which only fires on phase changes). Observers run
// after publication, outside the engine's write lock, with panics
// contained per observer.
type releaseHooks struct {
	mu  sync.Mutex
	fns []func(added bool, ep Endpoint)
}

func (h *releaseHooks) add(fn func(added bool, ep Endpoint)) {
	if fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fns = append(h.fns, fn)
}

func (h *releaseHooks) fire(added bool, ep Endpoint) {
	h.mu.Lock()
	fns := h.fns
	h.mu.Unlock()
	for _, fn := range fns {
		func() {
			defer func() { _ = recover() }()
			fn(added, ep)
		}()
	}
}

func (h *releaseHooks) empty() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.fns) == 0
}

// OnReleaseChange registers an observer of release-set changes: fn is
// called with added=true for each release that joined the deployed set
// and added=false for each that left it. Like transition hooks,
// observers fire after the new state is published, must not block, and
// must not call the engine's own mutators.
func (e *Engine) OnReleaseChange(fn func(added bool, ep Endpoint)) {
	e.relHooks.add(fn)
}

// fireReleaseChanges diffs two published release sets and notifies the
// release observers. Runs outside the write lock, on the management
// path only (release sets change via AddRelease/RemoveRelease/restore,
// never per-request).
func (e *Engine) fireReleaseChanges(prev, next []Endpoint) {
	if e.relHooks.empty() {
		return
	}
	for _, p := range prev {
		found := false
		for _, n := range next {
			if n.Version == p.Version {
				found = true
				break
			}
		}
		if !found {
			e.relHooks.fire(false, p)
		}
	}
	for _, n := range next {
		found := false
		for _, p := range prev {
			if p.Version == n.Version {
				found = true
				break
			}
		}
		if !found {
			e.relHooks.fire(true, n)
		}
	}
}

// ---------------------------------------------------------------------------
// Durable campaigns: journal capture and recovery

// CampaignSnapshot captures the engine's resumable campaign state: the
// published phase/mode/quorum/release set plus the monitor's
// aggregation state. It is what the periodic journal snapshot records.
func (e *Engine) CampaignSnapshot() journal.Snapshot {
	st := e.state.Load()
	rels := make([]journal.Release, len(st.releases))
	for i, r := range st.releases {
		rels[i] = journal.Release{Version: r.Version, URL: r.URL}
	}
	return journal.Snapshot{
		Phase:      st.phase,
		Mode:       int(st.mode),
		Quorum:     st.quorum,
		SwitchedAt: st.switchedAt,
		Releases:   rels,
		Campaign:   e.mon.CampaignState(),
	}
}

// RestoreCampaign resumes a replayed campaign: the monitor is seeded
// with the last snapshot's aggregation state, releases the journal
// knows but the configuration lost are re-deployed (recovery is
// conservative: it adds, it never removes a configured release), and
// the phase, mode, and quorum are force-published with
// lifecycle.CauseRecovery. The phase restore deliberately bypasses the
// transition rules — a restart resumes a position, it does not perform
// a §4.1 transition — but still validates the phase against the
// deployed release count. Call it after New and before attaching the
// journal writer, so the restore itself is not re-journaled as fresh
// transitions.
func (e *Engine) RestoreCampaign(jst journal.State) error {
	if jst.Snapshot == nil && jst.Phase == 0 && len(jst.Releases) == 0 {
		return nil // fresh journal: nothing to resume
	}
	if jst.Snapshot != nil {
		if err := e.mon.Restore(jst.Snapshot.Campaign); err != nil {
			return fmt.Errorf("core: restoring campaign monitor state: %w", err)
		}
	}
	return e.updateState(lifecycle.CauseRecovery, func(s *engineState) error {
		for _, r := range jst.Releases {
			if r.URL == "" {
				continue
			}
			known := false
			for _, have := range s.releases {
				if have.Version == r.Version {
					known = true
					break
				}
			}
			if !known {
				s.releases = append(s.releases, Endpoint{Version: r.Version, URL: r.URL})
			}
		}
		if snap := jst.Snapshot; snap != nil {
			if m := Mode(snap.Mode); m.Known() {
				s.mode = m
				if m == ModeDynamic && snap.Quorum >= 1 && snap.Quorum <= len(s.releases) {
					s.quorum = snap.Quorum
				}
			}
			if snap.SwitchedAt > 0 {
				s.switchedAt = snap.SwitchedAt
			}
		}
		if jst.Phase != 0 {
			if err := lifecycle.Validate(jst.Phase, len(s.releases)); err != nil {
				return err
			}
			s.phase = jst.Phase
		}
		return nil
	})
}

// AttachJournal subscribes a journal writer to the engine's lifecycle:
// every phase transition and release-set change is appended (with their
// causes) as it happens. Appends are asynchronous and never block the
// observers' callers; the journal stays entirely off the dispatch hot
// path, which touches neither hook.
func (e *Engine) AttachJournal(w *journal.Writer) {
	if w == nil {
		return
	}
	e.OnTransition(func(t lifecycle.Transition) {
		tr := t
		w.Append(journal.Entry{Kind: journal.KindTransition, Time: time.Now().UnixNano(), Transition: &tr})
	})
	e.OnReleaseChange(func(added bool, ep Endpoint) {
		kind := journal.KindReleaseAdd
		if !added {
			kind = journal.KindReleaseRemove
		}
		w.Append(journal.Entry{
			Kind:    kind,
			Time:    time.Now().UnixNano(),
			Release: &journal.Release{Version: ep.Version, URL: ep.URL},
		})
	})
}

// StartCampaignSnapshots appends a CampaignSnapshot to the journal
// every interval, bounding how much posterior a crash can lose to one
// interval's worth of demands. The returned stop function blocks until
// the snapshot goroutine has exited (it does not close the writer).
func (e *Engine) StartCampaignSnapshots(w *journal.Writer, interval time.Duration) (stop func(), err error) {
	if w == nil {
		return nil, fmt.Errorf("%w: snapshots need a journal writer", ErrBadConfig)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("%w: snapshot interval %v", ErrBadConfig, interval)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				snap := e.CampaignSnapshot()
				w.Append(journal.Entry{Kind: journal.KindSnapshot, Time: time.Now().UnixNano(), Snapshot: &snap})
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}, nil
}
