// Package core is the paper's primary contribution: the middleware for
// dependable online upgrade of a Web Service (§4).
//
// The Engine sits behind the service's published WSDL interface and keeps
// several releases of the service operational at once. For every consumer
// request it:
//
//  1. intercepts the SOAP message and fans it out to the deployed
//     releases (all of them, a quorum, or sequentially — the §4.2
//     operating modes);
//  2. collects the responses within a timeout, classifying faults,
//     timeouts and transport errors as evident failures;
//  3. adjudicates a response for the consumer (§5.2.1 rules by default,
//     majority or fastest-valid as alternatives);
//  4. hands every release's behaviour to the monitoring subsystem
//     (§4.3): availability, execution time, judged correctness, and the
//     pairwise (old, new) outcome of Table 1;
//  5. lets the management subsystem (§4.4) evaluate the switch policy —
//     a Bayesian confidence criterion over the accumulated observations —
//     and advance the upgrade lifecycle when the new release has earned
//     enough confidence.
//
// The lifecycle phases follow §3.3/§4.2: OldOnly (new release deployed
// but unused) → Observation (both run back-to-back, the old release's
// response is delivered) → Parallel (adjudicated 1-out-of-2 delivery) →
// NewOnly (switched). Releases can be added and removed online.
//
// The engine also implements the §6.2 confidence-publishing mechanisms:
// a dedicated OperationConf operation, backward-compatible "<op>Conf"
// variants, and per-response confidence headers, plus registry
// publication helpers.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/httpx"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/stats"
	"wsupgrade/internal/wsdl"
	"wsupgrade/internal/xrand"
)

// Errors reported by the engine.
var (
	// ErrBadConfig reports an invalid engine configuration.
	ErrBadConfig = errors.New("core: bad configuration")
	// ErrBadPhase reports an impossible phase transition.
	ErrBadPhase = errors.New("core: bad phase")
	// ErrUnknownRelease reports an operation on an undeployed release.
	ErrUnknownRelease = errors.New("core: unknown release")
	// ErrNoInference reports a confidence query on an engine built
	// without an inference configuration.
	ErrNoInference = errors.New("core: no inference engine configured")
)

// Endpoint identifies one deployed release of the upgraded service.
type Endpoint struct {
	// Version is the release's version string (releases must be
	// distinguishable, §3.2).
	Version string
	// URL is the release's SOAP endpoint.
	URL string
}

// Phase is the upgrade lifecycle state (§3.3, §4.2).
type Phase int

const (
	// PhaseOldOnly: only the oldest release serves; newer releases are
	// deployed but not invoked.
	PhaseOldOnly Phase = iota + 1
	// PhaseObservation: all releases are invoked back-to-back; the old
	// release's response is delivered (§3.1's transitional period).
	PhaseObservation
	// PhaseParallel: all releases are invoked and the adjudicated
	// response is delivered (1-out-of-2 fault tolerance, §4.2 mode 1).
	PhaseParallel
	// PhaseNewOnly: only the newest release is invoked — the switch has
	// happened.
	PhaseNewOnly
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseOldOnly:
		return "old-only"
	case PhaseObservation:
		return "observation"
	case PhaseParallel:
		return "parallel"
	case PhaseNewOnly:
		return "new-only"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Mode is the fan-out strategy while several releases are invoked (§4.2).
type Mode int

const (
	// ModeReliability waits for all releases (bounded by Timeout) and
	// adjudicates everything collected — §4.2 mode 1.
	ModeReliability Mode = iota + 1
	// ModeResponsiveness delivers the first valid response — mode 2.
	ModeResponsiveness
	// ModeDynamic delivers after Quorum responses arrive — mode 3.
	ModeDynamic
	// ModeSequential invokes releases one at a time, moving on only
	// after an evident failure — mode 4.
	ModeSequential
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeReliability:
		return "parallel-reliability"
	case ModeResponsiveness:
		return "parallel-responsiveness"
	case ModeDynamic:
		return "parallel-dynamic"
	case ModeSequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// PolicyConfig is the management subsystem's automatic switch rule
// (§5.1.1.2): when Criterion is satisfied on the posterior, the engine
// advances to PhaseNewOnly.
type PolicyConfig struct {
	// Criterion decides the switch.
	Criterion bayes.Criterion
	// CheckEvery evaluates the criterion every N joint observations
	// (default 50).
	CheckEvery int
	// MinDemands suppresses switching before this many joint
	// observations (default CheckEvery).
	MinDemands int
}

// Config parameterizes the engine.
type Config struct {
	// Releases lists the deployed releases, oldest first. At least one.
	Releases []Endpoint
	// Timeout bounds each fan-out (default 2 s).
	Timeout time.Duration
	// Mode selects the fan-out strategy (default ModeReliability).
	Mode Mode
	// Quorum is ModeDynamic's response count (default 1).
	Quorum int
	// Adjudicator picks the delivered response in PhaseParallel
	// (default adjudicate.RandomValid, the paper's §5.2.1 rules).
	Adjudicator adjudicate.Adjudicator
	// Oracle judges response correctness for monitoring (default
	// oracle.FaultOnly: evident failures only).
	Oracle oracle.Oracle
	// InitialPhase is the starting lifecycle state (default
	// PhaseParallel; PhaseOldOnly and PhaseObservation need ≥2
	// releases).
	InitialPhase Phase
	// Policy enables automatic switching; nil means manual only.
	Policy *PolicyConfig
	// Inference configures the white-box confidence engine over the
	// (oldest, newest) release pair. Required when Policy is set or
	// confidence is published.
	Inference *bayes.WhiteBoxConfig
	// ConfidenceTarget is the pfd target T of the published confidence
	// P(pfd ≤ T) (default 1e-2).
	ConfidenceTarget float64
	// Retry tolerates transient transport failures per release call
	// (default httpx.NoRetry).
	Retry httpx.RetryPolicy
	// PublishHeader attaches a confidence header to every response
	// (§6.2's protocol-handler mechanism).
	PublishHeader bool
	// EnableConfOps serves OperationConf and "<op>Conf" variants (§6.2
	// options 2 and 3).
	EnableConfOps bool
	// Contract optionally describes the proxied service; when set, the
	// engine serves the §6.2-extended WSDL at /wsdl.
	Contract *wsdl.Contract
	// Monitor overrides the monitoring subsystem (default monitor.New()).
	Monitor *monitor.Monitor
	// HTTP overrides the transport (default: client with Timeout).
	HTTP *http.Client
	// Seed drives adjudication tie-breaking.
	Seed uint64
	// Store streams the event log as JSONL (the architecture's
	// "Data Base"); nil disables.
	Store io.Writer
}

// engineState is the complete dispatch-relevant configuration, swapped
// atomically as one immutable value. The request hot path loads it with
// a single atomic pointer read and never takes the engine mutex; writers
// (the management subsystem: SetPhase, SetMode, SetTimeout, AddRelease,
// RemoveRelease, CheckHealth, the automatic switch policy) serialize on
// Engine.mu, copy the current state, and publish the successor.
//
// An *engineState must never be mutated after publication: releases and
// down are owned by the state value and shared by every reader.
type engineState struct {
	releases   []Endpoint
	down       map[string]bool // releases marked unavailable by health checks; nil when none
	phase      Phase
	mode       Mode
	quorum     int
	timeout    time.Duration
	switchedAt int // joint demands when auto-switch fired; 0 = not yet
}

// clone returns a deep copy safe to mutate before publication.
func (s *engineState) clone() *engineState {
	c := *s
	c.releases = append([]Endpoint(nil), s.releases...)
	if len(s.down) > 0 {
		c.down = make(map[string]bool, len(s.down))
		for k, v := range s.down {
			if v {
				c.down[k] = true
			}
		}
	} else {
		c.down = nil
	}
	return &c
}

// Engine is the managed-upgrade middleware. It implements http.Handler
// (the SOAP endpoint); Handler() adds /wsdl and /healthz.
// Construct with New; call Close to drain background monitoring work.
type Engine struct {
	cfg    Config
	client *http.Client
	// ownsClient marks an engine-built client whose pooled transport
	// Close must shut down (a caller-supplied Config.HTTP is theirs).
	ownsClient bool
	adjudic    adjudicate.Adjudicator
	oracle     oracle.Oracle
	mon        *monitor.Monitor
	inference  *bayes.WhiteBox

	// contractOps is the set of operation names in cfg.Contract (nil
	// when no contract is configured). It guards §6.2 "<op>Conf" variant
	// routing: a genuine contract operation whose name happens to end in
	// "Conf" must not be hijacked.
	contractOps map[string]bool

	state atomic.Pointer[engineState]
	mu    sync.Mutex // serializes state writers (copy-on-write publishers)

	// Adjudication tie-breaking draws from a pool of deterministic
	// generators: one atomic-free Get per request instead of an
	// engine-wide lock. rngMaster only seeds new pool members.
	rngMu     sync.Mutex
	rngMaster *xrand.Rand
	rngPool   sync.Pool

	policyMu sync.Mutex // serializes posterior evaluation

	// healthCheckDone, when set before StartHealthChecks, is called after
	// every periodic probe round. Tests use it to synchronize on prober
	// progress without sleeping.
	healthCheckDone func()

	wg sync.WaitGroup
}

var _ http.Handler = (*Engine)(nil)

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Releases) == 0 {
		return nil, fmt.Errorf("%w: no releases", ErrBadConfig)
	}
	seen := map[string]bool{}
	for _, r := range cfg.Releases {
		if r.Version == "" || r.URL == "" {
			return nil, fmt.Errorf("%w: release needs version and URL: %+v", ErrBadConfig, r)
		}
		if seen[r.Version] {
			return nil, fmt.Errorf("%w: duplicate release %q", ErrBadConfig, r.Version)
		}
		seen[r.Version] = true
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("%w: negative timeout", ErrBadConfig)
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeReliability
	}
	switch cfg.Mode {
	case ModeReliability, ModeResponsiveness, ModeSequential:
	case ModeDynamic:
		if cfg.Quorum == 0 {
			cfg.Quorum = 1
		}
		if cfg.Quorum < 1 || cfg.Quorum > len(cfg.Releases) {
			return nil, fmt.Errorf("%w: quorum %d with %d releases", ErrBadConfig, cfg.Quorum, len(cfg.Releases))
		}
	default:
		return nil, fmt.Errorf("%w: mode %v", ErrBadConfig, cfg.Mode)
	}
	if cfg.InitialPhase == 0 {
		cfg.InitialPhase = PhaseParallel
	}
	if err := validatePhase(cfg.InitialPhase, len(cfg.Releases)); err != nil {
		return nil, err
	}
	if cfg.Adjudicator == nil {
		cfg.Adjudicator = adjudicate.RandomValid{}
	}
	if cfg.Oracle == nil {
		cfg.Oracle = oracle.FaultOnly{}
	}
	if cfg.ConfidenceTarget == 0 {
		cfg.ConfidenceTarget = 1e-2
	}
	if cfg.ConfidenceTarget < 0 || cfg.ConfidenceTarget > 1 {
		return nil, fmt.Errorf("%w: confidence target %v", ErrBadConfig, cfg.ConfidenceTarget)
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry = httpx.NoRetry
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Policy != nil {
		if cfg.Policy.Criterion == nil {
			return nil, fmt.Errorf("%w: policy without criterion", ErrBadConfig)
		}
		if cfg.Policy.CheckEvery == 0 {
			cfg.Policy.CheckEvery = 50
		}
		if cfg.Policy.CheckEvery < 1 {
			return nil, fmt.Errorf("%w: policy check interval %d", ErrBadConfig, cfg.Policy.CheckEvery)
		}
		if cfg.Policy.MinDemands == 0 {
			cfg.Policy.MinDemands = cfg.Policy.CheckEvery
		}
		if cfg.Inference == nil {
			return nil, fmt.Errorf("%w: policy requires an inference configuration", ErrBadConfig)
		}
	}

	e := &Engine{
		cfg:       cfg,
		adjudic:   cfg.Adjudicator,
		oracle:    cfg.Oracle,
		rngMaster: xrand.New(cfg.Seed),
	}
	e.state.Store(&engineState{
		releases: append([]Endpoint(nil), cfg.Releases...),
		phase:    cfg.InitialPhase,
		mode:     cfg.Mode,
		quorum:   cfg.Quorum,
		timeout:  cfg.Timeout,
	})
	if cfg.HTTP != nil {
		e.client = cfg.HTTP
	} else {
		// A dedicated pooled transport: http.DefaultTransport keeps only
		// 2 idle connections per host, so parallel fan-out to the same
		// release endpoint would re-dial on every burst.
		e.client = httpx.NewPooledClient(cfg.Timeout+500*time.Millisecond, len(cfg.Releases))
		e.ownsClient = true
	}
	if cfg.Contract != nil {
		e.contractOps = make(map[string]bool, len(cfg.Contract.Operations))
		for _, op := range cfg.Contract.Operations {
			e.contractOps[op.Name] = true
		}
	}
	if cfg.Monitor != nil {
		e.mon = cfg.Monitor
	} else {
		opts := []monitor.Option{}
		if cfg.Store != nil {
			opts = append(opts, monitor.WithSink(cfg.Store))
		}
		e.mon = monitor.New(opts...)
	}
	if cfg.Inference != nil {
		wb, err := bayes.NewWhiteBox(*cfg.Inference)
		if err != nil {
			return nil, fmt.Errorf("core: building inference engine: %w", err)
		}
		e.inference = wb
	}
	return e, nil
}

func validatePhase(p Phase, releases int) error {
	switch p {
	case PhaseOldOnly, PhaseNewOnly:
		return nil
	case PhaseObservation, PhaseParallel:
		if releases < 2 {
			return fmt.Errorf("%w: %v needs at least two releases", ErrBadPhase, p)
		}
		return nil
	default:
		return fmt.Errorf("%w: %v", ErrBadPhase, p)
	}
}

// Close waits for background monitoring work to finish (bounded by the
// call timeout) and shuts down the engine-owned transport's keep-alive
// connections (up to 32 per release host would otherwise linger for the
// 90 s idle timeout). The engine must not serve new requests afterwards.
func (e *Engine) Close() error {
	e.wg.Wait()
	if e.ownsClient {
		e.client.CloseIdleConnections()
	}
	return nil
}

// Monitor exposes the monitoring subsystem.
func (e *Engine) Monitor() *monitor.Monitor { return e.mon }

// updateState publishes a successor state built by mutate, serialized
// against every other writer. mutate receives a private clone; returning
// an error discards it without publication.
func (e *Engine) updateState(mutate func(*engineState) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	next := e.state.Load().clone()
	if err := mutate(next); err != nil {
		return err
	}
	e.state.Store(next)
	return nil
}

// Phase returns the current lifecycle phase.
func (e *Engine) Phase() Phase {
	return e.state.Load().phase
}

// SetPhase transitions the lifecycle manually.
func (e *Engine) SetPhase(p Phase) error {
	return e.updateState(func(s *engineState) error {
		if err := validatePhase(p, len(s.releases)); err != nil {
			return err
		}
		s.phase = p
		return nil
	})
}

// SwitchedAt reports the joint-demand count at which the automatic policy
// switched to the new release (0, false if it has not).
func (e *Engine) SwitchedAt() (int, bool) {
	at := e.state.Load().switchedAt
	return at, at > 0
}

// Releases returns the deployed releases, oldest first.
func (e *Engine) Releases() []Endpoint {
	return append([]Endpoint(nil), e.state.Load().releases...)
}

// AddRelease deploys a release online; it becomes the newest.
func (e *Engine) AddRelease(ep Endpoint) error {
	if ep.Version == "" || ep.URL == "" {
		return fmt.Errorf("%w: release needs version and URL", ErrBadConfig)
	}
	return e.updateState(func(s *engineState) error {
		for _, r := range s.releases {
			if r.Version == ep.Version {
				return fmt.Errorf("%w: duplicate release %q", ErrBadConfig, ep.Version)
			}
		}
		s.releases = append(s.releases, ep)
		return nil
	})
}

// RemoveRelease phases a release out online. The last release cannot be
// removed, and removing below two releases forces PhaseNewOnly.
func (e *Engine) RemoveRelease(version string) error {
	return e.updateState(func(s *engineState) error {
		idx := -1
		for i, r := range s.releases {
			if r.Version == version {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("%w: %q", ErrUnknownRelease, version)
		}
		if len(s.releases) == 1 {
			return fmt.Errorf("%w: cannot remove the only release", ErrBadPhase)
		}
		s.releases = append(s.releases[:idx], s.releases[idx+1:]...)
		if len(s.releases) < 2 && (s.phase == PhaseObservation || s.phase == PhaseParallel) {
			s.phase = PhaseNewOnly
		}
		return nil
	})
}

// snapshot returns the state a request handler works with. The returned
// slice is shared with the immutable state value and must not be mutated.
func (e *Engine) snapshot() ([]Endpoint, Phase) {
	s := e.state.Load()
	return s.releases, s.phase
}

// dispatchState atomically reads everything one fan-out needs: a single
// atomic load, no lock, no copying — the hot path's whole read side.
func (e *Engine) dispatchState() *engineState {
	return e.state.Load()
}

// Mode returns the current fan-out mode.
func (e *Engine) Mode() Mode {
	return e.state.Load().mode
}

// SetMode reconfigures the fan-out mode online — §4.2's "the number of
// responses and the timeout can be changed dynamically". quorum applies
// to ModeDynamic and is ignored otherwise.
func (e *Engine) SetMode(mode Mode, quorum int) error {
	return e.updateState(func(s *engineState) error {
		switch mode {
		case ModeReliability, ModeResponsiveness, ModeSequential:
		case ModeDynamic:
			if quorum == 0 {
				quorum = 1
			}
			if quorum < 1 || quorum > len(s.releases) {
				return fmt.Errorf("%w: quorum %d with %d releases", ErrBadConfig, quorum, len(s.releases))
			}
		default:
			return fmt.Errorf("%w: mode %v", ErrBadConfig, mode)
		}
		s.mode = mode
		if mode == ModeDynamic {
			s.quorum = quorum
		}
		return nil
	})
}

// Timeout returns the current fan-out deadline.
func (e *Engine) Timeout() time.Duration {
	return e.state.Load().timeout
}

// SetTimeout reconfigures the fan-out deadline online.
func (e *Engine) SetTimeout(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("%w: timeout %v", ErrBadConfig, d)
	}
	return e.updateState(func(s *engineState) error {
		s.timeout = d
		return nil
	})
}

// ---------------------------------------------------------------------------
// Adjudication tie-breaking randomness

// getRNG hands one generator to a request. Generators are pooled; a
// fresh one is split off the seeded master only when the pool is empty.
// Every stream derives deterministically from Config.Seed, but the
// assignment of streams to requests depends on scheduling and on GC
// (sync.Pool may drop members), so individual tie-breaks are not
// replayable across runs — only statistically reproducible.
func (e *Engine) getRNG() *xrand.Rand {
	if r, ok := e.rngPool.Get().(*xrand.Rand); ok {
		return r
	}
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return e.rngMaster.Split()
}

func (e *Engine) putRNG(r *xrand.Rand) { e.rngPool.Put(r) }

// ---------------------------------------------------------------------------
// Health checking and recovery (§4.1's management subsystem)

// Health reports one release's probe outcome.
type Health struct {
	Release string
	URL     string
	Up      bool
	Err     error
}

// CheckHealth probes every deployed release's /healthz endpoint, updates
// the engine's availability marks (a release marked down is skipped by
// fan-outs until it recovers), and returns the probe results.
func (e *Engine) CheckHealth(ctx context.Context) []Health {
	releases, _ := e.snapshot()
	results := make([]Health, len(releases))
	var wg sync.WaitGroup
	for i, rel := range releases {
		i, rel := i, rel
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = e.probe(ctx, rel)
		}()
	}
	wg.Wait()

	_ = e.updateState(func(s *engineState) error {
		for _, h := range results {
			if h.Up {
				delete(s.down, h.Release)
				continue
			}
			if s.down == nil {
				s.down = make(map[string]bool)
			}
			s.down[h.Release] = true
		}
		return nil
	})
	return results
}

func (e *Engine) probe(ctx context.Context, rel Endpoint) Health {
	h := Health{Release: rel.Version, URL: rel.URL}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rel.URL+"/healthz", nil)
	if err != nil {
		h.Err = err
		return h
	}
	resp, err := e.client.Do(req)
	if err != nil {
		h.Err = err
		return h
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		h.Err = fmt.Errorf("core: health probe of %s: HTTP %d", rel.Version, resp.StatusCode)
		return h
	}
	h.Up = true
	return h
}

// Down reports whether a release is currently marked unavailable.
func (e *Engine) Down(version string) bool {
	return e.state.Load().down[version]
}

// StartHealthChecks runs CheckHealth every interval until the returned
// stop function is called. The loop is owned: stop blocks until the
// prober goroutine has exited.
func (e *Engine) StartHealthChecks(interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("%w: health-check interval %v", ErrBadConfig, interval)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				e.CheckHealth(ctx)
				cancel()
				if e.healthCheckDone != nil {
					e.healthCheckDone()
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}, nil
}

// ---------------------------------------------------------------------------
// Request handling

// Handler returns the full HTTP surface: the SOAP endpoint at "/", the
// extended WSDL at "/wsdl" and a liveness probe at "/healthz".
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", e)
	mux.HandleFunc("/wsdl", e.serveWSDL)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

func (e *Engine) serveWSDL(w http.ResponseWriter, r *http.Request) {
	if e.cfg.Contract == nil {
		http.Error(w, "no contract configured", http.StatusNotFound)
		return
	}
	contract := *e.cfg.Contract
	if e.cfg.EnableConfOps {
		contract = contract.WithConfidenceOperation()
		for _, op := range e.cfg.Contract.Operations {
			extended, err := contract.WithConfVariant(op.Name)
			if err == nil {
				contract = extended
			}
		}
	}
	def, err := wsdl.Generate(contract, requestScheme(r)+"://"+r.Host+"/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := def.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(data)
}

// requestScheme derives the scheme consumers should use to reach this
// engine: https when the request arrived over TLS, or whatever a
// trusted reverse proxy reports in X-Forwarded-Proto. The published
// WSDL endpoint address must match what the consumer can actually dial.
func requestScheme(r *http.Request) string {
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	if proto := r.Header.Get("X-Forwarded-Proto"); proto != "" {
		if i := strings.IndexByte(proto, ','); i >= 0 {
			proto = proto[:i] // first hop wins in a proxy chain
		}
		switch strings.ToLower(strings.TrimSpace(proto)) {
		case "http":
			scheme = "http"
		case "https":
			scheme = "https"
		}
	}
	return scheme
}

// AdjudicatorHeader lets a consumer select the adjudication mechanism for
// its own requests (§6.1: "users can explicitly specify the adjudication
// mechanism they would like applied to their own requests"). Valid
// values: "random-valid", "majority", "fastest-valid". Unknown values are
// ignored in favour of the engine default.
const AdjudicatorHeader = "X-Wsupgrade-Adjudicator"

// maxRequestBytes bounds consumer request bodies (matches the SOAP
// message limit and the release-response cap).
const maxRequestBytes = 10 << 20

// ServeHTTP intercepts one consumer request. The hot path routes on a
// zero-copy sniff of the envelope (which validates the whole structural
// tag tree); the full DOM parse runs only for unusual or malformed
// envelopes and the §6.2 confidence operations (which need the decoded
// body). The residual gap: a message with content-level malformation
// only a DOM parse detects (entities, attribute syntax) can sniff clean
// and be rejected by the releases instead of locally; those faults reach
// the consumer as faults — the same monitoring exposure an unknown
// operation name has always had.
func (e *Engine) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	data, err := httpx.ReadBounded(r.Body, maxRequestBytes)
	if err != nil {
		e.writeFault(w, soap.ClientFault(fmt.Sprintf("reading request: %v", err)), "")
		return
	}
	opElement, sniffed := soap.SniffOperation(data)
	var parsed *soap.Parsed
	if !sniffed {
		if parsed, err = soap.Parse(data); err != nil {
			e.writeFault(w, soap.ClientFault(err.Error()), "")
			return
		}
		opElement = parsed.Operation.Local
	}
	operation := strings.TrimSuffix(opElement, "Request")

	if e.cfg.EnableConfOps {
		parse := func() *soap.Parsed {
			if parsed == nil {
				parsed, err = soap.Parse(data)
			}
			return parsed
		}
		if opElement == wsdl.ConfOperationName+"Request" {
			if parse() == nil {
				e.writeFault(w, soap.ClientFault(err.Error()), "")
				return
			}
			e.serveConfidenceQuery(w, parsed)
			return
		}
		if base, ok := e.confVariantBase(operation); ok {
			if parse() == nil {
				e.writeFault(w, soap.ClientFault(err.Error()), "")
				return
			}
			e.serveConfVariant(w, r, parsed, base)
			return
		}
	}
	e.proxy(w, r, data, operation)
}

// confVariantBase reports whether operation is a §6.2 "<op>Conf"
// variant, returning the underlying operation name. When a Contract is
// configured, the variant interpretation applies only if the base
// operation exists in the contract and the full name does not — a
// genuine contract operation named e.g. "GetConf" is proxied as itself.
func (e *Engine) confVariantBase(operation string) (string, bool) {
	if !strings.HasSuffix(operation, "Conf") || operation == wsdl.ConfOperationName {
		return "", false
	}
	base := strings.TrimSuffix(operation, "Conf")
	if e.contractOps != nil && (e.contractOps[operation] || !e.contractOps[base]) {
		return "", false
	}
	return base, true
}

// requestAdjudicator honours the consumer's per-request adjudicator
// choice, falling back to the engine default.
func requestAdjudicator(r *http.Request, fallback adjudicate.Adjudicator) adjudicate.Adjudicator {
	if r == nil {
		return fallback
	}
	switch r.Header.Get(AdjudicatorHeader) {
	case "random-valid":
		return adjudicate.RandomValid{}
	case "majority":
		return adjudicate.Majority{}
	case "fastest-valid":
		return adjudicate.FastestValid{}
	default:
		return fallback
	}
}

// proxy is the main interception path.
func (e *Engine) proxy(w http.ResponseWriter, r *http.Request, envelope []byte, operation string) {
	winner, adjErr := e.dispatch(r.Context(), envelope, operation, requestAdjudicator(r, e.adjudic))
	e.respond(w, operation, winner, adjErr)
}

// respond writes the adjudicated outcome to the consumer.
func (e *Engine) respond(w http.ResponseWriter, operation string, winner adjudicate.Reply, adjErr error) {
	if adjErr != nil {
		var f *soap.Fault
		if !errors.As(adjErr, &f) {
			switch {
			case errors.Is(adjErr, adjudicate.ErrNoResponses):
				f = soap.ServerFault("Web Service unavailable")
			default:
				f = soap.ServerFault(adjErr.Error())
			}
		}
		e.writeFault(w, f, operation)
		return
	}
	var headers []soap.HeaderItem
	if e.cfg.PublishHeader {
		if conf, err := e.publishedConfidence(operation); err == nil {
			headers = append(headers, confidenceHeader(operation, conf))
		}
	}
	w.Header().Set("Content-Type", soap.ContentType)
	if winner.Release != "" {
		w.Header().Set("X-Wsupgrade-Winner", winner.Release)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(soap.EnvelopeRaw(winner.Body, headers...))
}

func (e *Engine) writeFault(w http.ResponseWriter, f *soap.Fault, operation string) {
	w.Header().Set("Content-Type", soap.ContentType)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(soap.FaultEnvelope(f))
}

// dispatch fans the request out per the current phase and mode, returns
// the delivered reply (or adjudication error), and hands monitoring and
// policy work to the background when delivery should not wait for it.
func (e *Engine) dispatch(ctx context.Context, envelope []byte, operation string, adj adjudicate.Adjudicator) (adjudicate.Reply, error) {
	if adj == nil {
		adj = e.adjudic
	}
	st := e.dispatchState()
	releases, phase, mode, quorum, timeout := st.releases, st.phase, st.mode, st.quorum, st.timeout
	oldest, newest := releases[0], releases[len(releases)-1]

	var targets []Endpoint
	switch phase {
	case PhaseOldOnly:
		targets = []Endpoint{oldest}
	case PhaseNewOnly:
		targets = []Endpoint{newest}
	default:
		targets = releases
	}
	// Health-checked releases marked down are skipped (the management
	// subsystem's recovery handling, §4.1) — unless that would leave no
	// targets, in which case the calls proceed and fail honestly.
	if len(st.down) > 0 {
		up := targets[:0:0]
		for _, t := range targets {
			if !st.down[t.Version] {
				up = append(up, t)
			}
		}
		if len(up) > 0 {
			targets = up
		}
	}

	deliverFrom := func(collected []adjudicate.Reply) (adjudicate.Reply, error) {
		rule := e.deliveryAdjudicator(phase, oldest, newest, adj)
		rng := e.getRNG()
		defer e.putRNG(rng)
		return rule.Adjudicate(collected, rng)
	}

	// Release calls are bounded by the engine timeout rather than the
	// consumer's request context: when a mode delivers early, the
	// remaining responses are still collected for the monitoring
	// subsystem after the consumer has gone.
	_ = ctx
	callCtx, cancel := context.WithTimeout(context.Background(), timeout)

	// Single-target fast path (PhaseOldOnly, PhaseNewOnly, or every
	// other target marked down): one synchronous call, no goroutine, no
	// channel, no fan-out bookkeeping.
	if len(targets) == 1 {
		defer cancel()
		replies := getReplySlice(1)
		replies[0] = e.callRelease(callCtx, targets[0], operation, envelope)
		collected := replies[:0]
		if responded(replies[0]) {
			collected = replies[:1]
		}
		winner, adjErr := deliverFrom(collected)
		e.record(operation, targets, replies, winner, oldest, newest)
		putReplySlice(replies)
		return winner, adjErr
	}

	if mode == ModeSequential && phase != PhaseOldOnly && phase != PhaseNewOnly {
		defer cancel()
		return e.dispatchSequential(callCtx, targets, envelope, operation, deliverFrom)
	}

	type indexed struct {
		i int
		r adjudicate.Reply
	}
	ch := make(chan indexed, len(targets))
	for i, t := range targets {
		i, t := i, t
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			ch <- indexed{i, e.callRelease(callCtx, t, operation, envelope)}
		}()
	}

	replies := getReplySlice(len(targets))
	received := 0
	collectOne := func() {
		in := <-ch
		replies[in.i] = in.r
		received++
	}

	// How many replies must arrive before delivery.
	need := len(targets)
	switch mode {
	case ModeDynamic:
		if quorum < need {
			need = quorum
		}
	case ModeResponsiveness:
		need = 1
	}

	for received < need {
		collectOne()
	}
	if mode == ModeResponsiveness {
		// Keep collecting until a valid reply arrives or all are in.
		for !anyValid(replies) && received < len(targets) {
			collectOne()
		}
	}

	// Only actual responses are adjudicated: a SOAP fault is a collected
	// (evidently incorrect) response, while a timeout or transport error
	// means nothing was collected from that release (§5.2.1).
	collected := getReplySlice(received)[:0]
	for _, r := range replies {
		if r.Release != "" && responded(r) {
			collected = append(collected, r)
		}
	}
	winner, adjErr := deliverFrom(collected)
	putReplySlice(collected)

	if received == len(targets) {
		cancel()
		e.record(operation, targets, replies, winner, oldest, newest)
		putReplySlice(replies)
		return winner, adjErr
	}
	// Delivery happened early; finish collecting in the background so
	// the monitoring subsystem still sees every release's behaviour.
	// Collection is bounded by the call timeout, so Close never waits
	// longer than that.
	remaining := len(targets) - received
	partial := replies
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer cancel()
		for i := 0; i < remaining; i++ {
			in := <-ch
			partial[in.i] = in.r
		}
		e.record(operation, targets, partial, winner, oldest, newest)
		putReplySlice(partial)
	}()
	return winner, adjErr
}

// ---------------------------------------------------------------------------
// Per-dispatch reply slice recycling

// replySlices recycles the reply scratch slices of dispatch. Fan-outs
// are small (a handful of releases), so the slices are tiny but
// allocated twice per consumer request; pooling removes them from the
// hot path. A slice must only be returned once nothing aliases it: the
// winner is a value copy, adjudicators must not retain replies, and
// record builds its own observation slice.
var replySlices = sync.Pool{New: func() interface{} { return new([]adjudicate.Reply) }}

func getReplySlice(n int) []adjudicate.Reply {
	p := replySlices.Get().(*[]adjudicate.Reply)
	if cap(*p) >= n {
		return (*p)[:n]
	}
	if n < 8 {
		return make([]adjudicate.Reply, n, 8)
	}
	return make([]adjudicate.Reply, n)
}

func putReplySlice(s []adjudicate.Reply) {
	s = s[:cap(s)]
	for i := range s {
		s[i] = adjudicate.Reply{} // drop body/header references
	}
	replySlices.Put(&s)
}

// responded reports whether an exchange produced an application-level
// response (a SOAP fault counts; a timeout or transport error does not).
func responded(r adjudicate.Reply) bool {
	return r.Valid() || isFault(r.Err)
}

func anyValid(replies []adjudicate.Reply) bool {
	for _, r := range replies {
		if r.Release != "" && r.Valid() {
			return true
		}
	}
	return false
}

// dispatchSequential implements §4.2 mode 4: releases execute one at a
// time; the next is invoked only on an evident failure of the previous.
func (e *Engine) dispatchSequential(ctx context.Context, targets []Endpoint, envelope []byte,
	operation string, deliver func([]adjudicate.Reply) (adjudicate.Reply, error)) (adjudicate.Reply, error) {
	called := getReplySlice(len(targets))[:0]
	calledEps := make([]Endpoint, 0, len(targets))
	for _, t := range targets {
		r := e.callRelease(ctx, t, operation, envelope)
		called = append(called, r)
		calledEps = append(calledEps, t)
		if r.Valid() {
			break
		}
	}
	collected := getReplySlice(len(called))[:0]
	for _, r := range called {
		if responded(r) {
			collected = append(collected, r)
		}
	}
	winner, err := deliver(collected)
	putReplySlice(collected)
	oldest, newest := targets[0], targets[len(targets)-1]
	e.record(operation, calledEps, called, winner, oldest, newest)
	putReplySlice(called)
	return winner, err
}

// deliveryAdjudicator selects the phase-appropriate delivery rule.
func (e *Engine) deliveryAdjudicator(phase Phase, oldest, newest Endpoint, adj adjudicate.Adjudicator) adjudicate.Adjudicator {
	switch phase {
	case PhaseOldOnly:
		return adjudicate.Preferred{Release: oldest.Version, Fallback: adj}
	case PhaseObservation:
		// §3.1: the old release remains authoritative during the
		// transitional period; its response is delivered while the new
		// release is only observed.
		return adjudicate.Preferred{Release: oldest.Version, Fallback: adj}
	case PhaseNewOnly:
		return adjudicate.Preferred{Release: newest.Version, Fallback: adj}
	default:
		return adj
	}
}

// callRelease invokes one release and classifies the outcome. A 200
// response's body is extracted with the zero-copy sniffer; the full
// parse runs only for unusual envelopes and for fault decoding (the
// SOAP 1.1 binding carries faults on HTTP 500).
func (e *Engine) callRelease(ctx context.Context, ep Endpoint, operation string, envelope []byte) adjudicate.Reply {
	start := time.Now()
	reply := adjudicate.Reply{Release: ep.Version}
	res, err := httpx.PostXML(ctx, e.client, ep.URL, soap.ContentType, envelope, e.cfg.Retry)
	reply.Latency = time.Since(start)
	if err != nil {
		reply.Err = fmt.Errorf("core: release %s: %w", ep.Version, err)
		return reply
	}
	reply.Header = res.Header
	switch res.Status {
	case http.StatusOK:
		if inner, _, ok := soap.SniffBody(res.Body); ok {
			reply.Body = inner
			return reply
		}
		parsed, perr := soap.Parse(res.Body)
		if perr != nil {
			reply.Err = fmt.Errorf("core: release %s: %w", ep.Version, perr)
			return reply
		}
		reply.Body = parsed.BodyXML
	case http.StatusInternalServerError:
		parsed, perr := soap.Parse(res.Body)
		if perr == nil && parsed.Fault != nil {
			reply.Err = parsed.Fault
			return reply
		}
		reply.Err = fmt.Errorf("core: release %s: HTTP %d", ep.Version, res.Status)
	default:
		reply.Err = fmt.Errorf("core: release %s: HTTP %d", ep.Version, res.Status)
	}
	return reply
}

// record feeds the monitoring subsystem and evaluates the switch policy.
func (e *Engine) record(operation string, targets []Endpoint, replies []adjudicate.Reply,
	winner adjudicate.Reply, oldest, newest Endpoint) {
	failed := e.oracle.Judge(operation, replies)
	rec := monitor.Record{
		Time:      time.Now(),
		Operation: operation,
		Winner:    winner.Release,
	}
	var oldFailed, newFailed *bool
	for i, r := range replies {
		if r.Release == "" {
			continue
		}
		obs := monitor.Observation{
			Release:   r.Release,
			Responded: responded(r),
			Evident:   !r.Valid(),
			Judged:    true,
			Failed:    failed[i],
			Latency:   r.Latency,
		}
		rec.Releases = append(rec.Releases, obs)
		f := failed[i]
		if r.Release == oldest.Version {
			oldFailed = &f
		}
		if r.Release == newest.Version {
			newFailed = &f
		}
	}
	if oldFailed != nil && newFailed != nil && oldest.Version != newest.Version {
		rec.Joint = bayes.Outcome(*oldFailed, *newFailed)
	}
	e.mon.Note(rec)

	if e.cfg.Policy != nil && rec.Joint != 0 {
		e.evaluatePolicy()
	}
}

// isFault reports whether an evident failure still carried a response
// (a SOAP fault is a response; a timeout or transport error is not).
func isFault(err error) bool {
	var f *soap.Fault
	return errors.As(err, &f)
}

// evaluatePolicy runs the Bayesian switch criterion (§4.4, §5.1.1.2).
func (e *Engine) evaluatePolicy() {
	e.policyMu.Lock()
	defer e.policyMu.Unlock()

	if e.state.Load().phase == PhaseNewOnly {
		return
	}
	counts := e.mon.Joint()
	p := e.cfg.Policy
	if counts.N < p.MinDemands || counts.N%p.CheckEvery != 0 {
		return
	}
	post, err := e.inference.Posterior(counts)
	if err != nil {
		return
	}
	if p.Criterion.Satisfied(post) {
		_ = e.updateState(func(s *engineState) error {
			if s.phase != PhaseNewOnly {
				s.phase = PhaseNewOnly
				s.switchedAt = counts.N
			}
			return nil
		})
	}
}

// ---------------------------------------------------------------------------
// Confidence (§6.2)

// ConfidenceReport is a snapshot of the engine's confidence in the
// release pair for one operation ("" = all operations pooled).
type ConfidenceReport struct {
	// Operation is the queried operation ("" for the pooled record).
	Operation string
	// Target is the pfd target T of the confidences.
	Target float64
	// Old is P(pfd_old ≤ T | observations).
	Old float64
	// New is P(pfd_new ≤ T | observations).
	New float64
	// Published is the single value published to consumers: the
	// confidence of what they are currently served (conservatively the
	// smaller of the two while both releases' responses can be
	// delivered).
	Published float64
	// OldP99 and NewP99 are the 99% pfd percentiles (eq. 6).
	OldP99, NewP99 float64
	// Demands is the number of joint observations behind the report.
	Demands int
}

// Confidence computes the report for one operation; operation "" pools
// all operations.
func (e *Engine) Confidence(operation string) (ConfidenceReport, error) {
	if e.inference == nil {
		return ConfidenceReport{}, ErrNoInference
	}
	var counts bayes.JointCounts
	if operation == "" {
		counts = e.mon.Joint()
	} else {
		counts = e.mon.JointFor(operation)
	}
	post, err := e.inference.Posterior(counts)
	if err != nil {
		return ConfidenceReport{}, fmt.Errorf("core: computing posterior: %w", err)
	}
	rep := ConfidenceReport{
		Operation: operation,
		Target:    e.cfg.ConfidenceTarget,
		Old:       post.ConfidenceA(e.cfg.ConfidenceTarget),
		New:       post.ConfidenceB(e.cfg.ConfidenceTarget),
		OldP99:    post.PercentileA(0.99),
		NewP99:    post.PercentileB(0.99),
		Demands:   counts.N,
	}
	switch e.Phase() {
	case PhaseOldOnly, PhaseObservation:
		rep.Published = rep.Old
	case PhaseNewOnly:
		rep.Published = rep.New
	default:
		rep.Published = math.Min(rep.Old, rep.New)
	}
	return rep, nil
}

// AvailabilityConfidence computes the confidence that a release's
// probability of not responding within the timeout is at most target —
// the §6.1 "confidence in availability" attribute, read back per release.
// It uses a black-box Beta-binomial inference over the monitor's
// response/no-response record with a diffuse Beta(1,1) prior on [0, 0.9].
func (e *Engine) AvailabilityConfidence(version string, target float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("%w: availability target %v", ErrBadConfig, target)
	}
	s, err := e.mon.Stats(version)
	if err != nil {
		return 0, fmt.Errorf("core: availability confidence: %w", err)
	}
	bb, err := bayes.NewBlackBox(availabilityPrior, 300)
	if err != nil {
		return 0, fmt.Errorf("core: availability prior: %w", err)
	}
	post, err := bb.Posterior(s.Demands, s.Demands-s.Responses)
	if err != nil {
		return 0, fmt.Errorf("core: availability posterior: %w", err)
	}
	return post.CDF(target), nil
}

// availabilityPrior is diffuse: before any evidence every no-response
// probability below 0.9 is equally plausible.
var availabilityPrior = stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.9}

// ResponsivenessConfidence computes the confidence that a release's
// probability of exceeding maxLatency (or not responding at all) is at
// most target — the §6.1 "confidence in responsiveness" attribute.
func (e *Engine) ResponsivenessConfidence(version string, maxLatency time.Duration, target float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("%w: responsiveness target %v", ErrBadConfig, target)
	}
	if maxLatency <= 0 {
		return 0, fmt.Errorf("%w: latency bound %v", ErrBadConfig, maxLatency)
	}
	slow, demands, err := e.mon.SlowResponses(version, maxLatency)
	if err != nil {
		return 0, fmt.Errorf("core: responsiveness confidence: %w", err)
	}
	bb, err := bayes.NewBlackBox(availabilityPrior, 300)
	if err != nil {
		return 0, fmt.Errorf("core: responsiveness prior: %w", err)
	}
	post, err := bb.Posterior(demands, slow)
	if err != nil {
		return 0, fmt.Errorf("core: responsiveness posterior: %w", err)
	}
	return post.CDF(target), nil
}

// publishedConfidence is the scalar used in headers and responses.
func (e *Engine) publishedConfidence(operation string) (float64, error) {
	rep, err := e.Confidence(operation)
	if err != nil {
		return 0, err
	}
	return rep.Published, nil
}

func confidenceHeader(operation string, value float64) soap.HeaderItem {
	return soap.HeaderItem(fmt.Sprintf(
		`<conf:Confidence xmlns:conf=%q operation=%q value="%.6f"/>`,
		wsdl.UpgradeNS, operation, value))
}

// operationConfRequest is §6.2 option 2's request payload.
type operationConfRequest struct {
	Operation string `xml:"operation"`
}

type operationConfResponse struct {
	XMLName    struct{} `xml:"OperationConfResponse"`
	Confidence float64  `xml:"confidence"`
}

// serveConfidenceQuery answers the dedicated OperationConf operation.
func (e *Engine) serveConfidenceQuery(w http.ResponseWriter, parsed *soap.Parsed) {
	var req operationConfRequest
	if err := parsed.DecodeBody(&req); err != nil {
		e.writeFault(w, soap.ClientFault(err.Error()), wsdl.ConfOperationName)
		return
	}
	conf, err := e.publishedConfidence(req.Operation)
	if err != nil {
		e.writeFault(w, soap.ServerFault(err.Error()), wsdl.ConfOperationName)
		return
	}
	body, err := soap.Envelope(operationConfResponse{Confidence: conf})
	if err != nil {
		e.writeFault(w, soap.ServerFault(err.Error()), wsdl.ConfOperationName)
		return
	}
	w.Header().Set("Content-Type", soap.ContentType)
	_, _ = w.Write(body)
}

// serveConfVariant answers an "<op>Conf" call (§6.2 option 3): it invokes
// the underlying operation through the normal managed path and extends
// the response with the confidence element.
func (e *Engine) serveConfVariant(w http.ResponseWriter, r *http.Request, parsed *soap.Parsed, baseOp string) {
	renamed, err := soap.RenameRoot(parsed.BodyXML, baseOp+"Request")
	if err != nil {
		e.writeFault(w, soap.ClientFault(err.Error()), baseOp)
		return
	}
	winner, adjErr := e.dispatch(r.Context(), soap.EnvelopeRaw(renamed), baseOp,
		requestAdjudicator(r, e.adjudic))
	if adjErr != nil {
		e.respond(w, baseOp, winner, adjErr)
		return
	}
	conf, err := e.publishedConfidence(baseOp)
	if err != nil {
		e.writeFault(w, soap.ServerFault(err.Error()), baseOp)
		return
	}
	extended, err := soap.InjectElement(winner.Body,
		[]byte(fmt.Sprintf("<%sConf>%.6f</%sConf>", baseOp, conf, baseOp)))
	if err != nil {
		e.writeFault(w, soap.ServerFault(err.Error()), baseOp)
		return
	}
	renamedResp, err := soap.RenameRoot(extended, baseOp+"ConfResponse")
	if err != nil {
		e.writeFault(w, soap.ServerFault(err.Error()), baseOp)
		return
	}
	winner.Body = renamedResp
	e.respond(w, baseOp, winner, nil)
}

// ---------------------------------------------------------------------------
// Registry integration

// RegistryEntry builds the registry entry describing this engine's
// service surface (the §6.2 "publish the confidence in the UDDI archive"
// path). name is the service name; endpoint is the engine's public URL.
func (e *Engine) RegistryEntry(name, endpoint string) registry.Entry {
	entry := registry.Entry{
		Name:     name,
		Version:  e.newestVersion(),
		URL:      endpoint,
		Provider: "wsupgrade-middleware",
	}
	if e.cfg.Contract != nil && e.inference != nil {
		for _, op := range e.cfg.Contract.Operations {
			if conf, err := e.publishedConfidence(op.Name); err == nil {
				entry.Confidence = append(entry.Confidence, registry.OperationConfidence{
					Name:  op.Name,
					Value: round6(conf),
				})
			}
		}
	}
	return entry
}

func (e *Engine) newestVersion() string {
	releases := e.state.Load().releases
	return releases[len(releases)-1].Version
}

func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// Stats returns the monitoring stats of one release.
func (e *Engine) Stats(version string) (monitor.ReleaseStats, error) {
	return e.mon.Stats(version)
}
