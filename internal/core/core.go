// Package core is the paper's primary contribution: the middleware for
// dependable online upgrade of a Web Service (§4).
//
// The Engine sits behind the service's published WSDL interface and keeps
// several releases of the service operational at once. For every consumer
// request it:
//
//  1. intercepts the SOAP message and fans it out to the deployed
//     releases (all of them, a quorum, or sequentially — the §4.2
//     operating modes);
//  2. collects the responses within a timeout, classifying faults,
//     timeouts and transport errors as evident failures;
//  3. adjudicates a response for the consumer (§5.2.1 rules by default,
//     majority or fastest-valid as alternatives);
//  4. hands every release's behaviour to the monitoring subsystem
//     (§4.3): availability, execution time, judged correctness, and the
//     pairwise (old, new) outcome of Table 1;
//  5. lets the management subsystem (§4.4) evaluate the switch policy —
//     a Bayesian confidence criterion over the accumulated observations —
//     and advance the upgrade lifecycle when the new release has earned
//     enough confidence.
//
// The engine is a thin composition of the middleware's layers:
//
//   - internal/dispatch owns the fan-out mechanics — deadlines derived
//     from the consumer's request context via pooled timers, fan-out
//     goroutines, reply pooling, the single-target fast path, and the
//     §4.2 operating modes;
//   - internal/lifecycle owns the §4.1 phase machine — transition
//     guards, hooks, and the Bayesian switch policy;
//   - internal/monitor and internal/bayes own observation and inference.
//
// What remains here is the composition itself: phase-aware target
// selection and delivery authority, health marks, the monitoring sink,
// the §6.2 confidence-publishing mechanisms (a dedicated OperationConf
// operation, backward-compatible "<op>Conf" variants, per-response
// confidence headers), and registry publication helpers. The lifecycle
// phases follow §3.3/§4.2: OldOnly (new release deployed but unused) →
// Observation (both run back-to-back, the old release's response is
// delivered) → Parallel (adjudicated 1-out-of-2 delivery) → NewOnly
// (switched). Releases can be added and removed online.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/dispatch"
	"wsupgrade/internal/httpx"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/pool"
	"wsupgrade/internal/protocol"
	"wsupgrade/internal/protocol/soapcodec"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/stats"
	"wsupgrade/internal/wire"
	"wsupgrade/internal/wsdl"
)

// Errors reported by the engine.
var (
	// ErrBadConfig reports an invalid engine configuration.
	ErrBadConfig = errors.New("core: bad configuration")
	// ErrBadPhase reports an impossible phase value or transition. It is
	// the lifecycle layer's sentinel: illegal §4.1 transitions returned
	// by SetPhase match both this and lifecycle.ErrIllegalTransition.
	ErrBadPhase = lifecycle.ErrBadPhase
	// ErrUnknownRelease reports an operation on an undeployed release.
	ErrUnknownRelease = errors.New("core: unknown release")
	// ErrNoInference reports a confidence query on an engine built
	// without an inference configuration.
	ErrNoInference = errors.New("core: no inference engine configured")
)

// Endpoint identifies one deployed release of the upgraded service.
type Endpoint = dispatch.Endpoint

// Phase is the upgrade lifecycle state (§3.3, §4.2); see
// internal/lifecycle for the transition rules.
type Phase = lifecycle.Phase

// Lifecycle phases.
const (
	PhaseOldOnly     = lifecycle.PhaseOldOnly
	PhaseObservation = lifecycle.PhaseObservation
	PhaseParallel    = lifecycle.PhaseParallel
	PhaseNewOnly     = lifecycle.PhaseNewOnly
)

// Mode is the fan-out strategy while several releases are invoked (§4.2).
type Mode = dispatch.Mode

// Operating modes.
const (
	ModeReliability    = dispatch.ModeReliability
	ModeResponsiveness = dispatch.ModeResponsiveness
	ModeDynamic        = dispatch.ModeDynamic
	ModeSequential     = dispatch.ModeSequential
)

// PolicyConfig is the management subsystem's automatic switch rule
// (§5.1.1.2): when Criterion is satisfied on the posterior, the engine
// advances to PhaseNewOnly.
type PolicyConfig = lifecycle.SwitchPolicy

// Config parameterizes the engine.
type Config struct {
	// Releases lists the deployed releases, oldest first. At least one.
	Releases []Endpoint
	// Timeout bounds each fan-out (default 2 s).
	Timeout time.Duration
	// Mode selects the fan-out strategy (default ModeReliability).
	Mode Mode
	// Quorum is ModeDynamic's response count (default 1).
	Quorum int
	// Adjudicator picks the delivered response in PhaseParallel
	// (default adjudicate.RandomValid, the paper's §5.2.1 rules).
	Adjudicator adjudicate.Adjudicator
	// Oracle judges response correctness for monitoring (default
	// oracle.FaultOnly: evident failures only).
	Oracle oracle.Oracle
	// Codec selects the unit's wire protocol (the protocol seam —
	// soapcodec.Default, jsoncodec.Default, ...); nil means SOAP. The
	// §6.2 confidence operations (EnableConfOps) need a codec
	// implementing protocol.ConfOps; units whose codec has no native
	// header representation publish PublishHeader confidence via the
	// ConfidenceHeader HTTP header instead.
	Codec protocol.Codec
	// InitialPhase is the starting lifecycle state (default
	// PhaseParallel; PhaseOldOnly and PhaseObservation need ≥2
	// releases).
	InitialPhase Phase
	// Policy enables automatic switching; nil means manual only.
	Policy *PolicyConfig
	// Inference configures the white-box confidence engine over the
	// (oldest, newest) release pair. Required when Policy is set or
	// confidence is published.
	Inference *bayes.WhiteBoxConfig
	// ConfidenceTarget is the pfd target T of the published confidence
	// P(pfd ≤ T) (default 1e-2).
	ConfidenceTarget float64
	// Retry tolerates transient transport failures per release call
	// (default httpx.NoRetry).
	Retry httpx.RetryPolicy
	// PublishHeader attaches a confidence header to every response
	// (§6.2's protocol-handler mechanism).
	PublishHeader bool
	// EnableConfOps serves OperationConf and "<op>Conf" variants (§6.2
	// options 2 and 3).
	EnableConfOps bool
	// Contract optionally describes the proxied service; when set, the
	// engine serves the §6.2-extended WSDL at /wsdl.
	Contract *wsdl.Contract
	// Monitor overrides the monitoring subsystem (default monitor.New()).
	Monitor *monitor.Monitor
	// HTTP overrides the release-call transport with a net/http client.
	// When nil (and UseNetHTTP is false) release calls go over the
	// internal/wire client — the lean HTTP/1.1 dispatch transport with
	// per-endpoint connection pools. Set HTTP (or UseNetHTTP) for TLS,
	// proxies or any other case that needs the full net/http stack.
	HTTP *http.Client
	// UseNetHTTP forces the net/http fallback transport (an
	// httpx.NewPooledClient) even when HTTP is nil.
	UseNetHTTP bool
	// Dial overrides the wire transport's connection establishment
	// (in-memory benchmarks and tests). Ignored when HTTP or UseNetHTTP
	// selects the net/http path.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// Wire injects a shared wire client (the fleet's cross-unit pool);
	// nil means the engine builds and owns one. Ignored when HTTP or
	// UseNetHTTP selects the net/http path.
	Wire *wire.Client
	// Seed drives adjudication tie-breaking.
	Seed uint64
	// Store streams the event log as JSONL (the architecture's
	// "Data Base"); nil disables.
	Store io.Writer
}

// engineState is the complete dispatch-relevant configuration, swapped
// atomically as one immutable value. The request hot path loads it with
// a single atomic pointer read and never takes the engine mutex; writers
// (the management subsystem: SetPhase, SetMode, SetTimeout, AddRelease,
// RemoveRelease, CheckHealth, the automatic switch policy) serialize on
// Engine.mu, copy the current state, and publish the successor.
//
// An *engineState must never be mutated after publication: releases and
// down are owned by the state value and shared by every reader.
type engineState struct {
	releases   []Endpoint
	down       map[string]bool // releases marked unavailable by health checks; nil when none
	phase      Phase
	mode       Mode
	quorum     int
	timeout    time.Duration
	switchedAt int // joint demands when auto-switch fired; 0 = not yet
	// deliver is the phase-appropriate delivery rule, precomputed at
	// publication so the hot path never re-boxes an adjudicator.
	deliver adjudicate.Adjudicator
	// winnerHdr maps each release version to its precomputed
	// X-Wsupgrade-Winner header value slice, so the response path does
	// not allocate a fresh []string per request. The slices are shared:
	// response writers must not mutate them (net/http and httptest only
	// read or clone).
	winnerHdr map[string][]string
}

// winnerHeaders precomputes the per-release winner-header values.
func winnerHeaders(releases []Endpoint) map[string][]string {
	m := make(map[string][]string, len(releases))
	for _, r := range releases {
		m[r.Version] = []string{r.Version}
	}
	return m
}

// clone returns a deep copy safe to mutate before publication.
func (s *engineState) clone() *engineState {
	c := *s
	c.releases = append([]Endpoint(nil), s.releases...)
	if len(s.down) > 0 {
		c.down = make(map[string]bool, len(s.down))
		for k, v := range s.down {
			if v {
				c.down[k] = true
			}
		}
	} else {
		c.down = nil
	}
	return &c
}

// deliveryRule selects the phase-appropriate delivery authority (§3.1:
// the old release remains authoritative until the switch).
func deliveryRule(phase Phase, oldest, newest Endpoint, adj adjudicate.Adjudicator) adjudicate.Adjudicator {
	switch phase {
	case PhaseOldOnly, PhaseObservation:
		return adjudicate.Preferred{Release: oldest.Version, Fallback: adj}
	case PhaseNewOnly:
		return adjudicate.Preferred{Release: newest.Version, Fallback: adj}
	default:
		return adj
	}
}

// Engine is the managed-upgrade middleware. It implements http.Handler
// (the SOAP endpoint); Handler() adds /wsdl and /healthz.
// Construct with New; call Close to drain background monitoring work.
type Engine struct {
	cfg    Config
	client *http.Client
	// ownsClient marks an engine-built client whose pooled transport
	// Close must shut down (a caller-supplied Config.HTTP is theirs).
	ownsClient bool
	// wire is the lean dispatch transport (nil on the net/http path);
	// ownsWire marks one built (and closed) by this engine rather than
	// injected by a fleet.
	wire      *wire.Client
	ownsWire  bool
	adjudic   adjudicate.Adjudicator
	oracle    oracle.Oracle
	mon       *monitor.Monitor
	inference *bayes.WhiteBox
	disp      *dispatch.Dispatcher

	// codec is the unit's wire protocol; the derived fields are
	// precomputed at New so the request path never rebuilds them:
	// confOps is the codec's §6.2 extension (nil when it has none),
	// confQueryElement the wire element selecting the dedicated
	// confidence query, ctHeader the shared Content-Type header value
	// slice, and postOnlyMsg/badTypeMsg the gateway rejection texts.
	codec            protocol.Codec
	confOps          protocol.ConfOps
	confQueryElement string
	ctHeader         []string
	postOnlyMsg      string
	badTypeMsg       string

	// contractOps is the set of operation names in cfg.Contract (nil
	// when no contract is configured). It guards §6.2 "<op>Conf" variant
	// routing: a genuine contract operation whose name happens to end in
	// "Conf" must not be hijacked.
	contractOps map[string]bool

	state atomic.Pointer[engineState]
	mu    sync.Mutex // serializes state writers (copy-on-write publishers)

	// hooks observe lifecycle transitions (fleet aggregation, logging);
	// relHooks observe release-set changes (journal capture).
	hooks    lifecycle.Hooks
	relHooks releaseHooks

	policyMu sync.Mutex // serializes posterior evaluation

	// healthCheckDone, when set before StartHealthChecks, is called after
	// every periodic probe round. Tests use it to synchronize on prober
	// progress without sleeping.
	healthCheckDone func()
}

var _ http.Handler = (*Engine)(nil)

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Releases) == 0 {
		return nil, fmt.Errorf("%w: no releases", ErrBadConfig)
	}
	seen := map[string]bool{}
	for _, r := range cfg.Releases {
		if r.Version == "" || r.URL == "" {
			return nil, fmt.Errorf("%w: release needs version and URL: %+v", ErrBadConfig, r)
		}
		if seen[r.Version] {
			return nil, fmt.Errorf("%w: duplicate release %q", ErrBadConfig, r.Version)
		}
		seen[r.Version] = true
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("%w: negative timeout", ErrBadConfig)
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeReliability
	}
	switch {
	case cfg.Mode == ModeDynamic:
		if cfg.Quorum == 0 {
			cfg.Quorum = 1
		}
		if cfg.Quorum < 1 || cfg.Quorum > len(cfg.Releases) {
			return nil, fmt.Errorf("%w: quorum %d with %d releases", ErrBadConfig, cfg.Quorum, len(cfg.Releases))
		}
	case cfg.Mode.Known():
	default:
		return nil, fmt.Errorf("%w: mode %v", ErrBadConfig, cfg.Mode)
	}
	if cfg.InitialPhase == 0 {
		cfg.InitialPhase = PhaseParallel
	}
	if err := lifecycle.Validate(cfg.InitialPhase, len(cfg.Releases)); err != nil {
		return nil, err
	}
	if cfg.Adjudicator == nil {
		cfg.Adjudicator = adjudicate.RandomValid{}
	}
	if cfg.Oracle == nil {
		cfg.Oracle = oracle.FaultOnly{}
	}
	if cfg.ConfidenceTarget == 0 {
		cfg.ConfidenceTarget = 1e-2
	}
	if cfg.ConfidenceTarget < 0 || cfg.ConfidenceTarget > 1 {
		return nil, fmt.Errorf("%w: confidence target %v", ErrBadConfig, cfg.ConfidenceTarget)
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry = httpx.NoRetry
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Policy != nil {
		if err := cfg.Policy.Normalize(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		if cfg.Inference == nil {
			return nil, fmt.Errorf("%w: policy requires an inference configuration", ErrBadConfig)
		}
	}

	e := &Engine{
		cfg:     cfg,
		adjudic: cfg.Adjudicator,
		oracle:  cfg.Oracle,
	}
	codec := cfg.Codec
	if codec == nil {
		codec = soapcodec.Default
	}
	e.codec = codec
	e.ctHeader = []string{codec.ContentType()}
	e.postOnlyMsg = codec.Name() + " endpoint: POST only"
	e.badTypeMsg = codec.Name() + " endpoint: unsupported content type"
	if co, ok := codec.(protocol.ConfOps); ok {
		e.confOps = co
		e.confQueryElement = co.ConfQueryElement()
	}
	if cfg.EnableConfOps && e.confOps == nil {
		return nil, fmt.Errorf("%w: codec %q has no confidence-operation support (EnableConfOps)", ErrBadConfig, codec.Name())
	}
	// The monitor exists before the first state publication: every
	// published state carries its releases' interned monitor indices.
	if cfg.Monitor != nil {
		e.mon = cfg.Monitor
	} else {
		opts := []monitor.Option{}
		if cfg.Store != nil {
			opts = append(opts, monitor.WithSink(cfg.Store))
		}
		e.mon = monitor.New(opts...)
	}
	releases := append([]Endpoint(nil), cfg.Releases...)
	e.internReleases(releases)
	e.state.Store(&engineState{
		releases:  releases,
		phase:     cfg.InitialPhase,
		mode:      cfg.Mode,
		quorum:    cfg.Quorum,
		timeout:   cfg.Timeout,
		deliver:   deliveryRule(cfg.InitialPhase, releases[0], releases[len(releases)-1], cfg.Adjudicator),
		winnerHdr: winnerHeaders(releases),
	})
	var post dispatch.PostFunc
	switch {
	case cfg.HTTP != nil:
		e.client = cfg.HTTP
	case cfg.UseNetHTTP:
		// The net/http fallback: a dedicated pooled transport
		// (http.DefaultTransport keeps only 2 idle connections per host,
		// so parallel fan-out to the same release endpoint would re-dial
		// on every burst).
		e.client = httpx.NewPooledClient(cfg.Timeout+500*time.Millisecond, len(cfg.Releases))
		e.ownsClient = true
	default:
		// The wire transport: release calls bypass net/http entirely.
		if cfg.Wire != nil {
			e.wire = cfg.Wire
			// Management traffic (health probes) is low-rate; a plain
			// shared-transport client suffices when the wire client (and
			// its fallback) belong to a fleet.
			e.client = httpx.NewClient(cfg.Timeout + 500*time.Millisecond)
		} else {
			// The pooled net/http client does double duty: it is the wire
			// client's fallback for endpoints wire does not speak natively
			// (https — a TLS release must keep PR 2's per-host idle pool,
			// not starve on http.DefaultClient), and the engine's own
			// management/probe client.
			fallback := httpx.NewPooledClient(cfg.Timeout+500*time.Millisecond, len(cfg.Releases))
			e.wire = wire.NewClient(wire.Options{
				Dial:     cfg.Dial,
				Timeout:  cfg.Timeout + 500*time.Millisecond,
				Fallback: fallback,
			})
			e.ownsWire = true
			e.client = fallback
			e.ownsClient = true
		}
		post = e.wire.PostXML
	}
	e.disp = dispatch.New(dispatch.Config{
		Post:      post,
		Client:    e.client,
		Retry:     cfg.Retry,
		Seed:      cfg.Seed,
		OnOutcome: e.recordOutcome,
		Codec:     codec,
	})
	if cfg.Contract != nil {
		e.contractOps = make(map[string]bool, len(cfg.Contract.Operations))
		for _, op := range cfg.Contract.Operations {
			e.contractOps[op.Name] = true
		}
	}
	if cfg.Inference != nil {
		wb, err := bayes.NewWhiteBox(*cfg.Inference)
		if err != nil {
			return nil, fmt.Errorf("core: building inference engine: %w", err)
		}
		e.inference = wb
	}
	return e, nil
}

// Close waits for background monitoring work to finish (bounded by the
// call timeout) and shuts down the engine-owned transport's keep-alive
// connections (up to 32 per release host would otherwise linger for the
// 90 s idle timeout). The engine must not serve new requests afterwards.
func (e *Engine) Close() error {
	err := e.disp.Close()
	if e.ownsClient {
		e.client.CloseIdleConnections()
	}
	if e.ownsWire {
		_ = e.wire.Close()
	}
	return err
}

// Monitor exposes the monitoring subsystem.
func (e *Engine) Monitor() *monitor.Monitor { return e.mon }

// OnTransition registers an observer of lifecycle transitions (manual,
// policy-driven, and topology-forced alike). Hooks fire after the
// transition has been published, outside the engine's write lock; they
// must not block and must not call the engine's own mutators.
func (e *Engine) OnTransition(fn func(lifecycle.Transition)) {
	e.hooks.Add(fn)
}

// updateState publishes a successor state built by mutate, serialized
// against every other writer. mutate receives a private clone; returning
// an error discards it without publication. A phase change fires the
// transition hooks after publication.
func (e *Engine) updateState(cause lifecycle.Cause, mutate func(*engineState) error) error {
	e.mu.Lock()
	cur := e.state.Load()
	next := cur.clone()
	if err := mutate(next); err != nil {
		e.mu.Unlock()
		return err
	}
	next.deliver = deliveryRule(next.phase, next.releases[0],
		next.releases[len(next.releases)-1], e.adjudic)
	next.winnerHdr = winnerHeaders(next.releases)
	e.internReleases(next.releases)
	e.state.Store(next)
	from, to := cur.phase, next.phase
	demands := 0
	if cause == lifecycle.CausePolicy {
		demands = next.switchedAt
	}
	e.mu.Unlock()
	if from != to {
		e.hooks.Fire(lifecycle.Transition{From: from, To: to, Cause: cause, Demands: demands})
	}
	e.fireReleaseChanges(cur.releases, next.releases)
	return nil
}

// Phase returns the current lifecycle phase.
func (e *Engine) Phase() Phase {
	return e.state.Load().phase
}

// SetPhase transitions the lifecycle manually. The transition is
// validated against the §4.1 rules (lifecycle.DefaultRules: forward
// movement with skips, abort to OldOnly, restart out of NewOnly) and
// the deployed release count; an illegal transition is rejected with an
// error matching both ErrBadPhase and lifecycle.ErrIllegalTransition.
func (e *Engine) SetPhase(p Phase) error {
	return e.updateState(lifecycle.CauseManual, func(s *engineState) error {
		if err := lifecycle.DefaultRules.CanTransition(s.phase, p); err != nil {
			return err
		}
		if err := lifecycle.Validate(p, len(s.releases)); err != nil {
			return err
		}
		s.phase = p
		return nil
	})
}

// SwitchedAt reports the joint-demand count at which the automatic policy
// switched to the new release (0, false if it has not).
func (e *Engine) SwitchedAt() (int, bool) {
	at := e.state.Load().switchedAt
	return at, at > 0
}

// Releases returns the deployed releases, oldest first.
func (e *Engine) Releases() []Endpoint {
	return append([]Endpoint(nil), e.state.Load().releases...)
}

// AddRelease deploys a release online; it becomes the newest.
func (e *Engine) AddRelease(ep Endpoint) error {
	if ep.Version == "" || ep.URL == "" {
		return fmt.Errorf("%w: release needs version and URL", ErrBadConfig)
	}
	return e.updateState(lifecycle.CauseTopology, func(s *engineState) error {
		for _, r := range s.releases {
			if r.Version == ep.Version {
				return fmt.Errorf("%w: duplicate release %q", ErrBadConfig, ep.Version)
			}
		}
		s.releases = append(s.releases, ep)
		return nil
	})
}

// RemoveRelease phases a release out online. The last release cannot be
// removed, and removing below two releases forces PhaseNewOnly.
func (e *Engine) RemoveRelease(version string) error {
	return e.updateState(lifecycle.CauseTopology, func(s *engineState) error {
		idx := -1
		for i, r := range s.releases {
			if r.Version == version {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("%w: %q", ErrUnknownRelease, version)
		}
		if len(s.releases) == 1 {
			return fmt.Errorf("%w: cannot remove the only release", ErrBadPhase)
		}
		s.releases = append(s.releases[:idx], s.releases[idx+1:]...)
		if len(s.releases) < 2 && (s.phase == PhaseObservation || s.phase == PhaseParallel) {
			s.phase = PhaseNewOnly
		}
		return nil
	})
}

// snapshot returns the state a request handler works with. The returned
// slice is shared with the immutable state value and must not be mutated.
func (e *Engine) snapshot() ([]Endpoint, Phase) {
	s := e.state.Load()
	return s.releases, s.phase
}

// Mode returns the current fan-out mode.
func (e *Engine) Mode() Mode {
	return e.state.Load().mode
}

// SetMode reconfigures the fan-out mode online — §4.2's "the number of
// responses and the timeout can be changed dynamically". quorum applies
// to ModeDynamic and is ignored otherwise.
func (e *Engine) SetMode(mode Mode, quorum int) error {
	return e.updateState(lifecycle.CauseManual, func(s *engineState) error {
		switch {
		case mode == ModeDynamic:
			if quorum == 0 {
				quorum = 1
			}
			if quorum < 1 || quorum > len(s.releases) {
				return fmt.Errorf("%w: quorum %d with %d releases", ErrBadConfig, quorum, len(s.releases))
			}
		case mode.Known():
		default:
			return fmt.Errorf("%w: mode %v", ErrBadConfig, mode)
		}
		s.mode = mode
		if mode == ModeDynamic {
			s.quorum = quorum
		}
		return nil
	})
}

// Timeout returns the current fan-out deadline.
func (e *Engine) Timeout() time.Duration {
	return e.state.Load().timeout
}

// SetTimeout reconfigures the fan-out deadline online.
func (e *Engine) SetTimeout(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("%w: timeout %v", ErrBadConfig, d)
	}
	return e.updateState(lifecycle.CauseManual, func(s *engineState) error {
		s.timeout = d
		return nil
	})
}

// ---------------------------------------------------------------------------
// Health checking and recovery (§4.1's management subsystem)

// Health reports one release's probe outcome.
type Health struct {
	Release string
	URL     string
	Up      bool
	Err     error
}

// CheckHealth probes every deployed release's /healthz endpoint, updates
// the engine's availability marks (a release marked down is skipped by
// fan-outs until it recovers), and returns the probe results.
func (e *Engine) CheckHealth(ctx context.Context) []Health {
	releases, _ := e.snapshot()
	results := make([]Health, len(releases))
	var wg sync.WaitGroup
	for i, rel := range releases {
		i, rel := i, rel
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = e.probe(ctx, rel)
		}()
	}
	wg.Wait()

	_ = e.updateState(lifecycle.CauseTopology, func(s *engineState) error {
		for _, h := range results {
			if h.Up {
				delete(s.down, h.Release)
				continue
			}
			if s.down == nil {
				s.down = make(map[string]bool)
			}
			s.down[h.Release] = true
		}
		return nil
	})
	return results
}

func (e *Engine) probe(ctx context.Context, rel Endpoint) Health {
	h := Health{Release: rel.Version, URL: rel.URL}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rel.URL+"/healthz", nil)
	if err != nil {
		h.Err = err
		return h
	}
	resp, err := e.client.Do(req)
	if err != nil {
		h.Err = err
		return h
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		h.Err = fmt.Errorf("core: health probe of %s: HTTP %d", rel.Version, resp.StatusCode)
		return h
	}
	h.Up = true
	return h
}

// Down reports whether a release is currently marked unavailable.
func (e *Engine) Down(version string) bool {
	return e.state.Load().down[version]
}

// StartHealthChecks runs CheckHealth every interval until the returned
// stop function is called. The loop is owned: stop blocks until the
// prober goroutine has exited.
func (e *Engine) StartHealthChecks(interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("%w: health-check interval %v", ErrBadConfig, interval)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	// The prober is an owned background loop, detached from any request
	// by design. Every probe derives from a root that stop() cancels, so
	// shutdown interrupts an in-flight health check instead of waiting
	// out its full timeout.
	//wsu:allow ctxhygiene -- owned background prober; the root is cancelled by stop()
	root, cancelRoot := context.WithCancel(context.Background())
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(root, interval)
				e.CheckHealth(ctx)
				cancel()
				if e.healthCheckDone != nil {
					e.healthCheckDone()
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancelRoot()
			close(done)
		})
		<-finished
	}, nil
}

// ---------------------------------------------------------------------------
// Request handling

// Handler returns the full HTTP surface: the SOAP endpoint at "/", the
// extended WSDL at "/wsdl" and a liveness probe at "/healthz".
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", e)
	mux.HandleFunc("/wsdl", e.serveWSDL)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

func (e *Engine) serveWSDL(w http.ResponseWriter, r *http.Request) {
	if e.cfg.Contract == nil {
		http.Error(w, "no contract configured", http.StatusNotFound)
		return
	}
	contract := *e.cfg.Contract
	if e.cfg.EnableConfOps {
		contract = contract.WithConfidenceOperation()
		for _, op := range e.cfg.Contract.Operations {
			extended, err := contract.WithConfVariant(op.Name)
			if err == nil {
				contract = extended
			}
		}
	}
	def, err := wsdl.Generate(contract, requestScheme(r)+"://"+r.Host+"/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := def.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(data)
}

// requestScheme derives the scheme consumers should use to reach this
// engine: https when the request arrived over TLS, or whatever a
// trusted reverse proxy reports in X-Forwarded-Proto. The published
// WSDL endpoint address must match what the consumer can actually dial.
func requestScheme(r *http.Request) string {
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	if proto := r.Header.Get("X-Forwarded-Proto"); proto != "" {
		if i := strings.IndexByte(proto, ','); i >= 0 {
			proto = proto[:i] // first hop wins in a proxy chain
		}
		switch strings.ToLower(strings.TrimSpace(proto)) {
		case "http":
			scheme = "http"
		case "https":
			scheme = "https"
		}
	}
	return scheme
}

// AdjudicatorHeader lets a consumer select the adjudication mechanism for
// its own requests (§6.1: "users can explicitly specify the adjudication
// mechanism they would like applied to their own requests"). Valid
// values: "random-valid", "majority", "fastest-valid". Unknown values are
// ignored in favour of the engine default.
const AdjudicatorHeader = "X-Wsupgrade-Adjudicator"

// ConfidenceHeader carries the published confidence (§6.2) on
// responses of units whose codec has no native header representation
// (the SOAP codec publishes a conf:Confidence SOAP header instead).
const ConfidenceHeader = "X-Wsupgrade-Confidence"

// maxRequestBytes bounds consumer request bodies (matches the SOAP
// message limit and the release-response cap).
const maxRequestBytes = 10 << 20

// ServeHTTP intercepts one consumer request. The codec classifies the
// demand on its own hot path — the SOAP codec's zero-copy envelope
// sniff (which validates the whole structural tag tree, falling back
// to a DOM parse for unusual envelopes), the JSON codec's URL-path
// route. The residual gap is the codec's: a message with content-level
// malformation only a full parse detects can classify clean and be
// rejected by the releases instead of locally; those faults reach the
// consumer as faults — the same monitoring exposure an unknown
// operation name has always had.
func (e *Engine) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		e.codec.WriteRejection(w, http.StatusMethodNotAllowed, e.postOnlyMsg)
		return
	}
	// A Content-Type that contradicts the unit's protocol is rejected
	// before the body is read: a SOAP envelope posted to a JSON unit
	// (or vice versa) is a routing mistake, not a malformed demand, and
	// 415 says so where a decode fault would mislead.
	if ct := r.Header.Get("Content-Type"); !e.codec.Accepts(ct) {
		e.codec.WriteRejection(w, http.StatusUnsupportedMediaType, e.badTypeMsg)
		return
	}
	envBuf, err := httpx.ReadBoundedBuf(r.Body, maxRequestBytes)
	if err != nil {
		envBuf.Release() // nil on error; Release is nil-safe
		e.codec.WriteError(w, "", protocol.ClientError(fmt.Sprintf("reading request: %v", err)))
		return
	}
	req, err := e.codec.DecodeRequest(r.URL.Path, envBuf.B)
	if err != nil {
		envBuf.Release()
		e.codec.WriteError(w, "", err)
		return
	}
	operation := req.Op

	if e.cfg.EnableConfOps {
		if req.Element == e.confQueryElement {
			e.serveConfidenceQuery(w, envBuf)
			return
		}
		if base, ok := e.confVariantBase(operation); ok {
			e.serveConfVariant(w, r, envBuf, base)
			return
		}
	}
	e.proxy(w, r, envBuf, operation)
}

// confVariantBase reports whether operation is a §6.2 "<op>Conf"
// variant, returning the underlying operation name. When a Contract is
// configured, the variant interpretation applies only if the base
// operation exists in the contract and the full name does not — a
// genuine contract operation named e.g. "GetConf" is proxied as itself.
func (e *Engine) confVariantBase(operation string) (string, bool) {
	if !strings.HasSuffix(operation, "Conf") || operation == wsdl.ConfOperationName {
		return "", false
	}
	base := strings.TrimSuffix(operation, "Conf")
	if e.contractOps != nil && (e.contractOps[operation] || !e.contractOps[base]) {
		return "", false
	}
	return base, true
}

// headerAdjudicator returns the consumer's explicit per-request
// adjudicator choice, if any.
func headerAdjudicator(r *http.Request) (adjudicate.Adjudicator, bool) {
	if r == nil {
		return nil, false
	}
	switch r.Header.Get(AdjudicatorHeader) {
	case "random-valid":
		return adjudicate.RandomValid{}, true
	case "majority":
		return adjudicate.Majority{}, true
	case "fastest-valid":
		return adjudicate.FastestValid{}, true
	default:
		return nil, false
	}
}

// requestAdjudicator honours the consumer's per-request adjudicator
// choice, falling back to the engine default.
func requestAdjudicator(r *http.Request, fallback adjudicate.Adjudicator) adjudicate.Adjudicator {
	if adj, ok := headerAdjudicator(r); ok {
		return adj
	}
	return fallback
}

// proxy is the main interception path. It takes ownership of envBuf —
// the pooled buffer holding the consumer's request envelope — and hands
// it on to the dispatch layer, which recycles it once no fan-out
// goroutine can still read it.
//
//wsu:owns envBuf
func (e *Engine) proxy(w http.ResponseWriter, r *http.Request, envBuf *pool.Buf, operation string) {
	override, _ := headerAdjudicator(r)
	winner, adjErr := e.dispatch(r.Context(), envBuf, operation, override)
	e.respond(w, operation, winner, adjErr)
}

// respond writes the adjudicated outcome to the consumer and discharges
// the winner's pooled-body reference once the body has been written.
func (e *Engine) respond(w http.ResponseWriter, operation string, winner adjudicate.Reply, adjErr error) {
	if adjErr != nil {
		winner.ReleaseBody() // nil-safe: fault outcomes carry no pooled body
		if !protocol.IsFault(adjErr) && errors.Is(adjErr, adjudicate.ErrNoResponses) {
			adjErr = errUnavailable
		}
		e.codec.WriteError(w, operation, adjErr)
		return
	}
	h := w.Header()
	var headers []protocol.HeaderItem
	if e.cfg.PublishHeader {
		if conf, err := e.publishedConfidence(operation); err == nil {
			if e.confOps != nil {
				headers = append(headers, e.confOps.ConfidenceHeader(operation, conf))
			} else {
				// No native header representation (JSON): publish over
				// a plain HTTP header instead.
				h.Set(ConfidenceHeader, strconv.FormatFloat(conf, 'f', 6, 64))
			}
		}
	}
	// Both headers are assigned as precomputed shared value slices (keys
	// in canonical form) instead of Header.Set, which allocates a fresh
	// []string per call.
	h["Content-Type"] = e.ctHeader
	if winner.Release != "" {
		if v, ok := e.state.Load().winnerHdr[winner.Release]; ok {
			h["X-Wsupgrade-Winner"] = v
		} else {
			h.Set("X-Wsupgrade-Winner", winner.Release)
		}
	}
	w.WriteHeader(http.StatusOK)
	_, _ = e.codec.WriteBody(w, winner.Body, headers...)
	winner.ReleaseBody()
}

// errUnavailable is the consumer-facing outcome when no release
// produced anything deliverable (the paper's unavailability case).
var errUnavailable = protocol.ServerError("Web Service unavailable")

// dispatch selects the phase's targets and delivery authority and hands
// the fan-out to the dispatch layer. The dispatch deadline derives from
// the consumer's request context: a disconnected client cancels its
// in-flight fan-out (and the aborted outcome is not charged to the
// releases), while early-delivery modes detach after responding so
// monitoring still collects every release's behaviour.
//
// dispatch takes ownership of envBuf, the pooled buffer holding the
// request envelope; ownership transfers into dispatch.Request.EnvelopeBuf
// and the dispatcher's completion recycles it.
//
//wsu:owns envBuf
//wsu:allow poolcheck -- envBuf's ownership transfers into dispatch.Request.EnvelopeBuf; the dispatcher's completion recycles it
func (e *Engine) dispatch(ctx context.Context, envBuf *pool.Buf, operation string, override adjudicate.Adjudicator) (adjudicate.Reply, error) {
	st := e.state.Load()
	releases := st.releases
	oldest, newest := releases[0], releases[len(releases)-1]

	var targets []Endpoint
	switch st.phase {
	case PhaseOldOnly:
		targets = releases[:1:1]
	case PhaseNewOnly:
		targets = releases[len(releases)-1:]
	default:
		targets = releases
	}
	// Health-checked releases marked down are skipped (the management
	// subsystem's recovery handling, §4.1) — unless that would leave no
	// targets, in which case the calls proceed and fail honestly.
	if len(st.down) > 0 {
		up := targets[:0:0]
		for _, t := range targets {
			if !st.down[t.Version] {
				up = append(up, t)
			}
		}
		if len(up) > 0 {
			targets = up
		}
	}

	rule := st.deliver
	if override != nil {
		rule = deliveryRule(st.phase, oldest, newest, override)
	}
	return e.disp.Do(dispatch.Request{
		Parent:      ctx,
		Targets:     targets,
		Mode:        st.mode,
		Quorum:      st.quorum,
		Timeout:     st.timeout,
		Operation:   operation,
		Envelope:    envBuf.B,
		EnvelopeBuf: envBuf,
		Deliver:     rule,
		Oldest:      oldest,
		Newest:      newest,
	})
}

// internReleases stamps each release with the monitor's interned dense
// index (threaded through dispatch as Endpoint.MonRef), so the outcome
// hook aggregates observations by slice index instead of name lookups.
// Interning is idempotent and monotonic; this runs on the management
// path only, at state publication.
func (e *Engine) internReleases(releases []Endpoint) {
	for i := range releases {
		releases[i].MonRef = int32(e.mon.Intern(releases[i].Version))
	}
}

// obsSlices recycles recordOutcome's observation scratch (monitor.Note
// does not retain rec.Releases past its return), and verdictScratch its
// oracle verdict buffers (JudgeInto writes into the caller's buffer and
// retains nothing); see pool.Slice for the zero-allocation cycle.
var (
	obsSlices      pool.Slice[monitor.Observation]
	verdictScratch pool.Slice[bool]
)

// recordOutcome feeds the monitoring subsystem and evaluates the switch
// policy. It is the dispatcher's outcome hook and may run on a
// background collector after delivery. A fan-out aborted by its own
// consumer is not release behaviour and is not recorded.
func (e *Engine) recordOutcome(out dispatch.Outcome) {
	if out.ConsumerGone {
		return
	}
	failed := e.oracle.JudgeInto(verdictScratch.Get(len(out.Replies)), out.Operation, out.Replies)
	rec := monitor.Record{
		Time:      time.Now(),
		Operation: out.Operation,
		Winner:    out.Winner.Release,
		Releases:  obsSlices.Get(len(out.Replies)),
	}
	oldIdx, newIdx := -1, -1
	for i := range out.Replies {
		r := &out.Replies[i]
		if r.Release == "" {
			continue
		}
		var id monitor.ReleaseID
		if i < len(out.Targets) && out.Targets[i].Version == r.Release {
			id = monitor.ReleaseID(out.Targets[i].MonRef)
		}
		rec.Releases = append(rec.Releases, monitor.Observation{
			Release:   r.Release,
			ID:        id,
			Responded: dispatch.Responded(*r),
			Evident:   !r.Valid(),
			Judged:    true,
			Failed:    failed[i],
			Latency:   r.Latency,
			// Body aliases the reply's pooled response buffer, which the
			// dispatcher recycles the moment this hook returns; the
			// monitor copies it at the record boundary (logRing.add).
			Body: r.Body,
		})
		if r.Release == out.Oldest.Version {
			oldIdx = i
		}
		if r.Release == out.Newest.Version {
			newIdx = i
		}
	}
	if oldIdx >= 0 && newIdx >= 0 && out.Oldest.Version != out.Newest.Version {
		rec.Joint = bayes.Outcome(failed[oldIdx], failed[newIdx])
	}
	e.mon.Note(rec)
	obsSlices.Put(rec.Releases)
	verdictScratch.Put(failed)

	if e.cfg.Policy != nil && rec.Joint != 0 {
		e.evaluatePolicy()
	}
}

// evaluatePolicy runs the Bayesian switch criterion (§4.4, §5.1.1.2).
func (e *Engine) evaluatePolicy() {
	e.policyMu.Lock()
	defer e.policyMu.Unlock()

	if e.state.Load().phase == PhaseNewOnly {
		return
	}
	counts := e.mon.Joint()
	if !e.cfg.Policy.ShouldSwitch(counts, e.inference) {
		return
	}
	_ = e.updateState(lifecycle.CausePolicy, func(s *engineState) error {
		if s.phase != PhaseNewOnly {
			s.phase = PhaseNewOnly
			s.switchedAt = counts.N
		}
		return nil
	})
}

// ---------------------------------------------------------------------------
// Confidence (§6.2)

// ConfidenceReport is a snapshot of the engine's confidence in the
// release pair for one operation ("" = all operations pooled).
type ConfidenceReport struct {
	// Operation is the queried operation ("" for the pooled record).
	Operation string
	// Target is the pfd target T of the confidences.
	Target float64
	// Old is P(pfd_old ≤ T | observations).
	Old float64
	// New is P(pfd_new ≤ T | observations).
	New float64
	// Published is the single value published to consumers: the
	// confidence of what they are currently served (conservatively the
	// smaller of the two while both releases' responses can be
	// delivered).
	Published float64
	// OldP99 and NewP99 are the 99% pfd percentiles (eq. 6).
	OldP99, NewP99 float64
	// Demands is the number of joint observations behind the report.
	Demands int
}

// Confidence computes the report for one operation; operation "" pools
// all operations.
func (e *Engine) Confidence(operation string) (ConfidenceReport, error) {
	if e.inference == nil {
		return ConfidenceReport{}, ErrNoInference
	}
	var counts bayes.JointCounts
	if operation == "" {
		counts = e.mon.Joint()
	} else {
		counts = e.mon.JointFor(operation)
	}
	post, err := e.inference.Posterior(counts)
	if err != nil {
		return ConfidenceReport{}, fmt.Errorf("core: computing posterior: %w", err)
	}
	rep := ConfidenceReport{
		Operation: operation,
		Target:    e.cfg.ConfidenceTarget,
		Old:       post.ConfidenceA(e.cfg.ConfidenceTarget),
		New:       post.ConfidenceB(e.cfg.ConfidenceTarget),
		OldP99:    post.PercentileA(0.99),
		NewP99:    post.PercentileB(0.99),
		Demands:   counts.N,
	}
	switch e.Phase() {
	case PhaseOldOnly, PhaseObservation:
		rep.Published = rep.Old
	case PhaseNewOnly:
		rep.Published = rep.New
	default:
		rep.Published = math.Min(rep.Old, rep.New)
	}
	return rep, nil
}

// AvailabilityConfidence computes the confidence that a release's
// probability of not responding within the timeout is at most target —
// the §6.1 "confidence in availability" attribute, read back per release.
// It uses a black-box Beta-binomial inference over the monitor's
// response/no-response record with a diffuse Beta(1,1) prior on [0, 0.9].
func (e *Engine) AvailabilityConfidence(version string, target float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("%w: availability target %v", ErrBadConfig, target)
	}
	s, err := e.mon.Stats(version)
	if err != nil {
		return 0, fmt.Errorf("core: availability confidence: %w", err)
	}
	bb, err := bayes.NewBlackBox(availabilityPrior, 300)
	if err != nil {
		return 0, fmt.Errorf("core: availability prior: %w", err)
	}
	post, err := bb.Posterior(s.Demands, s.Demands-s.Responses)
	if err != nil {
		return 0, fmt.Errorf("core: availability posterior: %w", err)
	}
	return post.CDF(target), nil
}

// availabilityPrior is diffuse: before any evidence every no-response
// probability below 0.9 is equally plausible.
var availabilityPrior = stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.9}

// ResponsivenessConfidence computes the confidence that a release's
// probability of exceeding maxLatency (or not responding at all) is at
// most target — the §6.1 "confidence in responsiveness" attribute.
func (e *Engine) ResponsivenessConfidence(version string, maxLatency time.Duration, target float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("%w: responsiveness target %v", ErrBadConfig, target)
	}
	if maxLatency <= 0 {
		return 0, fmt.Errorf("%w: latency bound %v", ErrBadConfig, maxLatency)
	}
	slow, demands, err := e.mon.SlowResponses(version, maxLatency)
	if err != nil {
		return 0, fmt.Errorf("core: responsiveness confidence: %w", err)
	}
	bb, err := bayes.NewBlackBox(availabilityPrior, 300)
	if err != nil {
		return 0, fmt.Errorf("core: responsiveness prior: %w", err)
	}
	post, err := bb.Posterior(demands, slow)
	if err != nil {
		return 0, fmt.Errorf("core: responsiveness posterior: %w", err)
	}
	return post.CDF(target), nil
}

// publishedConfidence is the scalar used in headers and responses.
func (e *Engine) publishedConfidence(operation string) (float64, error) {
	rep, err := e.Confidence(operation)
	if err != nil {
		return 0, err
	}
	return rep.Published, nil
}

// serveConfidenceQuery answers the dedicated OperationConf operation
// (§6.2 option 2). It takes ownership of envBuf, the pooled request
// body, releasing it once the codec has decoded the queried operation.
//
//wsu:owns envBuf
func (e *Engine) serveConfidenceQuery(w http.ResponseWriter, envBuf *pool.Buf) {
	op, err := e.confOps.DecodeConfQuery(envBuf.B)
	envBuf.Release()
	if err != nil {
		e.codec.WriteError(w, wsdl.ConfOperationName, err)
		return
	}
	conf, err := e.publishedConfidence(op)
	if err != nil {
		e.codec.WriteError(w, wsdl.ConfOperationName, err)
		return
	}
	body, err := e.confOps.EncodeConfResponse(conf)
	if err != nil {
		e.codec.WriteError(w, wsdl.ConfOperationName, err)
		return
	}
	w.Header()["Content-Type"] = e.ctHeader
	_, _ = w.Write(body)
}

// serveConfVariant answers an "<op>Conf" call (§6.2 option 3): it invokes
// the underlying operation through the normal managed path and extends
// the response with the confidence element. It takes ownership of
// rawBuf, the pooled buffer holding the variant request as received;
// the rewritten envelope is copied into a fresh pooled buffer that
// rides the same dispatch path as directly proxied demands.
//
//wsu:owns rawBuf
func (e *Engine) serveConfVariant(w http.ResponseWriter, r *http.Request, rawBuf *pool.Buf, baseOp string) {
	rewritten, err := e.confOps.RewriteConfVariant(rawBuf.B, baseOp)
	rawBuf.Release()
	if err != nil {
		e.codec.WriteError(w, baseOp, err)
		return
	}
	override, _ := headerAdjudicator(r)
	envBuf := confEnvBufs.Get()
	envBuf.B = append(envBuf.B[:0], rewritten...)
	winner, adjErr := e.dispatch(r.Context(), envBuf, baseOp, override)
	if adjErr != nil {
		e.respond(w, baseOp, winner, adjErr)
		return
	}
	conf, err := e.publishedConfidence(baseOp)
	if err != nil {
		winner.ReleaseBody()
		e.codec.WriteError(w, baseOp, err)
		return
	}
	extended, err := e.confOps.ExtendConfVariant(winner.Body, baseOp, conf)
	if err != nil {
		winner.ReleaseBody()
		e.codec.WriteError(w, baseOp, err)
		return
	}
	// The winner's Buf still carries the pooled original body; respond
	// discharges it after the transformed body is written.
	winner.Body = extended
	e.respond(w, baseOp, winner, nil)
}

// confEnvBufs pools the re-marshalled request envelopes of §6.2
// "<op>Conf" variant calls so they ride the same pooled dispatch path as
// directly proxied envelopes.
var confEnvBufs pool.BufPool

// ---------------------------------------------------------------------------
// Registry integration

// RegistryEntry builds the registry entry describing this engine's
// service surface (the §6.2 "publish the confidence in the UDDI archive"
// path). name is the service name; endpoint is the engine's public URL.
func (e *Engine) RegistryEntry(name, endpoint string) registry.Entry {
	entry := registry.Entry{
		Name:     name,
		Version:  e.newestVersion(),
		URL:      endpoint,
		Provider: "wsupgrade-middleware",
	}
	if e.cfg.Contract != nil && e.inference != nil {
		for _, op := range e.cfg.Contract.Operations {
			if conf, err := e.publishedConfidence(op.Name); err == nil {
				entry.Confidence = append(entry.Confidence, registry.OperationConfidence{
					Name:  op.Name,
					Value: round6(conf),
				})
			}
		}
	}
	return entry
}

func (e *Engine) newestVersion() string {
	releases := e.state.Load().releases
	return releases[len(releases)-1].Version
}

func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// Stats returns the monitoring stats of one release.
func (e *Engine) Stats(version string) (monitor.ReleaseStats, error) {
	return e.mon.Stats(version)
}
