package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
)

func TestSetModeOnline(t *testing.T) {
	oldRel, old := startRelease(t, "1.0", service.FaultPlan{})
	newRel, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{Releases: []Endpoint{old, new_}})
	if e.Mode() != ModeReliability {
		t.Fatalf("default mode = %v", e.Mode())
	}
	if _, err := callAdd(t, ts.URL, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Switch to sequential online: the new release stops being invoked
	// while the old one succeeds.
	if err := e.SetMode(ModeSequential, 0); err != nil {
		t.Fatal(err)
	}
	oldCalls, newCalls := oldRel.Calls(), newRel.Calls()
	for i := 0; i < 5; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if oldRel.Calls() != oldCalls+5 {
		t.Fatalf("old calls = %d, want %d", oldRel.Calls(), oldCalls+5)
	}
	if newRel.Calls() != newCalls {
		t.Fatalf("sequential mode still fans out: new calls %d -> %d", newCalls, newRel.Calls())
	}
	// And back to parallel.
	if err := e.SetMode(ModeReliability, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := callAdd(t, ts.URL, 9, 1); err != nil {
		t.Fatal(err)
	}
	if newRel.Calls() != newCalls+1 {
		t.Fatalf("fan-out not restored: new calls %d", newRel.Calls())
	}
}

func TestSetModeValidation(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, _ := startEngine(t, Config{Releases: []Endpoint{old, new_}})
	if err := e.SetMode(Mode(42), 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown mode: %v", err)
	}
	if err := e.SetMode(ModeDynamic, 5); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("excessive quorum: %v", err)
	}
	if err := e.SetMode(ModeDynamic, 0); err != nil {
		t.Fatalf("quorum default: %v", err)
	}
	if e.Mode() != ModeDynamic {
		t.Fatalf("mode = %v", e.Mode())
	}
}

func TestSetTimeoutOnline(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	e, _ := startEngine(t, Config{Releases: []Endpoint{old}, InitialPhase: PhaseOldOnly})
	if err := e.SetTimeout(0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero timeout: %v", err)
	}
	if err := e.SetTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Timeout() != 5*time.Second {
		t.Fatalf("timeout = %v", e.Timeout())
	}
}

func TestCheckHealthMarksDownAndRecovers(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	// The new release's server will be stopped to simulate a crash.
	newRel, err := service.New(service.DemoContract("1.1"), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	newTS := httptest.NewServer(newRel.Handler())
	new_ := Endpoint{Version: "1.1", URL: newTS.URL}

	e, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Oracle:   oracle.Header{},
		Timeout:  500 * time.Millisecond,
	})

	ctx := context.Background()
	results := e.CheckHealth(ctx)
	for _, h := range results {
		if !h.Up {
			t.Fatalf("healthy release probed down: %+v", h)
		}
	}
	if e.Down("1.1") {
		t.Fatal("healthy release marked down")
	}

	// Crash the new release.
	newTS.Close()
	results = e.CheckHealth(ctx)
	downSeen := false
	for _, h := range results {
		if h.Release == "1.1" {
			if h.Up {
				t.Fatal("dead release probed up")
			}
			downSeen = true
		}
	}
	if !downSeen || !e.Down("1.1") {
		t.Fatal("dead release not marked down")
	}

	// Fan-outs now skip the dead release: requests stay fast and correct.
	start := time.Now()
	out, err := callAdd(t, ts.URL, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum != 5 {
		t.Fatalf("sum = %d", out.Sum)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("request waited on a down-marked release: %v", elapsed)
	}

	// Recovery: restart the release at the same address is not possible
	// with httptest, so redeploy it and probe again.
	newTS2 := httptest.NewServer(newRel.Handler())
	t.Cleanup(newTS2.Close)
	if err := e.RemoveRelease("1.1"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRelease(Endpoint{Version: "1.1", URL: newTS2.URL}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetPhase(PhaseParallel); err != nil {
		t.Fatal(err)
	}
	e.CheckHealth(ctx)
	if e.Down("1.1") {
		t.Fatal("recovered release still marked down")
	}
}

func TestStartHealthChecks(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	newTS := httptest.NewServer(nil) // serves 404 on /healthz
	t.Cleanup(newTS.Close)
	e, _ := startEngine(t, Config{
		Releases: []Endpoint{old, {Version: "1.1", URL: newTS.URL}},
		Timeout:  500 * time.Millisecond,
	})
	// Synchronize on prober rounds via the test hook instead of sleeping.
	rounds := make(chan struct{}, 1)
	e.healthCheckDone = func() {
		select {
		case rounds <- struct{}{}:
		default:
		}
	}
	stop, err := e.StartHealthChecks(20 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	if d, ok := t.Deadline(); ok && d.Before(deadline) {
		deadline = d.Add(-time.Second)
	}
	for !e.Down("1.1") {
		select {
		case <-rounds:
		case <-time.After(time.Until(deadline)):
			t.Fatal("timed out waiting for a probe round")
		}
	}
	stop()
	stop() // idempotent
	if !e.Down("1.1") {
		t.Fatal("prober never marked the 404 release down")
	}
	if e.Down("1.0") {
		t.Fatal("healthy release marked down by prober")
	}
	if _, err := e.StartHealthChecks(0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero interval: %v", err)
	}
}

// The engine must be safe under concurrent consumer traffic mixed with
// online reconfiguration (run with -race).
func TestConcurrentTrafficAndReconfiguration(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{
		Profile: relmodel.Profile{CR: 0.9, ER: 0.05, NER: 0.05}, Seed: 41})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	e, ts := startEngine(t, Config{
		Releases: []Endpoint{old, new_},
		Oracle:   oracle.Header{},
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, _ = callAdd(t, ts.URL, g, i)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		modes := []Mode{ModeResponsiveness, ModeSequential, ModeDynamic, ModeReliability}
		for i := 0; i < 20; i++ {
			_ = e.SetMode(modes[i%len(modes)], 1)
			_ = e.SetTimeout(time.Duration(1+i%3) * time.Second)
			_ = e.CheckHealth(context.Background())
		}
	}()
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Whatever interleaving happened, accounting must balance.
	joint := e.Monitor().Joint()
	if !joint.Valid() {
		t.Fatalf("joint counts inconsistent: %+v", joint)
	}
}

// Three releases: the pair for inference is (oldest, newest); the middle
// release still participates in adjudication and monitoring.
func TestThreeReleases(t *testing.T) {
	_, r0 := startRelease(t, "1.0", service.FaultPlan{})
	_, r1 := startRelease(t, "1.1", service.FaultPlan{})
	_, r2 := startRelease(t, "1.2", service.FaultPlan{})
	e, ts := startEngine(t, Config{
		Releases: []Endpoint{r0, r1, r2},
		Oracle:   oracle.Header{},
	})
	const n = 12
	for i := 0; i < n; i++ {
		out, err := callAdd(t, ts.URL, i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Sum != i+1 {
			t.Fatalf("sum = %d", out.Sum)
		}
	}
	for _, v := range []string{"1.0", "1.1", "1.2"} {
		s, err := e.Stats(v)
		if err != nil {
			t.Fatal(err)
		}
		if s.Demands != n {
			t.Fatalf("%s demands = %d", v, s.Demands)
		}
	}
	// The joint record pairs 1.0 with 1.2.
	if e.Monitor().Joint().N != n {
		t.Fatalf("joint N = %d", e.Monitor().Joint().N)
	}
}

// §6.1: consumers can select the adjudication mechanism for their own
// requests via a header.
func TestPerRequestAdjudicatorHeader(t *testing.T) {
	// Three releases: two agree on the correct answer, one returns a
	// plausible wrong one. Majority must always deliver the right sum;
	// the engine default (random-valid) sometimes would not.
	_, r0 := startRelease(t, "1.0", service.FaultPlan{})
	_, r1 := startRelease(t, "1.1", service.FaultPlan{})
	_, r2 := startRelease(t, "1.2", service.FaultPlan{
		Profile: relmodel.Profile{NER: 1}, Seed: 51})
	_, ts := startEngine(t, Config{
		Releases: []Endpoint{r0, r1, r2},
		Oracle:   oracle.Header{},
	})
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 20; i++ {
		env := soap.EnvelopeRaw([]byte(`<addRequest><a>2</a><b>2</b></addRequest>`))
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/", bytes.NewReader(env))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", soap.ContentType)
		req.Header.Set(AdjudicatorHeader, "majority")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		parsed, err := soap.Parse(body)
		if err != nil {
			t.Fatal(err)
		}
		var out service.AddResponse
		if err := parsed.DecodeBody(&out); err != nil {
			t.Fatal(err)
		}
		if out.Sum != 4 {
			t.Fatalf("majority adjudication delivered %d, want 4", out.Sum)
		}
	}
}

func TestRequestAdjudicatorFallback(t *testing.T) {
	req, err := http.NewRequest(http.MethodPost, "http://x", nil)
	if err != nil {
		t.Fatal(err)
	}
	def := adjudicate.FastestValid{}
	if got := requestAdjudicator(req, def); got.Name() != def.Name() {
		t.Fatalf("no header: got %s", got.Name())
	}
	req.Header.Set(AdjudicatorHeader, "nonsense")
	if got := requestAdjudicator(req, def); got.Name() != def.Name() {
		t.Fatalf("unknown value: got %s", got.Name())
	}
	req.Header.Set(AdjudicatorHeader, "fastest-valid")
	if got := requestAdjudicator(req, adjudicate.RandomValid{}); got.Name() != "fastest-valid" {
		t.Fatalf("explicit value: got %s", got.Name())
	}
	if got := requestAdjudicator(nil, def); got.Name() != def.Name() {
		t.Fatalf("nil request: got %s", got.Name())
	}
}

// §6.1: confidence in availability, read back per release.
func TestAvailabilityConfidence(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	// The "new release" is a dead endpoint: zero availability.
	e, ts := startEngine(t, Config{
		Releases: []Endpoint{old, {Version: "1.1", URL: "http://127.0.0.1:1"}},
		Timeout:  300 * time.Millisecond,
	})
	for i := 0; i < 30; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	confOld, err := e.AvailabilityConfidence("1.0", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	confNew, err := e.AvailabilityConfidence("1.1", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if confOld < 0.99 {
		t.Fatalf("confidence in the responsive release = %v, want ≈1", confOld)
	}
	if confNew > 0.01 {
		t.Fatalf("confidence in the dead release = %v, want ≈0", confNew)
	}
	if _, err := e.AvailabilityConfidence("ghost", 0.2); err == nil {
		t.Fatal("unknown release accepted")
	}
	if _, err := e.AvailabilityConfidence("1.0", 1.5); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad target: %v", err)
	}
}

// §6.1: confidence in responsiveness, per release and latency bound.
func TestResponsivenessConfidence(t *testing.T) {
	_, fast := startRelease(t, "1.0", service.FaultPlan{})
	slowRel, err := service.New(service.DemoContract("1.1"), service.DemoBehaviours(),
		service.FaultPlan{MeanLatency: 80 * time.Millisecond, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	slowTS := httptest.NewServer(slowRel.Handler())
	t.Cleanup(slowTS.Close)

	e, ts := startEngine(t, Config{
		Releases: []Endpoint{fast, {Version: "1.1", URL: slowTS.URL}},
		Timeout:  2 * time.Second,
	})
	for i := 0; i < 30; i++ {
		if _, err := callAdd(t, ts.URL, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	confFast, err := e.ResponsivenessConfidence("1.0", 50*time.Millisecond, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	confSlow, err := e.ResponsivenessConfidence("1.1", 50*time.Millisecond, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if confFast <= confSlow {
		t.Fatalf("responsiveness confidence: fast %v should exceed slow %v", confFast, confSlow)
	}
	if confFast < 0.9 {
		t.Fatalf("fast release responsiveness confidence = %v, want high", confFast)
	}
	if _, err := e.ResponsivenessConfidence("1.0", 0, 0.2); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero latency bound: %v", err)
	}
	if _, err := e.ResponsivenessConfidence("1.0", time.Second, 2); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad target: %v", err)
	}
	if _, err := e.ResponsivenessConfidence("ghost", time.Second, 0.2); err == nil {
		t.Fatal("unknown release accepted")
	}
}

// Transient transport failures are retried when a policy is configured
// (§2.1: transient failures are tolerated by retry even on the same code).
func TestRetryToleratesTransientFailures(t *testing.T) {
	flaky := newFlakyRelease(t, 2) // first 2 attempts per request: 503
	e, ts := startEngine(t, Config{
		Releases:     []Endpoint{{Version: "1.0", URL: flaky.URL}},
		InitialPhase: PhaseOldOnly,
		Retry:        retry3(),
	})
	out, err := callAdd(t, ts.URL, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum != 9 {
		t.Fatalf("sum = %d", out.Sum)
	}
	_ = e
}

// Regression test for a shutdown-latency bug the ctxhygiene analyzer
// surfaced: probes used to derive from context.Background(), so stop()
// had to wait out an in-flight probe's full timeout before the prober
// goroutine could exit. Probes now derive from a root that stop()
// cancels first.
func TestStopCancelsInFlightProbe(t *testing.T) {
	entered := make(chan struct{}, 1)
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)

	e, _ := startEngine(t, Config{
		Releases: []Endpoint{{Version: "1.0", URL: hang.URL}, {Version: "1.1", URL: hang.URL}},
		Oracle:   oracle.Header{},
		Timeout:  5 * time.Second,
	})
	const interval = 800 * time.Millisecond
	stop, err := e.StartHealthChecks(interval)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("probe never reached the endpoint")
	}
	start := time.Now()
	stop()
	if d := time.Since(start); d > interval/2 {
		t.Fatalf("stop() took %v; an in-flight probe must be cancelled, not waited out", d)
	}
}
