package core

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
)

// TestManagementVersusDispatchStress hammers the dispatch hot path while
// every management operation (phase transitions, mode changes, timeout
// changes, online release add/remove, health checks) runs concurrently.
// Run with -race. Afterwards the accounting must balance exactly: one
// monitor record per served request (none lost to a state swap), a valid
// joint record, and a consistent final state.
func TestManagementVersusDispatchStress(t *testing.T) {
	_, old := startRelease(t, "1.0", service.FaultPlan{})
	_, new_ := startRelease(t, "1.1", service.FaultPlan{})
	_, extra := startRelease(t, "1.2", service.FaultPlan{})

	mon := monitor.New(monitor.WithLogCapacity(1 << 14))
	e, err := New(Config{
		Releases: []Endpoint{old, new_},
		Oracle:   oracle.Header{},
		Monitor:  mon,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		trafficGoroutines  = 6
		requestsPerRoutine = 30
	)
	env := soap.EnvelopeRaw([]byte(`<addRequest><a>2</a><b>3</b></addRequest>`))

	var wg sync.WaitGroup
	managementDone := make(chan struct{})

	// Management churn: phases, modes, timeouts, topology, health.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(managementDone)
		phases := []Phase{PhaseObservation, PhaseOldOnly, PhaseNewOnly, PhaseParallel}
		modes := []Mode{ModeResponsiveness, ModeDynamic, ModeSequential, ModeReliability}
		for i := 0; i < 40; i++ {
			// Concurrent managers race for the phase, so some requested
			// transitions are illegal by the time they are applied; the
			// lifecycle guard must reject exactly those, with its typed
			// error, and nothing else.
			if err := e.SetPhase(phases[i%len(phases)]); err != nil &&
				!errors.Is(err, lifecycle.ErrIllegalTransition) {
				t.Errorf("SetPhase: %v", err)
			}
			if err := e.SetMode(modes[i%len(modes)], 1+i%2); err != nil {
				t.Errorf("SetMode: %v", err)
			}
			if err := e.SetTimeout(time.Duration(1+i%3) * time.Second); err != nil {
				t.Errorf("SetTimeout: %v", err)
			}
			switch i % 2 {
			case 0:
				if err := e.AddRelease(extra); err != nil {
					t.Errorf("AddRelease: %v", err)
				}
			case 1:
				if err := e.RemoveRelease(extra.Version); err != nil {
					t.Errorf("RemoveRelease: %v", err)
				}
			}
		}
		// Leave the topology and lifecycle in a known final state.
		_ = e.RemoveRelease(extra.Version)
		if err := e.SetPhase(PhaseParallel); err != nil {
			t.Errorf("final SetPhase: %v", err)
		}
	}()

	// Read-side spot checks: a concurrently loaded state must always be
	// internally consistent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-managementDone:
				return
			default:
			}
			switch p := e.Phase(); p {
			case PhaseOldOnly, PhaseObservation, PhaseParallel, PhaseNewOnly:
			default:
				t.Errorf("impossible phase observed: %v", p)
				return
			}
			if n := len(e.Releases()); n < 2 || n > 3 {
				t.Errorf("impossible release count observed: %d", n)
				return
			}
		}
	}()

	// Consumer traffic against the dispatch path.
	for g := 0; g < trafficGoroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requestsPerRoutine; i++ {
				req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(env))
				req.Header.Set("Content-Type", soap.ContentType)
				rec := httptest.NewRecorder()
				e.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("request failed: HTTP %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// No lost monitor records: every served request produced exactly one.
	const total = trafficGoroutines * requestsPerRoutine
	if got := len(mon.Log()); got != total {
		t.Fatalf("monitor log has %d records, want %d (lost or duplicated demands)", got, total)
	}
	if joint := mon.Joint(); !joint.Valid() {
		t.Fatalf("joint counts inconsistent: %+v", joint)
	}
	// The final management writes won the state: a consistent transition.
	if p := e.Phase(); p != PhaseParallel {
		t.Fatalf("final phase = %v, want %v", p, PhaseParallel)
	}
	if rels := e.Releases(); len(rels) != 2 || rels[0].Version != "1.0" || rels[1].Version != "1.1" {
		t.Fatalf("final releases = %+v", rels)
	}
}

// TestDispatchSeesConsistentState verifies that one fan-out never mixes
// two states: a request dispatched mid-reconfiguration must target a
// release set that existed at some single point in time.
func TestDispatchSeesConsistentState(t *testing.T) {
	// Two disjoint generations; a torn snapshot would mix them.
	genA := []Endpoint{}
	genB := []Endpoint{}
	for i := 0; i < 2; i++ {
		_, ep := startRelease(t, fmt.Sprintf("a.%d", i), service.FaultPlan{})
		genA = append(genA, ep)
	}
	for i := 0; i < 2; i++ {
		_, ep := startRelease(t, fmt.Sprintf("b.%d", i), service.FaultPlan{})
		genB = append(genB, ep)
	}
	e, err := New(Config{Releases: genA, Oracle: oracle.Header{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()

	env := soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>1</b></addRequest>`))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		flip := func(from, to []Endpoint) {
			// Grow to the new generation, then shed the old one; the
			// set is a mix in between, but each published state is a
			// set that really existed.
			for _, ep := range to {
				if err := e.AddRelease(ep); err != nil {
					t.Errorf("AddRelease: %v", err)
				}
			}
			for _, ep := range from {
				if err := e.RemoveRelease(ep.Version); err != nil {
					t.Errorf("RemoveRelease: %v", err)
				}
			}
		}
		for i := 0; i < 10; i++ {
			flip(genA, genB)
			flip(genB, genA)
		}
		close(done)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(env))
			req.Header.Set("Content-Type", soap.ContentType)
			rec := httptest.NewRecorder()
			e.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("request failed mid-flip: HTTP %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	wg.Wait()

	// Every record's winner came from a release that was deployed in the
	// snapshot that served it — in particular, never the empty string.
	for _, rec := range e.Monitor().Log() {
		if rec.Winner == "" {
			t.Fatalf("a request was served without a winner: %+v", rec)
		}
	}
}
