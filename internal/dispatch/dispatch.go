// Package dispatch is the fan-out/adjudicate pipeline of the managed
// upgrade middleware (§4.2): given one intercepted consumer request and
// the set of release endpoints to exercise, it invokes the releases
// according to the operating mode, collects their replies within the
// dispatch deadline, delivers an adjudicated winner, and hands the
// complete reply set to the monitoring layer — finishing the collection
// in the background when a mode delivers early.
//
// The package is lifecycle-agnostic: the caller decides which releases
// are targets (phase selection, health marks) and which adjudication
// rule delivers (phase authority, per-request consumer choice); the
// dispatcher owns the mechanics — deadlines, fan-out goroutines, reply
// pooling, the single-target fast path, and sequential mode.
//
// Deadlines derive from the consumer's incoming request context: a
// disconnected client cancels its in-flight fan-out. Once a response
// has been delivered, the remaining collection detaches from the
// consumer and is bounded by the dispatch timeout alone, so monitoring
// still sees every release's behaviour. Per-dispatch deadline contexts
// are pooled (see callCtx) instead of allocating context.WithTimeout
// machinery on every request.
package dispatch

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/httpx"
	"wsupgrade/internal/pool"
	"wsupgrade/internal/protocol"
	"wsupgrade/internal/protocol/soapcodec"
	"wsupgrade/internal/xrand"
)

// Endpoint identifies one deployed release of the upgraded service.
type Endpoint struct {
	// Version is the release's version string (releases must be
	// distinguishable, §3.2).
	Version string
	// URL is the release's SOAP endpoint.
	URL string
	// MonRef is an opaque annotation the dispatch layer threads through
	// to the outcome hook unchanged: the engine stores its monitor's
	// interned release index here so outcomes aggregate without a name
	// lookup per observation. Zero means "no annotation". Outcome.Replies
	// is aligned with Outcome.Targets, so Targets[i].MonRef annotates
	// Replies[i].
	MonRef int32 `json:"-"`
}

// Mode is the fan-out strategy while several releases are invoked (§4.2).
type Mode int

const (
	// ModeReliability waits for all releases (bounded by Timeout) and
	// adjudicates everything collected — §4.2 mode 1.
	ModeReliability Mode = iota + 1
	// ModeResponsiveness delivers the first valid response — mode 2.
	ModeResponsiveness
	// ModeDynamic delivers after Quorum responses arrive — mode 3.
	ModeDynamic
	// ModeSequential invokes releases one at a time, moving on only
	// after an evident failure — mode 4.
	ModeSequential
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeReliability:
		return "parallel-reliability"
	case ModeResponsiveness:
		return "parallel-responsiveness"
	case ModeDynamic:
		return "parallel-dynamic"
	case ModeSequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Known reports whether m is one of the four §4.2 operating modes.
func (m Mode) Known() bool { return m >= ModeReliability && m <= ModeSequential }

// ParseMode converts a mode name to its value. Both the String form
// ("parallel-reliability") and the short form ("reliability") parse.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "parallel-reliability", "reliability":
		return ModeReliability, nil
	case "parallel-responsiveness", "responsiveness":
		return ModeResponsiveness, nil
	case "parallel-dynamic", "dynamic":
		return ModeDynamic, nil
	case "sequential":
		return ModeSequential, nil
	default:
		return 0, fmt.Errorf("dispatch: unknown mode %q", s)
	}
}

// Request describes one fan-out.
type Request struct {
	// Parent is the consumer's incoming request context: its
	// cancellation aborts the fan-out until a response is delivered,
	// and its deadline (if earlier) clips the dispatch deadline.
	Parent context.Context
	// Targets are the releases to invoke, oldest first. At least one.
	Targets []Endpoint
	// Mode is the fan-out strategy; zero means ModeReliability.
	Mode Mode
	// Quorum is ModeDynamic's response count.
	Quorum int
	// Timeout bounds the dispatch.
	Timeout time.Duration
	// Operation names the invoked operation (monitoring key).
	Operation string
	// Envelope is the SOAP envelope posted to each release.
	Envelope []byte
	// EnvelopeBuf, when non-nil, is the pooled buffer backing Envelope.
	// Its ownership transfers to the dispatcher with the call to Do: the
	// envelope stays live until the last release call has finished
	// (background collection included), and the dispatcher releases the
	// buffer exactly once, when the dispatch completes.
	EnvelopeBuf *pool.Buf
	// Deliver selects the delivered reply among the collected
	// responses; nil means adjudicate.RandomValid.
	Deliver adjudicate.Adjudicator
	// Oldest and Newest annotate the outcome for pairwise monitoring
	// (the Table 1 joint record pairs the oldest and newest release).
	Oldest, Newest Endpoint
}

// Outcome is the complete result of one dispatch, delivered to the
// monitoring hook once every invoked release has been accounted for —
// possibly after Do returned, when a mode delivered early. The Replies
// slice is pooled, and each reply's Body may alias a pooled buffer
// that is recycled the moment the hook returns: the hook must not
// retain the slice and must copy any body bytes it keeps.
type Outcome struct {
	// Operation names the invoked operation.
	Operation string
	// Targets are the releases that were eligible; in sequential mode
	// only the first len(Replies) were actually invoked.
	Targets []Endpoint
	// Replies holds each invoked release's classified reply, aligned
	// with Targets.
	Replies []adjudicate.Reply
	// Winner is the delivered reply (zero when delivery failed).
	Winner adjudicate.Reply
	// Oldest and Newest echo the request's pair annotation.
	Oldest, Newest Endpoint
	// ConsumerGone marks a fan-out aborted by the consumer's own
	// request context: the replies reflect the abort, not release
	// behaviour, and must not be charged to the releases.
	ConsumerGone bool
}

// PostFunc is the release-call transport: it must behave exactly like
// httpx.PostXML (retry of transient failures, exponential backoff,
// bounded response reads — the conformance suite in internal/wire is
// the executable definition). The wire client's PostXML and a bound
// httpx.PostXML both satisfy it.
type PostFunc func(ctx context.Context, url, contentType string, body []byte, policy httpx.RetryPolicy) (httpx.Result, error)

// Config parameterizes a Dispatcher.
type Config struct {
	// Post is the release-call transport; nil means httpx.PostXML over
	// Client.
	Post PostFunc
	// Client is the HTTP client used for release calls when Post is
	// nil; nil means http.DefaultClient.
	Client *http.Client
	// Retry tolerates transient transport failures per release call.
	Retry httpx.RetryPolicy
	// Seed drives adjudication tie-breaking.
	Seed uint64
	// OnOutcome receives every dispatch's complete outcome. May be nil.
	// It runs on the dispatching goroutine or, for early-delivery
	// modes, on a background collector; it must be safe for concurrent
	// use and must not retain the pooled Replies slice.
	OnOutcome func(Outcome)
	// Codec classifies release replies and resolves per-operation
	// target URLs (the protocol seam); nil means the SOAP codec.
	Codec protocol.Codec
}

// Dispatcher executes fan-outs. Construct with New; Close waits for
// background collection to drain.
type Dispatcher struct {
	post      PostFunc
	retry     httpx.RetryPolicy
	onOutcome func(Outcome)
	codec     protocol.Codec
	// contentType caches codec.ContentType() so the fan-out path does
	// not re-ask per call.
	contentType string

	// Adjudication tie-breaking draws from a pool of deterministic
	// generators: one atomic-free Get per request instead of a
	// dispatcher-wide lock. rngMaster only seeds new pool members.
	rngMu     sync.Mutex
	rngMaster *xrand.Rand
	rngPool   sync.Pool

	wg sync.WaitGroup
}

// New builds a dispatcher.
func New(cfg Config) *Dispatcher {
	post := cfg.Post
	if post == nil {
		client := cfg.Client
		if client == nil {
			client = http.DefaultClient
		}
		post = func(ctx context.Context, url, contentType string, body []byte, policy httpx.RetryPolicy) (httpx.Result, error) {
			return httpx.PostXML(ctx, client, url, contentType, body, policy)
		}
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry = httpx.NoRetry
	}
	codec := cfg.Codec
	if codec == nil {
		codec = soapcodec.Default
	}
	return &Dispatcher{
		post:        post,
		retry:       cfg.Retry,
		onOutcome:   cfg.OnOutcome,
		codec:       codec,
		contentType: codec.ContentType(),
		rngMaster:   xrand.New(cfg.Seed),
	}
}

// Close waits for background reply collection to finish. Collection is
// bounded by the dispatch timeout, so Close never waits longer than
// the longest in-flight deadline.
func (d *Dispatcher) Close() error {
	d.wg.Wait()
	return nil
}

// getRNG hands one generator to a request. Generators are pooled; a
// fresh one is split off the seeded master only when the pool is empty.
//
//wsu:owns return
func (d *Dispatcher) getRNG() *xrand.Rand {
	if r, ok := d.rngPool.Get().(*xrand.Rand); ok {
		return r
	}
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	return d.rngMaster.Split()
}

//wsu:owns r
func (d *Dispatcher) putRNG(r *xrand.Rand) { d.rngPool.Put(r) }

// deliver adjudicates the collected replies with a pooled generator.
func (d *Dispatcher) deliver(rule adjudicate.Adjudicator, collected []adjudicate.Reply) (adjudicate.Reply, error) {
	rng := d.getRNG()
	winner, err := rule.Adjudicate(collected, rng)
	d.putRNG(rng)
	return winner, err
}

// complete releases the dispatch context, reports the outcome, and
// recycles the reply slice, the pooled reply bodies, and the pooled
// request envelope. Called exactly once per dispatch, after the last
// reply is in — the single point past which (a) the envelope has no
// remaining reader and (b) monitoring has taken its record-time copy
// of every reply body, so recycling here cannot be observed. The
// winner's extra reference (taken at delivery) survives this release
// for the consumer write.
//
//wsu:owns c replies envBuf
func (d *Dispatcher) complete(c *callCtx, operation string, targets []Endpoint,
	replies []adjudicate.Reply, winner adjudicate.Reply, oldest, newest Endpoint, envBuf *pool.Buf) {
	gone := c.gone()
	c.release()
	if d.onOutcome != nil {
		d.onOutcome(Outcome{
			Operation:    operation,
			Targets:      targets,
			Replies:      replies,
			Winner:       winner,
			Oldest:       oldest,
			Newest:       newest,
			ConsumerGone: gone,
		})
	}
	for i := range replies {
		replies[i].Buf.Release()
	}
	envBuf.Release()
	putReplySlice(replies)
}

// Do executes one fan-out and returns the delivered reply (or the
// adjudication error). Monitoring work that should not delay delivery
// finishes in the background.
//
// Ownership: req.EnvelopeBuf (if set) transfers to the dispatcher,
// which releases it when the dispatch completes. The returned winner
// carries one reference of its own to its pooled body (Reply.Buf) —
// taken at delivery, before the reply set is recycled — which the
// caller discharges with ReleaseBody once the response is written.
func (d *Dispatcher) Do(req Request) (adjudicate.Reply, error) {
	targets, operation, envelope := req.Targets, req.Operation, req.Envelope
	oldest, newest := req.Oldest, req.Newest
	rule := req.Deliver
	if rule == nil {
		rule = adjudicate.RandomValid{}
	}
	callCtx := acquireCallCtx(req.Parent, req.Timeout)

	// Single-target fast path (single-release phases, or every other
	// target marked down): one synchronous call, no goroutine, no
	// channel, no fan-out bookkeeping.
	if len(targets) == 1 {
		replies := getReplySlice(1)
		replies[0] = d.callRelease(callCtx, targets[0], operation, envelope)
		collected := replies[:0]
		if responded(replies[0]) {
			collected = replies[:1]
		}
		winner, adjErr := d.deliver(rule, collected)
		// The winner's body aliases a pooled reply buffer that complete
		// is about to release; its own reference keeps it live for the
		// consumer write.
		winner.Buf.Retain()
		d.complete(callCtx, operation, targets, replies, winner, oldest, newest, req.EnvelopeBuf)
		return winner, adjErr
	}

	if req.Mode == ModeSequential {
		return d.doSequential(callCtx, targets, envelope, operation, rule, oldest, newest, req.EnvelopeBuf)
	}

	f := d.acquireFanout(callCtx, operation, envelope, len(targets))
	for i, t := range targets {
		d.wg.Add(1)
		go f.call(i, t)
	}

	// How many replies must arrive before delivery.
	need := len(targets)
	switch req.Mode {
	case ModeDynamic:
		if req.Quorum > 0 && req.Quorum < need {
			need = req.Quorum
		}
	case ModeResponsiveness:
		need = 1
	}

	replies := getReplySlice(len(targets))
	received := 0
	for received < need {
		in := <-f.ch
		replies[in.i] = in.r
		received++
	}
	if req.Mode == ModeResponsiveness {
		// Keep collecting until a valid reply arrives or all are in.
		for !anyValid(replies) && received < len(targets) {
			in := <-f.ch
			replies[in.i] = in.r
			received++
		}
	}

	// Only actual responses are adjudicated: a SOAP fault is a collected
	// (evidently incorrect) response, while a timeout or transport error
	// means nothing was collected from that release (§5.2.1).
	collected := getReplySlice(received)[:0]
	for _, r := range replies {
		if r.Release != "" && responded(r) {
			collected = append(collected, r)
		}
	}
	winner, adjErr := d.deliver(rule, collected)
	putReplySlice(collected)
	// The winner's body aliases a pooled reply buffer that complete will
	// release; its own reference keeps it live for the consumer write.
	winner.Buf.Retain()

	if received == len(targets) {
		d.complete(callCtx, operation, targets, replies, winner, oldest, newest, req.EnvelopeBuf)
		f.release()
		return winner, adjErr
	}
	// Delivery happened early; detach from the consumer's context (the
	// response is theirs — the rest of the collection is ours) and
	// finish in the background so the monitoring subsystem still sees
	// every release's behaviour, bounded by the dispatch deadline. The
	// envelope and reply buffers stay live with the collection: complete
	// releases them only after the last reply is in.
	callCtx.detach()
	remaining := len(targets) - received
	partial := replies
	envBuf := req.EnvelopeBuf
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for i := 0; i < remaining; i++ {
			in := <-f.ch
			partial[in.i] = in.r
		}
		d.complete(callCtx, operation, targets, partial, winner, oldest, newest, envBuf)
		f.release()
	}()
	return winner, adjErr
}

// ---------------------------------------------------------------------------
// Pooled fan-out state

// indexed pairs a reply with its target index on the fan-out channel.
type indexed struct {
	i int
	r adjudicate.Reply
}

// fanout is the pooled per-dispatch fan-out state: the reply channel
// plus the arguments every release call shares. Spawning `go f.call(i, t)`
// passes the per-target values through the goroutine's own frame, so a
// fan-out allocates no per-target closure objects, and the reply channel
// is reused across dispatches instead of being made fresh each time.
type fanout struct {
	d         *Dispatcher
	ctx       *callCtx
	operation string
	envelope  []byte
	ch        chan indexed
}

// fanoutChanCap is the pooled reply-channel capacity. Fan-outs wider
// than this (unusual redundancy levels) grow the pooled member's
// channel, which then stays at the larger capacity.
const fanoutChanCap = 8

var fanoutPool sync.Pool

// acquireFanout arms a pooled fan-out for one dispatch.
//
//wsu:owns return
func (d *Dispatcher) acquireFanout(c *callCtx, operation string, envelope []byte, n int) *fanout {
	f, ok := fanoutPool.Get().(*fanout)
	if !ok {
		f = &fanout{ch: make(chan indexed, fanoutChanCap)}
	}
	if cap(f.ch) < n {
		f.ch = make(chan indexed, n)
	}
	f.d = d
	f.ctx = c
	f.operation = operation
	f.envelope = envelope
	return f
}

// release recycles the fan-out. The caller must have received one reply
// per spawned call, so the channel is empty (the runtime clears received
// slots, so the buffer retains no reply references).
//
//wsu:owns f
//wsu:noalloc
func (f *fanout) release() {
	f.d = nil
	f.ctx = nil
	f.operation = ""
	f.envelope = nil
	fanoutPool.Put(f)
}

// call invokes one release and delivers the indexed reply. The receiver
// can recycle f the moment the last reply has been received, so nothing
// here may touch f after the send: the dispatcher is captured first for
// the deferred Done.
func (f *fanout) call(i int, t Endpoint) {
	d := f.d
	defer d.wg.Done()
	f.ch <- indexed{i, d.callRelease(f.ctx, t, f.operation, f.envelope)}
}

// doSequential implements §4.2 mode 4: releases execute one at a time;
// the next is invoked only on an evident failure of the previous.
//
//wsu:owns callCtx
func (d *Dispatcher) doSequential(callCtx *callCtx, targets []Endpoint, envelope []byte,
	operation string, rule adjudicate.Adjudicator, oldest, newest Endpoint, envBuf *pool.Buf) (adjudicate.Reply, error) {
	called := getReplySlice(len(targets))[:0]
	for _, t := range targets {
		r := d.callRelease(callCtx, t, operation, envelope)
		called = append(called, r)
		if r.Valid() {
			break
		}
	}
	collected := getReplySlice(len(called))[:0]
	for _, r := range called {
		if responded(r) {
			collected = append(collected, r)
		}
	}
	winner, err := d.deliver(rule, collected)
	putReplySlice(collected)
	winner.Buf.Retain() // keep the winner's body past the reply recycling
	// Targets are invoked in order, so the invoked prefix is targets[:k].
	d.complete(callCtx, operation, targets[:len(called)], called, winner, oldest, newest, envBuf)
	return winner, err
}

// callRelease invokes one release and classifies the outcome through
// the protocol codec: a successful payload, a protocol fault (an
// evident failure that still counts as a response), or a transport or
// classification error wrapped with release context.
//
// Ownership: the transport's pooled response buffer (Result.BodyBuf)
// either travels on in Reply.Buf — when the codec reports the payload
// aliases it (the zero-copy fast paths) — or is released here, because
// a non-aliasing payload is an independent copy and nothing else
// aliases the wire bytes.
func (d *Dispatcher) callRelease(ctx context.Context, ep Endpoint, operation string, envelope []byte) adjudicate.Reply {
	start := time.Now()
	reply := adjudicate.Reply{Release: ep.Version}
	res, err := d.post(ctx, d.codec.TargetURL(ep.URL, operation), d.contentType, envelope, d.retry)
	reply.Latency = time.Since(start)
	if err != nil {
		reply.Err = fmt.Errorf("dispatch: release %s: %w", ep.Version, err)
		return reply
	}
	reply.Header = res.Header
	payload, aliases, derr := d.codec.DecodeReply(res.Status, res.Body)
	if aliases {
		reply.Buf = res.BodyBuf
	} else {
		res.BodyBuf.Release()
	}
	if derr != nil {
		if protocol.IsFault(derr) {
			reply.Err = derr
		} else {
			reply.Err = fmt.Errorf("dispatch: release %s: %w", ep.Version, derr)
		}
		return reply
	}
	reply.Body = payload
	return reply
}

// ---------------------------------------------------------------------------
// Per-dispatch reply slice recycling

// replySlices recycles the reply scratch slices of Do (see pool.Slice
// for the zero-allocation cycle). Fan-outs are small (a handful of
// releases), so the slices are tiny but allocated twice per consumer
// request; pooling removes them from the hot path. A slice must only be
// returned once nothing aliases it: the winner is a value copy,
// adjudicators must not retain replies, and the outcome hook must not
// retain the slice.
var replySlices pool.Slice[adjudicate.Reply]

// getReplySlice returns a length-n scratch slice of zero Replies
// (putReplySlice clears recycled backing before pooling it).
//
//wsu:owns return
func getReplySlice(n int) []adjudicate.Reply {
	return replySlices.Get(n)[:n]
}

//wsu:owns s
//wsu:noalloc
func putReplySlice(s []adjudicate.Reply) {
	s = s[:cap(s)]
	for i := range s {
		s[i] = adjudicate.Reply{} // drop body/header references
	}
	replySlices.Put(s)
}

// Responded reports whether an exchange produced an application-level
// response (a protocol fault counts; a timeout or transport error does
// not — the §5.2.1 evident-failure distinction).
func Responded(r adjudicate.Reply) bool { return responded(r) }

func responded(r adjudicate.Reply) bool {
	return r.Valid() || protocol.IsFault(r.Err)
}

func anyValid(replies []adjudicate.Reply) bool {
	for _, r := range replies {
		if r.Release != "" && r.Valid() {
			return true
		}
	}
	return false
}
