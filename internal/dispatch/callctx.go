package dispatch

import (
	"context"
	"sync"
	"time"
)

// callCtx is the per-dispatch context.Context: it carries the dispatch
// deadline and propagates cancellation from the consumer's incoming
// request context, without the per-request allocations of
// context.WithTimeout (a fresh timerCtx, timer, closure and done
// channel per dispatch).
//
// Pooling discipline: the struct, its done channel and its timer are
// reused across dispatches. The done channel can be reused because on
// the common path nothing ever closes it — when every release call
// completes before the deadline and the consumer stays connected,
// release() stops the timer and the parent watcher and puts the
// pristine struct back. Only when a cancellation actually fires (the
// deadline passes, or the consumer disconnects) is the channel closed;
// such a struct is abandoned to the GC instead of recycled, because a
// cancellation callback may still be in flight and per-incarnation
// identity is exactly what this design avoids paying for.
//
// release() must only be called once every user of the context has
// finished with it (the dispatcher calls it after the last reply is
// collected), which is also what makes channel reuse sound: no stale
// reader can be parked on Done() when the next dispatch borrows it.
type callCtx struct {
	done  chan struct{} // created once per struct; closed at most once
	timer *time.Timer   // AfterFunc(onTimeout); created on first arm, reused

	mu           sync.Mutex
	err          error
	consumerGone bool // cancellation came from the consumer's context
	parent       context.Context
	deadline     time.Time

	stopParent func() bool // context.AfterFunc stop; nil when parent can't cancel
	// parentDirty records a detach() that could not stop the parent
	// callback (it had already started): the struct must not be
	// recycled, because the callback may still fire against it.
	parentDirty bool

	// Bound method values, created once so arming never allocates.
	onTimeoutFn      func()
	onParentCancelFn func()
}

var _ context.Context = (*callCtx)(nil)

var callCtxPool sync.Pool

// acquireCallCtx arms a pooled context: its deadline is now+timeout,
// clipped to the parent's own deadline, and the parent's cancellation
// (the consumer hanging up) propagates until detach or release.
//
//wsu:owns return
func acquireCallCtx(parent context.Context, timeout time.Duration) *callCtx {
	c, _ := callCtxPool.Get().(*callCtx)
	if c == nil {
		c = &callCtx{done: make(chan struct{})}
		c.onTimeoutFn = c.onTimeout
		c.onParentCancelFn = c.onParentCancel
	}
	dl := time.Now().Add(timeout)
	if parent != nil {
		if pd, ok := parent.Deadline(); ok && pd.Before(dl) {
			dl = pd
		}
	}
	c.mu.Lock()
	c.parent = parent
	c.deadline = dl
	c.mu.Unlock()
	c.parentDirty = false
	if c.timer == nil {
		c.timer = time.AfterFunc(time.Until(dl), c.onTimeoutFn)
	} else {
		c.timer.Reset(time.Until(dl))
	}
	if parent != nil && parent.Done() != nil {
		c.stopParent = context.AfterFunc(parent, c.onParentCancelFn)
	}
	return c
}

func (c *callCtx) onTimeout() { c.cancel(context.DeadlineExceeded, false) }

func (c *callCtx) onParentCancel() {
	c.mu.Lock()
	p := c.parent
	c.mu.Unlock()
	err := context.Canceled
	if p != nil {
		if perr := p.Err(); perr != nil {
			err = perr
		}
	}
	c.cancel(err, true)
}

func (c *callCtx) cancel(err error, consumer bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.err = err
	c.consumerGone = consumer
	close(c.done)
}

// detach stops consumer-cancellation propagation: the response has been
// delivered and the remaining collection is the middleware's own
// monitoring work, bounded by the dispatch deadline only. A consumer
// disconnect that already fired stays in effect.
func (c *callCtx) detach() {
	if c.stopParent != nil {
		if !c.stopParent() {
			// The parent-cancel callback has already started: it may
			// still fire against this incarnation, so release() must
			// not recycle the struct.
			c.parentDirty = true
		}
		c.stopParent = nil
	}
}

// gone reports whether the context was cancelled by the consumer's own
// request context rather than the dispatch deadline.
func (c *callCtx) gone() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.consumerGone
}

// release disarms the context and recycles it when no cancellation
// callback ever ran (or can still run). Must be called exactly once,
// after the last user of the context has finished.
//
//wsu:owns c
//wsu:allow poolcheck -- dirty contexts (a callback ran or may still run) are left to the GC
func (c *callCtx) release() {
	parentQuiet := !c.parentDirty
	if c.stopParent != nil {
		parentQuiet = c.stopParent() && parentQuiet
		c.stopParent = nil
	}
	timerQuiet := c.timer.Stop()
	c.mu.Lock()
	fired := c.err != nil
	c.parent = nil
	c.mu.Unlock()
	if parentQuiet && timerQuiet && !fired {
		callCtxPool.Put(c)
	}
	// Otherwise a cancellation callback ran — or may still be running —
	// against this incarnation: the struct is dirty (closed channel,
	// set error) and is left for the GC.
}

// Deadline implements context.Context.
func (c *callCtx) Deadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deadline, true
}

// Done implements context.Context.
func (c *callCtx) Done() <-chan struct{} { return c.done }

// Err implements context.Context.
func (c *callCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Value implements context.Context by delegating to the parent, so
// request-scoped values (traces, consumer identity) flow through to the
// release calls.
func (c *callCtx) Value(key any) any {
	c.mu.Lock()
	p := c.parent
	c.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Value(key)
}
