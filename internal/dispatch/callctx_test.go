package dispatch

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCallCtxDeadline(t *testing.T) {
	c := acquireCallCtx(context.Background(), 20*time.Millisecond)
	dl, ok := c.Deadline()
	if !ok || time.Until(dl) > 25*time.Millisecond {
		t.Fatalf("deadline = %v, ok = %v", dl, ok)
	}
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("deadline never fired")
	}
	if !errors.Is(c.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v", c.Err())
	}
	if c.gone() {
		t.Fatal("deadline misreported as consumer cancellation")
	}
	c.release()
}

func TestCallCtxParentCancellationPropagates(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	c := acquireCallCtx(parent, time.Hour)
	select {
	case <-c.Done():
		t.Fatal("cancelled before parent")
	default:
	}
	cancel()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("parent cancellation never propagated")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("err = %v", c.Err())
	}
	if !c.gone() {
		t.Fatal("consumer cancellation not flagged")
	}
	c.release()
}

func TestCallCtxParentDeadlineClips(t *testing.T) {
	parent, cancel := context.WithDeadline(context.Background(),
		time.Now().Add(10*time.Millisecond))
	defer cancel()
	c := acquireCallCtx(parent, time.Hour)
	if dl, _ := c.Deadline(); time.Until(dl) > 15*time.Millisecond {
		t.Fatalf("deadline not clipped to parent: %v away", time.Until(dl))
	}
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("clipped deadline never fired")
	}
	c.release()
}

func TestCallCtxDetachSurvivesParentCancel(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	c := acquireCallCtx(parent, time.Hour)
	c.detach()
	cancel()
	// Give a stray propagation a chance to fire wrongly.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-c.Done():
		t.Fatal("detached context still cancelled by parent")
	default:
	}
	if c.Err() != nil {
		t.Fatalf("err = %v", c.Err())
	}
	c.release()
}

func TestCallCtxValueDelegatesToParent(t *testing.T) {
	type key struct{}
	parent := context.WithValue(context.Background(), key{}, "travel-agency")
	c := acquireCallCtx(parent, time.Second)
	if got := c.Value(key{}); got != "travel-agency" {
		t.Fatalf("Value = %v", got)
	}
	c.release()
	if got := c.Value(key{}); got != nil {
		t.Fatalf("Value after release = %v", got)
	}
}

// A recycled context must come back pristine: no leftover error, an
// open done channel, and the new incarnation's deadline.
func TestCallCtxReuseIsClean(t *testing.T) {
	for i := 0; i < 100; i++ {
		c := acquireCallCtx(context.Background(), time.Minute)
		if c.Err() != nil {
			t.Fatalf("iteration %d: recycled context carries err %v", i, c.Err())
		}
		select {
		case <-c.Done():
			t.Fatalf("iteration %d: recycled context already done", i)
		default:
		}
		c.release()
	}
}

// A context whose cancellation fired is abandoned, never recycled with
// a closed channel.
func TestCallCtxFiredContextNotRecycledDirty(t *testing.T) {
	for i := 0; i < 50; i++ {
		parent, cancel := context.WithCancel(context.Background())
		c := acquireCallCtx(parent, time.Hour)
		cancel()
		<-c.Done()
		c.release()
		// Whatever the pool hands out next must be clean.
		next := acquireCallCtx(context.Background(), time.Minute)
		select {
		case <-next.Done():
			t.Fatalf("iteration %d: pool handed out a cancelled context", i)
		default:
		}
		next.release()
	}
}

// A consumer disconnect racing detach() must never poison the pool: if
// the parent-cancel callback already started when detach stopped the
// propagation, the struct may not be recycled — a stale callback firing
// against the next dispatch's context would spuriously cancel it.
func TestCallCtxDetachRaceDoesNotPoisonPool(t *testing.T) {
	for i := 0; i < 500; i++ {
		parent, cancel := context.WithCancel(context.Background())
		c := acquireCallCtx(parent, time.Hour)
		go cancel() // races the detach below
		c.detach()
		c.release()
		next := acquireCallCtx(context.Background(), time.Hour)
		time.Sleep(20 * time.Microsecond) // let any stale callback land
		if err := next.Err(); err != nil {
			t.Fatalf("iteration %d: recycled context cancelled by stale parent callback: %v (gone=%v)",
				i, err, next.gone())
		}
		select {
		case <-next.Done():
			t.Fatalf("iteration %d: recycled context already done", i)
		default:
		}
		next.release()
	}
}

func TestCallCtxNilParent(t *testing.T) {
	c := acquireCallCtx(nil, time.Minute)
	if c.Err() != nil || c.Value("k") != nil {
		t.Fatal("nil parent mishandled")
	}
	c.release()
}
