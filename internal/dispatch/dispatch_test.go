package dispatch

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/soap"
)

// stubTransport answers every call in process with a canned response.
type stubTransport struct {
	status int
	resp   []byte
	delay  time.Duration
	calls  atomic.Int64
}

func (t *stubTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.calls.Add(1)
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
	if t.delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(t.delay):
		}
	}
	status := t.status
	if status == 0 {
		status = http.StatusOK
	}
	return &http.Response{
		StatusCode: status,
		Header:     http.Header{"Content-Type": []string{soap.ContentType}},
		Body:       io.NopCloser(strings.NewReader(string(t.resp))),
		Request:    req,
	}, nil
}

func okEnvelope() []byte {
	return soap.EnvelopeRaw([]byte(`<addResponse><sum>3</sum></addResponse>`))
}

func targets(n int) []Endpoint {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = Endpoint{Version: "1." + string(rune('0'+i)), URL: "http://rel.invalid"}
	}
	return eps
}

func newStubDispatcher(tr http.RoundTripper, onOutcome func(Outcome)) *Dispatcher {
	return New(Config{
		Client:    &http.Client{Transport: tr},
		OnOutcome: onOutcome,
	})
}

func baseRequest(eps []Endpoint, mode Mode) Request {
	return Request{
		Parent:    context.Background(),
		Targets:   eps,
		Mode:      mode,
		Timeout:   2 * time.Second,
		Operation: "add",
		Envelope:  soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`)),
		Oldest:    eps[0],
		Newest:    eps[len(eps)-1],
	}
}

func TestDoSingleTargetDelivers(t *testing.T) {
	var out Outcome
	var fired int
	d := newStubDispatcher(&stubTransport{resp: okEnvelope()}, func(o Outcome) {
		out = Outcome{
			Operation: o.Operation, Winner: o.Winner,
			ConsumerGone: o.ConsumerGone,
		}
		fired++
	})
	defer d.Close()
	eps := targets(1)
	winner, err := d.Do(baseRequest(eps, ModeReliability))
	if err != nil {
		t.Fatal(err)
	}
	if winner.Release != "1.0" || !strings.Contains(string(winner.Body), "<sum>3</sum>") {
		t.Fatalf("winner = %+v", winner)
	}
	if fired != 1 || out.Operation != "add" || out.ConsumerGone {
		t.Fatalf("outcome = %+v (fired %d)", out, fired)
	}
}

func TestDoFanOutReliabilityCollectsAll(t *testing.T) {
	tr := &stubTransport{resp: okEnvelope()}
	var replies int
	var mu sync.Mutex
	d := newStubDispatcher(tr, func(o Outcome) {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range o.Replies {
			if r.Release != "" {
				replies++
			}
		}
	})
	eps := targets(3)
	if _, err := d.Do(baseRequest(eps, ModeReliability)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if replies != 3 || tr.calls.Load() != 3 {
		t.Fatalf("replies = %d, calls = %d", replies, tr.calls.Load())
	}
}

func TestDoSequentialShortCircuits(t *testing.T) {
	tr := &stubTransport{resp: okEnvelope()}
	var invoked int
	var mu sync.Mutex
	d := newStubDispatcher(tr, func(o Outcome) {
		mu.Lock()
		invoked = len(o.Replies)
		mu.Unlock()
	})
	defer d.Close()
	if _, err := d.Do(baseRequest(targets(3), ModeSequential)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if invoked != 1 || tr.calls.Load() != 1 {
		t.Fatalf("sequential invoked %d releases (%d calls)", invoked, tr.calls.Load())
	}
}

func TestDoNoResponsesIsUnavailable(t *testing.T) {
	d := New(Config{Client: &http.Client{Transport: &stubTransport{
		resp: okEnvelope(), delay: time.Hour,
	}}})
	defer d.Close()
	req := baseRequest(targets(2), ModeReliability)
	req.Timeout = 30 * time.Millisecond
	_, err := d.Do(req)
	if !errors.Is(err, adjudicate.ErrNoResponses) {
		t.Fatalf("err = %v", err)
	}
}

// The satellite bugfix at the dispatcher level: a consumer that hangs up
// cancels the in-flight fan-out instead of letting it run to the full
// dispatch timeout, and the aborted outcome is flagged so monitoring can
// ignore it.
func TestDoConsumerCancelAbortsInFlight(t *testing.T) {
	outcomes := make(chan Outcome, 1)
	d := New(Config{
		Client: &http.Client{Transport: &stubTransport{
			resp: okEnvelope(), delay: time.Hour,
		}},
		OnOutcome: func(o Outcome) { outcomes <- Outcome{ConsumerGone: o.ConsumerGone} },
	})
	defer d.Close()
	parent, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	req := baseRequest(targets(2), ModeReliability)
	req.Parent = parent
	req.Timeout = time.Hour
	start := time.Now()
	_, err := d.Do(req)
	if err == nil {
		t.Fatal("cancelled dispatch delivered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dispatch outlived its consumer by %v", elapsed)
	}
	select {
	case o := <-outcomes:
		if !o.ConsumerGone {
			t.Fatal("aborted outcome not flagged ConsumerGone")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no outcome reported")
	}
}

// Early delivery detaches from the consumer: responsiveness mode returns
// the first reply, the consumer disconnects, and the straggler is still
// collected for monitoring.
func TestDoEarlyDeliveryDetachesFromConsumer(t *testing.T) {
	fast := &stubTransport{resp: okEnvelope()}
	slow := &stubTransport{resp: okEnvelope(), delay: 150 * time.Millisecond}
	router := http.NewServeMux()
	_ = router // two distinct hosts below instead

	perHost := map[string]http.RoundTripper{
		"fast.invalid": fast,
		"slow.invalid": slow,
	}
	tr := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		return perHost[req.URL.Host].RoundTrip(req)
	})
	outcomes := make(chan Outcome, 1)
	d := New(Config{
		Client: &http.Client{Transport: tr},
		OnOutcome: func(o Outcome) {
			n := 0
			for _, r := range o.Replies {
				if r.Release != "" && r.Valid() {
					n++
				}
			}
			outcomes <- Outcome{ConsumerGone: o.ConsumerGone, Targets: o.Targets[:n]}
		},
	})
	defer d.Close()

	parent, cancel := context.WithCancel(context.Background())
	eps := []Endpoint{
		{Version: "1.0", URL: "http://fast.invalid"},
		{Version: "1.1", URL: "http://slow.invalid"},
	}
	req := baseRequest(eps, ModeResponsiveness)
	req.Parent = parent
	winner, err := d.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if winner.Release != "1.0" {
		t.Fatalf("winner = %s", winner.Release)
	}
	cancel() // consumer hangs up right after delivery
	select {
	case o := <-outcomes:
		if o.ConsumerGone {
			t.Fatal("post-delivery disconnect flagged the outcome aborted")
		}
		if len(o.Targets) != 2 {
			t.Fatalf("straggler not collected: %d valid replies", len(o.Targets))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("background collection never completed")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestDoAgainstLiveServerHonoursDeadline(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)
	d := New(Config{Client: srv.Client()})
	defer d.Close()
	req := baseRequest([]Endpoint{{Version: "1.0", URL: srv.URL}}, ModeReliability)
	req.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := d.Do(req)
	if err == nil {
		t.Fatal("expected unavailability")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not enforced")
	}
}

func TestParseModeRoundTrips(t *testing.T) {
	for _, m := range []Mode{ModeReliability, ModeResponsiveness, ModeDynamic, ModeSequential} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	for short, want := range map[string]Mode{
		"reliability": ModeReliability, "responsiveness": ModeResponsiveness,
		"dynamic": ModeDynamic, "sequential": ModeSequential,
	} {
		if got, err := ParseMode(short); err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", short, got, err)
		}
	}
	if _, err := ParseMode("warp"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
}

// TestOutcomeThreadsMonRefAlignedWithReplies pins the Endpoint.MonRef
// contract: the annotation reaches the outcome hook unchanged, with
// Targets[i] still aligned to Replies[i] on both the fan-out and the
// sequential path — the engine aggregates monitoring by that index.
func TestOutcomeThreadsMonRefAlignedWithReplies(t *testing.T) {
	for _, mode := range []Mode{ModeReliability, ModeSequential} {
		outcomes := make(chan Outcome, 1)
		d := newStubDispatcher(&stubTransport{resp: okEnvelope()}, func(o Outcome) {
			cp := Outcome{Targets: append([]Endpoint(nil), o.Targets...)}
			for _, r := range o.Replies {
				cp.Replies = append(cp.Replies, adjudicate.Reply{Release: r.Release})
			}
			outcomes <- cp
		})
		eps := targets(3)
		for i := range eps {
			eps[i].MonRef = int32(i + 7)
		}
		req := baseRequest(eps, mode)
		if _, err := d.Do(req); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		out := <-outcomes
		if len(out.Targets) == 0 || len(out.Targets) != len(out.Replies) {
			t.Fatalf("%v: %d targets vs %d replies", mode, len(out.Targets), len(out.Replies))
		}
		for i := range out.Targets {
			if out.Targets[i].MonRef != int32(i+7) {
				t.Fatalf("%v: target %d MonRef = %d, want %d", mode, i, out.Targets[i].MonRef, i+7)
			}
			if out.Replies[i].Release != out.Targets[i].Version {
				t.Fatalf("%v: reply %d is %q, target is %q",
					mode, i, out.Replies[i].Release, out.Targets[i].Version)
			}
		}
	}
}

// TestFanoutReuseAcrossDispatches drives many sequential fan-outs so
// pooled fan-out state (reply channel, shared call args) is recycled;
// the replies must never bleed between dispatches.
func TestFanoutReuseAcrossDispatches(t *testing.T) {
	tr := &stubTransport{resp: okEnvelope()}
	var bad atomic.Int64
	d := newStubDispatcher(tr, func(o Outcome) {
		seen := map[string]bool{}
		for _, r := range o.Replies {
			if r.Release == "" || seen[r.Release] {
				bad.Add(1)
			}
			seen[r.Release] = true
		}
	})
	eps := targets(4)
	for i := 0; i < 200; i++ {
		if _, err := d.Do(baseRequest(eps, ModeReliability)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d duplicated or empty replies across reused fan-outs", bad.Load())
	}
}
