// Package wsdl models WSDL 1.1 service descriptions: enough of the
// standard to publish the paper's Web Services (types/schema, messages,
// portType, binding, service/port) and to express the §6.2 mechanisms for
// publishing *confidence in dependability* through the service contract:
//
//  1. extending an operation's response element with a confidence value
//     (breaks backward compatibility);
//  2. adding a dedicated OperationConf operation that returns the
//     confidence of a named operation;
//  3. adding a parallel "<operation>Conf" variant whose response carries
//     the result plus the confidence (backward compatible).
//
// It also models the §7.2 upgrade-notification extension: a release
// reference in the WSDL pointing at the endpoint of another release of
// the same service, so consumers can discover an upgrade while both
// releases stay operational.
package wsdl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Namespaces used in generated documents.
const (
	// NS is the WSDL 1.1 namespace.
	NS = "http://schemas.xmlsoap.org/wsdl/"
	// SOAPNS is the WSDL SOAP binding namespace.
	SOAPNS = "http://schemas.xmlsoap.org/wsdl/soap/"
	// XSDNS is the XML Schema namespace.
	XSDNS = "http://www.w3.org/2001/XMLSchema"
	// UpgradeNS is this project's extension namespace for release
	// references and confidence annotations.
	UpgradeNS = "urn:wsupgrade:extensions"
)

// ErrBadContract reports an invalid service contract.
var ErrBadContract = errors.New("wsdl: bad contract")

// Param is one named, typed element of a request or response.
type Param struct {
	// Name is the element name.
	Name string
	// Type is the XSD type, e.g. "s:int", "s:string", "s:double".
	Type string
}

// Operation describes one operation: its input and output parts.
type Operation struct {
	// Name is the operation name, e.g. "operation1".
	Name string
	// Doc optionally documents the operation.
	Doc string
	// Input lists the request parameters.
	Input []Param
	// Output lists the response elements.
	Output []Param
}

// RequestElement returns the name of the request body element
// ("<Name>Request"), which is also the RPC dispatch key.
func (o Operation) RequestElement() string { return o.Name + "Request" }

// ResponseElement returns the name of the response body element.
func (o Operation) ResponseElement() string { return o.Name + "Response" }

// ReleaseRef is the §7.2 extension: a pointer from one release's WSDL to
// another operational release of the same service.
type ReleaseRef struct {
	// Version identifies the referenced release, e.g. "1.1".
	Version string
	// Location is the referenced release's endpoint URL.
	Location string
	// Relation describes the reference: "successor" or "predecessor".
	Relation string
}

// Contract is the abstract service description from which a WSDL document
// is generated.
type Contract struct {
	// Name is the service name, e.g. "WebService1".
	Name string
	// TargetNamespace qualifies the service's own names.
	TargetNamespace string
	// Version is the release version, carried as documentation and used
	// by the upgrade machinery to distinguish releases (§3.2 requires
	// releases to be at least distinguishable).
	Version string
	// Operations lists the service operations.
	Operations []Operation
	// Releases lists other operational releases of this service (§7.2).
	Releases []ReleaseRef
}

// Validate checks the contract is generable.
func (c Contract) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: empty service name", ErrBadContract)
	}
	if c.TargetNamespace == "" {
		return fmt.Errorf("%w: empty target namespace", ErrBadContract)
	}
	if len(c.Operations) == 0 {
		return fmt.Errorf("%w: no operations", ErrBadContract)
	}
	seen := map[string]bool{}
	for _, op := range c.Operations {
		if op.Name == "" {
			return fmt.Errorf("%w: unnamed operation", ErrBadContract)
		}
		if seen[op.Name] {
			return fmt.Errorf("%w: duplicate operation %q", ErrBadContract, op.Name)
		}
		seen[op.Name] = true
	}
	return nil
}

// Operation returns the named operation, if present.
func (c Contract) Operation(name string) (Operation, bool) {
	for _, op := range c.Operations {
		if op.Name == name {
			return op, true
		}
	}
	return Operation{}, false
}

// ---------------------------------------------------------------------------
// §6.2 confidence-publishing transformations on contracts.

// WithConfidenceInResponse returns a copy of the contract in which the
// named operation's response is extended with a confidence element
// (option 1 of §6.2). The new description is NOT backward compatible with
// the old one — acceptable for newly deployed services only.
func (c Contract) WithConfidenceInResponse(operation string) (Contract, error) {
	out := c.clone()
	for i, op := range out.Operations {
		if op.Name != operation {
			continue
		}
		op.Output = append(append([]Param(nil), op.Output...),
			Param{Name: op.Name + "Conf", Type: "s:double"})
		out.Operations[i] = op
		return out, nil
	}
	return Contract{}, fmt.Errorf("%w: operation %q not found", ErrBadContract, operation)
}

// ConfOperationName is the dedicated confidence query operation of §6.2
// option 2.
const ConfOperationName = "OperationConf"

// WithConfidenceOperation returns a copy of the contract extended with
// the OperationConf operation (option 2 of §6.2): it takes an operation
// name and returns the provider's confidence in it. Backward compatible.
func (c Contract) WithConfidenceOperation() Contract {
	out := c.clone()
	if _, exists := out.Operation(ConfOperationName); exists {
		return out
	}
	out.Operations = append(out.Operations, Operation{
		Name: ConfOperationName,
		Doc:  "Returns the published confidence in the named operation's correctness.",
		Input: []Param{
			{Name: "operation", Type: "s:string"},
		},
		Output: []Param{
			{Name: "confidence", Type: "s:double"},
		},
	})
	return out
}

// WithConfVariant returns a copy of the contract extended with an
// "<operation>Conf" twin of the named operation whose response carries
// the original result plus the confidence (option 3 of §6.2): confidence-
// conscious consumers switch to the variant, existing consumers are
// untouched.
func (c Contract) WithConfVariant(operation string) (Contract, error) {
	out := c.clone()
	op, ok := out.Operation(operation)
	if !ok {
		return Contract{}, fmt.Errorf("%w: operation %q not found", ErrBadContract, operation)
	}
	variant := Operation{
		Name:  op.Name + "Conf",
		Doc:   fmt.Sprintf("As %s, with the response extended by the confidence in its correctness.", op.Name),
		Input: append([]Param(nil), op.Input...),
		Output: append(append([]Param(nil), op.Output...),
			Param{Name: op.Name + "Conf", Type: "s:double"}),
	}
	if _, exists := out.Operation(variant.Name); exists {
		return out, nil
	}
	out.Operations = append(out.Operations, variant)
	return out, nil
}

func (c Contract) clone() Contract {
	out := c
	out.Operations = make([]Operation, len(c.Operations))
	for i, op := range c.Operations {
		op.Input = append([]Param(nil), op.Input...)
		op.Output = append([]Param(nil), op.Output...)
		out.Operations[i] = op
	}
	out.Releases = append([]ReleaseRef(nil), c.Releases...)
	return out
}

// ---------------------------------------------------------------------------
// Document model (serializable WSDL).

// Definitions is the WSDL root element.
type Definitions struct {
	XMLName         xml.Name    `xml:"definitions"`
	Name            string      `xml:"name,attr"`
	TargetNamespace string      `xml:"targetNamespace,attr"`
	Documentation   string      `xml:"documentation,omitempty"`
	Types           Types       `xml:"types"`
	Messages        []Message   `xml:"message"`
	PortType        PortType    `xml:"portType"`
	Binding         Binding     `xml:"binding"`
	Service         Service     `xml:"service"`
	Releases        []RelRefXML `xml:"releaseRef,omitempty"`
}

// RelRefXML serializes a ReleaseRef extension element.
type RelRefXML struct {
	Version  string `xml:"version,attr"`
	Location string `xml:"location,attr"`
	Relation string `xml:"relation,attr"`
}

// Types wraps the inline schema.
type Types struct {
	Schema Schema `xml:"schema"`
}

// Schema is a minimal XSD schema with top-level elements.
type Schema struct {
	TargetNamespace string      `xml:"targetNamespace,attr"`
	Elements        []SchemaElt `xml:"element"`
}

// SchemaElt declares one element with a sequence of child elements.
type SchemaElt struct {
	Name     string        `xml:"name,attr"`
	Sequence []SequenceElt `xml:"complexType>sequence>element"`
}

// SequenceElt is one child element declaration.
type SequenceElt struct {
	MinOccurs int    `xml:"minOccurs,attr"`
	MaxOccurs int    `xml:"maxOccurs,attr"`
	Name      string `xml:"name,attr"`
	Type      string `xml:"type,attr"`
}

// Message names a WSDL message with a single body part.
type Message struct {
	Name string      `xml:"name,attr"`
	Part MessagePart `xml:"part"`
}

// MessagePart binds the message to a schema element.
type MessagePart struct {
	Name    string `xml:"name,attr"`
	Element string `xml:"element,attr"`
}

// PortType lists the abstract operations.
type PortType struct {
	Name       string       `xml:"name,attr"`
	Operations []PortTypeOp `xml:"operation"`
}

// PortTypeOp is one abstract operation with input and output messages.
type PortTypeOp struct {
	Name          string `xml:"name,attr"`
	Documentation string `xml:"documentation,omitempty"`
	Input         IOBind `xml:"input"`
	Output        IOBind `xml:"output"`
}

// IOBind names the message of an input or output.
type IOBind struct {
	Message string `xml:"message,attr"`
}

// Binding ties the portType to SOAP/HTTP.
type Binding struct {
	Name      string      `xml:"name,attr"`
	Type      string      `xml:"type,attr"`
	Transport string      `xml:"transport,attr"`
	Style     string      `xml:"style,attr"`
	Ops       []BindingOp `xml:"operation"`
}

// BindingOp declares the SOAPAction of one operation.
type BindingOp struct {
	Name       string `xml:"name,attr"`
	SOAPAction string `xml:"soapAction,attr"`
}

// Service exposes the concrete endpoint.
type Service struct {
	Name string `xml:"name,attr"`
	Port Port   `xml:"port"`
}

// Port binds the binding to a network location.
type Port struct {
	Name     string `xml:"name,attr"`
	Binding  string `xml:"binding,attr"`
	Location string `xml:"location,attr"`
}

// Generate renders the contract as a WSDL document bound to the given
// endpoint location.
func Generate(c Contract, location string) (*Definitions, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	def := &Definitions{
		Name:            c.Name,
		TargetNamespace: c.TargetNamespace,
		Documentation:   fmt.Sprintf("%s release %s", c.Name, c.Version),
		Types:           Types{Schema: Schema{TargetNamespace: c.TargetNamespace}},
		PortType:        PortType{Name: c.Name + "PortType"},
		Binding: Binding{
			Name:      c.Name + "SoapBinding",
			Type:      "tns:" + c.Name + "PortType",
			Transport: "http://schemas.xmlsoap.org/soap/http",
			Style:     "document",
		},
		Service: Service{
			Name: c.Name,
			Port: Port{
				Name:     c.Name + "Port",
				Binding:  "tns:" + c.Name + "SoapBinding",
				Location: location,
			},
		},
	}
	for _, r := range c.Releases {
		def.Releases = append(def.Releases, RelRefXML(r))
	}
	for _, op := range c.Operations {
		reqElt := SchemaElt{Name: op.RequestElement()}
		for _, p := range op.Input {
			reqElt.Sequence = append(reqElt.Sequence, SequenceElt{MaxOccurs: 1, Name: p.Name, Type: p.Type})
		}
		respElt := SchemaElt{Name: op.ResponseElement()}
		for _, p := range op.Output {
			respElt.Sequence = append(respElt.Sequence, SequenceElt{MaxOccurs: 1, Name: p.Name, Type: p.Type})
		}
		def.Types.Schema.Elements = append(def.Types.Schema.Elements, reqElt, respElt)
		def.Messages = append(def.Messages,
			Message{Name: op.Name + "In", Part: MessagePart{Name: "parameters", Element: "tns:" + op.RequestElement()}},
			Message{Name: op.Name + "Out", Part: MessagePart{Name: "parameters", Element: "tns:" + op.ResponseElement()}},
		)
		def.PortType.Operations = append(def.PortType.Operations, PortTypeOp{
			Name:          op.Name,
			Documentation: op.Doc,
			Input:         IOBind{Message: "tns:" + op.Name + "In"},
			Output:        IOBind{Message: "tns:" + op.Name + "Out"},
		})
		def.Binding.Ops = append(def.Binding.Ops, BindingOp{
			Name:       op.Name,
			SOAPAction: strings.TrimSuffix(c.TargetNamespace, "/") + "/" + op.Name,
		})
	}
	return def, nil
}

// Marshal renders the document as XML with header.
func (d *Definitions) Marshal() ([]byte, error) {
	data, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("wsdl: marshalling: %w", err)
	}
	return append([]byte(xml.Header), data...), nil
}

// Parse decodes a WSDL document produced by Generate.
func Parse(data []byte) (*Definitions, error) {
	var d Definitions
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("wsdl: parsing: %w", err)
	}
	return &d, nil
}

// OperationNames lists the operations declared in the document, sorted.
func (d *Definitions) OperationNames() []string {
	names := make([]string, 0, len(d.PortType.Operations))
	for _, op := range d.PortType.Operations {
		names = append(names, op.Name)
	}
	sort.Strings(names)
	return names
}

// Endpoint returns the concrete service location.
func (d *Definitions) Endpoint() string { return d.Service.Port.Location }

// ReleaseRefs returns the §7.2 release references, if any.
func (d *Definitions) ReleaseRefs() []ReleaseRef {
	out := make([]ReleaseRef, len(d.Releases))
	for i, r := range d.Releases {
		out[i] = ReleaseRef(r)
	}
	return out
}

// Diff reports the operations present in b but not in a — the consumer-
// visible surface change of an upgrade.
func Diff(a, b *Definitions) []string {
	have := map[string]bool{}
	for _, op := range a.PortType.Operations {
		have[op.Name] = true
	}
	var added []string
	for _, op := range b.PortType.Operations {
		if !have[op.Name] {
			added = append(added, op.Name)
		}
	}
	sort.Strings(added)
	return added
}
