package wsdl

import (
	"strings"
	"testing"
)

// paperContract builds the §6.2 example: operation1(param1 int,
// param2 string) → Op1Result string.
func paperContract() Contract {
	return Contract{
		Name:            "WebService1",
		TargetNamespace: "urn:ws1",
		Version:         "1.0",
		Operations: []Operation{
			{
				Name:   "operation1",
				Doc:    "The paper's running example operation.",
				Input:  []Param{{Name: "param1", Type: "s:int"}, {Name: "param2", Type: "s:string"}},
				Output: []Param{{Name: "Op1Result", Type: "s:string"}},
			},
		},
	}
}

func TestContractValidate(t *testing.T) {
	if err := paperContract().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Contract{
		{},
		{Name: "X"},
		{Name: "X", TargetNamespace: "urn:x"},
		{Name: "X", TargetNamespace: "urn:x", Operations: []Operation{{}}},
		{Name: "X", TargetNamespace: "urn:x", Operations: []Operation{{Name: "a"}, {Name: "a"}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid contract accepted", i)
		}
	}
}

func TestElementNames(t *testing.T) {
	op, ok := paperContract().Operation("operation1")
	if !ok {
		t.Fatal("operation1 missing")
	}
	if op.RequestElement() != "operation1Request" || op.ResponseElement() != "operation1Response" {
		t.Fatalf("element names: %s / %s", op.RequestElement(), op.ResponseElement())
	}
	if _, ok := paperContract().Operation("nope"); ok {
		t.Fatal("found nonexistent operation")
	}
}

func TestGenerateAndRoundTrip(t *testing.T) {
	c := paperContract()
	c.Releases = []ReleaseRef{{Version: "1.1", Location: "http://node1/ws11", Relation: "successor"}}
	def, err := Generate(c, "http://node1/ws1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := def.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"operation1Request", "operation1Response",
		"param1", "param2", "Op1Result",
		"http://node1/ws1", "releaseRef", "1.1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated WSDL missing %q", want)
		}
	}

	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Endpoint() != "http://node1/ws1" {
		t.Fatalf("endpoint = %q", back.Endpoint())
	}
	ops := back.OperationNames()
	if len(ops) != 1 || ops[0] != "operation1" {
		t.Fatalf("operations = %v", ops)
	}
	refs := back.ReleaseRefs()
	if len(refs) != 1 || refs[0].Version != "1.1" || refs[0].Relation != "successor" {
		t.Fatalf("release refs = %+v", refs)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	if _, err := Generate(Contract{}, "http://x"); err == nil {
		t.Fatal("invalid contract generated")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not xml")); err == nil {
		t.Fatal("garbage parsed")
	}
}

// Option 1 (§6.2): the response element itself gains an Op1Conf child —
// not backward compatible.
func TestWithConfidenceInResponse(t *testing.T) {
	c, err := paperContract().WithConfidenceInResponse("operation1")
	if err != nil {
		t.Fatal(err)
	}
	op, _ := c.Operation("operation1")
	last := op.Output[len(op.Output)-1]
	if last.Name != "operation1Conf" || last.Type != "s:double" {
		t.Fatalf("confidence element = %+v", last)
	}
	// The original contract is untouched (copy semantics).
	orig, _ := paperContract().Operation("operation1")
	if len(orig.Output) != 1 {
		t.Fatal("original contract mutated")
	}
	if _, err := paperContract().WithConfidenceInResponse("nope"); err == nil {
		t.Fatal("unknown operation accepted")
	}
}

// Option 2 (§6.2): a separate OperationConf operation — backward
// compatible.
func TestWithConfidenceOperation(t *testing.T) {
	c := paperContract().WithConfidenceOperation()
	op, ok := c.Operation(ConfOperationName)
	if !ok {
		t.Fatal("OperationConf missing")
	}
	if len(op.Input) != 1 || op.Input[0].Name != "operation" {
		t.Fatalf("OperationConf input = %+v", op.Input)
	}
	if len(op.Output) != 1 || op.Output[0].Type != "s:double" {
		t.Fatalf("OperationConf output = %+v", op.Output)
	}
	// Idempotent.
	c2 := c.WithConfidenceOperation()
	if len(c2.Operations) != len(c.Operations) {
		t.Fatal("WithConfidenceOperation not idempotent")
	}
	// The old operation is untouched: backward compatible.
	if _, ok := c.Operation("operation1"); !ok {
		t.Fatal("original operation lost")
	}
}

// Option 3 (§6.2): an operation1Conf twin — backward compatible, with the
// confidence in every response.
func TestWithConfVariant(t *testing.T) {
	c, err := paperContract().WithConfVariant("operation1")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c.Operation("operation1Conf")
	if !ok {
		t.Fatal("operation1Conf missing")
	}
	if len(v.Input) != 2 {
		t.Fatalf("variant input = %+v (should mirror the original)", v.Input)
	}
	if len(v.Output) != 2 || v.Output[1].Name != "operation1Conf" {
		t.Fatalf("variant output = %+v", v.Output)
	}
	if _, ok := c.Operation("operation1"); !ok {
		t.Fatal("original operation lost — variant must be additive")
	}
	if _, err := paperContract().WithConfVariant("nope"); err == nil {
		t.Fatal("unknown operation accepted")
	}
	// Idempotent.
	c2, err := c.WithConfVariant("operation1")
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Operations) != len(c.Operations) {
		t.Fatal("WithConfVariant not idempotent")
	}
}

// The upgrade-visible diff between two releases' WSDLs: the new release's
// added operations.
func TestDiff(t *testing.T) {
	oldDef, err := Generate(paperContract(), "http://node1/ws")
	if err != nil {
		t.Fatal(err)
	}
	newC := paperContract().WithConfidenceOperation()
	newC.Version = "1.1"
	newDef, err := Generate(newC, "http://node1/ws")
	if err != nil {
		t.Fatal(err)
	}
	added := Diff(oldDef, newDef)
	if len(added) != 1 || added[0] != ConfOperationName {
		t.Fatalf("diff = %v", added)
	}
	if got := Diff(newDef, oldDef); len(got) != 0 {
		t.Fatalf("reverse diff = %v", got)
	}
}

func TestGeneratedSchemaShape(t *testing.T) {
	def, err := Generate(paperContract(), "http://node1/ws")
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Types.Schema.Elements) != 2 {
		t.Fatalf("schema elements = %d, want request+response", len(def.Types.Schema.Elements))
	}
	req := def.Types.Schema.Elements[0]
	if req.Name != "operation1Request" || len(req.Sequence) != 2 {
		t.Fatalf("request element = %+v", req)
	}
	if len(def.Messages) != 2 {
		t.Fatalf("messages = %d", len(def.Messages))
	}
	if def.Binding.Style != "document" || !strings.Contains(def.Binding.Transport, "soap/http") {
		t.Fatalf("binding = %+v", def.Binding)
	}
	if len(def.Binding.Ops) != 1 || !strings.Contains(def.Binding.Ops[0].SOAPAction, "operation1") {
		t.Fatalf("binding ops = %+v", def.Binding.Ops)
	}
}
