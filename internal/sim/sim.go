// Package sim is a small discrete-event simulation kernel: a virtual clock
// and a time-ordered event queue. The §5.2 availability/performance study
// of the managed-upgrade middleware runs on it, as do the failure-injection
// integration tests.
//
// Events scheduled at equal times fire in scheduling order (FIFO), which
// keeps runs deterministic. The kernel is single-threaded by design:
// determinism, not throughput, is the point.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrPast reports an attempt to schedule an event before the current
// virtual time.
var ErrPast = errors.New("sim: event scheduled in the past")

// Kernel is a discrete-event scheduler. The zero value is ready to use,
// starting at virtual time 0.
type Kernel struct {
	now     float64
	queue   eventHeap
	seq     uint64
	stopped bool
}

// Timer is a handle to a scheduled event; Cancel prevents an event that
// has not yet fired from running.
type Timer struct {
	ev *event
}

// Cancel marks the event dead. Cancelling an already-fired or
// already-cancelled timer is a no-op. A nil Timer is also a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.do = nil
	}
}

// Active reports whether the event is still pending.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && t.ev.do != nil }

type event struct {
	time float64
	seq  uint64
	do   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Now returns the current virtual time.
func (k *Kernel) Now() float64 { return k.now }

// Pending returns the number of events still queued (including cancelled
// ones that have not been reaped yet).
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules do at absolute virtual time t and returns a cancellable
// handle. Scheduling before the current time or with a non-finite time is
// an error; scheduling exactly at the current time is allowed and fires
// after already-queued events at that time.
func (k *Kernel) At(t float64, do func()) (*Timer, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("%w: non-finite time %v", ErrPast, t)
	}
	if t < k.now {
		return nil, fmt.Errorf("%w: at %v, now %v", ErrPast, t, k.now)
	}
	if do == nil {
		return nil, errors.New("sim: nil event body")
	}
	ev := &event{time: t, seq: k.seq, do: do}
	k.seq++
	heap.Push(&k.queue, ev)
	return &Timer{ev: ev}, nil
}

// After schedules do at Now()+d.
func (k *Kernel) After(d float64, do func()) (*Timer, error) {
	if d < 0 || math.IsNaN(d) {
		return nil, fmt.Errorf("%w: negative delay %v", ErrPast, d)
	}
	return k.At(k.now+d, do)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue drains or Stop is
// called. It returns the number of events executed (cancelled events are
// reaped but not counted).
func (k *Kernel) Run() int {
	return k.RunUntil(math.Inf(1))
}

// RunUntil executes events with time ≤ horizon, then advances the clock to
// the horizon (if finite) and returns the number executed.
func (k *Kernel) RunUntil(horizon float64) int {
	k.stopped = false
	executed := 0
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.time > horizon {
			break
		}
		heap.Pop(&k.queue)
		if next.do == nil {
			continue // cancelled
		}
		k.now = next.time
		do := next.do
		next.do = nil
		do()
		executed++
	}
	if !math.IsInf(horizon, 1) && horizon > k.now && !k.stopped {
		k.now = horizon
	}
	return executed
}
