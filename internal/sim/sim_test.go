package sim

import (
	"math"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var k Kernel
	var order []int
	mustAt := func(tm float64, id int) {
		t.Helper()
		if _, err := k.At(tm, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	mustAt(3, 3)
	mustAt(1, 1)
	mustAt(2, 2)
	if n := k.Run(); n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("clock = %v, want 3", k.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		id := i
		if _, err := k.At(5, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	for i, id := range order {
		if id != i {
			t.Fatalf("ties broke FIFO: %v", order)
		}
	}
}

func TestSchedulingDuringRun(t *testing.T) {
	var k Kernel
	var fired []float64
	if _, err := k.At(1, func() {
		fired = append(fired, k.Now())
		if _, err := k.After(2, func() { fired = append(fired, k.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	var k Kernel
	if _, err := k.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if _, err := k.At(1, func() {}); err == nil {
		t.Fatal("past event accepted")
	}
	if _, err := k.After(-1, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := k.At(math.NaN(), func() {}); err == nil {
		t.Fatal("NaN time accepted")
	}
	if _, err := k.At(math.Inf(1), func() {}); err == nil {
		t.Fatal("infinite time accepted")
	}
	if _, err := k.At(6, nil); err == nil {
		t.Fatal("nil body accepted")
	}
}

func TestCancel(t *testing.T) {
	var k Kernel
	fired := false
	tm, err := k.At(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Active() {
		t.Fatal("fresh timer not active")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled timer still active")
	}
	if n := k.Run(); n != 0 {
		t.Fatalf("executed %d, want 0", n)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	tm.Cancel() // double cancel is a no-op
	var nilTimer *Timer
	nilTimer.Cancel() // nil cancel is a no-op
	if nilTimer.Active() {
		t.Fatal("nil timer active")
	}
}

func TestCancelDuringRun(t *testing.T) {
	var k Kernel
	fired := false
	var victim *Timer
	if _, err := k.At(1, func() { victim.Cancel() }); err != nil {
		t.Fatal(err)
	}
	var err error
	victim, err = k.At(2, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var k Kernel
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		if _, err := k.At(tm, func() { fired = append(fired, tm) }); err != nil {
			t.Fatal(err)
		}
	}
	if n := k.RunUntil(2.5); n != 2 {
		t.Fatalf("executed %d, want 2", n)
	}
	if k.Now() != 2.5 {
		t.Fatalf("clock = %v, want horizon 2.5", k.Now())
	}
	if n := k.RunUntil(10); n != 2 {
		t.Fatalf("executed %d more, want 2", n)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d", k.Pending())
	}
}

func TestStop(t *testing.T) {
	var k Kernel
	count := 0
	for i := 1; i <= 5; i++ {
		if _, err := k.At(float64(i), func() {
			count++
			if count == 2 {
				k.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := k.Run(); n != 2 {
		t.Fatalf("executed %d, want 2 (stopped)", n)
	}
	// The remaining events are still there and can be resumed.
	if n := k.Run(); n != 3 {
		t.Fatalf("resume executed %d, want 3", n)
	}
}

func TestManyEventsStayOrdered(t *testing.T) {
	var k Kernel
	// Insert times in a scrambled deterministic order.
	const n = 5000
	last := -1.0
	for i := 0; i < n; i++ {
		tm := float64((i*7919)%n) / 10
		if _, err := k.At(tm, func() {
			if k.Now() < last {
				t.Fatalf("time went backwards: %v after %v", k.Now(), last)
			}
			last = k.Now()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.Run(); got != n {
		t.Fatalf("executed %d, want %d", got, n)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var k Kernel
		for j := 0; j < 1000; j++ {
			_, _ = k.At(float64(j%97), func() {})
		}
		k.Run()
	}
}
