// Package oracle implements the live failure-detection mechanisms the
// monitoring subsystem uses to judge release responses (§4.3, §5.1.1.3).
//
// Evident failures (faults, timeouts, transport errors) need no oracle;
// detecting *non-evident* failures requires application-level redundancy:
//
//   - Reference: the paper's §3.1 technique — "use the old release as an
//     'oracle' in judging if WS 1.1 returns correct responses": a valid
//     response disagreeing with the reference release's is judged failed.
//   - BackToBack: pure comparison — when the releases disagree, both are
//     suspected; coincident identical failures are (pessimistically)
//     undetectable, exactly the §5.1.1.3 model.
//   - Header: a ground-truth oracle reading the fault-injection marker the
//     internal/service runtime attaches; only the test harness has it.
//   - WithOmission wraps any oracle with the paper's omission-failure
//     imperfection: each detected failure is missed with probability
//     Pomit.
//
// All oracles return per-reply failure verdicts aligned with the replies
// slice, from which the pairwise Table 1 outcome is derived.
//
// The judge path runs once per intercepted demand, so it is built for the
// dispatch hot path: JudgeInto writes verdicts into a caller-owned buffer
// and every oracle is allocation-free in steady state (byte-identical
// response comparisons never parse; differing responses canonicalize into
// pooled scratch).
package oracle

import (
	"errors"
	"fmt"
	"sync"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/protocol"
	"wsupgrade/internal/protocol/soapcodec"
	"wsupgrade/internal/xrand"
)

// InjectionHeader is the response header with which the fault-injecting
// service runtime labels each response's true outcome kind. Only the
// ground-truth Header oracle reads it.
const InjectionHeader = "X-Wsupgrade-Injected"

// ErrBadOracle reports an invalid oracle configuration.
var ErrBadOracle = errors.New("oracle: bad configuration")

// Oracle judges which replies failed. Implementations must be safe for
// concurrent use and must not mutate the replies.
type Oracle interface {
	// Judge returns failed[i] == true when replies[i] is judged to have
	// failed (evidently or not). len(failed) == len(replies). It is the
	// convenience form of JudgeInto and allocates the verdict slice.
	Judge(operation string, replies []adjudicate.Reply) []bool
	// JudgeInto writes the verdicts into dst, which backs the result
	// when cap(dst) >= len(replies) (its length is ignored; a fresh
	// slice is grown otherwise), and returns the verdict slice with
	// len == len(replies). The caller owns dst before and after the
	// call: oracles do not retain it, so callers may pool it.
	JudgeInto(dst []bool, operation string, replies []adjudicate.Reply) []bool
	// Name identifies the oracle in reports.
	Name() string
}

// verdicts returns a zeroed verdict slice of length n backed by dst when
// its capacity suffices.
func verdicts(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = false
	}
	return dst
}

// FaultOnly detects evident failures only: a reply failed iff it carries
// an error (fault, timeout, transport). Non-evident failures pass
// undetected — the baseline detection level without redundancy.
type FaultOnly struct{}

var _ Oracle = FaultOnly{}

// Judge implements Oracle.
func (o FaultOnly) Judge(operation string, replies []adjudicate.Reply) []bool {
	return o.JudgeInto(nil, operation, replies)
}

// JudgeInto implements Oracle.
//
//wsu:noalloc
func (FaultOnly) JudgeInto(dst []bool, operation string, replies []adjudicate.Reply) []bool {
	//wsu:allow noalloc -- verdict-slice grow path; pooled callers pass adequate capacity
	failed := verdicts(dst, len(replies))
	for i, r := range replies {
		failed[i] = !r.Valid()
	}
	return failed
}

// Name implements Oracle.
func (FaultOnly) Name() string { return "fault-only" }

// Reference trusts the named release: any valid reply whose canonical
// payload differs from the reference's valid payload is judged failed.
// When the reference itself failed evidently, only evident failures are
// detected on the others (no basis for comparison).
type Reference struct {
	// Release is the trusted release's version string.
	Release string
	// Codec supplies canonical payload equivalence; nil means the SOAP
	// codec (XML canonicalization).
	Codec protocol.Codec
}

var _ Oracle = Reference{}

// Judge implements Oracle.
func (o Reference) Judge(operation string, replies []adjudicate.Reply) []bool {
	return o.JudgeInto(nil, operation, replies)
}

// JudgeInto implements Oracle.
//
//wsu:noalloc
func (o Reference) JudgeInto(dst []bool, operation string, replies []adjudicate.Reply) []bool {
	//wsu:allow noalloc -- verdict-slice grow path; pooled callers pass adequate capacity
	failed := verdicts(dst, len(replies))
	var ref *adjudicate.Reply
	for i := range replies {
		if replies[i].Release == o.Release && replies[i].Valid() {
			ref = &replies[i]
			break
		}
	}
	for i := range replies {
		r := &replies[i]
		switch {
		case !r.Valid():
			failed[i] = true
		case ref != nil && r.Release != o.Release && !payloadEqual(o.Codec, r.Body, ref.Body):
			failed[i] = true
		}
	}
	return failed
}

// Name implements Oracle.
func (o Reference) Name() string { return "reference(" + o.Release + ")" }

// BackToBack judges by comparison only: with two valid replies that
// disagree, both are flagged as suspected failures (the middleware cannot
// tell which is wrong without further diversity); identical replies pass.
// This is deliberately the paper's pessimistic §5.1.1.3 detector —
// coincident identical failures are recorded as joint successes.
type BackToBack struct {
	// Codec supplies canonical payload equivalence; nil means the SOAP
	// codec. The zero value is the historical SOAP back-to-back oracle.
	Codec protocol.Codec
}

var _ Oracle = BackToBack{}

// Judge implements Oracle.
func (o BackToBack) Judge(operation string, replies []adjudicate.Reply) []bool {
	return o.JudgeInto(nil, operation, replies)
}

// JudgeInto implements Oracle.
//
//wsu:noalloc
func (o BackToBack) JudgeInto(dst []bool, operation string, replies []adjudicate.Reply) []bool {
	//wsu:allow noalloc -- verdict-slice grow path; pooled callers pass adequate capacity
	failed := verdicts(dst, len(replies))
	first := -1 // first valid reply: the comparison base
	nvalid := 0
	for i := range replies {
		if replies[i].Valid() {
			if first < 0 {
				first = i
			}
			nvalid++
		} else {
			failed[i] = true
		}
	}
	if nvalid < 2 {
		return failed
	}
	base := replies[first].Body
	agree := true
	for i := first + 1; i < len(replies); i++ {
		if replies[i].Valid() && !payloadEqual(o.Codec, base, replies[i].Body) {
			agree = false
			break
		}
	}
	if !agree {
		for i := range replies {
			if replies[i].Valid() {
				failed[i] = true
			}
		}
	}
	return failed
}

// Name implements Oracle.
func (BackToBack) Name() string { return "back-to-back" }

// payloadEqual compares two reply payloads through the oracle's codec,
// defaulting to the SOAP codec so zero-value oracles keep their
// historical behaviour.
//
//wsu:noalloc
func payloadEqual(c protocol.Codec, a, b []byte) bool {
	if c == nil {
		c = soapcodec.Default
	}
	return c.Equal(a, b)
}

// Header is the ground-truth oracle of the test harness: it reads the
// fault-injection marker attached by the internal/service runtime. A
// reply failed iff it failed evidently or carries an "ER"/"NER" marker.
type Header struct{}

var _ Oracle = Header{}

// Judge implements Oracle.
func (o Header) Judge(operation string, replies []adjudicate.Reply) []bool {
	return o.JudgeInto(nil, operation, replies)
}

// JudgeInto implements Oracle.
//
//wsu:noalloc
func (Header) JudgeInto(dst []bool, operation string, replies []adjudicate.Reply) []bool {
	//wsu:allow noalloc -- verdict-slice grow path; pooled callers pass adequate capacity
	failed := verdicts(dst, len(replies))
	for i := range replies {
		r := &replies[i]
		if !r.Valid() {
			failed[i] = true
			continue
		}
		if r.Header != nil {
			switch r.Header.Get(InjectionHeader) {
			case "ER", "NER":
				failed[i] = true
			}
		}
	}
	return failed
}

// Name implements Oracle.
func (Header) Name() string { return "header-truth" }

// WithOmission wraps an oracle with §5.1.1.3 omission imperfection: each
// failure verdict is independently flipped to success with probability
// Pomit. Construct with NewWithOmission.
//
// Omission draws come from a pool of deterministic generators split off
// the seeded master — one pool Get per judgment instead of a
// wrapper-wide mutex, so concurrent dispatches never serialize on the
// oracle (the same determinism contract as adjudication tie-breaking:
// reproducible streams, not a reproducible interleaving).
type WithOmission struct {
	inner Oracle
	pomit float64

	// rngMaster only seeds new pool members; rngMu guards the split.
	rngMu     sync.Mutex
	rngMaster *xrand.Rand
	rngPool   sync.Pool
}

var _ Oracle = (*WithOmission)(nil)

// NewWithOmission wraps inner with the given omission probability.
func NewWithOmission(inner Oracle, pomit float64, rng *xrand.Rand) (*WithOmission, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: nil inner oracle", ErrBadOracle)
	}
	if pomit < 0 || pomit > 1 {
		return nil, fmt.Errorf("%w: pomit %v", ErrBadOracle, pomit)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadOracle)
	}
	return &WithOmission{inner: inner, pomit: pomit, rngMaster: rng}, nil
}

// getRNG hands one generator to a judgment. Generators are pooled; a
// fresh one is split off the seeded master only when the pool is empty.
//
//wsu:owns return
func (o *WithOmission) getRNG() *xrand.Rand {
	if r, ok := o.rngPool.Get().(*xrand.Rand); ok {
		return r
	}
	o.rngMu.Lock()
	defer o.rngMu.Unlock()
	return o.rngMaster.Split()
}

//wsu:owns r
func (o *WithOmission) putRNG(r *xrand.Rand) { o.rngPool.Put(r) }

// Judge implements Oracle.
func (o *WithOmission) Judge(operation string, replies []adjudicate.Reply) []bool {
	return o.JudgeInto(nil, operation, replies)
}

// JudgeInto implements Oracle.
//
//wsu:noalloc
func (o *WithOmission) JudgeInto(dst []bool, operation string, replies []adjudicate.Reply) []bool {
	failed := o.inner.JudgeInto(dst, operation, replies)
	rng := o.getRNG()
	for i := range failed {
		if failed[i] && rng.Bool(o.pomit) {
			failed[i] = false
		}
	}
	o.putRNG(rng)
	return failed
}

// Name implements Oracle.
func (o *WithOmission) Name() string {
	return fmt.Sprintf("omission(%.2f, %s)", o.pomit, o.inner.Name())
}
