package oracle

import (
	"errors"
	"net/http"
	"testing"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/xrand"
)

var errBoom = errors.New("boom")

func valid(release, body string) adjudicate.Reply {
	return adjudicate.Reply{Release: release, Body: []byte(body)}
}

func evident(release string) adjudicate.Reply {
	return adjudicate.Reply{Release: release, Err: errBoom}
}

func TestFaultOnly(t *testing.T) {
	o := FaultOnly{}
	failed := o.Judge("op", []adjudicate.Reply{
		valid("1.0", "<r>1</r>"),
		evident("1.1"),
		valid("1.2", "<r>wrong</r>"), // non-evident: passes undetected
	})
	want := []bool{false, true, false}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed = %v, want %v", failed, want)
		}
	}
	if o.Name() != "fault-only" {
		t.Fatalf("name = %q", o.Name())
	}
}

func TestReferenceDetectsDisagreement(t *testing.T) {
	o := Reference{Release: "1.0"}
	failed := o.Judge("op", []adjudicate.Reply{
		valid("1.0", "<r>42</r>"),
		valid("1.1", "<r>43</r>"),
	})
	if failed[0] || !failed[1] {
		t.Fatalf("failed = %v; the reference is trusted, the deviator flagged", failed)
	}
	// Formatting differences are not failures.
	failed = o.Judge("op", []adjudicate.Reply{
		valid("1.0", "<r><x>1</x></r>"),
		valid("1.1", "<r>\n  <x>1</x>\n</r>"),
	})
	if failed[0] || failed[1] {
		t.Fatalf("formatting flagged as failure: %v", failed)
	}
	if o.Name() != "reference(1.0)" {
		t.Fatalf("name = %q", o.Name())
	}
}

func TestReferenceWithFailedReference(t *testing.T) {
	o := Reference{Release: "1.0"}
	failed := o.Judge("op", []adjudicate.Reply{
		evident("1.0"),
		valid("1.1", "<r>anything</r>"),
	})
	// No comparison basis: only the evident failure is detected.
	if !failed[0] || failed[1] {
		t.Fatalf("failed = %v", failed)
	}
}

func TestBackToBackFlagsBothOnDisagreement(t *testing.T) {
	o := BackToBack{}
	failed := o.Judge("op", []adjudicate.Reply{
		valid("1.0", "<r>1</r>"),
		valid("1.1", "<r>2</r>"),
	})
	if !failed[0] || !failed[1] {
		t.Fatalf("disagreement not flagged on both: %v", failed)
	}
	// Agreement — including coincident identical failures — passes:
	// the paper's pessimistic '11'→'00' model.
	failed = o.Judge("op", []adjudicate.Reply{
		valid("1.0", "<r>same-wrong</r>"),
		valid("1.1", "<r>same-wrong</r>"),
	})
	if failed[0] || failed[1] {
		t.Fatalf("identical responses flagged: %v", failed)
	}
	if o.Name() != "back-to-back" {
		t.Fatalf("name = %q", o.Name())
	}
}

func TestBackToBackSingleValidReply(t *testing.T) {
	o := BackToBack{}
	failed := o.Judge("op", []adjudicate.Reply{
		evident("1.0"),
		valid("1.1", "<r>1</r>"),
	})
	if !failed[0] || failed[1] {
		t.Fatalf("failed = %v", failed)
	}
}

func TestHeaderOracleReadsGroundTruth(t *testing.T) {
	o := Header{}
	h := func(kind string) http.Header {
		hh := http.Header{}
		hh.Set(InjectionHeader, kind)
		return hh
	}
	replies := []adjudicate.Reply{
		{Release: "1.0", Body: []byte("<r/>"), Header: h("CR")},
		{Release: "1.1", Body: []byte("<r/>"), Header: h("NER")},
		{Release: "1.2", Body: []byte("<r/>"), Header: h("ER")},
		{Release: "1.3", Body: []byte("<r/>")}, // no header: trusted
		{Release: "1.4", Err: errBoom},
	}
	failed := o.Judge("op", replies)
	want := []bool{false, true, true, false, true}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed = %v, want %v", failed, want)
		}
	}
	if o.Name() != "header-truth" {
		t.Fatalf("name = %q", o.Name())
	}
}

func TestWithOmissionMissesFailures(t *testing.T) {
	inner := Header{}
	o, err := NewWithOmission(inner, 0.5, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	h := http.Header{}
	h.Set(InjectionHeader, "NER")
	missed, caught := 0, 0
	for i := 0; i < 2000; i++ {
		failed := o.Judge("op", []adjudicate.Reply{{Release: "1.1", Body: []byte("<r/>"), Header: h}})
		if failed[0] {
			caught++
		} else {
			missed++
		}
	}
	if missed < 800 || missed > 1200 {
		t.Fatalf("missed %d of 2000 with pomit 0.5", missed)
	}
	if caught == 0 {
		t.Fatal("omission oracle never detects")
	}
	if o.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestWithOmissionNeverInventsFailures(t *testing.T) {
	o, err := NewWithOmission(FaultOnly{}, 0.5, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		failed := o.Judge("op", []adjudicate.Reply{valid("1.0", "<r/>")})
		if failed[0] {
			t.Fatal("omission oracle invented a failure")
		}
	}
}

func TestWithOmissionValidation(t *testing.T) {
	if _, err := NewWithOmission(nil, 0.5, xrand.New(1)); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewWithOmission(FaultOnly{}, -1, xrand.New(1)); err == nil {
		t.Fatal("negative pomit accepted")
	}
	if _, err := NewWithOmission(FaultOnly{}, 0.5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
