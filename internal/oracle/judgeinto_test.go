package oracle

import (
	"testing"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/xrand"
)

// corpus is the shared judgment corpus: the oracle edge cases the §4.3
// monitoring subsystem must hold verdicts on. Reference{Release: "1.0"}
// is the configured reference oracle throughout.
var corpus = []struct {
	name    string
	replies []adjudicate.Reply
}{
	{"agreeing", []adjudicate.Reply{
		valid("1.0", "<r><x>1</x></r>"),
		valid("1.1", "<r><x>1</x></r>"),
		valid("1.2", "<r><x>1</x></r>"),
	}},
	{"deviator", []adjudicate.Reply{
		valid("1.0", "<r>42</r>"),
		valid("1.1", "<r>43</r>"),
	}},
	{"reference-invalid", []adjudicate.Reply{
		evident("1.0"),
		valid("1.1", "<r>anything</r>"),
		valid("1.2", "<r>else</r>"),
	}},
	{"reference-missing", []adjudicate.Reply{
		valid("1.1", "<r>1</r>"),
		valid("1.2", "<r>2</r>"),
	}},
	{"all-invalid", []adjudicate.Reply{
		evident("1.0"),
		evident("1.1"),
	}},
	{"single-valid", []adjudicate.Reply{
		evident("1.0"),
		valid("1.1", "<r>1</r>"),
	}},
	// The §5.1.1.3 pessimistic case: both releases return the same wrong
	// answer; comparison-based detection records a joint success.
	{"coincident-identical-failure", []adjudicate.Reply{
		valid("1.0", "<r>same-wrong</r>"),
		valid("1.1", "<r>same-wrong</r>"),
	}},
	{"empty", nil},
}

func corpusOracles(t testing.TB) []Oracle {
	omission, err := NewWithOmission(Header{}, 0, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return []Oracle{
		FaultOnly{},
		Reference{Release: "1.0"},
		BackToBack{},
		Header{},
		omission,
	}
}

// TestJudgeIntoAgreesWithJudge holds every oracle to verdict-for-verdict
// agreement between the allocating Judge and the caller-buffer JudgeInto
// across the corpus, for ample, exact, tight and nil destination buffers.
func TestJudgeIntoAgreesWithJudge(t *testing.T) {
	for _, o := range corpusOracles(t) {
		for _, tc := range corpus {
			want := o.Judge("op", tc.replies)
			if len(want) != len(tc.replies) {
				t.Fatalf("%s/%s: Judge returned %d verdicts for %d replies",
					o.Name(), tc.name, len(want), len(tc.replies))
			}
			for _, dst := range [][]bool{
				nil,
				make([]bool, 0, len(tc.replies)),
				make([]bool, len(tc.replies)),
				{true, true, true, true, true, true, true, true}, // stale contents must be overwritten
				make([]bool, 0, 1),
			} {
				got := o.JudgeInto(dst, "op", tc.replies)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: JudgeInto returned %d verdicts, want %d",
						o.Name(), tc.name, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s: verdict %d = %v, Judge said %v (dst cap %d)",
							o.Name(), tc.name, i, got[i], want[i], cap(dst))
					}
				}
			}
		}
	}
}

// TestCorpusVerdicts pins the expected verdicts of the corpus edge cases
// for the deterministic oracles.
func TestCorpusVerdicts(t *testing.T) {
	for _, tc := range []struct {
		oracle Oracle
		corpus string
		want   []bool
	}{
		{Reference{Release: "1.0"}, "reference-invalid", []bool{true, false, false}},
		{Reference{Release: "1.0"}, "reference-missing", []bool{false, false}},
		{Reference{Release: "1.0"}, "deviator", []bool{false, true}},
		{BackToBack{}, "coincident-identical-failure", []bool{false, false}},
		{BackToBack{}, "single-valid", []bool{true, false}},
		{BackToBack{}, "reference-missing", []bool{true, true}}, // two valid, differing: both suspected
		{FaultOnly{}, "all-invalid", []bool{true, true}},
		{Header{}, "single-valid", []bool{true, false}},
	} {
		var replies []adjudicate.Reply
		for _, c := range corpus {
			if c.name == tc.corpus {
				replies = c.replies
			}
		}
		got := tc.oracle.JudgeInto(nil, "op", replies)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("%s on %s: verdicts %v, want %v", tc.oracle.Name(), tc.corpus, got, tc.want)
			}
		}
	}
}

// TestOraclesSteadyStateZeroAlloc holds every oracle to zero allocations
// when judging with a caller buffer in steady state (agreeing releases:
// the overwhelmingly common case — byte-identical bodies never parse).
func TestOraclesSteadyStateZeroAlloc(t *testing.T) {
	replies := []adjudicate.Reply{
		valid("1.0", "<r><x>1</x></r>"),
		valid("1.1", "<r><x>1</x></r>"),
		valid("1.2", "<r><x>1</x></r>"),
	}
	for _, o := range corpusOracles(t) {
		buf := make([]bool, 0, len(replies))
		// Warm the omission wrapper's RNG pool outside the measurement.
		o.JudgeInto(buf, "op", replies)
		allocs := testing.AllocsPerRun(200, func() {
			buf = o.JudgeInto(buf[:0], "op", replies)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state JudgeInto, want 0", o.Name(), allocs)
		}
	}
}

// TestWithOmissionConcurrentJudging drives the omission wrapper from
// many goroutines: the pooled per-goroutine RNG state must keep the
// omission rate honest without a wrapper-wide lock (the race detector
// holds the no-data-race half of the contract).
func TestWithOmissionConcurrentJudging(t *testing.T) {
	o, err := NewWithOmission(FaultOnly{}, 0.5, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 500
	missed := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			m := 0
			buf := make([]bool, 0, 1)
			for i := 0; i < perWorker; i++ {
				failed := o.JudgeInto(buf[:0], "op", []adjudicate.Reply{evident("1.1")})
				if !failed[0] {
					m++
				}
			}
			missed <- m
		}()
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += <-missed
	}
	n := workers * perWorker
	if total < n*3/10 || total > n*7/10 {
		t.Fatalf("missed %d of %d with pomit 0.5", total, n)
	}
}
