// Package events is the push side of the management control plane: a
// small in-process pub/sub hub that fans campaign events (phase
// transitions, release changes, confidence updates) out to SSE
// subscribers. The design constraint is the same one the paper's
// monitoring architecture imposes everywhere: the observed system must
// never block on its observers. Publishing is non-blocking — each
// subscriber has a bounded buffer, and a subscriber that cannot keep up
// loses events (counted per subscriber and hub-wide) instead of
// applying backpressure to the campaign that produced them.
package events

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Event is one campaign event, already shaped for the SSE wire: the
// payload is marshaled once at publish time, not per subscriber.
type Event struct {
	// ID is the hub-assigned monotonic sequence number.
	ID uint64
	// Type names the event ("phase", "release", "confidence", ...).
	Type string
	// Data is the JSON payload.
	Data []byte
}

// DefaultBuffer is the per-subscriber buffer when Subscribe is given a
// non-positive size.
const DefaultBuffer = 64

// DefaultHistory is how many published events the hub retains for
// resume (Last-Event-ID replay). The ring is bounded for the same
// reason subscriber buffers are: observers must never grow the
// observed system's memory without bound.
const DefaultHistory = 256

// Subscription is one subscriber's bounded event feed.
type Subscription struct {
	// C delivers events. Closed by Hub.Close (never by drops).
	C <-chan Event

	ch      chan Event
	dropped atomic.Uint64
	hub     *Hub
}

// Dropped reports how many events this subscriber lost to a full
// buffer. SSE handlers surface it so a consumer knows its view has
// gaps and can re-sync from the pull API.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel removes the subscription and closes its channel. Safe to call
// concurrently with publishes and more than once.
func (s *Subscription) Cancel() { s.hub.cancel(s) }

// Hub fans events out to subscribers. The zero value is not usable;
// construct with NewHub. Methods are safe for concurrent use.
type Hub struct {
	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	seq    uint64
	closed bool

	// ring retains the last len(ring) published events (ring[(ID-1) %
	// len(ring)]) so a reconnecting subscriber can resume from its
	// Last-Event-ID instead of re-synchronizing from scratch. Event
	// payloads are immutable after publish, so retained events alias
	// the published ones.
	ring []Event

	// dropsTotal counts events lost across every subscriber (drop
	// accounting for the admin surface).
	dropsTotal atomic.Uint64
}

// NewHub returns an empty hub retaining DefaultHistory events for
// resume.
func NewHub() *Hub {
	return NewHubHistory(DefaultHistory)
}

// NewHubHistory returns an empty hub retaining up to history published
// events for Last-Event-ID resume (DefaultHistory when history <= 0).
func NewHubHistory(history int) *Hub {
	if history <= 0 {
		history = DefaultHistory
	}
	return &Hub{
		subs: make(map[*Subscription]struct{}),
		ring: make([]Event, history),
	}
}

// Subscribe registers a subscriber with a buffer of size events
// (DefaultBuffer when size <= 0). On a closed hub it returns a
// subscription whose channel is already closed.
func (h *Hub) Subscribe(size int) *Subscription {
	if size <= 0 {
		size = DefaultBuffer
	}
	ch := make(chan Event, size)
	sub := &Subscription{C: ch, ch: ch, hub: h}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return sub
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

func (h *Hub) cancel(sub *Subscription) {
	h.mu.Lock()
	_, live := h.subs[sub]
	if live {
		delete(h.subs, sub)
	}
	h.mu.Unlock()
	if live {
		close(sub.ch)
	}
}

// Publish marshals payload once and delivers the event to every
// subscriber that has buffer room; subscribers without room lose it
// (counted, never blocking). A marshal failure drops the event
// entirely — the control plane is advisory, the campaign is not.
func (h *Hub) Publish(eventType string, payload any) {
	if h == nil {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.seq++
	ev := Event{ID: h.seq, Type: eventType, Data: data}
	h.ring[(ev.ID-1)%uint64(len(h.ring))] = ev
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			h.dropsTotal.Add(1)
		}
	}
	h.mu.Unlock()
}

// replayLocked collects retained events with ID > lastID in publish
// order, reporting whether the replay is complete — false when events
// between lastID and the oldest retained one were evicted from the
// bounded ring, so the caller knows its view has a gap. Callers hold
// h.mu.
func (h *Hub) replayLocked(lastID uint64) ([]Event, bool) {
	if lastID >= h.seq {
		return nil, true
	}
	retained := h.seq
	if max := uint64(len(h.ring)); retained > max {
		retained = max
	}
	oldest := h.seq - retained + 1
	start := lastID + 1
	complete := start >= oldest
	if !complete {
		start = oldest
	}
	out := make([]Event, 0, h.seq-start+1)
	for id := start; id <= h.seq; id++ {
		out = append(out, h.ring[(id-1)%uint64(len(h.ring))])
	}
	return out, complete
}

// ReplayFrom returns retained events with ID > lastID, and whether the
// replay is complete (no events between lastID and the first returned
// were evicted from the bounded history).
func (h *Hub) ReplayFrom(lastID uint64) ([]Event, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.replayLocked(lastID)
}

// SubscribeFrom registers a subscriber (as Subscribe) and atomically
// returns the replay of events after lastID: no event published
// between the replay snapshot and the registration can be missed or
// duplicated. The boolean mirrors ReplayFrom's completeness. On a
// closed hub the subscription's channel is already closed and the
// replay is empty.
func (h *Hub) SubscribeFrom(size int, lastID uint64) (*Subscription, []Event, bool) {
	if size <= 0 {
		size = DefaultBuffer
	}
	ch := make(chan Event, size)
	sub := &Subscription{C: ch, ch: ch, hub: h}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return sub, nil, true
	}
	replay, complete := h.replayLocked(lastID)
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub, replay, complete
}

// DropsTotal reports events lost across all subscribers since the hub
// was created.
func (h *Hub) DropsTotal() uint64 {
	if h == nil {
		return 0
	}
	return h.dropsTotal.Load()
}

// Subscribers reports the current subscriber count.
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Close closes every subscription channel and rejects future
// subscribers. Publishes after Close are no-ops.
func (h *Hub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := h.subs
	h.subs = make(map[*Subscription]struct{})
	h.mu.Unlock()
	for sub := range subs {
		close(sub.ch)
	}
}
