package events

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestPublishDelivers(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub := h.Subscribe(8)
	h.Publish("phase", map[string]string{"unit": "flights", "to": "parallel"})
	select {
	case ev := <-sub.C:
		if ev.Type != "phase" || ev.ID != 1 {
			t.Fatalf("got %+v", ev)
		}
		var m map[string]string
		if err := json.Unmarshal(ev.Data, &m); err != nil || m["unit"] != "flights" {
			t.Fatalf("payload %q err %v", ev.Data, err)
		}
	case <-time.After(time.Second):
		t.Fatal("event not delivered")
	}
}

// A slow subscriber must lose events — with accounting — while fast
// subscribers and the publisher are unaffected.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	h := NewHub()
	defer h.Close()
	slow := h.Subscribe(2)
	fast := h.Subscribe(64)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			h.Publish("confidence", i) // must never block on `slow`
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a full subscriber buffer")
	}

	if got := slow.Dropped(); got != 8 {
		t.Fatalf("slow subscriber Dropped = %d, want 8", got)
	}
	if got := h.DropsTotal(); got != 8 {
		t.Fatalf("hub DropsTotal = %d, want 8", got)
	}
	for i := 0; i < 10; i++ {
		select {
		case ev := <-fast.C:
			if ev.ID != uint64(i+1) {
				t.Fatalf("fast subscriber event %d has ID %d", i, ev.ID)
			}
		case <-time.After(time.Second):
			t.Fatalf("fast subscriber missing event %d", i)
		}
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub := h.Subscribe(4)
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, open := <-sub.C; open {
		t.Fatal("canceled subscription channel still open")
	}
	h.Publish("phase", 1) // must not panic on the canceled sub
	if h.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after cancel", h.Subscribers())
	}
}

func TestCloseClosesSubscribers(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(4)
	h.Close()
	if _, open := <-sub.C; open {
		t.Fatal("subscription open after hub Close")
	}
	// Post-close operations are calm no-ops.
	h.Publish("phase", 1)
	h.Close()
	late := h.Subscribe(4)
	if _, open := <-late.C; open {
		t.Fatal("subscription on a closed hub is open")
	}
}

func TestConcurrentPublishSubscribeCancel(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Publish("phase", i)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := h.Subscribe(1)
				// Drain a little, then leave.
				select {
				case <-sub.C:
				default:
				}
				sub.Cancel()
			}
		}()
	}
	wg.Wait()
}
