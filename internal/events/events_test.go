package events

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestPublishDelivers(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub := h.Subscribe(8)
	h.Publish("phase", map[string]string{"unit": "flights", "to": "parallel"})
	select {
	case ev := <-sub.C:
		if ev.Type != "phase" || ev.ID != 1 {
			t.Fatalf("got %+v", ev)
		}
		var m map[string]string
		if err := json.Unmarshal(ev.Data, &m); err != nil || m["unit"] != "flights" {
			t.Fatalf("payload %q err %v", ev.Data, err)
		}
	case <-time.After(time.Second):
		t.Fatal("event not delivered")
	}
}

// A slow subscriber must lose events — with accounting — while fast
// subscribers and the publisher are unaffected.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	h := NewHub()
	defer h.Close()
	slow := h.Subscribe(2)
	fast := h.Subscribe(64)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			h.Publish("confidence", i) // must never block on `slow`
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a full subscriber buffer")
	}

	if got := slow.Dropped(); got != 8 {
		t.Fatalf("slow subscriber Dropped = %d, want 8", got)
	}
	if got := h.DropsTotal(); got != 8 {
		t.Fatalf("hub DropsTotal = %d, want 8", got)
	}
	for i := 0; i < 10; i++ {
		select {
		case ev := <-fast.C:
			if ev.ID != uint64(i+1) {
				t.Fatalf("fast subscriber event %d has ID %d", i, ev.ID)
			}
		case <-time.After(time.Second):
			t.Fatalf("fast subscriber missing event %d", i)
		}
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub := h.Subscribe(4)
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, open := <-sub.C; open {
		t.Fatal("canceled subscription channel still open")
	}
	h.Publish("phase", 1) // must not panic on the canceled sub
	if h.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after cancel", h.Subscribers())
	}
}

func TestCloseClosesSubscribers(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(4)
	h.Close()
	if _, open := <-sub.C; open {
		t.Fatal("subscription open after hub Close")
	}
	// Post-close operations are calm no-ops.
	h.Publish("phase", 1)
	h.Close()
	late := h.Subscribe(4)
	if _, open := <-late.C; open {
		t.Fatal("subscription on a closed hub is open")
	}
}

func TestConcurrentPublishSubscribeCancel(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Publish("phase", i)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := h.Subscribe(1)
				// Drain a little, then leave.
				select {
				case <-sub.C:
				default:
				}
				sub.Cancel()
			}
		}()
	}
	wg.Wait()
}

// ReplayFrom returns the retained suffix in order and reports whether
// the bounded ring still covers the requested resume point.
func TestReplayFrom(t *testing.T) {
	h := NewHub()
	defer h.Close()
	for i := 0; i < 5; i++ {
		h.Publish("phase", i)
	}
	replay, complete := h.ReplayFrom(2)
	if !complete || len(replay) != 3 {
		t.Fatalf("ReplayFrom(2) = %d events, complete=%v", len(replay), complete)
	}
	for i, ev := range replay {
		if ev.ID != uint64(3+i) || ev.Type != "phase" {
			t.Fatalf("replay[%d] = %+v", i, ev)
		}
	}
	if replay, complete := h.ReplayFrom(5); !complete || len(replay) != 0 {
		t.Fatalf("ReplayFrom(at-head) = %d events, complete=%v", len(replay), complete)
	}
	if replay, complete := h.ReplayFrom(99); !complete || len(replay) != 0 {
		t.Fatalf("ReplayFrom(beyond-head) = %d events, complete=%v", len(replay), complete)
	}
}

// The history is a bounded ring: once a resume point is evicted, replay
// returns what is retained and reports the gap.
func TestReplayEviction(t *testing.T) {
	h := NewHubHistory(4)
	defer h.Close()
	for i := 0; i < 10; i++ {
		h.Publish("phase", i)
	}
	replay, complete := h.ReplayFrom(0)
	if complete || len(replay) != 4 {
		t.Fatalf("ReplayFrom(0) = %d events, complete=%v; want 4, false", len(replay), complete)
	}
	if replay[0].ID != 7 || replay[3].ID != 10 {
		t.Fatalf("retained window [%d..%d], want [7..10]", replay[0].ID, replay[3].ID)
	}
	if replay, complete := h.ReplayFrom(6); !complete || len(replay) != 4 {
		t.Fatalf("ReplayFrom(oldest-1) = %d events, complete=%v", len(replay), complete)
	}
	if _, complete := h.ReplayFrom(5); complete {
		t.Fatal("ReplayFrom(5) claims completeness across an evicted event")
	}
}

// SubscribeFrom is atomic with respect to publishes: replay plus live
// delivery covers every event exactly once, under concurrent
// publishing.
func TestSubscribeFromNoGapNoDup(t *testing.T) {
	h := NewHub()
	defer h.Close()
	const total = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			h.Publish("n", i)
		}
	}()
	// Subscribe mid-stream from ID 0 with room for everything.
	sub, replay, complete := h.SubscribeFrom(total, 0)
	defer sub.Cancel()
	if !complete {
		t.Fatal("resume from 0 within history reported a gap")
	}
	next := uint64(1)
	for _, ev := range replay {
		if ev.ID != next {
			t.Fatalf("replay out of order: got %d want %d", ev.ID, next)
		}
		next++
	}
	<-done
	deadline := time.After(5 * time.Second)
	for next <= total {
		select {
		case ev := <-sub.C:
			if ev.ID != next {
				t.Fatalf("live delivery: got %d want %d", ev.ID, next)
			}
			next++
		case <-deadline:
			t.Fatalf("stalled at event %d", next)
		}
	}
}

func TestSubscribeFromClosedHub(t *testing.T) {
	h := NewHub()
	h.Publish("phase", 1)
	h.Close()
	sub, replay, _ := h.SubscribeFrom(0, 0)
	if len(replay) != 0 {
		t.Fatalf("closed hub replayed %d events", len(replay))
	}
	if _, open := <-sub.C; open {
		t.Fatal("closed hub returned an open subscription")
	}
}
