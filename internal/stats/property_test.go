package stats

import (
	"math"
	"testing"
	"testing/quick"

	"wsupgrade/internal/xrand"
)

// Property: the regularized incomplete Beta obeys the reflection identity
// I_x(a, b) = 1 − I_{1−x}(b, a).
func TestRegIncBetaReflectionProperty(t *testing.T) {
	f := func(xi, ai, bi uint8) bool {
		x := float64(xi%99+1) / 100 // (0, 1)
		a := float64(ai%40)/4 + 0.25
		b := float64(bi%40)/4 + 0.25
		left, err1 := RegIncBeta(x, a, b)
		right, err2 := RegIncBeta(1-x, b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(left-(1-right)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Beta CDF values increase with x and quantiles invert them.
func TestBetaQuantileInversionProperty(t *testing.T) {
	f := func(pi, ai, bi uint8) bool {
		p := float64(pi%99+1) / 100
		a := float64(ai%30)/3 + 0.5
		b := float64(bi%30)/3 + 0.5
		q, err := BetaQuantile(p, a, b)
		if err != nil {
			return false
		}
		back, err := RegIncBeta(q, a, b)
		if err != nil {
			return false
		}
		return math.Abs(back-p) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a normalized Grid1D is a probability distribution whose
// quantiles are inverse to its CDF.
func TestGridQuantileCDFInverseProperty(t *testing.T) {
	rng := xrand.New(2024)
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		g := &Grid1D{Xs: make([]float64, n), Ws: make([]float64, n)}
		x := 0.0
		for i := 0; i < n; i++ {
			x += rng.Float64() + 1e-6
			g.Xs[i] = x
			g.Ws[i] = rng.Float64() + 1e-9
		}
		if err := g.Normalize(); err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0.1, 0.5, 0.9, 0.999} {
			q := g.Quantile(p)
			if got := g.CDF(q); got < p-1e-9 {
				t.Fatalf("CDF(Quantile(%v)) = %v < %v", p, got, p)
			}
			// The previous support point (if any) must sit below p.
			for i, xi := range g.Xs {
				if xi == q && i > 0 {
					if prev := g.CDF(g.Xs[i-1]); prev >= p {
						t.Fatalf("quantile not minimal: CDF(prev)=%v >= %v", prev, p)
					}
				}
			}
		}
	}
}

// Property: scaled-Beta CDFs are monotone with respect to stochastic
// dominance in the Upper parameter: stretching the support right cannot
// increase the CDF at a fixed point.
func TestScaledBetaUpperDominanceProperty(t *testing.T) {
	f := func(ai, bi uint8) bool {
		a := float64(ai%20)/2 + 0.5
		b := float64(bi%20)/2 + 0.5
		narrow := ScaledBeta{Alpha: a, Beta: b, Upper: 0.001}
		wide := ScaledBeta{Alpha: a, Beta: b, Upper: 0.002}
		for _, x := range []float64{0.0002, 0.0005, 0.0009} {
			cn, err1 := narrow.CDF(x)
			cw, err2 := wide.CDF(x)
			if err1 != nil || err2 != nil {
				return false
			}
			if cw > cn+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary matches naive two-pass statistics.
func TestSummaryMatchesNaiveProperty(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.Normal() * 10
			s.Observe(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(n)
		if math.Abs(s.Mean()-mean) > 1e-9 {
			t.Fatalf("mean %v vs naive %v", s.Mean(), mean)
		}
		if math.Abs(s.Variance()-variance) > 1e-9*math.Max(1, variance) {
			t.Fatalf("variance %v vs naive %v", s.Variance(), variance)
		}
	}
}
