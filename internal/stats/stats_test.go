package stats

import (
	"math"
	"testing"
	"testing/quick"

	"wsupgrade/internal/xrand"
)

func TestLogGammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
	}
	for _, c := range cases {
		if got := LogGamma(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LogGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogBetaSymmetry(t *testing.T) {
	if err := quick.Check(func(a, b uint8) bool {
		x := float64(a)/16 + 0.1
		y := float64(b)/16 + 0.1
		return math.Abs(LogBeta(x, y)-LogBeta(y, x)) < 1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct{ x, a, b, want float64 }{
		{0.5, 1, 1, 0.5},      // uniform CDF
		{0.25, 1, 1, 0.25},    // uniform CDF
		{0.5, 2, 2, 0.5},      // symmetric
		{0.5, 20, 20, 0.5},    // symmetric, high concentration
		{0.3, 1, 2, 1 - 0.49}, // I_x(1,2) = 1-(1-x)^2
		{0.3, 2, 1, 0.09},     // I_x(2,1) = x^2
		{0.2, 1, 10, 1 - math.Pow(0.8, 10)},
	}
	for _, c := range cases {
		got, err := RegIncBeta(c.x, c.a, c.b)
		if err != nil {
			t.Fatalf("RegIncBeta(%v,%v,%v): %v", c.x, c.a, c.b, err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	for _, x := range []float64{-1, 0} {
		got, err := RegIncBeta(x, 2, 3)
		if err != nil || got != 0 {
			t.Fatalf("RegIncBeta(%v) = %v, %v; want 0, nil", x, got, err)
		}
	}
	for _, x := range []float64{1, 2} {
		got, err := RegIncBeta(x, 2, 3)
		if err != nil || got != 1 {
			t.Fatalf("RegIncBeta(%v) = %v, %v; want 1, nil", x, got, err)
		}
	}
	if _, err := RegIncBeta(0.5, 0, 1); err == nil {
		t.Fatal("RegIncBeta with a=0 did not error")
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v, err := RegIncBeta(x, 2.5, 7.5)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Fatalf("CDF not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{{2, 3}, {20, 20}, {1, 10}} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			q, err := BetaQuantile(p, c.a, c.b)
			if err != nil {
				t.Fatal(err)
			}
			back, err := RegIncBeta(q, c.a, c.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("quantile roundtrip Beta(%v,%v) p=%v: got %v", c.a, c.b, p, back)
			}
		}
	}
}

func TestBetaQuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := BetaQuantile(p, 2, 3); err == nil {
			t.Errorf("BetaQuantile(p=%v) did not error", p)
		}
	}
}

func TestScaledBetaMeanAndCDF(t *testing.T) {
	s := ScaledBeta{Alpha: 20, Beta: 20, Upper: 0.002}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mean(); math.Abs(got-0.001) > 1e-15 {
		t.Fatalf("mean = %v, want 0.001", got)
	}
	c, err := s.CDF(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.5) > 1e-10 {
		t.Fatalf("CDF at mean of symmetric scaled Beta = %v, want 0.5", c)
	}
	if c, _ := s.CDF(-1); c != 0 {
		t.Fatalf("CDF below support = %v, want 0", c)
	}
	if c, _ := s.CDF(1); c != 1 {
		t.Fatalf("CDF above support = %v, want 1", c)
	}
}

func TestScaledBetaQuantileRoundtrip(t *testing.T) {
	s := ScaledBeta{Alpha: 2, Beta: 3, Upper: 0.002}
	for _, p := range []float64{0.05, 0.5, 0.99} {
		q, err := s.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if q < 0 || q > s.Upper {
			t.Fatalf("quantile %v outside support", q)
		}
		back, err := s.CDF(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-p) > 1e-8 {
			t.Fatalf("roundtrip p=%v got %v", p, back)
		}
	}
}

func TestScaledBetaValidate(t *testing.T) {
	bad := []ScaledBeta{
		{Alpha: 0, Beta: 1, Upper: 1},
		{Alpha: 1, Beta: -1, Upper: 1},
		{Alpha: 1, Beta: 1, Upper: 0},
		{Alpha: math.NaN(), Beta: 1, Upper: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestScaledBetaLogPDFIntegratesToOne(t *testing.T) {
	s := ScaledBeta{Alpha: 2, Beta: 3, Upper: 0.002}
	const n = 20000
	var k KahanSum
	h := s.Upper / n
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) * h
		k.Add(math.Exp(s.LogPDF(x)) * h)
	}
	if math.Abs(k.Sum()-1) > 1e-6 {
		t.Fatalf("pdf integrates to %v, want 1", k.Sum())
	}
}

func TestKahanSumBeatsNaive(t *testing.T) {
	var k KahanSum
	k.Add(1e16)
	for i := 0; i < 10000; i++ {
		k.Add(1.0)
	}
	k.Add(-1e16)
	if got := k.Sum(); got != 10000 {
		t.Fatalf("Kahan sum = %v, want 10000", got)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want ln 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) should be -Inf")
	}
	// Should survive values that would overflow naive exp.
	got = LogSumExp([]float64{1000, 1000})
	if math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp overflow case = %v", got)
	}
}

func TestGrid1D(t *testing.T) {
	g := &Grid1D{Xs: []float64{1, 2, 3, 4}, Ws: []float64{1, 1, 1, 1}}
	if err := g.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := g.CDF(2.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(2.5) = %v, want 0.5", got)
	}
	if got := g.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", got)
	}
	if got := g.Quantile(1.0); got != 4 {
		t.Fatalf("Quantile(1.0) = %v, want 4", got)
	}
	if got := g.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestGrid1DNormalizeErrors(t *testing.T) {
	cases := []*Grid1D{
		{},
		{Xs: []float64{1}, Ws: []float64{}},
		{Xs: []float64{1}, Ws: []float64{-1}},
		{Xs: []float64{1}, Ws: []float64{0}},
		{Xs: []float64{1}, Ws: []float64{math.NaN()}},
	}
	for i, g := range cases {
		if err := g.Normalize(); err == nil {
			t.Errorf("case %d: Normalize did not error", i)
		}
	}
}

func TestGrid1DCDFMonotoneProperty(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(30)
		g := &Grid1D{Xs: make([]float64, n), Ws: make([]float64, n)}
		x := 0.0
		for i := 0; i < n; i++ {
			x += r.Float64() + 1e-9
			g.Xs[i] = x
			g.Ws[i] = r.Float64()
		}
		g.Ws[0] += 1e-9 // ensure positive mass
		if err := g.Normalize(); err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for q := 0.0; q <= x+1; q += x / 40 {
			c := g.CDF(q)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				t.Fatalf("CDF violates monotonicity/bounds: %v after %v", c, prev)
			}
			prev = c
		}
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zero")
	}
	s.Observe(3)
	if s.Variance() != 0 {
		t.Fatal("single-sample variance not zero")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-sample extrema wrong")
	}
}

func TestQuantiles(t *testing.T) {
	sample := []float64{5, 1, 4, 2, 3}
	qs, err := Quantiles(sample, 0.2, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range qs {
		if qs[i] != want[i] {
			t.Fatalf("quantiles = %v, want %v", qs, want)
		}
	}
	// Input must not be mutated.
	if sample[0] != 5 {
		t.Fatal("Quantiles mutated its input")
	}
	if _, err := Quantiles(nil, 0.5); err == nil {
		t.Fatal("Quantiles(empty) did not error")
	}
	if _, err := Quantiles(sample, 1.5); err == nil {
		t.Fatal("Quantiles(p=1.5) did not error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
	if h.Counts[0] != 3 { // -1, 0, 1.9
		t.Fatalf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.9 plus clamped 10, 100
		t.Fatalf("bin 4 = %d, want 3", h.Counts[4])
	}
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Fatal("NewHistogram with empty range did not error")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("NewHistogram with zero bins did not error")
	}
}

// Property: empirical Beta sample quantiles agree with analytic quantiles.
func TestBetaQuantileAgreesWithSampling(t *testing.T) {
	r := xrand.New(123)
	const n = 100000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = r.Beta(2, 3)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		analytic, err := BetaQuantile(p, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		empirical, err := Quantiles(sample, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(analytic-empirical[0]) > 0.01 {
			t.Errorf("p=%v: analytic %v vs empirical %v", p, analytic, empirical[0])
		}
	}
}

func BenchmarkRegIncBeta(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		v, _ := RegIncBeta(0.3, 20, 20)
		sink += v
	}
	_ = sink
}

// Summary.Merge must agree with sequential observation regardless of how
// the sample is partitioned — the contract the sharded monitor relies on.
func TestSummaryMergePartitionInvariant(t *testing.T) {
	r := xrand.New(7)
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = r.Exp(2.0)
	}
	var sequential Summary
	for _, v := range sample {
		sequential.Observe(v)
	}
	for _, parts := range []int{1, 2, 3, 7, 16, 500} {
		shards := make([]Summary, parts)
		for i, v := range sample {
			shards[i%parts].Observe(v)
		}
		var merged Summary
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.N() != sequential.N() {
			t.Fatalf("parts=%d: N = %d, want %d", parts, merged.N(), sequential.N())
		}
		if math.Abs(merged.Mean()-sequential.Mean()) > 1e-12*math.Max(1, sequential.Mean()) {
			t.Fatalf("parts=%d: mean %v, want %v", parts, merged.Mean(), sequential.Mean())
		}
		if math.Abs(merged.Variance()-sequential.Variance()) > 1e-9*math.Max(1, sequential.Variance()) {
			t.Fatalf("parts=%d: variance %v, want %v", parts, merged.Variance(), sequential.Variance())
		}
		if merged.Min() != sequential.Min() || merged.Max() != sequential.Max() {
			t.Fatalf("parts=%d: extrema (%v, %v), want (%v, %v)",
				parts, merged.Min(), merged.Max(), sequential.Min(), sequential.Max())
		}
	}
	// Merging into an empty summary adopts the other side wholesale.
	var empty Summary
	empty.Merge(sequential)
	if empty.N() != sequential.N() || empty.Mean() != sequential.Mean() {
		t.Fatal("merge into empty summary lost state")
	}
	// Merging an empty summary is a no-op.
	before := sequential
	sequential.Merge(Summary{})
	if sequential != before {
		t.Fatal("merging an empty summary changed state")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(1)
	a.Observe(9)
	b.Observe(1)
	b.Observe(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 4 || a.Counts[0] != 2 || a.Counts[2] != 1 || a.Counts[4] != 1 {
		t.Fatalf("merged counts = %v", a.Counts)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	mismatched, err := NewHistogram(0, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(mismatched); err == nil {
		t.Fatal("mismatched bin counts accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want Lo", got)
	}
	// A uniform sample 0.5, 1.5, ..., 99.5: one observation per bin.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for _, tc := range []struct{ p, want, tol float64 }{
		{0, 0, 0.01},
		{0.5, 50, 1.01},
		{0.95, 95, 1.01},
		{0.99, 99, 1.01},
		{1, 100, 0.01},
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("Quantile(%v) = %v, want %v ± %v", tc.p, got, tc.want, tc.tol)
		}
	}
	// Out-of-range p clamps.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v", got)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v", got)
	}

	// A point mass in one bin: every quantile lands inside that bin.
	pm, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		pm.Observe(7.3)
	}
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := pm.Quantile(p); got < 7 || got > 8 {
			t.Fatalf("point-mass Quantile(%v) = %v, want within [7,8]", p, got)
		}
	}

	// Quantiles of merged histograms match the union sample's quantiles.
	a, _ := NewHistogram(0, 100, 200)
	b, _ := NewHistogram(0, 100, 200)
	var sample []float64
	rng := 12345.0
	for i := 0; i < 500; i++ {
		rng = math.Mod(rng*997+13, 100)
		sample = append(sample, rng)
		if i%2 == 0 {
			a.Observe(rng)
		} else {
			b.Observe(rng)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	exact, err := Quantiles(sample, 0.5, 0.95, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []float64{0.5, 0.95, 0.99} {
		if got := a.Quantile(p); math.Abs(got-exact[i]) > 1.0 {
			t.Fatalf("merged Quantile(%v) = %v, exact = %v", p, got, exact[i])
		}
	}
}
