package stats

import (
	"math"
	"testing"
)

func TestSummaryStateRoundTrip(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2.5, 6} {
		s.Observe(v)
	}
	got, err := RestoreSummary(s.State())
	if err != nil {
		t.Fatalf("RestoreSummary: %v", err)
	}
	if got != s {
		t.Fatalf("round trip changed state: got %+v want %+v", got, s)
	}
	// The restored summary must keep accumulating identically.
	s.Observe(7)
	got.Observe(7)
	if got != s {
		t.Fatalf("post-restore Observe diverged: got %+v want %+v", got, s)
	}
}

func TestSummaryStateEmptyRoundTrip(t *testing.T) {
	var s Summary
	got, err := RestoreSummary(s.State())
	if err != nil {
		t.Fatalf("RestoreSummary(empty): %v", err)
	}
	if got != (Summary{}) {
		t.Fatalf("empty round trip: got %+v", got)
	}
	// An empty restored summary must record its first extrema correctly
	// (hasExtrema must not have been restored as true).
	got.Observe(-5)
	if got.Min() != -5 || got.Max() != -5 {
		t.Fatalf("first observation after empty restore: min=%v max=%v", got.Min(), got.Max())
	}
}

func TestSummaryStateMergeAfterRestore(t *testing.T) {
	var a, b Summary
	for i := 0; i < 10; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i) * 1.5)
	}
	ra, err := RestoreSummary(a.State())
	if err != nil {
		t.Fatal(err)
	}
	ra.Merge(b)
	a.Merge(b)
	if ra != a {
		t.Fatalf("Merge after restore diverged: got %+v want %+v", ra, a)
	}
}

func TestRestoreSummaryRejectsInvalid(t *testing.T) {
	cases := []SummaryState{
		{N: -1},
		{N: 3, M2: -0.5},
		{N: 3, Mean: math.NaN()},
		{N: 3, Mean: math.Inf(1)},
		{N: 3, M2: math.NaN()},
		{N: 2, Min: 5, Max: 1},
		{N: 1, Min: math.NaN(), Max: math.NaN()},
	}
	for _, st := range cases {
		if _, err := RestoreSummary(st); err == nil {
			t.Errorf("RestoreSummary(%+v) accepted invalid state", st)
		}
	}
}
