// Package stats is the numeric substrate for the Bayesian confidence
// machinery and the simulation reports: special functions (log-Gamma,
// log-Beta, the regularized incomplete Beta function), scaled-Beta
// densities on an arbitrary support [0, upper], compensated summation,
// discrete distributions over grids, and streaming summaries.
//
// Everything here is pure computation over float64 with no global state.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInvalidParam reports a parameter outside a function's domain.
var ErrInvalidParam = errors.New("stats: invalid parameter")

// LogGamma returns the natural log of the absolute value of the Gamma
// function, via the Lanczos approximation (g=7, n=9 coefficients).
func LogGamma(x float64) float64 {
	// Stdlib math.Lgamma exists; keep the signature local so callers do
	// not have to discard the sign term, which is always +1 on our domain.
	v, _ := math.Lgamma(x)
	return v
}

// LogBeta returns ln B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b).
func LogBeta(a, b float64) float64 {
	return LogGamma(a) + LogGamma(b) - LogGamma(a+b)
}

// RegIncBeta returns the regularized incomplete Beta function I_x(a, b),
// the CDF at x of a Beta(a, b) random variable. It uses the continued
// fraction expansion (Lentz's algorithm) with the symmetry transform for
// numerical stability, as in Numerical Recipes.
func RegIncBeta(x, a, b float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("%w: RegIncBeta a=%v b=%v", ErrInvalidParam, a, b)
	}
	if x <= 0 {
		return 0, nil
	}
	if x >= 1 {
		return 1, nil
	}
	lnFront := a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b)
	front := math.Exp(lnFront)
	if x < (a+1)/(a+b+2) {
		cf := betaCF(x, a, b)
		return front * cf / a, nil
	}
	cf := betaCF(1-x, b, a)
	return 1 - front*cf/b, nil
}

// betaCF evaluates the continued fraction for the incomplete Beta function
// by the modified Lentz method.
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaQuantile inverts the Beta(a, b) CDF by bisection on RegIncBeta.
// p outside [0, 1] is an error.
func BetaQuantile(p, a, b float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: BetaQuantile p=%v", ErrInvalidParam, p)
	}
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("%w: BetaQuantile a=%v b=%v", ErrInvalidParam, a, b)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		cdf, err := RegIncBeta(mid, a, b)
		if err != nil {
			return 0, err
		}
		if cdf < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ScaledBeta is a Beta(Alpha, Beta) distribution stretched onto the support
// [0, Upper]. The paper's priors for the pfd of WS releases are exactly
// this shape: "a Beta(α, β) distribution defined in the range [0, 0.002]".
type ScaledBeta struct {
	Alpha, Beta float64
	Upper       float64
}

// Validate reports whether the parameters define a proper distribution.
func (s ScaledBeta) Validate() error {
	if s.Alpha <= 0 || s.Beta <= 0 || s.Upper <= 0 ||
		math.IsNaN(s.Alpha) || math.IsNaN(s.Beta) || math.IsNaN(s.Upper) {
		return fmt.Errorf("%w: ScaledBeta{%v %v %v}", ErrInvalidParam, s.Alpha, s.Beta, s.Upper)
	}
	return nil
}

// Mean returns the expected value Upper * α/(α+β).
func (s ScaledBeta) Mean() float64 {
	return s.Upper * s.Alpha / (s.Alpha + s.Beta)
}

// LogPDF returns the log density at x (−Inf outside the open support).
func (s ScaledBeta) LogPDF(x float64) float64 {
	if x <= 0 || x >= s.Upper {
		return math.Inf(-1)
	}
	u := x / s.Upper
	return (s.Alpha-1)*math.Log(u) + (s.Beta-1)*math.Log(1-u) -
		LogBeta(s.Alpha, s.Beta) - math.Log(s.Upper)
}

// CDF returns P(X <= x).
func (s ScaledBeta) CDF(x float64) (float64, error) {
	if x <= 0 {
		return 0, nil
	}
	if x >= s.Upper {
		return 1, nil
	}
	return RegIncBeta(x/s.Upper, s.Alpha, s.Beta)
}

// Quantile returns the value q with P(X <= q) = p.
func (s ScaledBeta) Quantile(p float64) (float64, error) {
	q, err := BetaQuantile(p, s.Alpha, s.Beta)
	if err != nil {
		return 0, err
	}
	return q * s.Upper, nil
}

// KahanSum accumulates float64 values with compensated (Kahan) summation,
// which the posterior normalization over large grids needs to stay exact.
// The zero value is an empty sum, ready to use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// LogSumExp returns ln Σ exp(v_i) computed stably. An empty input returns
// −Inf (the log of zero).
func LogSumExp(vs []float64) float64 {
	maxV := math.Inf(-1)
	for _, v := range vs {
		if v > maxV {
			maxV = v
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	var k KahanSum
	for _, v := range vs {
		k.Add(math.Exp(v - maxV))
	}
	return maxV + math.Log(k.Sum())
}

// Grid1D is a discrete probability distribution over strictly increasing
// support points. Weights need not be normalized at construction.
type Grid1D struct {
	Xs []float64 // support points, strictly increasing
	Ws []float64 // non-negative weights, same length
}

// Normalize scales the weights to sum to 1. It is an error if the total
// mass is zero or not finite.
func (g *Grid1D) Normalize() error {
	if len(g.Xs) != len(g.Ws) || len(g.Xs) == 0 {
		return fmt.Errorf("%w: Grid1D with %d points and %d weights", ErrInvalidParam, len(g.Xs), len(g.Ws))
	}
	var k KahanSum
	for _, w := range g.Ws {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("%w: Grid1D has negative or NaN weight %v", ErrInvalidParam, w)
		}
		k.Add(w)
	}
	total := k.Sum()
	if total <= 0 || math.IsInf(total, 0) {
		return fmt.Errorf("%w: Grid1D total mass %v", ErrInvalidParam, total)
	}
	for i := range g.Ws {
		g.Ws[i] /= total
	}
	return nil
}

// CDF returns P(X <= x) for the (assumed normalized) grid.
func (g *Grid1D) CDF(x float64) float64 {
	var k KahanSum
	for i, xi := range g.Xs {
		if xi > x {
			break
		}
		k.Add(g.Ws[i])
	}
	return math.Min(1, k.Sum())
}

// Quantile returns the smallest support point q with CDF(q) >= p.
// If p exceeds the total mass it returns the last support point.
func (g *Grid1D) Quantile(p float64) float64 {
	var k KahanSum
	for i, w := range g.Ws {
		k.Add(w)
		if k.Sum() >= p {
			return g.Xs[i]
		}
	}
	return g.Xs[len(g.Xs)-1]
}

// Mean returns the expectation of the (assumed normalized) grid.
func (g *Grid1D) Mean() float64 {
	var k KahanSum
	for i, x := range g.Xs {
		k.Add(x * g.Ws[i])
	}
	return k.Sum()
}

// Summary accumulates count/mean/variance/min/max online (Welford).
// The zero value is an empty summary, ready to use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Observe adds one value.
func (s *Summary) Observe(v float64) {
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
	if !s.hasExtrema || v < s.min {
		s.min = v
	}
	if !s.hasExtrema || v > s.max {
		s.max = v
	}
	s.hasExtrema = true
}

// Merge folds another summary into s, as if every observation of o had
// been observed by s (Chan et al.'s parallel variance combination). The
// sharded monitor uses it to aggregate per-shard summaries on read.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// SummaryState is the exported form of a Summary for serialization
// (the campaign journal snapshots per-release latency summaries with
// it). The fields are exactly Welford's accumulator state, so
// State → RestoreSummary round-trips losslessly.
type SummaryState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State exports the accumulator state for serialization.
func (s *Summary) State() SummaryState {
	return SummaryState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
}

// RestoreSummary rebuilds a Summary from exported state. Invalid state
// (negative count, negative squared-deviation mass, non-finite moments,
// inverted extrema) is rejected rather than silently accepted, because
// the journal replaying it may have been corrupted on disk.
func RestoreSummary(st SummaryState) (Summary, error) {
	if st.N < 0 || st.M2 < 0 ||
		math.IsNaN(st.Mean) || math.IsInf(st.Mean, 0) ||
		math.IsNaN(st.M2) || math.IsInf(st.M2, 0) ||
		math.IsNaN(st.Min) || math.IsNaN(st.Max) {
		return Summary{}, fmt.Errorf("%w: RestoreSummary%+v", ErrInvalidParam, st)
	}
	if st.N == 0 {
		return Summary{}, nil
	}
	if st.Min > st.Max {
		return Summary{}, fmt.Errorf("%w: RestoreSummary min %v > max %v", ErrInvalidParam, st.Min, st.Max)
	}
	return Summary{n: st.N, mean: st.Mean, m2: st.M2, min: st.Min, max: st.Max, hasExtrema: true}, nil
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Quantiles computes the requested quantiles (each in [0,1]) of the sample
// by sorting a copy; it uses the nearest-rank definition.
func Quantiles(sample []float64, ps ...float64) ([]float64, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("%w: Quantiles of empty sample", ErrInvalidParam)
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("%w: quantile p=%v", ErrInvalidParam, p)
		}
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out, nil
}

// Histogram counts observations into equal-width bins over [Lo, Hi).
// Observations outside the range are clamped into the edge bins so that
// totals always balance.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if !(hi > lo) || n <= 0 {
		return nil, fmt.Errorf("%w: NewHistogram(%v, %v, %d)", ErrInvalidParam, lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// Observe adds one value.
func (h *Histogram) Observe(v float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
}

// Merge adds another histogram's counts into h. The histograms must have
// identical bounds and bin counts.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("%w: merging histograms [%v,%v)x%d and [%v,%v)x%d",
			ErrInvalidParam, h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Quantile estimates the p-quantile (p in [0,1]) of the binned sample,
// interpolating linearly within the containing bin (observations are
// assumed uniform inside a bin). An empty histogram returns Lo. Values
// clamped into the edge bins report the bin edge, so a quantile is never
// outside [Lo, Hi]. The load harness derives its latency percentiles
// from merged per-worker histograms with this.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.Total()
	if total == 0 {
		return h.Lo
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	target := p * float64(total)
	cum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			within := 0.0
			if target > cum {
				within = (target - cum) / float64(c)
			}
			return h.Lo + width*(float64(i)+within)
		}
		cum = next
	}
	return h.Hi
}
