package upgsim

import (
	"math"
	"testing"

	"wsupgrade/internal/relmodel"
)

func paperConfig(runIdx int, correlated bool, timeout float64) Config {
	return Config{
		Run:        relmodel.Runs()[runIdx],
		Correlated: correlated,
		Latency:    relmodel.PaperLatency(),
		TimeOut:    timeout,
		Requests:   10000,
		Seed:       2004,
	}
}

func TestValidation(t *testing.T) {
	good := paperConfig(0, true, 1.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.TimeOut = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero timeout accepted")
	}
	bad = good
	bad.Requests = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero requests accepted")
	}
	bad = good
	bad.Run.Rel1.CR = 0.5 // breaks simplex
	if err := bad.Validate(); err == nil {
		t.Fatal("broken run accepted")
	}
	if _, err := Simulate(bad); err == nil {
		t.Fatal("Simulate accepted a broken config")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := paperConfig(1, true, 2.0)
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 1
	c, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.System == a.System {
		t.Fatal("different seeds produced identical system tallies")
	}
}

func TestTalliesBalance(t *testing.T) {
	for _, correlated := range []bool{true, false} {
		for runIdx := 0; runIdx < 4; runIdx++ {
			res, err := Simulate(paperConfig(runIdx, correlated, 1.5))
			if err != nil {
				t.Fatal(err)
			}
			n := res.Config.Requests
			for name, tot := range map[string]int{
				"rel1":   res.Rel1.Total() + res.Rel1.NRDT,
				"rel2":   res.Rel2.Total() + res.Rel2.NRDT,
				"system": res.System.Total() + res.System.NRDT,
			} {
				if tot != n {
					t.Fatalf("run %d correlated=%v: %s accounts for %d of %d requests",
						runIdx+1, correlated, name, tot, n)
				}
			}
		}
	}
}

// The 1-out-of-2 architecture: the system fails to respond only when both
// releases do, so its availability dominates each release's (paper §5.2.3
// observation 1).
func TestSystemAvailabilityDominates(t *testing.T) {
	for _, correlated := range []bool{true, false} {
		for runIdx := 0; runIdx < 4; runIdx++ {
			for _, timeout := range []float64{1.5, 2.0, 3.0} {
				res, err := Simulate(paperConfig(runIdx, correlated, timeout))
				if err != nil {
					t.Fatal(err)
				}
				if res.System.NRDT > res.Rel1.NRDT || res.System.NRDT > res.Rel2.NRDT {
					t.Errorf("run %d correlated=%v timeout=%v: system NRDT %d exceeds a release's (%d, %d)",
						runIdx+1, correlated, timeout, res.System.NRDT, res.Rel1.NRDT, res.Rel2.NRDT)
				}
			}
		}
	}
}

// The system waits for the slower release and adds dT (paper §5.2.3
// observation 2): its MET exceeds what the middleware sees from either
// release alone.
func TestSystemMETExceedsTruncatedReleaseMET(t *testing.T) {
	for _, timeout := range []float64{1.5, 3.0} {
		res, err := Simulate(paperConfig(0, true, timeout))
		if err != nil {
			t.Fatal(err)
		}
		dt := res.Config.Latency.DT
		if res.System.MET < res.Rel1.TruncMET+dt-1e-9 || res.System.MET < res.Rel2.TruncMET+dt-1e-9 {
			t.Errorf("timeout %v: system MET %v below truncated release MET + dT (%v, %v)",
				timeout, res.System.MET, res.Rel1.TruncMET+dt, res.Rel2.TruncMET+dt)
		}
	}
}

// Raw per-release MET must not depend on the timeout — the paper's tables
// show the same release MET in every timeout column.
func TestReleaseMETIndependentOfTimeout(t *testing.T) {
	a, err := Simulate(paperConfig(0, true, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(paperConfig(0, true, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Rel1.MET-b.Rel1.MET) > 1e-12 || math.Abs(a.Rel2.MET-b.Rel2.MET) > 1e-12 {
		t.Fatalf("raw release MET changed with timeout: %v/%v vs %v/%v",
			a.Rel1.MET, a.Rel2.MET, b.Rel1.MET, b.Rel2.MET)
	}
}

// Under independence, fault tolerance works: the system returns more
// correct responses than either release (paper §5.2.3 observation 4).
func TestIndependenceSystemBeatsBothReleases(t *testing.T) {
	for runIdx := 0; runIdx < 4; runIdx++ {
		res, err := Simulate(paperConfig(runIdx, false, 3.0))
		if err != nil {
			t.Fatal(err)
		}
		if res.System.CR <= res.Rel1.CR || res.System.CR <= res.Rel2.CR {
			t.Errorf("run %d independent: system CR %d does not beat releases (%d, %d)",
				runIdx+1, res.System.CR, res.Rel1.CR, res.Rel2.CR)
		}
	}
}

// Under correlation the system still at least beats the worse release
// (paper §5.2.3 observation 3, runs 2-4).
func TestCorrelatedSystemBeatsWorseRelease(t *testing.T) {
	for runIdx := 1; runIdx < 4; runIdx++ { // runs 2-4: rel2 clearly worse
		res, err := Simulate(paperConfig(runIdx, true, 3.0))
		if err != nil {
			t.Fatal(err)
		}
		worse := res.Rel2.CR
		if res.Rel1.CR < worse {
			worse = res.Rel1.CR
		}
		if res.System.CR < worse {
			t.Errorf("run %d correlated: system CR %d below worse release %d",
				runIdx+1, res.System.CR, worse)
		}
	}
}

// A longer timeout collects more responses: NRDT decreases monotonically
// in TimeOut for releases and system alike.
func TestNRDTDecreasesWithTimeout(t *testing.T) {
	var prev *Result
	for _, timeout := range []float64{1.5, 2.0, 3.0} {
		res, err := Simulate(paperConfig(0, true, timeout))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if res.Rel1.NRDT > prev.Rel1.NRDT || res.Rel2.NRDT > prev.Rel2.NRDT ||
				res.System.NRDT > prev.System.NRDT {
				t.Errorf("NRDT rose when timeout grew to %v: %+v -> %+v",
					timeout, prev.System, res.System)
			}
		}
		prev = res
	}
}

// Release outcome frequencies among received responses should track the
// configured marginals.
func TestOutcomeFrequenciesMatchModel(t *testing.T) {
	res, err := Simulate(paperConfig(0, false, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	tot := float64(res.Rel1.Total())
	if got := float64(res.Rel1.CR) / tot; math.Abs(got-0.70) > 0.02 {
		t.Errorf("rel1 CR share = %v, want ~0.70", got)
	}
	if got := float64(res.Rel1.EER) / tot; math.Abs(got-0.15) > 0.02 {
		t.Errorf("rel1 EER share = %v, want ~0.15", got)
	}
	// Correlated regime: rel2 share follows the implied marginal, not
	// Table 3's nominal.
	resC, err := Simulate(paperConfig(2, true, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	implied := resC.Config.Run.Cond.Marginal2(resC.Config.Run.Rel1)
	totC := float64(resC.Rel2.Total())
	if got := float64(resC.Rel2.CR) / totC; math.Abs(got-implied.CR) > 0.02 {
		t.Errorf("correlated rel2 CR share = %v, want ~%v", got, implied.CR)
	}
}

// System MET must never exceed TimeOut + dT (eq. 8 upper bound).
func TestSystemMETBoundedByTimeout(t *testing.T) {
	for _, timeout := range []float64{1.5, 2.0, 3.0} {
		res, err := Simulate(paperConfig(3, true, timeout))
		if err != nil {
			t.Fatal(err)
		}
		if res.System.MET > timeout+res.Config.Latency.DT {
			t.Errorf("system MET %v exceeds bound %v", res.System.MET, timeout+res.Config.Latency.DT)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ParallelReliability:    "parallel-reliability",
		ParallelResponsiveness: "parallel-responsiveness",
		ParallelDynamic:        "parallel-dynamic",
		Sequential:             "sequential",
		Mode(99):               "Mode(99)",
	} {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}

func TestModeValidation(t *testing.T) {
	cfg := paperConfig(0, true, 1.5)
	cfg.Mode = Mode(99)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown mode accepted")
	}
	cfg = paperConfig(0, true, 1.5)
	cfg.Mode = ParallelDynamic
	cfg.Quorum = 3
	if err := cfg.Validate(); err == nil {
		t.Fatal("quorum 3 with 2 releases accepted")
	}
}

// Mode 2 trades reliability for latency: it must respond no slower than
// mode 1 on average and consume the same capacity.
func TestResponsivenessFasterThanReliability(t *testing.T) {
	base := paperConfig(0, true, 3.0)
	rel, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.Mode = ParallelResponsiveness
	resp, err := Simulate(fast)
	if err != nil {
		t.Fatal(err)
	}
	if resp.System.MET >= rel.System.MET {
		t.Fatalf("responsiveness MET %v not below reliability MET %v",
			resp.System.MET, rel.System.MET)
	}
	if resp.System.Executions != rel.System.Executions {
		t.Fatalf("parallel modes consumed different capacity: %d vs %d",
			resp.System.Executions, rel.System.Executions)
	}
	// Availability is unchanged: both modes fail only when both releases
	// stay silent.
	if resp.System.NRDT != rel.System.NRDT {
		t.Fatalf("NRDT differs between parallel modes: %d vs %d",
			resp.System.NRDT, rel.System.NRDT)
	}
}

// Mode 3 with quorum 2 must coincide with mode 1 for two releases.
func TestDynamicQuorum2MatchesReliability(t *testing.T) {
	base := paperConfig(1, true, 2.0)
	rel, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	dyn := base
	dyn.Mode = ParallelDynamic
	dyn.Quorum = 2
	got, err := Simulate(dyn)
	if err != nil {
		t.Fatal(err)
	}
	if got.System.CR != rel.System.CR || got.System.EER != rel.System.EER ||
		got.System.NER != rel.System.NER || got.System.NRDT != rel.System.NRDT {
		t.Fatalf("dynamic(q=2) system %+v differs from reliability %+v",
			got.System, rel.System)
	}
	if math.Abs(got.System.MET-rel.System.MET) > 1e-9 {
		t.Fatalf("dynamic(q=2) MET %v differs from reliability %v",
			got.System.MET, rel.System.MET)
	}
}

// Mode 3 with quorum 1 adjudicates on the first response: faster than
// quorum 2.
func TestDynamicQuorum1Faster(t *testing.T) {
	base := paperConfig(0, true, 3.0)
	base.Mode = ParallelDynamic
	base.Quorum = 2
	q2, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Quorum = 1
	q1, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	if q1.System.MET >= q2.System.MET {
		t.Fatalf("quorum-1 MET %v not below quorum-2 MET %v", q1.System.MET, q2.System.MET)
	}
}

// Mode 4 halves server capacity when the first release mostly works, at
// the cost of NER exposure (no cross-check is possible).
func TestSequentialSavesCapacity(t *testing.T) {
	base := paperConfig(0, true, 3.0)
	par, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	seq := base
	seq.Mode = Sequential
	got, err := Simulate(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got.System.Executions >= par.System.Executions {
		t.Fatalf("sequential used %d executions, parallel %d", got.System.Executions, par.System.Executions)
	}
	// Release 1 responds within 3.0s with CR or NER ~66% of the time, so
	// release 2 should execute for roughly the remaining third.
	if got.Rel2.Executed == 0 || got.Rel2.Executed > base.Requests/2 {
		t.Fatalf("sequential rel2 executed %d times, expected a modest fraction of %d",
			got.Rel2.Executed, base.Requests)
	}
	// All requests still produce an outcome.
	if got.System.Total()+got.System.NRDT != base.Requests {
		t.Fatalf("sequential accounts for %d of %d requests",
			got.System.Total()+got.System.NRDT, base.Requests)
	}
}

// Sequential retries tolerate evident failures: the system's evident
// failure share must be below release 1's.
func TestSequentialMasksEvidentFailures(t *testing.T) {
	cfg := paperConfig(0, false, 3.0)
	cfg.Mode = Sequential
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel1Share := float64(res.Rel1.EER) / float64(res.Rel1.Executed)
	sysShare := float64(res.System.EER) / float64(cfg.Requests)
	if sysShare >= rel1Share {
		t.Fatalf("sequential system EER share %v not below rel1 %v", sysShare, rel1Share)
	}
}

func BenchmarkSimulate10k(b *testing.B) {
	cfg := paperConfig(0, true, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
