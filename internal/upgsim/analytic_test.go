package upgsim

import (
	"math"
	"testing"

	"wsupgrade/internal/relmodel"
)

// The latency model has closed forms; the simulator must agree with them.
//
// With T1 ~ Exp(m) and T2 ~ Exp(m), the raw execution time T = T1 + T2 is
// Erlang(2, rate 1/m): E[T] = 2m and P(T > t) = e^{-t/m} (1 + t/m).
func TestReleaseLatencyMatchesErlangAnalytics(t *testing.T) {
	cfg := paperConfig(0, true, 1.5)
	cfg.Requests = 40000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m = 0.7
	wantMean := 2 * m
	if math.Abs(res.Rel1.MET-wantMean) > 0.02 {
		t.Fatalf("rel1 MET = %v, Erlang mean %v", res.Rel1.MET, wantMean)
	}
	if math.Abs(res.Rel2.MET-wantMean) > 0.02 {
		t.Fatalf("rel2 MET = %v, Erlang mean %v", res.Rel2.MET, wantMean)
	}
	// NRDT fraction = survival at the timeout.
	x := cfg.TimeOut / m
	wantNRDT := math.Exp(-x) * (1 + x)
	for name, tally := range map[string]ReleaseTally{"rel1": res.Rel1, "rel2": res.Rel2} {
		got := float64(tally.NRDT) / float64(cfg.Requests)
		if math.Abs(got-wantNRDT) > 0.01 {
			t.Fatalf("%s NRDT fraction = %v, Erlang survival %v", name, got, wantNRDT)
		}
	}
	// This is exactly the documented discrepancy with the paper's
	// Tables 5-6 (NRDT ≈ 4% there): the stated parameters imply ~37%.
	if wantNRDT < 0.3 {
		t.Fatalf("analytic sanity broken: %v", wantNRDT)
	}
}

// The system responds unless both releases miss the timeout. The shared
// T1 couples the events: P(both miss) ≥ P(one misses)². The simulator's
// joint miss rate must match the analytic value
// P(T1 + max(T2a, T2b) > t) computed by numeric integration.
func TestSystemNRDTMatchesJointAnalytics(t *testing.T) {
	cfg := paperConfig(0, true, 1.5)
	cfg.Requests = 40000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m = 0.7
	// Numeric integration over T1's density: both releases miss iff
	// T1 + T2i > t for both, i.e. both T2 draws exceed t - T1.
	const steps = 20000
	joint := 0.0
	tmo := cfg.TimeOut
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) * (tmo / steps)
		f1 := math.Exp(-u/m) / m
		tail := math.Exp(-(tmo - u) / m) // P(T2 > t-u)
		joint += f1 * tail * tail * (tmo / steps)
	}
	joint += math.Exp(-tmo / m) // T1 alone exceeds the timeout
	got := float64(res.System.NRDT) / float64(cfg.Requests)
	if math.Abs(got-joint) > 0.01 {
		t.Fatalf("system NRDT fraction = %v, analytic %v", got, joint)
	}
}

// With an effectively infinite timeout every response is collected: no
// NRDT anywhere and the outcome tallies equal the sampled kinds.
func TestInfiniteTimeoutCollectsEverything(t *testing.T) {
	cfg := paperConfig(1, false, 1000)
	cfg.Requests = 5000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel1.NRDT != 0 || res.Rel2.NRDT != 0 || res.System.NRDT != 0 {
		t.Fatalf("NRDT with infinite timeout: %d/%d/%d",
			res.Rel1.NRDT, res.Rel2.NRDT, res.System.NRDT)
	}
	if res.Rel1.Total() != cfg.Requests || res.Rel2.Total() != cfg.Requests {
		t.Fatal("responses lost despite infinite timeout")
	}
	// The adjudicated outcome distribution then has a closed form under
	// independence; spot-check the system CR probability:
	// P(CR) = P(both CR) + P(CR,NER)/2·2 + P(CR,ER)·... with run 2's
	// marginals (0.7,.15,.15) × (0.6,.2,.2):
	//   both CR: .42; CR+NER random pick: (.7·.2 + .15·.6)/2 = .115;
	//   CR vs ER (ER filtered): .7·.2 + .15·.6 = .23.
	want := 0.42 + 0.115 + 0.23
	got := float64(res.System.CR) / float64(cfg.Requests)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("system CR fraction = %v, analytic %v", got, want)
	}
}

// Correlated sampling with a diagonal of 1 forces identical outcomes.
func TestPerfectCorrelationForcesIdenticalOutcomes(t *testing.T) {
	run := relmodel.Run{
		ID:              1,
		Rel1:            relmodel.Profile{CR: 0.6, ER: 0.2, NER: 0.2},
		Rel2Independent: relmodel.Profile{CR: 0.6, ER: 0.2, NER: 0.2},
		Cond:            relmodel.Diagonal(1),
	}
	cfg := Config{
		Run:        run,
		Correlated: true,
		Latency:    relmodel.Latency{}, // instantaneous
		TimeOut:    1,
		Requests:   4000,
		Seed:       3,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With identical outcomes and guaranteed collection, the system
	// tallies equal each release's.
	if res.System.CR != res.Rel1.CR || res.System.EER != res.Rel1.EER || res.System.NER != res.Rel1.NER {
		t.Fatalf("system %+v differs from perfectly correlated releases %+v",
			res.System, res.Rel1)
	}
}
