// Package upgsim reproduces the paper's §5.2 event-driven simulation of
// the managed-upgrade middleware running two releases of a Web Service
// concurrently. It generates the rows of Tables 5 (correlated release
// behaviour) and 6 (independent behaviour): mean execution times, outcome
// counts by kind, and no-response-within-timeout counts, per release and
// for the adjudicated system.
//
// The model, exactly as specified in §5.2.1-5.2.2:
//
//   - each consumer request is forwarded to both releases;
//   - release i's execution time is T1 + T2(i), the T1 draw shared
//     between the releases (eq. 7), all components exponential;
//   - the middleware waits for the responses but no longer than TimeOut,
//     adjudicates what it has collected by the §5.2.1 rules, and delivers
//     at min(TimeOut, max(exec times)) + dT (eq. 8);
//   - response kinds are either correlated through the conditional
//     matrices of Table 4 or sampled independently from the marginals of
//     Table 3.
//
// Beyond the paper's measured configuration, the simulator implements all
// four operating modes of §4.2, so the trade-offs the paper discusses
// qualitatively (reliability vs responsiveness vs server capacity) can be
// measured — see the mode ablation bench.
//
// The simulation is executed on the discrete-event kernel of
// internal/sim; every request contributes its release-response events and
// one adjudication event, and determinism is guaranteed by the seeded
// stream and the kernel's FIFO tie-breaking.
package upgsim

import (
	"errors"
	"fmt"
	"math"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/sim"
	"wsupgrade/internal/xrand"
)

// ErrBadConfig reports an invalid simulation configuration.
var ErrBadConfig = errors.New("upgsim: bad configuration")

// Mode selects the middleware operating mode (§4.2).
type Mode int

const (
	// ParallelReliability (mode 1) executes all releases concurrently,
	// waits for every response (bounded by TimeOut) and adjudicates.
	// This is the configuration measured in Tables 5 and 6.
	ParallelReliability Mode = iota + 1
	// ParallelResponsiveness (mode 2) executes all releases concurrently
	// and returns the fastest non-evidently-incorrect response.
	ParallelResponsiveness
	// ParallelDynamic (mode 3) executes all releases concurrently and
	// adjudicates as soon as Quorum responses are collected, or at
	// TimeOut, whichever is first.
	ParallelDynamic
	// Sequential (mode 4) executes the releases one after another,
	// invoking the next release only when the previous response was
	// evidently incorrect or absent; it minimizes server capacity.
	Sequential
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ParallelReliability:
		return "parallel-reliability"
	case ParallelResponsiveness:
		return "parallel-responsiveness"
	case ParallelDynamic:
		return "parallel-dynamic"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes one simulation run (one cell block of Table 5/6).
type Config struct {
	// Run selects the behaviour profiles and correlation structure.
	Run relmodel.Run
	// Correlated selects Table 5 (true) or Table 6 (false) sampling.
	Correlated bool
	// Latency is the execution-time model; PaperLatency() for the paper's.
	Latency relmodel.Latency
	// TimeOut is the middleware's collection deadline, seconds.
	TimeOut float64
	// Requests is the number of consumer requests (10,000 in the paper).
	Requests int
	// Seed drives all sampling.
	Seed uint64
	// Mode is the operating mode; the zero value means
	// ParallelReliability, the paper's measured configuration.
	Mode Mode
	// Quorum is the response count ParallelDynamic waits for
	// (default 1). Other modes ignore it.
	Quorum int
}

func (c Config) mode() Mode {
	if c.Mode == 0 {
		return ParallelReliability
	}
	return c.Mode
}

func (c Config) quorum() int {
	if c.Quorum == 0 {
		return 1
	}
	return c.Quorum
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Run.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if err := c.Latency.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.TimeOut <= 0 || math.IsNaN(c.TimeOut) {
		return fmt.Errorf("%w: timeout %v", ErrBadConfig, c.TimeOut)
	}
	if c.Requests <= 0 {
		return fmt.Errorf("%w: requests %d", ErrBadConfig, c.Requests)
	}
	switch c.mode() {
	case ParallelReliability, ParallelResponsiveness, Sequential:
	case ParallelDynamic:
		if c.quorum() < 1 || c.quorum() > 2 {
			return fmt.Errorf("%w: quorum %d with 2 releases", ErrBadConfig, c.quorum())
		}
	default:
		return fmt.Errorf("%w: mode %v", ErrBadConfig, c.Mode)
	}
	return nil
}

// ReleaseTally aggregates one release's behaviour over the run.
type ReleaseTally struct {
	// Executed counts how many times the release was invoked. Parallel
	// modes invoke every release on every request; Sequential invokes
	// later releases only on earlier failures.
	Executed int
	// MET is the mean raw execution time over executed invocations,
	// seconds. It is independent of TimeOut, matching the constant
	// per-release MET across the timeout columns of Tables 5-6.
	MET float64
	// TruncMET is the mean of min(TimeOut, execution time) over executed
	// invocations: the latency the middleware actually experiences.
	TruncMET float64
	// CR, EER, NER count responses received within TimeOut, by kind.
	CR, EER, NER int
	// NRDT counts invocations with no response within TimeOut.
	NRDT int
}

// Total returns the number of responses received within the timeout.
func (t ReleaseTally) Total() int { return t.CR + t.EER + t.NER }

// SystemTally aggregates the adjudicated system behaviour.
type SystemTally struct {
	// MET is the mean time to the adjudicated response over all
	// requests; in ParallelReliability it is
	// min(TimeOut, max(release times)) + dT (eq. 8).
	MET float64
	// CR, EER, NER count adjudicated responses by kind. EER includes the
	// middleware's own exception when every collected response was
	// evidently incorrect.
	CR, EER, NER int
	// NRDT counts requests for which no release responded within
	// TimeOut ("Web Service unavailable").
	NRDT int
	// Executions counts release invocations across the run — the server
	// capacity the mode consumed.
	Executions int
}

// Total returns the number of requests that received a response.
func (t SystemTally) Total() int { return t.CR + t.EER + t.NER }

// Result is one complete simulation outcome (one Run × TimeOut block).
type Result struct {
	Config Config
	Rel1   ReleaseTally
	Rel2   ReleaseTally
	System SystemTally
}

// Simulate runs the model to completion.
func Simulate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	// Adjudication picks draw from their own stream so that the sampled
	// outcome/latency sequence — and with it the per-release raw MET —
	// is identical across timeouts and modes for a given seed.
	adjRng := xrand.New(cfg.Seed ^ 0x5ad31ca7e0001)
	var kernel sim.Kernel
	res := &Result{Config: cfg}

	var metRel1, metRel2, truncRel1, truncRel2, metSys float64

	// Requests do not interact; space them so each request's events form
	// a disjoint time block, which keeps the event trace legible. The
	// sequential mode can take up to two timeouts.
	stride := 2*cfg.TimeOut + cfg.Latency.DT + 1

	for i := 0; i < cfg.Requests; i++ {
		arrival := float64(i) * stride

		var k1, k2 relmodel.OutcomeKind
		if cfg.Correlated {
			k1, k2 = cfg.Run.SampleCorrelated(rng)
		} else {
			k1, k2 = cfg.Run.SampleIndependent(rng)
		}
		t1, t2 := cfg.Latency.Sample(rng)

		recordExec := func(tally *ReleaseTally, met, trunc *float64, t float64, k relmodel.OutcomeKind, at float64) error {
			tally.Executed++
			*met += t
			*trunc += math.Min(cfg.TimeOut, t)
			if t <= cfg.TimeOut {
				kind := k
				if _, err := kernel.At(at+t, func() { tallyKind(tally, kind) }); err != nil {
					return fmt.Errorf("upgsim: scheduling response: %w", err)
				}
			} else {
				tally.NRDT++
			}
			return nil
		}

		switch cfg.mode() {
		case ParallelReliability, ParallelResponsiveness, ParallelDynamic:
			if err := recordExec(&res.Rel1, &metRel1, &truncRel1, t1, k1, arrival); err != nil {
				return nil, err
			}
			if err := recordExec(&res.Rel2, &metRel2, &truncRel2, t2, k2, arrival); err != nil {
				return nil, err
			}
			res.System.Executions += 2

			adjTime, verdict := adjudicateParallel(cfg, t1, t2, k1, k2, adjRng)
			metSys += adjTime
			if _, err := kernel.At(arrival+adjTime, func() { tallySystem(&res.System, verdict) }); err != nil {
				return nil, fmt.Errorf("upgsim: scheduling adjudication: %w", err)
			}

		case Sequential:
			// Release 1 executes first; release 2 only if release 1
			// produced an evident failure or no response in time.
			if err := recordExec(&res.Rel1, &metRel1, &truncRel1, t1, k1, arrival); err != nil {
				return nil, err
			}
			res.System.Executions++
			firstOK := t1 <= cfg.TimeOut && k1 != relmodel.EvidentFailure
			if firstOK {
				adjTime := t1 + cfg.Latency.DT
				metSys += adjTime
				kind := k1
				if _, err := kernel.At(arrival+adjTime, func() {
					tallySystem(&res.System, adjudicate.KindVerdict{Outcome: kind})
				}); err != nil {
					return nil, fmt.Errorf("upgsim: scheduling sequential adjudication: %w", err)
				}
				break
			}
			secondStart := math.Min(cfg.TimeOut, t1)
			if err := recordExec(&res.Rel2, &metRel2, &truncRel2, t2, k2, arrival+secondStart); err != nil {
				return nil, err
			}
			res.System.Executions++
			adjTime := secondStart + math.Min(cfg.TimeOut, t2) + cfg.Latency.DT
			metSys += adjTime
			var verdict adjudicate.KindVerdict
			switch {
			case t2 > cfg.TimeOut && t1 > cfg.TimeOut:
				verdict = adjudicate.KindVerdict{Unavailable: true}
			case t2 > cfg.TimeOut || k2 == relmodel.EvidentFailure:
				// Both attempts failed evidently (release 1 evidently or
				// by absence): the consumer sees an exception.
				verdict = adjudicate.KindVerdict{Outcome: relmodel.EvidentFailure}
			default:
				verdict = adjudicate.KindVerdict{Outcome: k2}
			}
			if _, err := kernel.At(arrival+adjTime, func() { tallySystem(&res.System, verdict) }); err != nil {
				return nil, fmt.Errorf("upgsim: scheduling sequential adjudication: %w", err)
			}
		}
	}

	kernel.Run()

	if res.Rel1.Executed > 0 {
		res.Rel1.MET = metRel1 / float64(res.Rel1.Executed)
		res.Rel1.TruncMET = truncRel1 / float64(res.Rel1.Executed)
	}
	if res.Rel2.Executed > 0 {
		res.Rel2.MET = metRel2 / float64(res.Rel2.Executed)
		res.Rel2.TruncMET = truncRel2 / float64(res.Rel2.Executed)
	}
	res.System.MET = metSys / float64(cfg.Requests)
	return res, nil
}

// adjudicateParallel computes the delivery time and system verdict for the
// three parallel modes, from the sampled execution times and kinds.
func adjudicateParallel(cfg Config, t1, t2 float64, k1, k2 relmodel.OutcomeKind, rng *xrand.Rand) (float64, adjudicate.KindVerdict) {
	type arrival struct {
		t float64
		k relmodel.OutcomeKind
	}
	var inTime []arrival
	if t1 <= cfg.TimeOut {
		inTime = append(inTime, arrival{t1, k1})
	}
	if t2 <= cfg.TimeOut {
		inTime = append(inTime, arrival{t2, k2})
	}
	if len(inTime) == 2 && inTime[0].t > inTime[1].t {
		inTime[0], inTime[1] = inTime[1], inTime[0]
	}

	switch cfg.mode() {
	case ParallelResponsiveness:
		// Deliver the first valid response the moment it arrives.
		for _, a := range inTime {
			if a.k != relmodel.EvidentFailure {
				return a.t + cfg.Latency.DT, adjudicate.KindVerdict{Outcome: a.k}
			}
		}
		// No valid response ever arrives. If both releases responded
		// (evidently incorrect), the middleware knows at the second
		// arrival that no valid response can come and raises the
		// exception immediately; otherwise it waits out the timeout.
		if len(inTime) == 2 {
			return inTime[1].t + cfg.Latency.DT, adjudicate.KindVerdict{Outcome: relmodel.EvidentFailure}
		}
		if len(inTime) == 1 {
			return cfg.TimeOut + cfg.Latency.DT, adjudicate.KindVerdict{Outcome: relmodel.EvidentFailure}
		}
		return cfg.TimeOut + cfg.Latency.DT, adjudicate.KindVerdict{Unavailable: true}

	case ParallelDynamic:
		q := cfg.quorum()
		if len(inTime) >= q {
			collected := make([]relmodel.OutcomeKind, q)
			for i := 0; i < q; i++ {
				collected[i] = inTime[i].k
			}
			return inTime[q-1].t + cfg.Latency.DT, adjudicate.Kinds(collected, rng)
		}
		// Quorum not reached: adjudicate whatever arrived, at TimeOut.
		collected := make([]relmodel.OutcomeKind, len(inTime))
		for i, a := range inTime {
			collected[i] = a.k
		}
		return cfg.TimeOut + cfg.Latency.DT, adjudicate.Kinds(collected, rng)

	default: // ParallelReliability, eq. 8
		adjTime := math.Min(cfg.TimeOut, math.Max(t1, t2)) + cfg.Latency.DT
		collected := make([]relmodel.OutcomeKind, len(inTime))
		for i, a := range inTime {
			collected[i] = a.k
		}
		return adjTime, adjudicate.Kinds(collected, rng)
	}
}

func tallyKind(t *ReleaseTally, k relmodel.OutcomeKind) {
	switch k {
	case relmodel.Correct:
		t.CR++
	case relmodel.EvidentFailure:
		t.EER++
	case relmodel.NonEvidentFailure:
		t.NER++
	}
}

func tallySystem(t *SystemTally, v adjudicate.KindVerdict) {
	switch {
	case v.Unavailable:
		t.NRDT++
	case v.Outcome == relmodel.Correct:
		t.CR++
	case v.Outcome == relmodel.EvidentFailure:
		t.EER++
	default:
		t.NER++
	}
}
