// Package faulty injects the paper's §5.1 failure model into any
// release endpoint, on demand and deterministically.
//
// The mediator's dependability argument rests on how it behaves when a
// release misbehaves: responses that never come (omission), responses
// that come late (latency spikes), responses that are wrong but look
// right (the non-evident failures only diversity detects), processes
// that crash and restart, and adversarial wire behaviour — bodies that
// drip one byte at a time, bodies that never end, header sections that
// flood the reader. This package wraps a real release handler and
// produces each of those failure modes with a seeded, reproducible
// injection stream, so load campaigns and unit tests can script "10%
// omission" or "every response corrupted" and replay the exact same
// fault sequence on every run.
//
// An Injector decides per demand: each configured Fault draws once from
// the seeded stream, in configuration order, and the first hit fires.
// Decisions are serialized, so with a fixed seed and a fixed demand
// count the multiset of injected faults is exactly reproducible — and
// under single-threaded drive, the per-demand sequence is too.
//
// Crash/restart of the listener — the §5.1 crash failure — is a
// property of the hosting process, not of a handler, so it lives in
// Server: a restartable listener pinned to its first-bound address.
package faulty

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wsupgrade/internal/soap"
	"wsupgrade/internal/xrand"
)

// Mode is one §5.1 failure mode.
type Mode int

const (
	// Passthrough serves the wrapped handler untouched.
	Passthrough Mode = iota
	// LatencySpike delays the response by Fault.Latency — the
	// responsiveness failure of §2/§5.1 (late service delivery).
	LatencySpike
	// Omission accepts the request and never responds: the connection
	// hangs until the consumer gives up (or Fault.MaxHang force-closes
	// it). §5.1's omission failure.
	Omission
	// Corrupt serves a well-formed SOAP response with wrong content —
	// the non-evident value failure only adjudication can catch.
	Corrupt
	// Crash is reported by Server for demands that arrive while the
	// listener is down; an Injector never produces it. Defined here so
	// the taxonomy is complete in one place.
	Crash
	// SlowDrip serves the correct response body a few bytes at a time
	// with long pauses — the read-deadline adversary.
	SlowDrip
	// Oversize streams a response body of Fault.SizeBytes — the
	// MaxResponseBytes adversary.
	Oversize
	// HeaderFlood emits a header section of roughly Fault.SizeBytes
	// before the body — the header-budget adversary.
	HeaderFlood
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Passthrough:
		return "passthrough"
	case LatencySpike:
		return "latency-spike"
	case Omission:
		return "omission"
	case Corrupt:
		return "corrupt"
	case Crash:
		return "crash"
	case SlowDrip:
		return "slow-drip"
	case Oversize:
		return "oversize"
	case HeaderFlood:
		return "header-flood"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault configures one failure mode's injection.
type Fault struct {
	// Mode is the failure mode to inject.
	Mode Mode
	// Rate is the per-demand injection probability in [0,1].
	Rate float64
	// Latency is LatencySpike's delay (default 250ms).
	Latency time.Duration
	// MaxHang force-closes an Omission's connection after this long,
	// turning the hang into a visible connection reset. Zero waits for
	// the consumer to give up (the request context), backstopped at
	// one minute so a consumer that never cancels cannot pin the
	// handler goroutine forever.
	MaxHang time.Duration
	// DripInterval is SlowDrip's pause between writes (default 25ms).
	DripInterval time.Duration
	// DripChunk is SlowDrip's bytes per write (default 1).
	DripChunk int
	// SizeBytes sizes Oversize bodies (default 32 MiB) and HeaderFlood
	// header sections (default 2 MiB).
	SizeBytes int64
}

func (f Fault) latency() time.Duration {
	if f.Latency <= 0 {
		return 250 * time.Millisecond
	}
	return f.Latency
}

func (f Fault) dripInterval() time.Duration {
	if f.DripInterval <= 0 {
		return 25 * time.Millisecond
	}
	return f.DripInterval
}

func (f Fault) dripChunk() int {
	if f.DripChunk <= 0 {
		return 1
	}
	return f.DripChunk
}

func (f Fault) sizeBytes() int64 {
	if f.SizeBytes > 0 {
		return f.SizeBytes
	}
	if f.Mode == HeaderFlood {
		return 2 << 20
	}
	return 32 << 20
}

// maxOmissionHang backstops Omission when the consumer never
// disconnects.
const maxOmissionHang = time.Minute

// Injector wraps a release handler with seeded fault injection.
// Construct with Wrap; it is safe for concurrent use.
type Injector struct {
	inner  http.Handler
	faults []Fault

	mu      sync.Mutex
	rng     *xrand.Rand
	demands int
	counts  map[Mode]int
}

var _ http.Handler = (*Injector)(nil)

// Wrap builds an injector around inner. Faults are evaluated in order
// per demand; the first whose draw fires wins the demand.
func Wrap(inner http.Handler, seed uint64, faults ...Fault) *Injector {
	return &Injector{
		inner:  inner,
		faults: faults,
		rng:    xrand.New(seed),
		counts: make(map[Mode]int),
	}
}

// decide consumes one draw per configured fault (whether or not an
// earlier fault already fired), so the stream position after N demands
// is independent of the outcomes — the whole injection schedule is a
// pure function of (seed, demand index).
func (j *Injector) decide() Mode {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.demands++
	injected := Passthrough
	for _, f := range j.faults {
		hit := j.rng.Bool(f.Rate)
		if hit && injected == Passthrough {
			injected = f.Mode
		}
	}
	j.counts[injected]++
	return injected
}

// fault returns the configuration of the first fault with the mode.
func (j *Injector) fault(m Mode) Fault {
	for _, f := range j.faults {
		if f.Mode == m {
			return f
		}
	}
	return Fault{Mode: m}
}

// Demands returns how many demands the injector has decided.
func (j *Injector) Demands() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.demands
}

// Counts returns a copy of the per-mode injection counters (Passthrough
// counts the untouched demands).
func (j *Injector) Counts() map[Mode]int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[Mode]int, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// ServeHTTP injects this demand's decided failure mode.
func (j *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch mode := j.decide(); mode {
	case LatencySpike:
		j.serveLatency(w, r)
	case Omission:
		j.serveOmission(w, r)
	case Corrupt:
		j.serveCorrupt(w, r)
	case SlowDrip:
		j.serveSlowDrip(w, r)
	case Oversize:
		j.serveOversize(w, r)
	case HeaderFlood:
		j.serveHeaderFlood(w, r)
	default:
		j.inner.ServeHTTP(w, r)
	}
}

func (j *Injector) serveLatency(w http.ResponseWriter, r *http.Request) {
	f := j.fault(LatencySpike)
	t := time.NewTimer(f.latency())
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.Context().Done():
		return
	}
	j.inner.ServeHTTP(w, r)
}

func (j *Injector) serveOmission(w http.ResponseWriter, r *http.Request) {
	// Accept-then-hang: consume the request so the peer's write
	// completes, then never produce a response byte.
	drain(r)
	f := j.fault(Omission)
	hang := f.MaxHang
	forced := hang > 0
	if hang <= 0 {
		hang = maxOmissionHang
	}
	t := time.NewTimer(hang)
	defer t.Stop()
	select {
	case <-r.Context().Done():
		// The consumer gave up; returning writes nothing the peer will
		// ever see.
	case <-t.C:
		if forced {
			// Turn the hang into a connection reset so the failure is
			// an omission even against an infinitely patient consumer.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					_ = conn.Close()
				}
			}
		}
	}
}

func (j *Injector) serveCorrupt(w http.ResponseWriter, r *http.Request) {
	rec := newRecorder()
	j.inner.ServeHTTP(rec, r)
	body := corruptBody(rec.body.Bytes())
	copyHeader(w.Header(), rec.header)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.status())
	_, _ = w.Write(body)
}

func (j *Injector) serveSlowDrip(w http.ResponseWriter, r *http.Request) {
	f := j.fault(SlowDrip)
	rec := newRecorder()
	j.inner.ServeHTTP(rec, r)
	body := rec.body.Bytes()
	copyHeader(w.Header(), rec.header)
	// An explicit Content-Length makes the reader wait for bytes that
	// are in no hurry to arrive — the read-deadline path, not the
	// EOF-framed path.
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.status())
	flusher, _ := w.(http.Flusher)
	interval := f.dripInterval()
	chunk := f.dripChunk()
	for off := 0; off < len(body); off += chunk {
		end := off + chunk
		if end > len(body) {
			end = len(body)
		}
		if _, err := w.Write(body[off:end]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		t := time.NewTimer(interval)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
}

// oversizePad is the shared padding block oversize bodies stream from.
var oversizePad = bytes.Repeat([]byte("x"), 32<<10)

func (j *Injector) serveOversize(w http.ResponseWriter, r *http.Request) {
	f := j.fault(Oversize)
	size := f.sizeBytes()
	w.Header().Set("Content-Type", soap.ContentType)
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var written int64
	for written < size {
		chunk := oversizePad
		if remaining := size - written; remaining < int64(len(chunk)) {
			chunk = chunk[:remaining]
		}
		n, err := w.Write(chunk)
		written += int64(n)
		if err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

func (j *Injector) serveHeaderFlood(w http.ResponseWriter, r *http.Request) {
	f := j.fault(HeaderFlood)
	size := f.sizeBytes()
	// ~4 KiB per header line; the server writes them all before the
	// status line reaches the wire, so the client sees one giant header
	// section.
	value := string(oversizePad[:4<<10])
	h := w.Header()
	var emitted int64
	for i := 0; emitted < size; i++ {
		h.Set("X-Flood-"+strconv.Itoa(i), value)
		emitted += int64(len(value)) + 16
	}
	h.Set("Content-Type", soap.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(soap.EnvelopeRaw([]byte("<flooded/>")))
}

// drain consumes and discards the request body.
func drain(r *http.Request) {
	buf := make([]byte, 4<<10)
	for {
		if _, err := r.Body.Read(buf); err != nil {
			return
		}
	}
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// ---------------------------------------------------------------------------
// Response corruption

// corruptBody produces a well-formed variant of a response with wrong
// content: the first digit in content position is changed (123 → 223 —
// a plausible, structurally identical wrong answer), falling back to
// flipping a content letter's case, falling back to a canned
// well-formed body when there is no content at all. The result always
// differs from the input and always parses. Bodies that open with '{'
// or '[' are mutated under JSON rules (digits outside strings, letters
// inside them), everything else under XML rules (text strictly between
// tags), so the corruption stays non-evident for both protocols.
func corruptBody(body []byte) []byte {
	if isJSONBody(body) {
		return corruptJSONBody(body)
	}
	out := append([]byte(nil), body...)
	if i := firstTextByte(out, isDigit); i >= 0 {
		out[i] = '0' + (out[i]-'0'+1)%10
		return out
	}
	if i := firstTextByte(out, isLetter); i >= 0 {
		out[i] ^= 0x20 // flip ASCII case
		return out
	}
	return soap.EnvelopeRaw([]byte("<corruptedResponse/>"))
}

// isJSONBody reports whether the body's first non-space byte opens a
// JSON object or array.
func isJSONBody(body []byte) bool {
	for _, c := range body {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return c == '{' || c == '['
		}
	}
	return false
}

// corruptJSONBody is corruptBody's JSON arm. A digit outside string
// literals is part of a number: changing it (9 steps down so no leading
// zero can appear) keeps the document valid. Failing that, a letter
// inside a string flips case. Failing that, a canned object.
func corruptJSONBody(body []byte) []byte {
	out := append([]byte(nil), body...)
	if i := firstJSONByte(out, false, isDigit); i >= 0 {
		if out[i] == '9' {
			out[i] = '8'
		} else {
			out[i]++
		}
		return out
	}
	if i := firstJSONByte(out, true, isLetter); i >= 0 {
		out[i] ^= 0x20 // flip ASCII case
		return out
	}
	return []byte(`{"corrupted":true}`)
}

// firstJSONByte returns the index of the first byte satisfying pred
// that sits inside (inString) or outside (!inString) a JSON string
// literal, honouring escapes, or -1. Bytes in the other region — and
// the quotes and escapes themselves — are never touched, so the
// mutation cannot break well-formedness.
func firstJSONByte(body []byte, inString bool, pred func(byte) bool) int {
	in, esc := false, false
	for i, c := range body {
		switch {
		case esc:
			esc = false
		case in && c == '\\':
			esc = true
		case c == '"':
			in = !in
		default:
			if in == inString && pred(c) {
				return i
			}
		}
	}
	return -1
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

// firstTextByte returns the index of the first byte satisfying pred
// that sits in element text (strictly between '>' and '<'), or -1.
// Text inside tags, attributes and names is never touched, so the
// mutation cannot break well-formedness.
func firstTextByte(body []byte, pred func(byte) bool) int {
	inText := false
	for i, c := range body {
		switch c {
		case '>':
			inText = true
		case '<':
			inText = false
		default:
			if inText && pred(c) {
				return i
			}
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Minimal response recorder (the inner handler's output, buffered for
// mutation before it reaches the wire)

type recorder struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{header: make(http.Header)} }

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.body.Write(p)
}

func (r *recorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// ---------------------------------------------------------------------------
// Crash/restart listener

// Server hosts a handler on a restartable listener: Stop is the §5.1
// crash failure (active connections are severed, the port stops
// accepting), Start after a Stop is the restart — on the same address,
// so deployed endpoint URLs stay valid across the crash.
type Server struct {
	handler http.Handler

	mu   sync.Mutex
	addr string // pinned on first Start
	srv  *http.Server
	ln   net.Listener
}

// NewServer builds a stopped server for the handler. Call Start.
func NewServer(h http.Handler) *Server { return &Server{handler: h} }

// Start binds the listener (first time on an ephemeral loopback port,
// thereafter on the pinned address) and serves until Stop.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv != nil {
		return fmt.Errorf("faulty: server already running on %s", s.addr)
	}
	addr := s.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	// The previous incarnation's socket can linger briefly; retry the
	// pinned address instead of failing the restart.
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("faulty: binding %s: %w", addr, err)
	}
	s.addr = ln.Addr().String()
	s.ln = ln
	s.srv = &http.Server{Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	srv := s.srv
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// URL returns the server's base URL. Valid after the first Start, and
// stable across Stop/Start cycles.
func (s *Server) URL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return "http://" + s.addr
}

// Stop crashes the server: the listener closes and every active
// connection is severed immediately (no draining — this is a failure,
// not a shutdown). Idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv == nil {
		return
	}
	_ = s.srv.Close()
	s.srv = nil
	s.ln = nil
}

// Running reports whether the listener is accepting.
func (s *Server) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srv != nil
}

// Close stops the server for good.
func (s *Server) Close() { s.Stop() }
