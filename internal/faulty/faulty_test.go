package faulty

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/soap"
	"wsupgrade/internal/testutil"
)

// okHandler serves a fixed correct SOAP response carrying a digit (the
// corruptible demo shape).
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", soap.ContentType)
		_, _ = w.Write(soap.EnvelopeRaw([]byte("<addResponse><sum>125</sum></addResponse>")))
	})
}

func get(t *testing.T, ctx context.Context, url string) (*http.Response, []byte, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader("<in/>"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, nil, err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	return res, body, err
}

// TestDecisionStreamIsDeterministic: same seed, same fault set → the
// exact same per-demand injection sequence, independent of outcomes.
func TestDecisionStreamIsDeterministic(t *testing.T) {
	faults := []Fault{{Mode: Omission, Rate: 0.3}, {Mode: Corrupt, Rate: 0.2}}
	a := Wrap(okHandler(), 42, faults...)
	b := Wrap(okHandler(), 42, faults...)
	var seqA, seqB []Mode
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.decide())
		seqB = append(seqB, b.decide())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("demand %d: %v vs %v — seeded streams diverged", i, seqA[i], seqB[i])
		}
	}
	counts := a.Counts()
	if counts[Omission] == 0 || counts[Corrupt] == 0 || counts[Passthrough] == 0 {
		t.Fatalf("counts = %v: every configured mode (and passthrough) should appear over 200 demands", counts)
	}
	if got := counts[Omission] + counts[Corrupt] + counts[Passthrough]; got != 200 {
		t.Fatalf("counts sum to %d, want 200", got)
	}
	if a.Demands() != 200 {
		t.Fatalf("demands = %d", a.Demands())
	}
	// A different seed produces a different schedule.
	c := Wrap(okHandler(), 43, faults...)
	diverged := false
	for i := 0; i < 200; i++ {
		if c.decide() != seqA[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical 200-demand schedules")
	}
}

// TestFirstHitWins: fault order is precedence; a draw is consumed per
// fault either way, so later rates do not shift earlier decisions.
func TestFirstHitWins(t *testing.T) {
	j := Wrap(okHandler(), 7, Fault{Mode: LatencySpike, Rate: 1}, Fault{Mode: Corrupt, Rate: 1})
	for i := 0; i < 10; i++ {
		if got := j.decide(); got != LatencySpike {
			t.Fatalf("demand %d decided %v, want LatencySpike", i, got)
		}
	}
	// Rate 0 never fires.
	j0 := Wrap(okHandler(), 7, Fault{Mode: Omission, Rate: 0})
	for i := 0; i < 50; i++ {
		if got := j0.decide(); got != Passthrough {
			t.Fatalf("rate-0 fault fired: %v", got)
		}
	}
}

func TestCorruptIsWellFormedAndWrong(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := httptest.NewServer(Wrap(okHandler(), 1, Fault{Mode: Corrupt, Rate: 1}))
	defer ts.Close()
	res, body, err := get(t, context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	parsed, err := soap.Parse(body)
	if err != nil {
		t.Fatalf("corrupt response is not well-formed: %v\n%s", err, body)
	}
	if parsed.Fault != nil {
		t.Fatal("corrupt response must not be a fault (non-evident failure)")
	}
	want := soap.EnvelopeRaw([]byte("<addResponse><sum>125</sum></addResponse>"))
	if string(body) == string(want) {
		t.Fatal("corrupt response equals the correct response")
	}
	if !strings.Contains(string(body), "<sum>225</sum>") {
		t.Fatalf("expected the first digit incremented, got %s", body)
	}
}

func TestCorruptBodyFallbacks(t *testing.T) {
	// Letters only: case flip.
	in := []byte("<r><v>abc</v></r>")
	out := corruptBody(in)
	if string(out) == string(in) || string(out) != "<r><v>Abc</v></r>" {
		t.Fatalf("letter fallback produced %s", out)
	}
	// No text at all: canned well-formed envelope.
	out = corruptBody([]byte("<r/>"))
	if _, err := soap.Parse(out); err != nil {
		t.Fatalf("no-text fallback is not parseable: %v", err)
	}
	// Digits in tag names are never touched — only text is mutated.
	in = []byte("<h1><v>x7</v></h1>")
	out = corruptBody(in)
	if !strings.Contains(string(out), "<h1>") || !strings.Contains(string(out), "</h1>") {
		t.Fatalf("tag name mutated: %s", out)
	}
	if !strings.Contains(string(out), "x8") {
		t.Fatalf("text digit not incremented: %s", out)
	}
}

// corruptBody's JSON arm: bodies opening with '{' or '[' are mutated
// under JSON rules — the result is always valid JSON that differs from
// the input.
func TestCorruptBodyJSON(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"number", `{"sum":125}`},
		{"number-in-array", `[1,2,3]`},
		{"nine-no-leading-zero", `{"sum":90}`},
		{"string-only", `{"op1Result":"abc/x"}`},
		{"digits-in-keys-guarded", `{"k1":"abc"}`},
		{"empty-object", `{}`},
		{"leading-whitespace", "  \n\t{\"sum\":7}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := corruptBody([]byte(tc.in))
			if string(out) == tc.in {
				t.Fatalf("corrupt output equals input: %s", out)
			}
			if !json.Valid(out) {
				t.Fatalf("corrupt output is not valid JSON: %s", out)
			}
		})
	}
	// The digit mutation targets numbers, never string contents or keys.
	out := corruptBody([]byte(`{"k1":"v2","n":34}`))
	if !strings.Contains(string(out), `"k1":"v2"`) || !strings.Contains(string(out), `:44`) {
		t.Fatalf("expected the number mutated, strings untouched: %s", out)
	}
}

func TestLatencySpikeDelays(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := httptest.NewServer(Wrap(okHandler(), 1, Fault{Mode: LatencySpike, Rate: 1, Latency: 80 * time.Millisecond}))
	defer ts.Close()
	start := time.Now()
	res, body, err := get(t, context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("response after %v, want ≥ 80ms", elapsed)
	}
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "<sum>125</sum>") {
		t.Fatalf("spiked response corrupted: %d %s", res.StatusCode, body)
	}
}

func TestOmissionHangsUntilConsumerGivesUp(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := httptest.NewServer(Wrap(okHandler(), 1, Fault{Mode: Omission, Rate: 1}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := get(t, ctx, ts.URL)
	if err == nil {
		t.Fatal("omission produced a response")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang released after %v", elapsed)
	}
}

func TestOmissionMaxHangResetsPatientConsumer(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := httptest.NewServer(Wrap(okHandler(), 1, Fault{Mode: Omission, Rate: 1, MaxHang: 60 * time.Millisecond}))
	defer ts.Close()
	start := time.Now()
	_, _, err := get(t, context.Background(), ts.URL)
	if err == nil {
		t.Fatal("want a connection-level failure, got a response")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("MaxHang did not bound the hang: %v", elapsed)
	}
}

func TestSlowDripDeliversEventually(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := httptest.NewServer(Wrap(okHandler(), 1,
		Fault{Mode: SlowDrip, Rate: 1, DripInterval: 2 * time.Millisecond, DripChunk: 16}))
	defer ts.Close()
	start := time.Now()
	res, body, err := get(t, context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "<sum>125</sum>") {
		t.Fatalf("dripped response wrong: %d %s", res.StatusCode, body)
	}
	// ~260 bytes at 16 bytes per 2ms ≈ ≥30ms of pacing.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("drip finished in %v — not paced", elapsed)
	}
}

func TestSlowDripRespectsConsumerDeadline(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := httptest.NewServer(Wrap(okHandler(), 1,
		Fault{Mode: SlowDrip, Rate: 1, DripInterval: 50 * time.Millisecond, DripChunk: 1}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := get(t, ctx, ts.URL)
	if err == nil {
		t.Fatal("drip outran a 120ms deadline despite ~13s of pacing")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline fired after %v", elapsed)
	}
}

func TestOversizeStreamsDeclaredSize(t *testing.T) {
	testutil.CheckGoroutines(t)
	const size = 256 << 10
	ts := httptest.NewServer(Wrap(okHandler(), 1, Fault{Mode: Oversize, Rate: 1, SizeBytes: size}))
	defer ts.Close()
	res, body, err := get(t, context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentLength != size {
		t.Fatalf("Content-Length = %d, want %d", res.ContentLength, size)
	}
	if len(body) != size {
		t.Fatalf("body = %d bytes, want %d", len(body), size)
	}
}

func TestHeaderFloodEmitsBudgetedSection(t *testing.T) {
	testutil.CheckGoroutines(t)
	const size = 64 << 10
	ts := httptest.NewServer(Wrap(okHandler(), 1, Fault{Mode: HeaderFlood, Rate: 1, SizeBytes: size}))
	defer ts.Close()
	res, body, err := get(t, context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	total, flooded := 0, 0
	for k, vs := range res.Header {
		for _, v := range vs {
			total += len(k) + len(v)
		}
		if strings.HasPrefix(k, "X-Flood-") {
			flooded++
		}
	}
	if flooded < 8 || total < size {
		t.Fatalf("header section: %d flood headers, %d bytes — want ≥8 and ≥%d", flooded, total, size)
	}
	if _, err := soap.Parse(body); err != nil {
		t.Fatalf("flooded response body unparseable: %v", err)
	}
}

func TestServerCrashAndRestartKeepsAddress(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := NewServer(okHandler())
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := srv.URL()
	if _, _, err := get(t, context.Background(), url); err != nil {
		t.Fatalf("before crash: %v", err)
	}
	if !srv.Running() {
		t.Fatal("Running() = false while serving")
	}

	srv.Stop()
	if srv.Running() {
		t.Fatal("Running() = true after Stop")
	}
	if _, _, err := get(t, context.Background(), url); err == nil {
		t.Fatal("crashed server still answering")
	}

	if err := srv.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := srv.URL(); got != url {
		t.Fatalf("restart moved the address: %s → %s", url, got)
	}
	if _, _, err := get(t, context.Background(), url); err != nil {
		t.Fatalf("after restart: %v", err)
	}
	if err := srv.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}
