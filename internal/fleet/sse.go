package fleet

// GET /fleet/events — the push control plane's wire surface: campaign
// events streamed as Server-Sent Events. Token-guarded like the rest of
// the admin API. The stream opens with one "status" event per unit (the
// subscriber's synchronization point), then delivers "phase",
// "release", "confidence" and "journal" events as they happen. A
// subscriber that cannot keep up loses events — the campaign never
// blocks on its observers — and the stream says so with a "drops" event
// carrying the running count, so the consumer knows to re-sync from the
// pull API (GET /fleet/units).
//
// Reconnects resume: a client that presents the standard Last-Event-ID
// header gets the events it missed replayed from the hub's bounded
// history instead of a fresh status burst. When the gap exceeds the
// history, the stream says so with a "resync" event and falls back to
// the status burst.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"wsupgrade/internal/events"
)

// sseHeartbeat is the idle keep-alive cadence: a comment frame that
// lets both ends notice a dead connection.
const sseHeartbeat = 15 * time.Second

// maxEventBuffer caps the per-subscriber buffer a client may request
// with ?buffer=N.
const maxEventBuffer = 4096

// handleEvents serves GET /fleet/events.
func (f *Fleet) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "fleet: event stream needs a flushing writer", http.StatusNotImplemented)
		return
	}
	size := 0
	if s := r.URL.Query().Get("buffer"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > maxEventBuffer {
			http.Error(w, fmt.Sprintf("fleet: buffer must be 1..%d", maxEventBuffer), http.StatusBadRequest)
			return
		}
		size = n
	}

	resume := false
	var lastID uint64
	if s := r.Header.Get("Last-Event-ID"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "fleet: Last-Event-ID must be a decimal event id", http.StatusBadRequest)
			return
		}
		lastID, resume = n, true
	}

	var sub *events.Subscription
	var replay []events.Event
	complete := true
	if resume {
		sub, replay, complete = f.hub.SubscribeFrom(size, lastID)
	} else {
		sub = f.hub.Subscribe(size)
	}
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not coalesce the stream
	w.WriteHeader(http.StatusOK)

	if resume && complete {
		// Resumed stream: replay what the subscriber missed, with the
		// original ids, instead of a fresh status burst.
		for _, ev := range replay {
			if !writeSSE(w, ev.ID, ev.Type, ev.Data) {
				return
			}
		}
	} else {
		if resume {
			// The gap outran the bounded history — the subscriber's view
			// cannot be repaired by replay, so say so and re-synchronize.
			if !writeSSE(w, 0, "resync", mustJSON(map[string]uint64{"lastEventId": lastID})) {
				return
			}
		}
		// Synchronization point: the current status of every unit, then any
		// journal notes (quarantines, failed restores) from startup.
		for _, st := range f.status(false) {
			if !writeSSE(w, 0, "status", mustJSON(st)) {
				return
			}
		}
		for _, note := range f.journalNotes {
			if !writeSSE(w, 0, "journal", mustJSON(note)) {
				return
			}
		}
	}
	flusher.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.C:
			if !open {
				return // fleet closed
			}
			if !writeSSE(w, ev.ID, ev.Type, ev.Data) {
				return
			}
			// Gap accounting: tell the subscriber how many events its
			// buffer has lost so far, once per increase.
			if d := sub.Dropped(); d > reported {
				reported = d
				if !writeSSE(w, 0, "drops", mustJSON(map[string]uint64{"dropped": d})) {
					return
				}
			}
			flusher.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE writes one SSE frame (id 0 omits the id field, for frames
// outside the hub's sequence). Reports whether the write succeeded.
func writeSSE(w http.ResponseWriter, id uint64, event string, data []byte) bool {
	if id != 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", id); err != nil {
			return false
		}
	}
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err == nil
}

// mustJSON marshals values whose types cannot fail to marshal.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(`{}`)
	}
	return data
}
