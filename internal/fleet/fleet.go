// Package fleet hosts many upgrade units behind one listener — the
// multi-component composite scenario of Figs 1 and 4 (§7): a travel
// agency composed of several component Web Services, each of which
// upgrades independently while the composite keeps serving.
//
// A Fleet is a set of named units, each a full managed-upgrade engine
// with its own releases, lifecycle phase, operating mode, monitor and
// switch policy. The fleet contributes what a single engine cannot:
//
//   - one HTTP front door with host/path routing to the unit engines
//     ("/<unit>/…" by path, or exact Host matches per unit);
//   - one release-side transport pool sized across all units, so N
//     units do not each hoard an idle-connection pool;
//   - aggregated health probing and confidence reporting;
//   - a JSON admin API under /fleet/ for per-unit management
//     (phase, mode, release add/remove, confidence, status);
//   - registry upgrade-notification fan-in: one §7.2 callback endpoint
//     that routes "new release published" notifications to the right
//     unit as an online AddRelease.
//
// The unit set is fixed at construction; everything inside a unit
// (releases, phase, mode, timeout) changes online through its engine.
// Routing state is therefore immutable and the request path takes no
// fleet-level locks.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"wsupgrade/internal/core"
	"wsupgrade/internal/events"
	"wsupgrade/internal/httpx"
	"wsupgrade/internal/journal"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/protocol/jsoncodec"
	"wsupgrade/internal/protocol/soapcodec"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/wire"
)

// Errors reported by the fleet.
var (
	// ErrBadConfig reports an invalid fleet configuration.
	ErrBadConfig = errors.New("fleet: bad configuration")
	// ErrUnknownUnit reports an operation on an unhosted unit.
	ErrUnknownUnit = errors.New("fleet: unknown unit")
)

// reservedNames are path roots the fleet keeps for itself.
var reservedNames = map[string]bool{"fleet": true, "healthz": true}

// UnitConfig describes one upgrade unit.
type UnitConfig struct {
	// Name is the unit's routing name: requests under "/<Name>/" reach
	// this unit. Required, unique, no "/", not "fleet" or "healthz".
	Name string
	// Hosts optionally lists exact Host header values (without port)
	// routed to this unit, giving it the whole path space of that
	// virtual host.
	Hosts []string
	// Service is the registry service name whose upgrade notifications
	// feed this unit (default Name).
	Service string
	// Protocol selects the unit's wire protocol: "soap" (default) or
	// "json". It is a convenience over Engine.Codec, which wins when
	// both are set.
	Protocol string
	// Engine is the unit's middleware configuration. When Engine.HTTP
	// is nil the unit shares the fleet's pooled release transport.
	Engine core.Config
}

// Config parameterizes a Fleet.
type Config struct {
	// Units lists the hosted upgrade units. At least one.
	Units []UnitConfig
	// HTTP optionally overrides the shared release-side transport with a
	// net/http client for every unit that does not bring its own. The
	// default is one shared wire client (see internal/wire): per-endpoint
	// persistent connection pools spanning all units.
	HTTP *http.Client
	// AdminToken, when set, guards the management surface: every
	// /fleet/ request except the read-only /fleet/healthz must carry it
	// ("Authorization: Bearer <token>" or a "token" query parameter —
	// Subscribe embeds it in the notification callback URL, since
	// registries POST to the callback verbatim). Empty leaves the admin
	// API open; the fleet shares one listener with consumer traffic, so
	// production deployments should set it or filter /fleet/ upstream.
	AdminToken string
	// JournalDir, when set, makes every unit's campaign durable: phase
	// transitions, release changes and periodic posterior snapshots are
	// journaled to <JournalDir>/<unit>.journal, and a restarted fleet
	// resumes each unit mid-campaign from the replayed journal. A
	// journal that fails replay is quarantined, never fatal.
	JournalDir string
	// SnapshotInterval is the journal snapshot cadence (default
	// DefaultSnapshotInterval). Only meaningful with JournalDir.
	SnapshotInterval time.Duration
}

// Unit is one hosted upgrade unit.
type Unit struct {
	name    string
	service string
	engine  *core.Engine
	handler http.Handler // the engine's full surface (SOAP, /wsdl, /healthz)
}

// Name returns the unit's routing name.
func (u *Unit) Name() string { return u.name }

// Service returns the registry service name feeding this unit.
func (u *Unit) Service() string { return u.service }

// Engine exposes the unit's managed-upgrade engine for direct
// management (SetPhase, SetMode, AddRelease, Confidence, …).
func (u *Unit) Engine() *core.Engine { return u.engine }

// Fleet hosts N upgrade units behind one http.Handler. Construct with
// New; call Close to drain the units and the shared transport.
type Fleet struct {
	units      []*Unit
	byName     map[string]*Unit
	byHost     map[string]*Unit
	byService  map[string]*Unit
	client     *http.Client // shared net/http transport; nil unless Config.HTTP is set
	wire       *wire.Client // shared wire transport; nil when Config.HTTP is set
	fallback   *http.Client // the wire client's pooled https/exotic fallback, fleet-owned
	admin      http.Handler
	adminToken string

	// Push control plane and durable campaigns (see campaign.go).
	hub          *events.Hub
	journals     []*journal.Writer
	stopSnaps    []func()
	journalNotes []journalEvent
}

var _ http.Handler = (*Fleet)(nil)

// New validates the configuration and builds the fleet with every
// unit's engine constructed.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Units) == 0 {
		return nil, fmt.Errorf("%w: no units", ErrBadConfig)
	}
	f := &Fleet{
		byName:     make(map[string]*Unit, len(cfg.Units)),
		byHost:     map[string]*Unit{},
		byService:  make(map[string]*Unit, len(cfg.Units)),
		adminToken: cfg.AdminToken,
	}

	// One release-side transport for the whole fleet: with Config.HTTP a
	// shared net/http client; by default a shared wire client whose
	// per-endpoint pools span all units (N units must not each hoard
	// idle connections). Exchange deadlines are backstopped by the
	// slowest unit's timeout.
	maxTimeout := time.Duration(0)
	for _, u := range cfg.Units {
		t := u.Engine.Timeout
		if t == 0 {
			t = 2 * time.Second
		}
		if t > maxTimeout {
			maxTimeout = t
		}
	}
	if cfg.HTTP != nil {
		f.client = cfg.HTTP
	} else {
		totalReleases := 0
		for _, u := range cfg.Units {
			totalReleases += len(u.Engine.Releases)
		}
		// The shared wire client's fallback is a pooled net/http client
		// sized across all units, so https release endpoints keep their
		// per-host idle pools instead of starving on http.DefaultClient.
		f.fallback = httpx.NewPooledClient(maxTimeout+500*time.Millisecond, totalReleases)
		f.wire = wire.NewClient(wire.Options{
			Timeout:  maxTimeout + 500*time.Millisecond,
			Fallback: f.fallback,
		})
	}

	for _, uc := range cfg.Units {
		if uc.Name == "" || strings.ContainsRune(uc.Name, '/') || reservedNames[uc.Name] {
			f.closeUnits()
			return nil, fmt.Errorf("%w: unusable unit name %q", ErrBadConfig, uc.Name)
		}
		if f.byName[uc.Name] != nil {
			f.closeUnits()
			return nil, fmt.Errorf("%w: duplicate unit %q", ErrBadConfig, uc.Name)
		}
		ecfg := uc.Engine
		if ecfg.Codec == nil && uc.Protocol != "" {
			switch uc.Protocol {
			case "soap":
				ecfg.Codec = soapcodec.Default
			case "json":
				ecfg.Codec = jsoncodec.Default
			default:
				f.closeUnits()
				return nil, fmt.Errorf("%w: unit %q: unknown protocol %q", ErrBadConfig, uc.Name, uc.Protocol)
			}
		}
		switch {
		case ecfg.HTTP != nil || ecfg.UseNetHTTP:
			// The unit brings (or forces) its own net/http transport.
		case f.client != nil:
			ecfg.HTTP = f.client
		case ecfg.Wire == nil && ecfg.Dial == nil:
			// A unit with its own Dial seam builds its own wire client;
			// everyone else shares the fleet-wide pool.
			ecfg.Wire = f.wire
		}
		engine, err := core.New(ecfg)
		if err != nil {
			f.closeUnits()
			return nil, fmt.Errorf("fleet: unit %q: %w", uc.Name, err)
		}
		u := &Unit{
			name:    uc.Name,
			service: uc.Service,
			engine:  engine,
			handler: engine.Handler(),
		}
		if u.service == "" {
			u.service = uc.Name
		}
		if prev := f.byService[u.service]; prev != nil {
			f.closeUnits()
			_ = engine.Close()
			return nil, fmt.Errorf("%w: units %q and %q share service %q",
				ErrBadConfig, prev.name, u.name, u.service)
		}
		for _, h := range uc.Hosts {
			if h == "" || f.byHost[h] != nil {
				f.closeUnits()
				_ = engine.Close()
				return nil, fmt.Errorf("%w: unusable host %q for unit %q", ErrBadConfig, h, uc.Name)
			}
			f.byHost[h] = u
		}
		f.units = append(f.units, u)
		f.byName[uc.Name] = u
		f.byService[u.service] = u
	}
	if err := f.setupCampaigns(cfg.JournalDir, cfg.SnapshotInterval); err != nil {
		f.closeCampaigns()
		f.closeUnits()
		return nil, err
	}
	f.admin = f.adminHandler()
	return f, nil
}

func (f *Fleet) closeUnits() {
	for _, u := range f.units {
		_ = u.engine.Close()
	}
}

// Close stops the journal snapshot loops and writers, disconnects the
// event subscribers, drains every unit's background monitoring work and
// shuts down the shared transport's keep-alive connections.
func (f *Fleet) Close() error {
	f.closeCampaigns()
	var firstErr error
	for _, u := range f.units {
		if err := u.engine.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if f.wire != nil {
		_ = f.wire.Close()
	}
	if f.fallback != nil {
		f.fallback.CloseIdleConnections()
	}
	return firstErr
}

// Units returns the hosted units in configuration order.
func (f *Fleet) Units() []*Unit {
	return append([]*Unit(nil), f.units...)
}

// Unit returns one unit by routing name.
func (f *Fleet) Unit(name string) (*Unit, error) {
	u, ok := f.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUnit, name)
	}
	return u, nil
}

// ---------------------------------------------------------------------------
// Routing

// ServeHTTP routes one request: exact Host matches first (the unit owns
// that virtual host's whole path space), then the first path segment as
// a unit name (stripped before the unit's engine sees the path), then
// the fleet's own surface (/fleet/… admin + notifications, /healthz).
func (f *Fleet) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if len(f.byHost) > 0 {
		if u, ok := f.byHost[hostOnly(r.Host)]; ok {
			u.handler.ServeHTTP(w, r)
			return
		}
	}
	path := r.URL.Path
	if len(path) > 1 {
		seg, rest := splitSegment(path)
		if u, ok := f.byName[seg]; ok {
			if rest == "/" {
				// The SOAP hot path: straight into the engine, skipping
				// the unit mux hop ("/wsdl", "/healthz" take the mux).
				u.engine.ServeHTTP(w, stripPrefix(r, rest))
				return
			}
			u.handler.ServeHTTP(w, stripPrefix(r, rest))
			return
		}
		if seg == "fleet" {
			f.admin.ServeHTTP(w, r)
			return
		}
		if seg == "healthz" && rest == "/" {
			f.serveHealthz(w, r)
			return
		}
	}
	http.NotFound(w, r)
}

// hostOnly strips a port from a Host header value ("[::1]:80", "a:80").
func hostOnly(host string) string {
	if i := strings.LastIndexByte(host, ':'); i >= 0 && strings.IndexByte(host[i:], ']') < 0 {
		host = host[:i]
	}
	return strings.Trim(host, "[]")
}

// splitSegment returns the first path segment of p (which starts with
// "/") and the remainder path (always starting with "/").
func splitSegment(p string) (seg, rest string) {
	p = p[1:]
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i:]
	}
	return p, "/"
}

// stripPrefix is a zero-surprise shallow request clone with the unit
// prefix removed, so a unit engine sees "/", "/wsdl", "/healthz".
func stripPrefix(r *http.Request, rest string) *http.Request {
	r2 := *r
	u2 := *r.URL
	u2.Path = rest
	if u2.RawPath != "" {
		// Keep RawPath coherent; units route on Path only.
		u2.RawPath = ""
	}
	r2.URL = &u2
	return &r2
}

// ---------------------------------------------------------------------------
// Aggregated health and confidence

// UnitHealth is one unit's aggregated probe outcome.
type UnitHealth struct {
	Unit     string        `json:"unit"`
	Releases []core.Health `json:"-"`
	Up       int           `json:"up"`
	DownList []string      `json:"down,omitempty"`
}

// CheckHealth probes every unit's releases concurrently and returns the
// aggregated results, keyed by unit name in configuration order.
func (f *Fleet) CheckHealth(ctx context.Context) []UnitHealth {
	results := make([]UnitHealth, len(f.units))
	var wg sync.WaitGroup
	for i, u := range f.units {
		i, u := i, u
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := u.engine.CheckHealth(ctx)
			uh := UnitHealth{Unit: u.name, Releases: probes}
			for _, h := range probes {
				if h.Up {
					uh.Up++
				} else {
					uh.DownList = append(uh.DownList, h.Release)
				}
			}
			results[i] = uh
		}()
	}
	wg.Wait()
	return results
}

// StartHealthChecks runs CheckHealth on every unit every interval until
// the returned stop function is called.
func (f *Fleet) StartHealthChecks(interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("%w: health-check interval %v", ErrBadConfig, interval)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	// The prober is an owned background loop, detached from any request
	// by design. Every probe derives from a root that stop() cancels, so
	// shutdown interrupts an in-flight health check instead of waiting
	// out its full timeout.
	//wsu:allow ctxhygiene -- owned background prober; the root is cancelled by stop()
	root, cancelRoot := context.WithCancel(context.Background())
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(root, interval)
				f.CheckHealth(ctx)
				cancel()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancelRoot()
			close(done)
		})
		<-finished
	}, nil
}

// UnitStatus is one unit's management snapshot.
type UnitStatus struct {
	Unit       string          `json:"unit"`
	Service    string          `json:"service"`
	Phase      string          `json:"phase"`
	Mode       string          `json:"mode"`
	Releases   []core.Endpoint `json:"releases"`
	Down       []string        `json:"down,omitempty"`
	SwitchedAt int             `json:"switchedAt,omitempty"`
	// Confidence is the pooled published confidence, present when the
	// unit has an inference engine.
	Confidence *float64 `json:"confidence,omitempty"`
}

// Status snapshots every unit, including each inference-enabled unit's
// published confidence. Computing a confidence runs a full posterior
// inference per unit; use status(false) internally (or the admin API
// without ?confidence=1) for cheap snapshots.
func (f *Fleet) Status() []UnitStatus { return f.status(true) }

func (f *Fleet) status(withConfidence bool) []UnitStatus {
	out := make([]UnitStatus, 0, len(f.units))
	for _, u := range f.units {
		out = append(out, f.unitStatus(u, withConfidence))
	}
	return out
}

func (f *Fleet) unitStatus(u *Unit, withConfidence bool) UnitStatus {
	e := u.engine
	st := UnitStatus{
		Unit:     u.name,
		Service:  u.service,
		Phase:    e.Phase().String(),
		Mode:     e.Mode().String(),
		Releases: e.Releases(),
	}
	for _, rel := range st.Releases {
		if e.Down(rel.Version) {
			st.Down = append(st.Down, rel.Version)
		}
	}
	if at, ok := e.SwitchedAt(); ok {
		st.SwitchedAt = at
	}
	if withConfidence {
		if rep, err := e.Confidence(""); err == nil {
			conf := rep.Published
			st.Confidence = &conf
		}
	}
	return st
}

// Confidence aggregates every inference-enabled unit's confidence
// report for one operation ("" pools all operations), keyed by unit.
func (f *Fleet) Confidence(operation string) map[string]core.ConfidenceReport {
	out := make(map[string]core.ConfidenceReport, len(f.units))
	for _, u := range f.units {
		if rep, err := u.engine.Confidence(operation); err == nil {
			out[u.name] = rep
		}
	}
	return out
}

// OnTransition registers a fleet-wide lifecycle observer: it fires for
// every unit's transitions with the unit name filled in.
func (f *Fleet) OnTransition(fn func(lifecycle.Transition)) {
	for _, u := range f.units {
		u := u
		u.engine.OnTransition(func(tr lifecycle.Transition) {
			tr.Unit = u.name
			fn(tr)
		})
	}
}

// ---------------------------------------------------------------------------
// Registry upgrade-notification fan-in (§7.2)

// NotificationHandler accepts the registry's upgrade-notification
// callbacks (the new release's entry as XML, POSTed by the registry on
// publication of a new version) and routes each to the unit whose
// service it names, deploying the release online. One callback endpoint
// serves the whole fleet. It is mounted at /fleet/notify.
func (f *Fleet) NotificationHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		entry, err := registry.DecodeEntry(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		u, ok := f.byService[entry.Name]
		if !ok {
			// Not one of ours: acknowledge and ignore (a shared registry
			// may notify broadly).
			w.WriteHeader(http.StatusOK)
			return
		}
		err = u.engine.AddRelease(core.Endpoint{Version: entry.Version, URL: entry.URL})
		switch {
		case err == nil:
			// §3.2/§7.2: a freshly published release is "deployed but
			// unused" until it has earned confidence. A unit resting in
			// NewOnly would otherwise serve the unvetted newcomer with
			// 100% of its traffic (NewOnly targets the newest release),
			// so deployment restarts the campaign in Observation: the
			// proven release keeps delivering while the new one is
			// observed back-to-back. (Racing managers may move the
			// phase concurrently; their transition wins.)
			if u.engine.Phase() == core.PhaseNewOnly {
				_ = u.engine.SetPhase(core.PhaseObservation)
			}
			w.WriteHeader(http.StatusOK)
		case errors.Is(err, core.ErrBadConfig):
			// Duplicate or malformed: the notification is not retryable.
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Subscribe registers the fleet's notification endpoint with a registry
// for every unit's service. callbackBase is the fleet's public base URL
// (the handler lives at callbackBase + "/fleet/notify").
func (f *Fleet) Subscribe(ctx context.Context, reg *registry.Client, callbackBase string) error {
	callback := strings.TrimSuffix(callbackBase, "/") + "/fleet/notify"
	if f.adminToken != "" {
		callback += "?token=" + url.QueryEscape(f.adminToken)
	}
	for _, u := range f.units {
		if err := reg.Subscribe(ctx, u.service, callback); err != nil {
			return fmt.Errorf("fleet: subscribing %s: %w", u.service, err)
		}
	}
	return nil
}
