package fleet

import (
	"bytes"
	"context"
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"wsupgrade/internal/core"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/service"
)

func entryBody(t *testing.T, e registry.Entry) io.Reader {
	t.Helper()
	data, err := xml.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// The §7.2 fan-in: one registry callback endpoint serves the whole
// fleet; publishing a new version of a unit's service deploys the
// release online on exactly that unit.
func TestRegistryNotificationFanIn(t *testing.T) {
	fl, ts := twoUnitFleet(t, func(cfg *Config) {
		// The hotels unit watches a differently-named registry service.
		cfg.Units[1].Service = "HotelService"
	})

	reg := registry.NewServer()
	regTS := httptest.NewServer(reg)
	defer regTS.Close()
	client := &registry.Client{Base: regTS.URL}
	ctx := context.Background()

	// Seed the registry with the current newest releases, then subscribe
	// the fleet.
	for _, seed := range []registry.Entry{
		{Name: "flights", Version: "1.1", URL: "http://flights.invalid"},
		{Name: "HotelService", Version: "1.1", URL: "http://hotels.invalid"},
	} {
		if err := client.Publish(ctx, seed); err != nil {
			t.Fatal(err)
		}
	}
	if err := fl.Subscribe(ctx, client, ts.URL); err != nil {
		t.Fatal(err)
	}

	// A new hotels release appears: the registry notifies the fleet
	// synchronously; the unit deploys it online.
	_, h2 := startRelease(t, "1.2", service.FaultPlan{})
	if err := client.Publish(ctx, registry.Entry{
		Name: "HotelService", Version: h2.Version, URL: h2.URL,
	}); err != nil {
		t.Fatal(err)
	}
	hotels, err := fl.Unit("hotels")
	if err != nil {
		t.Fatal(err)
	}
	rels := hotels.Engine().Releases()
	if len(rels) != 3 || rels[2].Version != "1.2" {
		t.Fatalf("hotels releases after notification = %+v", rels)
	}
	// The flights unit was untouched.
	flights, _ := fl.Unit("flights")
	if got := len(flights.Engine().Releases()); got != 2 {
		t.Fatalf("flights releases = %d", got)
	}

	// A unit resting in NewOnly must not hand its traffic to a freshly
	// notified, unvetted release: deployment restarts the campaign in
	// Observation (the proven release keeps delivering, §3.2).
	if err := flights.Engine().SetPhase(core.PhaseNewOnly); err != nil {
		t.Fatal(err)
	}
	_, f2 := startRelease(t, "1.2", service.FaultPlan{})
	if err := client.Publish(ctx, registry.Entry{
		Name: "flights", Version: f2.Version, URL: f2.URL,
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(flights.Engine().Releases()); got != 3 {
		t.Fatalf("flights releases after notification = %d", got)
	}
	if p := flights.Engine().Phase(); p != core.PhaseObservation {
		t.Fatalf("NewOnly unit serving an unvetted release: phase = %v", p)
	}

	// A duplicate notification conflicts (409) but changes nothing.
	resp, err := http.Post(ts.URL+"/fleet/notify", "text/xml",
		entryBody(t, registry.Entry{Name: "HotelService", Version: "1.2", URL: h2.URL}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate notification = %d", resp.StatusCode)
	}
	// A notification for a service no unit watches is acknowledged and
	// ignored.
	resp, err = http.Post(ts.URL+"/fleet/notify", "text/xml",
		entryBody(t, registry.Entry{Name: "CruiseService", Version: "9.9", URL: "http://x.invalid"}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("foreign notification = %d", resp.StatusCode)
	}
	if got := len(hotels.Engine().Releases()); got != 3 {
		t.Fatalf("hotels releases after noise = %d", got)
	}
}

// Fleet-wide transition hooks carry the unit name.
func TestFleetOnTransition(t *testing.T) {
	fl, _ := twoUnitFleet(t, nil)
	events := make(chan lifecycle.Transition, 4)
	fl.OnTransition(func(tr lifecycle.Transition) { events <- tr })
	hotels, _ := fl.Unit("hotels")
	if err := hotels.Engine().SetPhase(core.PhaseNewOnly); err != nil {
		t.Fatal(err)
	}
	tr := <-events
	if tr.Unit != "hotels" || tr.To != core.PhaseNewOnly || tr.Cause != lifecycle.CauseManual {
		t.Fatalf("transition = %+v", tr)
	}
}
