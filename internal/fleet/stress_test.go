package fleet

// The satellite race stress: concurrent per-unit management (phase and
// mode changes through the admin API, online release add/remove and
// health probing on the engines) against consumer traffic dispatched
// through the fleet router. Run with -race. Afterwards the per-unit
// accounting must balance: every served request produced exactly one
// monitor record on exactly its own unit.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/core"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
)

// stubTransport answers every release call in process.
type stubTransport struct{ resp []byte }

func (t *stubTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{soap.ContentType}},
		Body:       io.NopCloser(bytes.NewReader(t.resp)),
		Request:    req,
	}, nil
}

func TestManagementVersusFleetDispatchStress(t *testing.T) {
	respEnv, err := soap.Envelope(service.AddResponse{Sum: 3})
	if err != nil {
		t.Fatal(err)
	}
	stub := &http.Client{Transport: &stubTransport{resp: respEnv}}

	const unitCount = 3
	units := make([]UnitConfig, unitCount)
	monitors := make([]*monitor.Monitor, unitCount)
	for i := range units {
		monitors[i] = monitor.New(monitor.WithLogCapacity(1 << 14))
		units[i] = UnitConfig{
			Name: fmt.Sprintf("unit%d", i),
			Engine: core.Config{
				Releases: []core.Endpoint{
					{Version: "1.0", URL: fmt.Sprintf("http://u%d-old.invalid", i)},
					{Version: "1.1", URL: fmt.Sprintf("http://u%d-new.invalid", i)},
				},
				Oracle:  oracle.FaultOnly{},
				Monitor: monitors[i],
				HTTP:    stub,
			},
		}
	}
	fl, err := New(Config{Units: units})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fl)
	defer ts.Close()

	const (
		trafficGoroutines  = 6
		requestsPerRoutine = 25
	)
	env := soap.EnvelopeRaw([]byte(`<addRequest><a>2</a><b>3</b></addRequest>`))
	var wg sync.WaitGroup

	// Per-unit management churn: phases and modes through the admin API,
	// topology and health directly on the engines.
	for i := 0; i < unitCount; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			unit, err := fl.Unit(fmt.Sprintf("unit%d", i))
			if err != nil {
				t.Errorf("unit %d: %v", i, err)
				return
			}
			e := unit.Engine()
			extra := core.Endpoint{Version: "1.2", URL: fmt.Sprintf("http://u%d-extra.invalid", i)}
			phases := []string{"observation", "old-only", "new-only", "parallel"}
			modes := []string{"responsiveness", "dynamic", "sequential", "reliability"}
			client := &http.Client{Timeout: 5 * time.Second}
			for n := 0; n < 25; n++ {
				body := fmt.Sprintf(`{"phase":%q}`, phases[n%len(phases)])
				resp, err := client.Post(
					ts.URL+"/fleet/units/"+unit.Name()+"/phase", "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Errorf("admin phase: %v", err)
					return
				}
				// Racing managers make some transitions illegal (409);
				// anything else is a bug.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
					msg, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					t.Errorf("admin phase: HTTP %d: %s", resp.StatusCode, msg)
					return
				}
				resp.Body.Close()
				resp, err = client.Post(
					ts.URL+"/fleet/units/"+unit.Name()+"/mode", "application/json",
					strings.NewReader(fmt.Sprintf(`{"mode":%q,"quorum":%d}`, modes[n%len(modes)], 1+n%2)))
				if err != nil {
					t.Errorf("admin mode: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					msg, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					t.Errorf("admin mode: HTTP %d: %s", resp.StatusCode, msg)
					return
				}
				resp.Body.Close()
				switch n % 2 {
				case 0:
					if err := e.AddRelease(extra); err != nil {
						t.Errorf("AddRelease: %v", err)
					}
				case 1:
					if err := e.RemoveRelease(extra.Version); err != nil {
						t.Errorf("RemoveRelease: %v", err)
					}
				}
				e.CheckHealth(context.Background())
			}
			_ = e.RemoveRelease(extra.Version)
			if err := e.SetPhase(core.PhaseParallel); err != nil &&
				!errors.Is(err, lifecycle.ErrIllegalTransition) {
				t.Errorf("final SetPhase: %v", err)
			}
		}()
	}

	// Consumer traffic round-robins the units through the fleet router.
	for g := 0; g < trafficGoroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < requestsPerRoutine; n++ {
				unit := fmt.Sprintf("unit%d", (g+n)%unitCount)
				req := httptest.NewRequest(http.MethodPost, "/"+unit+"/", bytes.NewReader(env))
				req.Header.Set("Content-Type", soap.ContentType)
				rec := httptest.NewRecorder()
				fl.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("request to %s failed: HTTP %d: %s", unit, rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	// Per-unit accounting balances: every unit got exactly the requests
	// routed to it, each producing one monitor record on its own unit.
	total := 0
	for i, m := range monitors {
		got := len(m.Log())
		total += got
		if got == 0 {
			t.Errorf("unit %d saw no traffic", i)
		}
		if joint := m.Joint(); !joint.Valid() {
			t.Errorf("unit %d joint counts inconsistent: %+v", i, joint)
		}
	}
	if want := trafficGoroutines * requestsPerRoutine; total != want {
		t.Fatalf("fleet-wide monitor records = %d, want %d (lost or cross-unit demands)", total, want)
	}
}
