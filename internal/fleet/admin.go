package fleet

// The JSON admin API: per-unit management over HTTP, mounted under
// /fleet/ by the fleet router.
//
//	GET    /fleet/units                       → []UnitStatus
//	GET    /fleet/units/<unit>                → UnitStatus
//	POST   /fleet/units/<unit>/phase          {"phase":"parallel"}
//	POST   /fleet/units/<unit>/mode           {"mode":"dynamic","quorum":2}
//	POST   /fleet/units/<unit>/releases       {"version":"1.2","url":"http://…"}
//	DELETE /fleet/units/<unit>/releases/<ver> → phases the release out
//	GET    /fleet/units/<unit>/confidence?operation=op → core.ConfidenceReport
//	GET    /fleet/healthz                     → []UnitHealth (503 if any unit is all-down)
//	GET    /fleet/events                      → Server-Sent Events stream (see sse.go)
//	POST   /fleet/notify                      → registry upgrade-notification fan-in

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"wsupgrade/internal/core"
	"wsupgrade/internal/dispatch"
	"wsupgrade/internal/lifecycle"
)

// maxAdminBody bounds admin request bodies.
const maxAdminBody = 1 << 20

func (f *Fleet) adminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/units", f.handleUnits)
	mux.HandleFunc("/fleet/units/", f.handleUnit)
	mux.HandleFunc("/fleet/healthz", f.serveHealthz)
	mux.HandleFunc("/fleet/events", f.handleEvents)
	mux.Handle("/fleet/notify", f.NotificationHandler())
	if f.adminToken == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The liveness probe stays open; everything else on the
		// management surface needs the token.
		if r.URL.Path != "/fleet/healthz" && !f.authorized(r) {
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: "fleet: admin token required"})
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// authorized checks the admin token: "Authorization: Bearer <token>" or
// a "token" query parameter (the form Subscribe embeds in the
// notification callback URL).
func (f *Fleet) authorized(r *http.Request) bool {
	token := r.URL.Query().Get("token")
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		token = strings.TrimPrefix(h, "Bearer ")
	}
	return subtle.ConstantTimeCompare([]byte(token), []byte(f.adminToken)) == 1
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownUnit), errors.Is(err, core.ErrUnknownRelease):
		status = http.StatusNotFound
	case errors.Is(err, lifecycle.ErrIllegalTransition):
		status = http.StatusConflict
	case errors.Is(err, core.ErrBadConfig), errors.Is(err, core.ErrBadPhase),
		errors.Is(err, core.ErrNoInference), errors.Is(err, ErrBadConfig):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func decodeJSON(r *http.Request, v interface{}) error {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxAdminBody))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// wantConfidence reports whether the caller opted into the expensive
// per-unit posterior computation via ?confidence=1 (status reads and
// mutation echoes are cheap snapshots by default).
func wantConfidence(r *http.Request) bool {
	return r.URL.Query().Get("confidence") != ""
}

// handleUnits serves GET /fleet/units.
func (f *Fleet) handleUnits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, f.status(wantConfidence(r)))
}

// handleUnit serves everything under /fleet/units/<unit>.
func (f *Fleet) handleUnit(w http.ResponseWriter, r *http.Request) {
	rest := r.URL.Path[len("/fleet/units/"):]
	seg, sub := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		seg, sub = rest[:i], rest[i+1:]
	}
	u, err := f.Unit(seg)
	if err != nil {
		writeError(w, err)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, f.unitStatus(u, wantConfidence(r)))
	case sub == "phase":
		f.handlePhase(w, r, u)
	case sub == "mode":
		f.handleMode(w, r, u)
	case sub == "releases":
		f.handleAddRelease(w, r, u)
	case len(sub) > len("releases/") && sub[:len("releases/")] == "releases/":
		f.handleRemoveRelease(w, r, u, sub[len("releases/"):])
	case sub == "confidence":
		f.handleConfidence(w, r, u)
	default:
		http.NotFound(w, r)
	}
}

func (f *Fleet) handlePhase(w http.ResponseWriter, r *http.Request, u *Unit) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Phase string `json:"phase"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	p, err := lifecycle.ParsePhase(req.Phase)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := u.engine.SetPhase(p); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, f.unitStatus(u, false))
}

func (f *Fleet) handleMode(w http.ResponseWriter, r *http.Request, u *Unit) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Mode   string `json:"mode"`
		Quorum int    `json:"quorum"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	m, err := dispatch.ParseMode(req.Mode)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := u.engine.SetMode(m, req.Quorum); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, f.unitStatus(u, false))
}

func (f *Fleet) handleAddRelease(w http.ResponseWriter, r *http.Request, u *Unit) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var ep core.Endpoint
	if err := decodeJSON(r, &ep); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := u.engine.AddRelease(ep); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, f.unitStatus(u, false))
}

func (f *Fleet) handleRemoveRelease(w http.ResponseWriter, r *http.Request, u *Unit, version string) {
	if r.Method != http.MethodDelete {
		http.Error(w, "DELETE only", http.StatusMethodNotAllowed)
		return
	}
	if err := u.engine.RemoveRelease(version); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, f.unitStatus(u, false))
}

func (f *Fleet) handleConfidence(w http.ResponseWriter, r *http.Request, u *Unit) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rep, err := u.engine.Confidence(r.URL.Query().Get("operation"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// serveHealthz probes every unit and reports 503 when any unit has all
// its releases down (the composite cannot serve that component at all).
func (f *Fleet) serveHealthz(w http.ResponseWriter, r *http.Request) {
	results := f.CheckHealth(r.Context())
	status := http.StatusOK
	for _, uh := range results {
		if uh.Up == 0 {
			status = http.StatusServiceUnavailable
			break
		}
	}
	writeJSON(w, status, results)
}
