package fleet

// Durable campaigns and the push control plane.
//
// With Config.JournalDir set, every unit journals its campaign — phase
// transitions with causes, release-set changes, periodic posterior
// snapshots — to <dir>/<unit>.journal, and a restarted fleet resumes
// each unit mid-campaign from the replayed journal. Corruption is never
// fatal: a journal that fails replay is quarantined aside and the unit
// starts a fresh one (see journal.OpenOrQuarantine).
//
// Independent of journaling, every fleet publishes campaign events to
// an in-process hub; /fleet/events streams them as Server-Sent Events
// (token-guarded like the rest of the admin surface). Subscribers have
// bounded buffers and lose events rather than slowing the campaign; the
// stream reports its own gaps.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wsupgrade/internal/core"
	"wsupgrade/internal/events"
	"wsupgrade/internal/journal"
	"wsupgrade/internal/lifecycle"
)

// DefaultSnapshotInterval is the journal snapshot cadence when
// Config.JournalDir is set without a Config.SnapshotInterval.
const DefaultSnapshotInterval = 5 * time.Second

// phaseEvent is the SSE payload for one unit's phase transition.
type phaseEvent struct {
	Unit    string `json:"unit"`
	From    string `json:"from"`
	To      string `json:"to"`
	Cause   string `json:"cause"`
	Demands int    `json:"demands,omitempty"`
}

// releaseEvent is the SSE payload for one unit's release-set change.
type releaseEvent struct {
	Unit    string `json:"unit"`
	Action  string `json:"action"` // "added" or "removed"
	Version string `json:"version"`
	URL     string `json:"url,omitempty"`
}

// confidenceEvent is the SSE payload for one unit's posterior readout,
// published at each phase transition.
type confidenceEvent struct {
	Unit      string  `json:"unit"`
	Published float64 `json:"published"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Demands   int     `json:"demands"`
}

// journalEvent is the SSE payload for journal lifecycle notes
// (quarantines, restore failures) surfaced to subscribers.
type journalEvent struct {
	Unit string `json:"unit"`
	Note string `json:"note"`
}

// setupCampaigns wires journaling (when dir != "") and event publishing
// for every unit. Called once from New, after the unit set is built.
func (f *Fleet) setupCampaigns(dir string, interval time.Duration) error {
	f.hub = events.NewHub()
	if dir != "" {
		if interval <= 0 {
			interval = DefaultSnapshotInterval
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("fleet: journal dir: %w", err)
		}
		for _, u := range f.units {
			if err := f.attachUnitJournal(u, filepath.Join(dir, u.name+".journal"), interval); err != nil {
				return err
			}
		}
	}

	// Event publishing rides the same capture points as the journal:
	// phase transitions (with a posterior readout) and release changes.
	f.OnTransition(func(tr lifecycle.Transition) {
		f.hub.Publish("phase", phaseEvent{
			Unit:    tr.Unit,
			From:    tr.From.String(),
			To:      tr.To.String(),
			Cause:   tr.Cause.String(),
			Demands: tr.Demands,
		})
		if u := f.byName[tr.Unit]; u != nil {
			if rep, err := u.engine.Confidence(""); err == nil {
				f.hub.Publish("confidence", confidenceEvent{
					Unit:      tr.Unit,
					Published: rep.Published,
					Old:       rep.Old,
					New:       rep.New,
					Demands:   rep.Demands,
				})
			}
		}
	})
	for _, u := range f.units {
		u := u
		u.engine.OnReleaseChange(func(added bool, ep core.Endpoint) {
			action := "added"
			if !added {
				action = "removed"
			}
			f.hub.Publish("release", releaseEvent{
				Unit: u.name, Action: action, Version: ep.Version, URL: ep.URL,
			})
		})
	}
	return nil
}

// attachUnitJournal opens (or quarantines) one unit's journal, restores
// the replayed campaign into the engine, subscribes the writer to the
// engine's lifecycle, and starts the snapshot loop. Only I/O failures
// are fatal; corruption and unrestorable replays degrade to a fresh
// campaign with a note.
func (f *Fleet) attachUnitJournal(u *Unit, path string, interval time.Duration) error {
	w, jst, err := journal.OpenOrQuarantine(path)
	if err != nil {
		if w == nil {
			return fmt.Errorf("fleet: unit %q journal: %w", u.name, err)
		}
		// Corrupt journal quarantined; the unit starts a fresh campaign.
		f.journalNotes = append(f.journalNotes,
			journalEvent{Unit: u.name, Note: err.Error()})
	}
	if err := u.engine.RestoreCampaign(jst); err != nil {
		// A journal that replays cleanly but does not fit the configured
		// unit (phase needs more releases than deployed, bad counters)
		// must not block startup: the unit runs its configured campaign.
		f.journalNotes = append(f.journalNotes,
			journalEvent{Unit: u.name, Note: "restore failed, campaign starts fresh: " + err.Error()})
	}
	u.engine.AttachJournal(w)
	// Compact the replayed history into one snapshot frame so the
	// journal stays bounded across restarts.
	snap := u.engine.CampaignSnapshot()
	if err := w.Compact(journal.Entry{
		Kind: journal.KindSnapshot, Time: time.Now().UnixNano(), Snapshot: &snap,
	}); err != nil {
		_ = w.Close()
		return fmt.Errorf("fleet: unit %q journal compact: %w", u.name, err)
	}
	stop, err := u.engine.StartCampaignSnapshots(w, interval)
	if err != nil {
		_ = w.Close()
		return fmt.Errorf("fleet: unit %q snapshots: %w", u.name, err)
	}
	f.journals = append(f.journals, w)
	f.stopSnaps = append(f.stopSnaps, stop)
	return nil
}

// closeCampaigns stops the snapshot loops and journal writers (flushing
// their queues) and disconnects every event subscriber.
func (f *Fleet) closeCampaigns() {
	for _, stop := range f.stopSnaps {
		stop()
	}
	f.stopSnaps = nil
	for _, w := range f.journals {
		_ = w.Close()
	}
	f.journals = nil
	f.hub.Close()
}
