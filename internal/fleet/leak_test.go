package fleet

import (
	"testing"

	"wsupgrade/internal/testutil"
)

// TestFleetCloseLeavesNoGoroutines: a two-unit fleet under traffic must
// tear down completely — every unit engine, the shared wire transport's
// janitor and connection watchers, all of it.
func TestFleetCloseLeavesNoGoroutines(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, ts := twoUnitFleet(t, nil)
	for i := 0; i < 4; i++ {
		for _, unit := range []string{"flights", "hotels"} {
			if _, err := callUnit(t, ts.URL, unit, i, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	// twoUnitFleet's cleanup closes the fleet; CheckGoroutines'
	// cleanup (registered first, so running last) asserts no survivors.
}
