package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/stats"
)

// startRelease boots one live fault-injected release.
func startRelease(t *testing.T, version string, plan service.FaultPlan) (*service.Release, core.Endpoint) {
	t.Helper()
	rel, err := service.New(service.DemoContract(version), service.DemoBehaviours(), plan)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rel.Handler())
	t.Cleanup(ts.Close)
	return rel, core.Endpoint{Version: version, URL: ts.URL}
}

func testInference() *bayes.WhiteBoxConfig {
	return &bayes.WhiteBoxConfig{
		PriorA: stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.4},
		PriorB: stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.4},
		GridA:  30, GridB: 30, GridC: 8, GridAB: 32,
	}
}

// twoUnitFleet builds a fleet of two live units ("flights", "hotels"),
// each with two releases.
func twoUnitFleet(t *testing.T, mutate func(*Config)) (*Fleet, *httptest.Server) {
	t.Helper()
	_, f0 := startRelease(t, "1.0", service.FaultPlan{})
	_, f1 := startRelease(t, "1.1", service.FaultPlan{})
	_, h0 := startRelease(t, "1.0", service.FaultPlan{})
	_, h1 := startRelease(t, "1.1", service.FaultPlan{})
	cfg := Config{Units: []UnitConfig{
		{Name: "flights", Engine: core.Config{
			Releases: []core.Endpoint{f0, f1}, Oracle: oracle.Header{}}},
		{Name: "hotels", Engine: core.Config{
			Releases: []core.Endpoint{h0, h1}, Oracle: oracle.Header{}}},
	}}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f)
	t.Cleanup(func() {
		ts.Close()
		if err := f.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return f, ts
}

func callUnit(t *testing.T, base, unit string, a, b int) (service.AddResponse, error) {
	t.Helper()
	c := &soap.Client{URL: base + "/" + unit, HTTP: &http.Client{Timeout: 5 * time.Second}}
	var out service.AddResponse
	err := c.Call(context.Background(), "add", service.AddRequest{A: a, B: b}, &out)
	return out, err
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: %v in %s", url, err, body)
	}
}

func postJSON(t *testing.T, url, body string, wantStatus int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s %s: HTTP %d (want %d): %s", url, body, resp.StatusCode, wantStatus, msg)
	}
}

func del(t *testing.T, url string, wantStatus int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE %s: HTTP %d (want %d): %s", url, resp.StatusCode, wantStatus, msg)
	}
}

func TestConfigValidation(t *testing.T) {
	rel := []core.Endpoint{{Version: "1.0", URL: "http://a.invalid"}}
	single := func(u UnitConfig) Config { return Config{Units: []UnitConfig{u}} }
	old := func() core.Config {
		return core.Config{Releases: rel, InitialPhase: core.PhaseOldOnly}
	}
	cases := map[string]Config{
		"no units":      {},
		"empty name":    single(UnitConfig{Engine: old()}),
		"slash name":    single(UnitConfig{Name: "a/b", Engine: old()}),
		"reserved name": single(UnitConfig{Name: "fleet", Engine: old()}),
		"bad engine":    single(UnitConfig{Name: "a", Engine: core.Config{}}),
		"duplicate unit": {Units: []UnitConfig{
			{Name: "a", Engine: old()},
			{Name: "a", Engine: old()},
		}},
		"duplicate service": {Units: []UnitConfig{
			{Name: "a", Service: "s", Engine: old()},
			{Name: "b", Service: "s", Engine: old()},
		}},
		"duplicate host": {Units: []UnitConfig{
			{Name: "a", Hosts: []string{"x.example"}, Engine: old()},
			{Name: "b", Hosts: []string{"x.example"}, Engine: old()},
		}},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPathRoutingReachesEachUnit(t *testing.T) {
	_, ts := twoUnitFleet(t, nil)
	for _, unit := range []string{"flights", "hotels"} {
		out, err := callUnit(t, ts.URL, unit, 20, 22)
		if err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
		if out.Sum != 42 {
			t.Fatalf("%s: sum = %d", unit, out.Sum)
		}
	}
	// Per-unit sub-paths reach the unit engine's own surface.
	resp, err := http.Get(ts.URL + "/flights/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/flights/healthz = %d", resp.StatusCode)
	}
	// Unknown units and the bare root 404.
	for _, path := range []string{"/cruises/healthz", "/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
}

func TestHostRoutingOwnsWholePathSpace(t *testing.T) {
	f, _ := twoUnitFleet(t, func(cfg *Config) {
		cfg.Units[0].Hosts = []string{"flights.example"}
	})
	env := soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`))
	req := httptest.NewRequest(http.MethodPost, "http://flights.example/", bytes.NewReader(env))
	req.Header.Set("Content-Type", soap.ContentType)
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("host-routed request = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "<sum>3</sum>") {
		t.Fatalf("body = %s", rec.Body.String())
	}
	// The port is ignored for host matching.
	req = httptest.NewRequest(http.MethodGet, "http://flights.example:8443/healthz", nil)
	req.Host = "flights.example:8443"
	rec = httptest.NewRecorder()
	f.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("host:port-routed healthz = %d", rec.Code)
	}
}

func TestSharedTransportAcrossUnits(t *testing.T) {
	f, ts := twoUnitFleet(t, nil)
	if f.wire == nil {
		t.Fatal("fleet did not build the shared wire transport")
	}
	// Both units' dispatch traffic must ride the one shared wire client,
	// not per-unit pools.
	for _, unit := range []string{"flights", "hotels"} {
		if _, err := callUnit(t, ts.URL, unit, 1, 2); err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
	}
}

// A fleet configured with an explicit net/http client hands it to every
// unit that does not bring its own — the TLS/proxy escape hatch.
func TestSharedNetHTTPTransport(t *testing.T) {
	shared := &http.Client{Timeout: 5 * time.Second}
	f, ts := twoUnitFleet(t, func(cfg *Config) { cfg.HTTP = shared })
	if f.wire != nil {
		t.Fatal("explicit HTTP config still built a wire client")
	}
	if f.client != shared {
		t.Fatal("shared client replaced")
	}
	if _, err := callUnit(t, ts.URL, "flights", 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestAdminStatusAndManagement(t *testing.T) {
	_, ts := twoUnitFleet(t, nil)

	var units []UnitStatus
	getJSON(t, ts.URL+"/fleet/units", &units)
	if len(units) != 2 || units[0].Unit != "flights" || units[1].Unit != "hotels" {
		t.Fatalf("units = %+v", units)
	}
	if units[0].Phase != "parallel" || len(units[0].Releases) != 2 {
		t.Fatalf("flights status = %+v", units[0])
	}

	// SetPhase via admin.
	postJSON(t, ts.URL+"/fleet/units/flights/phase", `{"phase":"new-only"}`, http.StatusOK)
	var st UnitStatus
	getJSON(t, ts.URL+"/fleet/units/flights", &st)
	if st.Phase != "new-only" {
		t.Fatalf("phase after admin set = %s", st.Phase)
	}
	// Illegal §4.1 transition rejected with 409.
	postJSON(t, ts.URL+"/fleet/units/hotels/phase", `{"phase":"observation"}`, http.StatusConflict)
	// Unknown phase rejected.
	postJSON(t, ts.URL+"/fleet/units/hotels/phase", `{"phase":"sideways"}`, http.StatusBadRequest)

	// SetMode via admin.
	postJSON(t, ts.URL+"/fleet/units/hotels/mode", `{"mode":"dynamic","quorum":2}`, http.StatusOK)
	getJSON(t, ts.URL+"/fleet/units/hotels", &st)
	if st.Mode != "parallel-dynamic" {
		t.Fatalf("mode after admin set = %s", st.Mode)
	}
	postJSON(t, ts.URL+"/fleet/units/hotels/mode", `{"mode":"warp"}`, http.StatusBadRequest)

	// AddRelease / RemoveRelease via admin.
	_, extra := startRelease(t, "1.2", service.FaultPlan{})
	body, err := json.Marshal(extra)
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/fleet/units/hotels/releases", string(body), http.StatusOK)
	getJSON(t, ts.URL+"/fleet/units/hotels", &st)
	if len(st.Releases) != 3 {
		t.Fatalf("releases after add = %+v", st.Releases)
	}
	// Duplicate add rejected.
	postJSON(t, ts.URL+"/fleet/units/hotels/releases", string(body), http.StatusBadRequest)
	del(t, ts.URL+"/fleet/units/hotels/releases/1.2", http.StatusOK)
	getJSON(t, ts.URL+"/fleet/units/hotels", &st)
	if len(st.Releases) != 2 {
		t.Fatalf("releases after delete = %+v", st.Releases)
	}
	del(t, ts.URL+"/fleet/units/hotels/releases/ghost", http.StatusNotFound)

	// Unknown unit 404s.
	resp, err := http.Get(ts.URL + "/fleet/units/cruises")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown unit admin = %d", resp.StatusCode)
	}
}

func TestAdminConfidence(t *testing.T) {
	fl, ts := twoUnitFleet(t, func(cfg *Config) {
		cfg.Units[0].Engine.Inference = testInference()
	})
	// Generate some evidence on flights.
	for i := 0; i < 10; i++ {
		if _, err := callUnit(t, ts.URL, "flights", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	var rep core.ConfidenceReport
	getJSON(t, ts.URL+"/fleet/units/flights/confidence", &rep)
	if rep.Demands != 10 || rep.Published <= 0 {
		t.Fatalf("confidence = %+v", rep)
	}
	// Unit without inference: 400.
	resp, err := http.Get(ts.URL + "/fleet/units/hotels/confidence")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-inference confidence = %d", resp.StatusCode)
	}
	// Aggregation: only inference-enabled units report.
	if got := len(fl.Confidence("")); got != 1 {
		t.Fatalf("aggregated confidence units = %d", got)
	}
	// The posterior is expensive, so status computes it only on opt-in.
	var units []UnitStatus
	getJSON(t, ts.URL+"/fleet/units?confidence=1", &units)
	if units[0].Confidence == nil || units[1].Confidence != nil {
		t.Fatalf("opt-in status confidence = %+v", units)
	}
	var plain []UnitStatus
	getJSON(t, ts.URL+"/fleet/units", &plain)
	if plain[0].Confidence != nil {
		t.Fatalf("default status ran the posterior: %+v", plain[0])
	}
}

// The admin token guards every management endpoint; the liveness probe
// and consumer traffic stay open; the registry callback carries the
// token in its subscribed URL.
func TestAdminTokenGuardsManagement(t *testing.T) {
	fl, ts := twoUnitFleet(t, func(cfg *Config) { cfg.AdminToken = "s3cret" })

	// Consumer traffic and liveness are unaffected.
	if _, err := callUnit(t, ts.URL, "flights", 1, 2); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/fleet/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with token set = %d", resp.StatusCode)
	}

	// Unauthenticated management: 401, and nothing changed.
	for _, probe := range []func() (*http.Response, error){
		func() (*http.Response, error) { return http.Get(ts.URL + "/fleet/units") },
		func() (*http.Response, error) {
			return http.Post(ts.URL+"/fleet/units/flights/phase", "application/json",
				strings.NewReader(`{"phase":"new-only"}`))
		},
		func() (*http.Response, error) {
			return http.Post(ts.URL+"/fleet/notify", "text/xml",
				strings.NewReader(`<entry><name>flights</name><version>6.6</version><url>http://evil.invalid</url></entry>`))
		},
	} {
		resp, err := probe()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("unauthenticated admin = %d", resp.StatusCode)
		}
	}
	flights, _ := fl.Unit("flights")
	if flights.Engine().Phase() != core.PhaseParallel || len(flights.Engine().Releases()) != 2 {
		t.Fatal("unauthenticated request mutated the unit")
	}

	// Bearer token and query token both authorize.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/fleet/units", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer-authorized = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/fleet/units?token=s3cret")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query-authorized = %d", resp.StatusCode)
	}
	// Wrong token stays out.
	resp, err = http.Get(ts.URL + "/fleet/units?token=wrong")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d", resp.StatusCode)
	}

	// Subscribe embeds the token in the callback URL, so registry
	// notifications still reach the guarded fan-in.
	reg := registry.NewServer()
	regTS := httptest.NewServer(reg)
	defer regTS.Close()
	regClient := &registry.Client{Base: regTS.URL}
	ctx := context.Background()
	if err := regClient.Publish(ctx, registry.Entry{
		Name: "flights", Version: "1.1", URL: "http://flights.invalid"}); err != nil {
		t.Fatal(err)
	}
	if err := fl.Subscribe(ctx, regClient, ts.URL); err != nil {
		t.Fatal(err)
	}
	_, f2 := startRelease(t, "1.2", service.FaultPlan{})
	if err := regClient.Publish(ctx, registry.Entry{
		Name: "flights", Version: f2.Version, URL: f2.URL}); err != nil {
		t.Fatal(err)
	}
	if got := len(flights.Engine().Releases()); got != 3 {
		t.Fatalf("authorized notification did not deploy: %d releases", got)
	}
}

func TestAggregatedHealthz(t *testing.T) {
	// hotels gets one live and one dead release; flights is healthy.
	_, f0 := startRelease(t, "1.0", service.FaultPlan{})
	_, f1 := startRelease(t, "1.1", service.FaultPlan{})
	_, h0 := startRelease(t, "1.0", service.FaultPlan{})
	dead := core.Endpoint{Version: "1.1", URL: "http://127.0.0.1:1"}
	fl, err := New(Config{Units: []UnitConfig{
		{Name: "flights", Engine: core.Config{
			Releases: []core.Endpoint{f0, f1}, Timeout: 500 * time.Millisecond}},
		{Name: "hotels", Engine: core.Config{
			Releases: []core.Endpoint{h0, dead}, Timeout: 500 * time.Millisecond}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	ts := httptest.NewServer(fl)
	defer ts.Close()

	var results []UnitHealth
	getJSON(t, ts.URL+"/fleet/healthz", &results)
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	for _, uh := range results {
		switch uh.Unit {
		case "flights":
			if uh.Up != 2 || len(uh.DownList) != 0 {
				t.Fatalf("flights health = %+v", uh)
			}
		case "hotels":
			if uh.Up != 1 || len(uh.DownList) != 1 || uh.DownList[0] != "1.1" {
				t.Fatalf("hotels health = %+v", uh)
			}
		}
	}
	// The health marks feed the unit's dispatch skip set.
	if !fl.byName["hotels"].engine.Down("1.1") {
		t.Fatal("dead release not marked down on the unit engine")
	}
	// A unit with every release down turns the aggregate 503.
	allDead, err := New(Config{Units: []UnitConfig{
		{Name: "void", Engine: core.Config{
			Releases:     []core.Endpoint{dead},
			InitialPhase: core.PhaseOldOnly,
			Timeout:      300 * time.Millisecond,
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer allDead.Close()
	ts2 := httptest.NewServer(allDead)
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/fleet/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down fleet healthz = %d", resp.StatusCode)
	}
}

func TestStartHealthChecks(t *testing.T) {
	fl, _ := twoUnitFleet(t, nil)
	stop, err := fl.StartHealthChecks(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	stop()
	stop() // idempotent
	if _, err := fl.StartHealthChecks(0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

// Regression test mirroring core's TestStopCancelsInFlightProbe: the
// fleet prober's stop() must cancel an in-flight unit probe instead of
// waiting out its timeout.
func TestStopCancelsInFlightProbe(t *testing.T) {
	entered := make(chan struct{}, 1)
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)

	f, err := New(Config{Units: []UnitConfig{{
		Name: "flights",
		Engine: core.Config{
			Releases: []core.Endpoint{{Version: "1.0", URL: hang.URL}, {Version: "1.1", URL: hang.URL}},
			Oracle:   oracle.Header{},
			Timeout:  5 * time.Second,
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	const interval = 800 * time.Millisecond
	stop, err := f.StartHealthChecks(interval)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("probe never reached the endpoint")
	}
	start := time.Now()
	stop()
	if d := time.Since(start); d > interval/2 {
		t.Fatalf("stop() took %v; an in-flight probe must be cancelled, not waited out", d)
	}
}
