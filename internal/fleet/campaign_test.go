package fleet

import (
	"bufio"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/events"
	"wsupgrade/internal/journal"
	"wsupgrade/internal/monitor"
)

// driveUnitJoint feeds n joint observations straight into a unit's
// monitor, standing in for live parallel traffic.
func driveUnitJoint(u *Unit, n int) {
	for i := 0; i < n; i++ {
		joint := bayes.NeitherFails
		if i%13 == 0 {
			joint = bayes.BOnlyFails
		}
		u.Engine().Monitor().Note(monitor.Record{
			Time:      time.Unix(int64(i), 0),
			Operation: "add",
			Releases: []monitor.Observation{
				{Release: "1.0", Responded: true, Latency: 9 * time.Millisecond},
				{Release: "1.1", Responded: true, Latency: 11 * time.Millisecond},
			},
			Winner: "1.0",
			Joint:  joint,
		})
	}
}

// waitForSnapshot polls one unit's journal until a snapshot with at
// least wantN joint demands has been persisted.
func waitForSnapshot(t *testing.T, path string, wantN int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(path)
		if err == nil {
			if st, _, derr := journal.Decode(data); derr == nil && st.Snapshot != nil &&
				st.Snapshot.Campaign.Joint.N >= wantN {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot with N >= %d in %s", wantN, path)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A fleet restarted onto the same journal directory resumes every
// unit's phase and posterior.
func TestJournalPersistsAcrossFleetRestart(t *testing.T) {
	dir := t.TempDir()
	journaled := func(cfg *Config) {
		cfg.JournalDir = dir
		cfg.SnapshotInterval = 20 * time.Millisecond
		cfg.Units[0].Engine.InitialPhase = core.PhaseObservation
		cfg.Units[0].Engine.Inference = testInference()
	}

	f1, _ := twoUnitFleet(t, journaled)
	flights, err := f1.Unit("flights")
	if err != nil {
		t.Fatal(err)
	}
	driveUnitJoint(flights, 120)
	waitForSnapshot(t, filepath.Join(dir, "flights.journal"), 120)
	if err := flights.Engine().SetPhase(core.PhaseParallel); err != nil {
		t.Fatal(err)
	}
	wantJoint := flights.Engine().Monitor().Joint()
	wantConf, err := flights.Engine().Confidence("")
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the config still says Observation; the journal must win
	// with Parallel and the snapshot posterior.
	f2, _ := twoUnitFleet(t, journaled)
	flights2, err := f2.Unit("flights")
	if err != nil {
		t.Fatal(err)
	}
	if got := flights2.Engine().Phase(); got != core.PhaseParallel {
		t.Fatalf("restarted phase %v, want parallel", got)
	}
	if got := flights2.Engine().Monitor().Joint(); got != wantJoint {
		t.Fatalf("restarted joint %+v, want %+v", got, wantJoint)
	}
	gotConf, err := flights2.Engine().Confidence("")
	if err != nil {
		t.Fatal(err)
	}
	if gotConf != wantConf {
		t.Fatalf("restarted confidence %+v, want %+v", gotConf, wantConf)
	}
	// The other, non-inference unit restarts untouched.
	hotels2, err := f2.Unit("hotels")
	if err != nil {
		t.Fatal(err)
	}
	if got := hotels2.Engine().Phase(); got != core.PhaseParallel {
		t.Fatalf("hotels phase %v", got)
	}
}

// A corrupted journal is quarantined, never fatal: the fleet boots, the
// unit starts a fresh campaign, and the damaged file is kept aside.
func TestCorruptJournalQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flights.journal")
	if err := os.WriteFile(path, []byte("WSUJRNL1 this is not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := twoUnitFleet(t, func(cfg *Config) { cfg.JournalDir = dir })
	if len(f.journalNotes) == 0 {
		t.Fatal("quarantine left no journal note")
	}
	if f.journalNotes[0].Unit != "flights" {
		t.Fatalf("note %+v", f.journalNotes[0])
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantined file: %v", err)
	}
	// The fresh journal is live: it received the startup compact frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st, _, err := journal.Decode(data); err != nil || st.Snapshot == nil {
		t.Fatalf("fresh journal state %+v err %v", st, err)
	}
}

// sseEvent is one parsed frame from the /fleet/events stream.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE parses frames off an open event stream until ctx ends.
func readSSE(ctx context.Context, t *testing.T, body *bufio.Reader, out chan<- sseEvent) {
	var ev sseEvent
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[len("data: "):]
		case line == "" && ev.event != "":
			select {
			case out <- ev:
			case <-ctx.Done():
				return
			}
			ev = sseEvent{}
		}
	}
}

func nextEvent(t *testing.T, ch <-chan sseEvent) sseEvent {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("event stream stalled")
		return sseEvent{}
	}
}

// The push control plane: /fleet/events is token-guarded, opens with
// per-unit status, and streams phase, confidence and release events.
func TestEventsStreamDeliversCampaignEvents(t *testing.T) {
	const token = "s3cret"
	_, ts := twoUnitFleet(t, func(cfg *Config) {
		cfg.AdminToken = token
		cfg.Units[0].Engine.Inference = testInference()
	})

	// No token, no stream.
	resp, err := http.Get(ts.URL + "/fleet/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated stream = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/fleet/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := make(chan sseEvent, 32)
	go readSSE(ctx, t, bufio.NewReader(stream.Body), events)

	// Synchronization point: one status event per unit, in order.
	for _, unit := range []string{"flights", "hotels"} {
		ev := nextEvent(t, events)
		if ev.event != "status" || !strings.Contains(ev.data, `"unit":"`+unit+`"`) {
			t.Fatalf("opening event %+v, want status for %s", ev, unit)
		}
	}

	// A phase change pushes "phase" then (inference-enabled) "confidence".
	postJSON(t, ts.URL+"/fleet/units/flights/phase?token="+token, `{"phase":"new-only"}`, http.StatusOK)
	ev := nextEvent(t, events)
	if ev.event != "phase" || !strings.Contains(ev.data, `"to":"new-only"`) ||
		!strings.Contains(ev.data, `"unit":"flights"`) || !strings.Contains(ev.data, `"cause":"manual"`) {
		t.Fatalf("phase event %+v", ev)
	}
	ev = nextEvent(t, events)
	if ev.event != "confidence" || !strings.Contains(ev.data, `"unit":"flights"`) {
		t.Fatalf("confidence event %+v", ev)
	}

	// A release add pushes "release".
	postJSON(t, ts.URL+"/fleet/units/hotels/releases?token="+token,
		`{"version":"2.0","url":"http://127.0.0.1:1/v2"}`, http.StatusOK)
	ev = nextEvent(t, events)
	if ev.event != "release" || !strings.Contains(ev.data, `"action":"added"`) ||
		!strings.Contains(ev.data, `"version":"2.0"`) {
		t.Fatalf("release event %+v", ev)
	}
}

// openStream opens the authenticated /fleet/events stream with the
// given extra headers and starts a frame reader.
func openStream(ctx context.Context, t *testing.T, url, token, lastEventID string) (<-chan sseEvent, *http.Response) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/fleet/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stream.Body.Close() })
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", stream.StatusCode)
	}
	ch := make(chan sseEvent, 64)
	go readSSE(ctx, t, bufio.NewReader(stream.Body), ch)
	return ch, stream
}

// A reconnecting subscriber that presents Last-Event-ID resumes from
// the hub's history: the missed events are replayed with their original
// ids instead of a fresh status burst.
func TestEventsStreamResumesFromLastEventID(t *testing.T) {
	const token = "s3cret"
	_, ts := twoUnitFleet(t, func(cfg *Config) {
		cfg.AdminToken = token
		cfg.Units[0].Engine.InitialPhase = core.PhaseObservation
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, stream := openStream(ctx, t, ts.URL, token, "")
	for range []string{"flights", "hotels"} {
		if ev := nextEvent(t, events); ev.event != "status" || ev.id != "" {
			t.Fatalf("opening event %+v, want id-less status", ev)
		}
	}

	// Observe one live event and note its id.
	postJSON(t, ts.URL+"/fleet/units/flights/phase?token="+token, `{"phase":"parallel"}`, http.StatusOK)
	ev := nextEvent(t, events)
	if ev.event != "phase" || ev.id == "" {
		t.Fatalf("phase event %+v, want an id", ev)
	}
	lastID := ev.id

	// Drop the stream, then miss an event while disconnected.
	stream.Body.Close()
	postJSON(t, ts.URL+"/fleet/units/flights/phase?token="+token, `{"phase":"new-only"}`, http.StatusOK)

	// Reconnecting with Last-Event-ID replays the miss — no status burst.
	events2, _ := openStream(ctx, t, ts.URL, token, lastID)
	ev = nextEvent(t, events2)
	if ev.event != "phase" || !strings.Contains(ev.data, `"to":"new-only"`) {
		t.Fatalf("resumed stream opened with %+v, want the missed phase event", ev)
	}
	if ev.id == lastID || ev.id == "" {
		t.Fatalf("replayed event id %q after %q", ev.id, lastID)
	}

	// A malformed resume point is a 400, not a silent fresh stream.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/fleet/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID = %d, want 400", resp.StatusCode)
	}
}

// When the gap outruns the bounded history the stream cannot repair the
// subscriber's view by replay: it says so with a "resync" event and
// falls back to the status burst.
func TestEventsStreamResyncsWhenHistoryEvicted(t *testing.T) {
	const token = "s3cret"
	f, ts := twoUnitFleet(t, func(cfg *Config) { cfg.AdminToken = token })

	// Age the resume point out of the bounded ring.
	for i := 0; i < events.DefaultHistory+8; i++ {
		f.hub.Publish("tick", i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, _ := openStream(ctx, t, ts.URL, token, "1")

	ev := nextEvent(t, stream)
	if ev.event != "resync" || !strings.Contains(ev.data, `"lastEventId":1`) {
		t.Fatalf("evicted resume opened with %+v, want resync", ev)
	}
	for _, unit := range []string{"flights", "hotels"} {
		ev = nextEvent(t, stream)
		if ev.event != "status" || !strings.Contains(ev.data, `"unit":"`+unit+`"`) {
			t.Fatalf("post-resync event %+v, want status for %s", ev, unit)
		}
	}
}
