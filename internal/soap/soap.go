// Package soap is a minimal SOAP 1.1 implementation over net/http,
// sufficient for the paper's Web Service architecture: envelopes with
// headers and faults, document-style RPC dispatch by the first body
// element, an HTTP client, and payload canonicalization for back-to-back
// response comparison.
//
// The paper's middleware intercepts SOAP messages between consumers and
// the deployed releases of a Web Service (Figs 3-5); this package provides
// both the endpoint runtime (Server) and the message-level primitives the
// interceptor needs (Parse, Envelope, Fault, Canonicalize).
package soap

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/protocol"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// ContentType is the SOAP 1.1 HTTP content type.
const ContentType = "text/xml; charset=utf-8"

// maxMessageBytes bounds parsed messages; a well-formed WS message in this
// system is far smaller, and the bound keeps a malicious or broken peer
// from exhausting memory.
const maxMessageBytes = 10 << 20

// Errors returned by parsing and dispatch.
var (
	// ErrNotSOAP reports a message that is not a SOAP 1.1 envelope.
	ErrNotSOAP = errors.New("soap: not a SOAP 1.1 envelope")
	// ErrEmptyBody reports an envelope with no operation element.
	ErrEmptyBody = errors.New("soap: empty body")
	// ErrNoSuchOperation reports an unknown operation name.
	ErrNoSuchOperation = errors.New("soap: no such operation")
)

// Fault is a SOAP 1.1 fault. It implements error so handlers and clients
// can surface it directly; a fault is the paper's canonical *evident*
// failure at the message level.
type Fault struct {
	// Code is the qualified fault code ("soap:Server", "soap:Client").
	Code string
	// String is the human-readable fault description.
	String string
	// Actor optionally names the failing node.
	Actor string
	// Detail optionally carries application diagnostic content.
	Detail string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// ProtocolFault marks the fault for the codec seam: protocol.IsFault
// recognizes a SOAP fault as an evident failure that still carried a
// response (see internal/protocol.Fault).
func (f *Fault) ProtocolFault() {}

// ServerFault builds a receiver-side fault.
func ServerFault(msg string) *Fault { return &Fault{Code: "soap:Server", String: msg} }

// ClientFault builds a sender-side fault.
func ClientFault(msg string) *Fault { return &Fault{Code: "soap:Client", String: msg} }

// IsFault reports whether err is (or wraps) a SOAP fault — an evident
// failure that still carried a response, as opposed to a timeout or
// transport error from which nothing was collected.
func IsFault(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// HeaderItem is one SOAP header entry, kept as raw XML. It aliases the
// codec seam's header type so items cross the protocol boundary without
// conversion.
type HeaderItem = protocol.HeaderItem

// Parsed is a decoded SOAP envelope.
type Parsed struct {
	// HeaderXML is the raw inner XML of the Header element (nil if
	// absent).
	HeaderXML []byte
	// BodyXML is the raw inner XML of the Body element.
	BodyXML []byte
	// Operation is the name of the first element in the body; its Local
	// field names the invoked operation for RPC dispatch.
	Operation xml.Name
	// Fault is non-nil when the body carries a SOAP fault.
	Fault *Fault
}

type inEnvelope struct {
	XMLName xml.Name  `xml:"Envelope"`
	Header  inSegment `xml:"Header"`
	Body    inBody    `xml:"Body"`
}

type inSegment struct {
	Inner []byte `xml:",innerxml"`
}

type inBody struct {
	Inner []byte `xml:",innerxml"`
	// Fault is matched while the namespace context of the full envelope
	// is still available; prefixes are generally unresolvable in the
	// extracted Inner fragment.
	Fault *inFault `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
}

type inFault struct {
	Code   string `xml:"faultcode"`
	String string `xml:"faultstring"`
	Actor  string `xml:"faultactor"`
	Detail string `xml:"detail"`
}

// Parse decodes a SOAP 1.1 envelope.
func Parse(data []byte) (*Parsed, error) {
	if len(data) > maxMessageBytes {
		return nil, fmt.Errorf("%w: message of %d bytes exceeds limit", ErrNotSOAP, len(data))
	}
	var env inEnvelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSOAP, err)
	}
	if env.XMLName.Space != EnvelopeNS {
		return nil, fmt.Errorf("%w: root namespace %q", ErrNotSOAP, env.XMLName.Space)
	}
	p := &Parsed{BodyXML: env.Body.Inner}
	if len(env.Header.Inner) > 0 {
		p.HeaderXML = env.Header.Inner
	}
	name, ok := firstElement(env.Body.Inner)
	if !ok {
		return nil, ErrEmptyBody
	}
	p.Operation = name
	if f := env.Body.Fault; f != nil {
		p.Fault = &Fault{Code: f.Code, String: f.String, Actor: f.Actor, Detail: f.Detail}
	}
	return p, nil
}

// DecodeBody unmarshals the first body element into v.
func (p *Parsed) DecodeBody(v interface{}) error {
	return decodeBody(p.BodyXML, v)
}

func decodeBody(bodyXML []byte, v interface{}) error {
	if err := xml.Unmarshal(bodyXML, v); err != nil {
		return fmt.Errorf("soap: decoding body: %w", err)
	}
	return nil
}

func firstElement(inner []byte) (xml.Name, bool) {
	dec := xml.NewDecoder(bytes.NewReader(inner))
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.Name{}, false
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se.Name, true
		}
	}
}

// bufPool recycles the scratch buffers of envelope construction and
// canonicalization — both run on the middleware's per-request hot path,
// where growing a fresh bytes.Buffer per call was measurable allocator
// traffic. Builders must copy the result out before returning the buffer.
var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

//wsu:owns return
func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

// putBuf recycles a scratch buffer. An occasional giant message must
// not pin its buffer forever, so oversized buffers are dropped.
//
//wsu:owns b
//wsu:allow poolcheck -- oversized buffers are dropped to the GC by design
func putBuf(b *bytes.Buffer) {
	if b.Cap() > 1<<16 {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// take copies a pooled buffer's content into a caller-owned, right-sized
// slice and returns the buffer to the pool.
//
//wsu:owns b
func take(b *bytes.Buffer) []byte {
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	putBuf(b)
	return out
}

// Envelope wraps the XML marshalling of payload into a SOAP envelope.
// Extra header items are emitted inside a Header element.
func Envelope(payload interface{}, headers ...HeaderItem) ([]byte, error) {
	inner, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshalling payload: %w", err)
	}
	return EnvelopeRaw(inner, headers...), nil
}

// buildEnvelope renders the envelope into a scratch buffer.
func buildEnvelope(b *bytes.Buffer, bodyXML []byte, headers []HeaderItem) {
	b.WriteString(xml.Header)
	b.WriteString(`<soap:Envelope xmlns:soap="` + EnvelopeNS + `">`)
	if len(headers) > 0 {
		b.WriteString(`<soap:Header>`)
		for _, h := range headers {
			b.Write(h)
		}
		b.WriteString(`</soap:Header>`)
	}
	b.WriteString(`<soap:Body>`)
	b.Write(bodyXML)
	b.WriteString(`</soap:Body></soap:Envelope>`)
}

// EnvelopeRaw wraps pre-marshalled body XML into a SOAP envelope.
func EnvelopeRaw(bodyXML []byte, headers ...HeaderItem) []byte {
	b := getBuf()
	buildEnvelope(b, bodyXML, headers)
	return take(b)
}

// WriteEnvelopeRaw writes the envelope for pre-marshalled body XML
// straight to w from a pooled buffer — the response-write path runs once
// per proxied request, and EnvelopeRaw's caller-owned copy was
// measurable there.
func WriteEnvelopeRaw(w io.Writer, bodyXML []byte, headers ...HeaderItem) (int, error) {
	b := getBuf()
	buildEnvelope(b, bodyXML, headers)
	n, err := w.Write(b.Bytes())
	putBuf(b)
	return n, err
}

// FaultEnvelope renders a fault as a complete SOAP envelope.
func FaultEnvelope(f *Fault) []byte {
	b := getBuf()
	b.WriteString(`<soap:Fault><faultcode>`)
	xml.EscapeText(b, []byte(f.Code))
	b.WriteString(`</faultcode><faultstring>`)
	xml.EscapeText(b, []byte(f.String))
	b.WriteString(`</faultstring>`)
	if f.Actor != "" {
		b.WriteString(`<faultactor>`)
		xml.EscapeText(b, []byte(f.Actor))
		b.WriteString(`</faultactor>`)
	}
	if f.Detail != "" {
		b.WriteString(`<detail>`)
		xml.EscapeText(b, []byte(f.Detail))
		b.WriteString(`</detail>`)
	}
	b.WriteString(`</soap:Fault>`)
	env := EnvelopeRaw(b.Bytes())
	putBuf(b)
	return env
}

// ---------------------------------------------------------------------------
// Server

// Request carries one dispatched operation invocation.
type Request struct {
	// Operation is the local name of the invoked operation.
	Operation string
	// Envelope is the parsed incoming message.
	Envelope *Parsed
	// HTTP is the underlying transport request (for peer info).
	HTTP *http.Request
	// ResponseHeader lets handlers and middleware attach transport
	// metadata to the response (e.g. release version headers).
	ResponseHeader http.Header
}

// Decode unmarshals the operation's request element into v.
func (r *Request) Decode(v interface{}) error { return r.Envelope.DecodeBody(v) }

// Raw is a pre-marshalled response body: a handler returning Raw has its
// bytes written into the response envelope verbatim (the fault-injection
// middleware uses this to corrupt responses below the type system).
type Raw []byte

// HandlerFunc processes one operation call. Returning a *Fault (as error)
// sends that fault; any other error becomes a soap:Server fault. The
// returned value is marshalled as the response body element; a Raw value
// is written verbatim.
type HandlerFunc func(ctx context.Context, req *Request) (interface{}, error)

// Middleware wraps a handler, e.g. for fault injection or monitoring.
type Middleware func(HandlerFunc) HandlerFunc

// Server dispatches SOAP calls to registered operations. It implements
// http.Handler. The zero value is not usable; construct with NewServer.
type Server struct {
	ops  map[string]HandlerFunc
	wrap []Middleware
}

var _ http.Handler = (*Server)(nil)

// NewServer returns an empty dispatcher.
func NewServer() *Server {
	return &Server{ops: make(map[string]HandlerFunc)}
}

// Handle registers the handler for an operation name, replacing any
// previous registration. Registration is not safe concurrently with
// serving; wire the server fully before starting to listen.
func (s *Server) Handle(operation string, h HandlerFunc) {
	s.ops[operation] = h
}

// Use appends middleware applied to every operation (outermost first).
func (s *Server) Use(mw Middleware) {
	s.wrap = append(s.wrap, mw)
}

// Operations lists the registered operation names, sorted.
func (s *Server) Operations() []string {
	names := make([]string, 0, len(s.ops))
	for name := range s.ops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ServeHTTP implements http.Handler: one SOAP call per POST.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	data, err := httpx.ReadBounded(r.Body, maxMessageBytes)
	if err != nil {
		writeFault(w, ClientFault(fmt.Sprintf("reading request: %v", err)))
		return
	}
	// Route on the zero-copy sniff when the envelope is common-form; the
	// DOM parse runs only for unusual messages.
	parsed, ok := SniffEnvelope(data)
	if !ok {
		var perr error
		if parsed, perr = Parse(data); perr != nil {
			writeFault(w, ClientFault(perr.Error()))
			return
		}
	}
	op := parsed.Operation.Local
	h, ok := s.ops[op]
	if !ok {
		writeFault(w, ClientFault(fmt.Sprintf("%v: %s", ErrNoSuchOperation, op)))
		return
	}
	for i := len(s.wrap) - 1; i >= 0; i-- {
		h = s.wrap[i](h)
	}
	resp, err := h(r.Context(), &Request{Operation: op, Envelope: parsed, HTTP: r, ResponseHeader: w.Header()})
	if err != nil {
		var f *Fault
		if !errors.As(err, &f) {
			f = ServerFault(err.Error())
		}
		writeFault(w, f)
		return
	}
	var out []byte
	if raw, ok := resp.(Raw); ok {
		out = EnvelopeRaw(raw)
	} else {
		out, err = Envelope(resp)
		if err != nil {
			writeFault(w, ServerFault(fmt.Sprintf("marshalling response: %v", err)))
			return
		}
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// writeFault sends a fault with HTTP 500, per the SOAP 1.1 HTTP binding.
func writeFault(w http.ResponseWriter, f *Fault) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(FaultEnvelope(f))
}

// ---------------------------------------------------------------------------
// Client

// Client invokes operations on a SOAP endpoint.
type Client struct {
	// URL is the endpoint address.
	URL string
	// HTTP is the transport; nil means http.DefaultClient. Give it a
	// timeout — an absent response within the deadline is the evident
	// failure the middleware's availability monitoring counts.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Call invokes operation with the request payload in, decoding the
// response body into out when out is non-nil. A SOAP fault is returned as
// a *Fault error.
func (c *Client) Call(ctx context.Context, operation string, in, out interface{}) error {
	body, err := Envelope(in)
	if err != nil {
		return err
	}
	respBody, err := c.CallRaw(ctx, operation, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if inner, _, ok := SniffBody(respBody); ok {
		return decodeBody(inner, out)
	}
	parsed, err := Parse(respBody)
	if err != nil {
		return err
	}
	return parsed.DecodeBody(out)
}

// CallRaw posts a complete request envelope and returns the raw response
// envelope. SOAP faults are detected and returned as a *Fault error; the
// upgrade middleware builds on this primitive to proxy messages verbatim.
func (c *Client) CallRaw(ctx context.Context, operation string, envelope []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(envelope))
	if err != nil {
		return nil, fmt.Errorf("soap: building request: %w", err)
	}
	req.Header.Set("Content-Type", ContentType)
	req.Header.Set("SOAPAction", `"`+operation+`"`)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("soap: calling %s: %w", c.URL, err)
	}
	defer resp.Body.Close()
	data, err := httpx.ReadBounded(resp.Body, maxMessageBytes)
	if err != nil {
		return nil, fmt.Errorf("soap: reading response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return data, nil
	case http.StatusInternalServerError:
		parsed, perr := Parse(data)
		if perr == nil && parsed.Fault != nil {
			return nil, parsed.Fault
		}
		return nil, fmt.Errorf("soap: HTTP 500 without parsable fault from %s", c.URL)
	default:
		return nil, fmt.Errorf("soap: HTTP %d from %s", resp.StatusCode, c.URL)
	}
}

// ---------------------------------------------------------------------------
// Canonicalization

// Canonicalize normalizes an XML fragment for byte comparison: it drops
// comments, processing instructions and inter-element whitespace, sorts
// attributes by name, resolves namespace prefixes, and re-encodes
// deterministically. Two fragments that differ only in formatting or
// prefix choice canonicalize identically, which is what the back-to-back
// comparison of release responses (§5.1.1.3) needs.
func Canonicalize(fragment []byte) ([]byte, error) {
	b := getBuf()
	if err := canonicalizeTo(b, fragment); err != nil {
		putBuf(b)
		return nil, err
	}
	return take(b), nil
}

// canonicalizeTo writes the canonical form of fragment into b, so
// callers that only compare canonical forms can hold the result in
// pooled scratch instead of taking a per-call copy.
func canonicalizeTo(b *bytes.Buffer, fragment []byte) error {
	dec := xml.NewDecoder(bytes.NewReader(fragment))
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("soap: canonicalizing: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			b.WriteByte('<')
			writeCanonicalName(b, t.Name)
			attrs := make([]xml.Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue // namespaces are resolved into element names
				}
				attrs = append(attrs, a)
			}
			sort.Slice(attrs, func(i, j int) bool {
				if attrs[i].Name.Space != attrs[j].Name.Space {
					return attrs[i].Name.Space < attrs[j].Name.Space
				}
				return attrs[i].Name.Local < attrs[j].Name.Local
			})
			for _, a := range attrs {
				b.WriteByte(' ')
				writeCanonicalName(b, a.Name)
				b.WriteString(`="`)
				xml.EscapeText(b, []byte(a.Value))
				b.WriteByte('"')
			}
			b.WriteByte('>')
		case xml.EndElement:
			depth--
			b.WriteString("</")
			writeCanonicalName(b, t.Name)
			b.WriteByte('>')
		case xml.CharData:
			if depth == 0 || len(bytes.TrimSpace(t)) == 0 {
				continue
			}
			xml.EscapeText(b, t)
		}
	}
	return nil
}

func writeCanonicalName(b *bytes.Buffer, n xml.Name) {
	if n.Space != "" {
		b.WriteByte('{')
		b.WriteString(n.Space)
		b.WriteByte('}')
	}
	b.WriteString(n.Local)
}

// RenameRoot renames the first element of the fragment (and its matching
// end tag) to newLocal, dropping any namespace prefix from the tag name.
// The upgrade middleware uses it to translate "<op>Conf" variant requests
// (§6.2 option 3) onto the underlying operation and back.
func RenameRoot(fragment []byte, newLocal string) ([]byte, error) {
	trimmed := bytes.TrimSpace(fragment)
	if _, ok := firstElement(trimmed); !ok {
		return nil, ErrEmptyBody
	}
	// Locate the root start tag: the first "<" opening a named element
	// (skipping comments, PIs and directives).
	start := -1
	for i := 0; i < len(trimmed)-1; i++ {
		if trimmed[i] != '<' {
			continue
		}
		switch trimmed[i+1] {
		case '?', '!', '/':
			continue
		}
		start = i
		break
	}
	if start < 0 {
		return nil, ErrEmptyBody
	}
	// Extract the raw tag name as written (may include a prefix).
	nameEnd := start + 1
	for nameEnd < len(trimmed) && !isTagDelim(trimmed[nameEnd]) {
		nameEnd++
	}
	written := string(trimmed[start+1 : nameEnd])

	var b bytes.Buffer
	b.Write(trimmed[:start+1])
	b.WriteString(newLocal)
	rest := trimmed[nameEnd:]
	closeTag := []byte("</" + written + ">")
	if idx := bytes.LastIndex(rest, closeTag); idx >= 0 {
		b.Write(rest[:idx])
		b.WriteString("</" + newLocal + ">")
		b.Write(rest[idx+len(closeTag):])
	} else {
		b.Write(rest) // self-closing or unmatched: only the start tag renames
	}
	return b.Bytes(), nil
}

func isTagDelim(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' || c == '/'
}

// EqualCanonical reports whether two XML fragments canonicalize to the
// same bytes. Unparsable fragments compare by raw bytes.
//
// This is the oracle comparison primitive, called once per reply pair on
// every judged demand, so the common cases stay off the XML decoder:
// byte-identical fragments (agreeing releases serialize deterministically)
// are equal without parsing, and differing fragments canonicalize into
// pooled scratch rather than taking per-call result copies.
func EqualCanonical(a, b []byte) bool {
	if bytes.Equal(a, b) {
		return true
	}
	ca := getBuf()
	if err := canonicalizeTo(ca, a); err != nil {
		putBuf(ca)
		return false // a is unparsable: raw-byte comparison, already unequal
	}
	cb := getBuf()
	if err := canonicalizeTo(cb, b); err != nil {
		putBuf(ca)
		putBuf(cb)
		return false
	}
	eq := bytes.Equal(ca.Bytes(), cb.Bytes())
	putBuf(ca)
	putBuf(cb)
	return eq
}

// InjectElement appends a child element (rendered from raw XML) at the end
// of the first element of the given fragment and returns the new fragment.
// The §6.2 "publish the confidence in the response" mechanism uses it to
// add the confidence element to an operation response without
// understanding its schema.
func InjectElement(fragment, childXML []byte) ([]byte, error) {
	trimmed := bytes.TrimSpace(fragment)
	if len(trimmed) == 0 {
		return nil, ErrEmptyBody
	}
	// Find the matching close of the first (root) element and insert
	// before it. Self-closing roots are expanded.
	dec := xml.NewDecoder(bytes.NewReader(trimmed))
	depth := 0
	var rootEnd int64 = -1
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("soap: injecting element: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			depth--
			if depth == 0 {
				rootEnd = dec.InputOffset()
			}
		}
		if rootEnd >= 0 {
			break
		}
	}
	if rootEnd < 0 {
		return nil, fmt.Errorf("%w: no complete root element", ErrEmptyBody)
	}
	closeStart := int64(bytes.LastIndex(trimmed[:rootEnd], []byte("<")))
	if closeStart < 0 {
		return nil, fmt.Errorf("%w: malformed root element", ErrEmptyBody)
	}
	if strings.HasSuffix(string(bytes.TrimSpace(trimmed[closeStart:rootEnd])), "/>") {
		// Self-closing root: <a/> → <a>child</a>. (Attribute values
		// containing a literal "/>" would defeat this scan; the
		// machine-generated payloads this proxies never contain one.)
		name, ok := firstElement(trimmed)
		if !ok {
			return nil, ErrEmptyBody
		}
		selfClose := bytes.LastIndex(trimmed[:rootEnd], []byte("/>"))
		if selfClose < 0 {
			return nil, fmt.Errorf("%w: malformed self-closing root", ErrEmptyBody)
		}
		var b bytes.Buffer
		b.Write(trimmed[:selfClose])
		b.WriteByte('>')
		b.Write(childXML)
		b.WriteString("</" + name.Local + ">")
		b.Write(trimmed[rootEnd:])
		return b.Bytes(), nil
	}
	var b bytes.Buffer
	b.Write(trimmed[:closeStart])
	b.Write(childXML)
	b.Write(trimmed[closeStart:])
	return b.Bytes(), nil
}
