// Zero-copy envelope sniffing for the middleware's hot path.
//
// The interceptor proxies envelopes verbatim: to route a request it only
// needs the local name of the first Body child, and to re-wrap a release
// response it only needs the raw inner XML of the Body. Building a DOM
// with encoding/xml for that is the single most allocation-heavy step of
// a proxied request, so this file provides a conservative byte-level
// scanner instead. "Conservative" is the contract: every sniffing
// function reports ok=false the moment a message looks unusual
// (uncommon namespace plumbing, stray text, truncated markup,
// mismatched or over-deep tags), and the caller falls back to the full
// Parse. A sniff that succeeds agrees with Parse on well-formed input
// and vouches for a structurally sound Envelope/Header/Body tag tree;
// only content-level malformation a DOM parse would also reject —
// undefined entities, broken attribute syntax, encoding errors — can
// slip past a successful sniff.
package soap

import (
	"bytes"
	"encoding/xml"
	"sync/atomic"
)

// SniffOperation extracts the invoked operation — the local name of the
// first child element of the SOAP Body — without building a DOM.
// ok=false means "undetermined cheaply", not "invalid": fall back to
// Parse for both the unusual and the malformed.
func SniffOperation(data []byte) (operation string, ok bool) {
	s := sniffer{data: data}
	_, op, ok := s.sniffBody()
	return op, ok
}

// SniffBody extracts the raw inner XML of the SOAP Body — exactly the
// span Parse returns as BodyXML — plus the local name of its first child
// element, without building a DOM. The returned slice aliases data: when
// data is the contents of a pooled buffer (pool.Buf), the alias is only
// valid while a reference to that buffer is held, and a caller keeping
// the span past its own reference must Retain the buffer or copy the
// bytes — the dispatch layer's sniffed replies carry the buffer alongside
// the alias (adjudicate.Reply.Buf) for exactly this reason.
func SniffBody(data []byte) (bodyXML []byte, operation string, ok bool) {
	s := sniffer{data: data}
	return s.sniffBody()
}

// SniffEnvelope builds a Parsed without a DOM for common-form envelopes:
// BodyXML, HeaderXML and the operation's local name, all aliasing data.
// Two deliberate gaps versus Parse: the operation's namespace is not
// resolved (Operation.Space stays empty), and a Fault body is not
// decoded (Parsed.Fault stays nil, though the Operation reads "Fault").
// Callers needing either must fall back to Parse — as they must whenever
// ok is false.
func SniffEnvelope(data []byte) (*Parsed, bool) {
	s := sniffer{data: data}
	body, op, ok := s.sniffBody()
	if !ok {
		return nil, false
	}
	p := &Parsed{BodyXML: body, Operation: xml.Name{Local: op}}
	if len(s.headerInner) > 0 {
		p.HeaderXML = s.headerInner
	}
	return p, true
}

// sniffer is a minimal forward-only scanner over an XML document.
type sniffer struct {
	data []byte
	pos  int
	// headerInner is the raw inner XML of a Header element skipped by
	// enterBody (nil when the envelope has none).
	headerInner []byte
	// bodyName and envName are the Body and Envelope elements' raw tag
	// names as written (with prefix), recorded by enterBody for
	// close-tag matching.
	bodyName []byte
	envName  []byte
}

// sniffBody does the work of SniffBody on the scanner.
func (s *sniffer) sniffBody() (bodyXML []byte, operation string, ok bool) {
	if !s.enterBody() {
		return nil, "", false
	}
	innerStart := s.pos
	if !s.skipMisc() {
		return nil, "", false
	}
	name, _, isEnd, _, tagOK := s.readTag()
	if !tagOK || isEnd {
		return nil, "", false
	}
	local := localName(name)
	if len(local) == 0 {
		return nil, "", false
	}
	// Rewind to the start of the operation element and skip the whole
	// Body subtree to find where its close tag begins.
	closeStart, subtreeOK := s.findSubtreeClose(innerStart, s.bodyName)
	if !subtreeOK {
		return nil, "", false
	}
	// The envelope itself must close properly too: a sniff that
	// succeeds vouches for the whole structural tree, so a message the
	// DOM parse would reject is not treated as sniffed.
	if !s.skipMisc() {
		return nil, "", false
	}
	name, _, isEnd, _, tagOK = s.readTag()
	if !tagOK || !isEnd || !bytes.Equal(name, s.envName) {
		return nil, "", false
	}
	return s.data[innerStart:closeStart], internName(local), true
}

// internName converts an operation's local name to a string through a
// small interning cache: a service exposes a handful of operations, each
// sniffed on every proxied request, and the per-request string copy was
// measurable on the hot path. The cache is copy-on-write (reads are one
// atomic load plus an allocation-free map lookup) and capped so
// attacker-chosen operation names cannot grow it without bound — past
// the cap, names fall back to a plain copy.
const maxInterned = 256

var interned atomic.Pointer[map[string]string]

func internName(b []byte) string {
	m := interned.Load()
	if m != nil {
		if s, ok := (*m)[string(b)]; ok { // no-alloc lookup
			return s
		}
	}
	s := string(b)
	for {
		old := interned.Load()
		n := 0
		if old != nil {
			if cached, ok := (*old)[s]; ok {
				return cached
			}
			n = len(*old)
		}
		if n >= maxInterned {
			return s
		}
		next := make(map[string]string, n+1)
		if old != nil {
			for k, v := range *old {
				next[k] = v
			}
		}
		next[s] = s
		if interned.CompareAndSwap(old, &next) {
			return s
		}
	}
}

// enterBody positions the scanner just after the Body start tag of a
// SOAP 1.1 envelope, verifying the envelope namespace on the way.
func (s *sniffer) enterBody() bool {
	if len(s.data) > maxMessageBytes {
		return false
	}
	if !s.skipMisc() {
		return false
	}
	name, attrs, isEnd, selfClose, ok := s.readTag()
	if !ok || isEnd || selfClose {
		return false
	}
	prefix, local := splitName(name)
	if string(local) != "Envelope" || !declaresEnvelopeNS(attrs, prefix) {
		return false
	}
	s.envName = name
	// Walk the Envelope's children: skip a Header subtree, stop inside
	// Body. Anything else is unusual enough for the slow path.
	for {
		if !s.skipMisc() {
			return false
		}
		name, _, isEnd, selfClose, ok = s.readTag()
		if !ok || isEnd {
			return false
		}
		switch string(localName(name)) {
		case "Header":
			if selfClose {
				continue
			}
			headerStart := s.pos
			closeStart, ok := s.findSubtreeClose(s.pos, name)
			if !ok {
				return false
			}
			// findSubtreeClose leaves pos past the close tag.
			s.headerInner = s.data[headerStart:closeStart]
		case "Body":
			s.bodyName = name
			return !selfClose
		default:
			return false
		}
	}
}

// skipMisc advances past whitespace, comments and processing
// instructions, stopping at the next tag. It reports false on anything
// else (stray text, DOCTYPE, truncation).
func (s *sniffer) skipMisc() bool {
	for s.pos < len(s.data) {
		switch c := s.data[s.pos]; c {
		case ' ', '\t', '\r', '\n':
			s.pos++
		case '<':
			if s.pos+1 >= len(s.data) {
				return false
			}
			switch s.data[s.pos+1] {
			case '?':
				end := bytes.Index(s.data[s.pos:], []byte("?>"))
				if end < 0 {
					return false
				}
				s.pos += end + 2
			case '!':
				if !bytes.HasPrefix(s.data[s.pos:], []byte("<!--")) {
					return false // DOCTYPE or stray CDATA: slow path
				}
				end := bytes.Index(s.data[s.pos+4:], []byte("-->"))
				if end < 0 {
					return false
				}
				s.pos += 4 + end + 3
			default:
				return true
			}
		default:
			return false
		}
	}
	return false
}

// readTag parses the tag at pos (which must point at '<') and advances
// past it. Quoted attribute values may contain any byte, including '>'.
func (s *sniffer) readTag() (name, attrs []byte, isEnd, selfClose, ok bool) {
	data, i := s.data, s.pos
	if i >= len(data) || data[i] != '<' {
		return nil, nil, false, false, false
	}
	i++
	if i < len(data) && data[i] == '/' {
		isEnd = true
		i++
	}
	nameStart := i
	for i < len(data) && !isTagDelim(data[i]) {
		i++
	}
	if i == nameStart {
		return nil, nil, false, false, false
	}
	name = data[nameStart:i]
	attrStart := i
	for i < len(data) {
		switch c := data[i]; c {
		case '"', '\'':
			close := bytes.IndexByte(data[i+1:], c)
			if close < 0 {
				return nil, nil, false, false, false
			}
			i += close + 2
		case '>':
			selfClose = i > attrStart && data[i-1] == '/'
			attrEnd := i
			if selfClose {
				attrEnd--
			}
			s.pos = i + 1
			return name, data[attrStart:attrEnd], isEnd, selfClose, true
		default:
			i++
		}
	}
	return nil, nil, false, false, false
}

// sniffMaxDepth bounds the tag-name stack of findSubtreeClose. Deeper
// nesting is unusual enough for the slow path.
const sniffMaxDepth = 32

// findSubtreeClose scans the content of an element whose start tag
// (raw name open) has just been consumed, content beginning at from, and
// returns the offset of the '<' of its matching close tag, leaving pos
// just past that close tag. Every close tag must match its open tag by
// name: mismatched tags — the structural malformation a DOM parse would
// reject — report !ok so the caller falls back to Parse instead of
// treating a broken message as sniffed. Non-structural malformation
// (undefined entities, bad attribute syntax, encoding errors) is still
// only detected by a full parse.
func (s *sniffer) findSubtreeClose(from int, open []byte) (closeStart int, ok bool) {
	s.pos = from
	var stack [sniffMaxDepth][]byte
	depth := 0
	for {
		off := bytes.IndexByte(s.data[s.pos:], '<')
		if off < 0 {
			return 0, false
		}
		s.pos += off
		tagStart := s.pos
		switch {
		case bytes.HasPrefix(s.data[s.pos:], []byte("<!--")):
			end := bytes.Index(s.data[s.pos+4:], []byte("-->"))
			if end < 0 {
				return 0, false
			}
			s.pos += 4 + end + 3
		case bytes.HasPrefix(s.data[s.pos:], []byte("<![CDATA[")):
			end := bytes.Index(s.data[s.pos+9:], []byte("]]>"))
			if end < 0 {
				return 0, false
			}
			s.pos += 9 + end + 3
		case bytes.HasPrefix(s.data[s.pos:], []byte("<?")):
			end := bytes.Index(s.data[s.pos:], []byte("?>"))
			if end < 0 {
				return 0, false
			}
			s.pos += end + 2
		default:
			name, _, isEnd, selfClose, tagOK := s.readTag()
			if !tagOK {
				return 0, false
			}
			switch {
			case isEnd:
				if depth == 0 {
					if !bytes.Equal(name, open) {
						return 0, false
					}
					return tagStart, true
				}
				depth--
				if !bytes.Equal(name, stack[depth]) {
					return 0, false
				}
			case !selfClose:
				if depth == sniffMaxDepth {
					return 0, false
				}
				stack[depth] = name
				depth++
			}
		}
	}
}

// splitName splits a raw tag name into prefix and local part.
func splitName(name []byte) (prefix, local []byte) {
	if i := bytes.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return nil, name
}

func localName(name []byte) []byte {
	_, local := splitName(name)
	return local
}

// declaresEnvelopeNS reports whether the root element's attribute span
// binds the root's own prefix (or the default namespace for an
// unprefixed root) to the SOAP 1.1 envelope namespace.
func declaresEnvelopeNS(attrs []byte, prefix []byte) bool {
	i := 0
	for i < len(attrs) {
		c := attrs[i]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			i++
			continue
		}
		nameStart := i
		for i < len(attrs) && attrs[i] != '=' && !isTagDelim(attrs[i]) {
			i++
		}
		attrName := attrs[nameStart:i]
		for i < len(attrs) && (attrs[i] == ' ' || attrs[i] == '\t' || attrs[i] == '\r' || attrs[i] == '\n') {
			i++
		}
		if i >= len(attrs) || attrs[i] != '=' {
			return false
		}
		i++
		for i < len(attrs) && (attrs[i] == ' ' || attrs[i] == '\t' || attrs[i] == '\r' || attrs[i] == '\n') {
			i++
		}
		if i >= len(attrs) || (attrs[i] != '"' && attrs[i] != '\'') {
			return false
		}
		quote := attrs[i]
		i++
		valStart := i
		close := bytes.IndexByte(attrs[i:], quote)
		if close < 0 {
			return false
		}
		value := attrs[valStart : valStart+close]
		i = valStart + close + 1
		var matches bool
		if len(prefix) == 0 {
			matches = bytes.Equal(attrName, []byte("xmlns"))
		} else {
			matches = len(attrName) == 6+len(prefix) &&
				bytes.HasPrefix(attrName, []byte("xmlns:")) &&
				bytes.Equal(attrName[6:], prefix)
		}
		if matches {
			return string(value) == EnvelopeNS
		}
	}
	return false
}
