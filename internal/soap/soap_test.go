package soap

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

type addRequest struct {
	XMLName struct{} `xml:"AddRequest"`
	A       int      `xml:"a"`
	B       int      `xml:"b"`
}

type addResponse struct {
	XMLName struct{} `xml:"AddResponse"`
	Sum     int      `xml:"sum"`
}

func newCalcServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer()
	s.Handle("AddRequest", func(ctx context.Context, req *Request) (interface{}, error) {
		var in addRequest
		if err := req.Decode(&in); err != nil {
			return nil, ClientFault(err.Error())
		}
		return addResponse{Sum: in.A + in.B}, nil
	})
	s.Handle("BoomRequest", func(ctx context.Context, req *Request) (interface{}, error) {
		return nil, errors.New("internal exploded")
	})
	s.Handle("FaultRequest", func(ctx context.Context, req *Request) (interface{}, error) {
		return nil, &Fault{Code: "soap:Client", String: "bad moon", Actor: "urn:calc", Detail: "rising"}
	})
	return s
}

func TestRoundTrip(t *testing.T) {
	ts := httptest.NewServer(newCalcServer(t))
	defer ts.Close()
	c := &Client{URL: ts.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	var out addResponse
	if err := c.Call(context.Background(), "AddRequest", addRequest{A: 2, B: 40}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sum != 42 {
		t.Fatalf("sum = %d, want 42", out.Sum)
	}
}

type boomRequest struct {
	XMLName struct{} `xml:"BoomRequest"`
}

type faultRequest struct {
	XMLName struct{} `xml:"FaultRequest"`
}

func TestServerFaultFromPlainError(t *testing.T) {
	ts := httptest.NewServer(newCalcServer(t))
	defer ts.Close()
	c := &Client{URL: ts.URL}
	err := c.Call(context.Background(), "BoomRequest", boomRequest{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Code != "soap:Server" || !strings.Contains(f.String, "internal exploded") {
		t.Fatalf("fault = %+v", f)
	}
}

func TestCustomFaultPreserved(t *testing.T) {
	ts := httptest.NewServer(newCalcServer(t))
	defer ts.Close()
	c := &Client{URL: ts.URL}
	err := c.Call(context.Background(), "FaultRequest", faultRequest{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Code != "soap:Client" || f.String != "bad moon" || f.Actor != "urn:calc" || f.Detail != "rising" {
		t.Fatalf("fault fields lost: %+v", f)
	}
}

func TestUnknownOperation(t *testing.T) {
	ts := httptest.NewServer(newCalcServer(t))
	defer ts.Close()
	c := &Client{URL: ts.URL}
	err := c.Call(context.Background(), "NopeRequest", struct {
		XMLName struct{} `xml:"NopeRequest"`
	}{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if !strings.Contains(f.String, "no such operation") {
		t.Fatalf("fault = %+v", f)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(newCalcServer(t))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
}

func TestMalformedEnvelopeRejected(t *testing.T) {
	ts := httptest.NewServer(newCalcServer(t))
	defer ts.Close()
	resp, err := http.Post(ts.URL, ContentType, strings.NewReader("<not-soap/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 with fault", resp.StatusCode)
	}
}

func TestMiddleware(t *testing.T) {
	s := newCalcServer(t)
	var calls []string
	s.Use(func(next HandlerFunc) HandlerFunc {
		return func(ctx context.Context, req *Request) (interface{}, error) {
			calls = append(calls, req.Operation)
			return next(ctx, req)
		}
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{URL: ts.URL}
	var out addResponse
	if err := c.Call(context.Background(), "AddRequest", addRequest{A: 1, B: 1}, &out); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != "AddRequest" {
		t.Fatalf("middleware saw %v", calls)
	}
}

func TestOperationsSorted(t *testing.T) {
	s := newCalcServer(t)
	ops := s.Operations()
	want := []string{"AddRequest", "BoomRequest", "FaultRequest"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestParseExtractsPieces(t *testing.T) {
	env := EnvelopeRaw([]byte(`<ns:Op1Request xmlns:ns="urn:x"><p>1</p></ns:Op1Request>`),
		HeaderItem(`<h:Token xmlns:h="urn:h">abc</h:Token>`))
	p, err := Parse(env)
	if err != nil {
		t.Fatal(err)
	}
	if p.Operation.Local != "Op1Request" || p.Operation.Space != "urn:x" {
		t.Fatalf("operation = %+v", p.Operation)
	}
	if !strings.Contains(string(p.HeaderXML), "Token") {
		t.Fatalf("header = %q", p.HeaderXML)
	}
	if p.Fault != nil {
		t.Fatal("unexpected fault")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not xml":         "hello",
		"wrong namespace": `<Envelope xmlns="urn:wrong"><Body><X/></Body></Envelope>`,
		"empty body":      string(EnvelopeRaw(nil)),
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseFaultEnvelope(t *testing.T) {
	env := FaultEnvelope(&Fault{Code: "soap:Server", String: "x < y", Detail: "d"})
	p, err := Parse(env)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fault == nil {
		t.Fatal("fault not detected")
	}
	if p.Fault.String != "x < y" {
		t.Fatalf("fault string = %q (escaping broken)", p.Fault.String)
	}
}

func TestFaultError(t *testing.T) {
	f := ServerFault("downstream died")
	if !strings.Contains(f.Error(), "soap:Server") || !strings.Contains(f.Error(), "downstream died") {
		t.Fatalf("Error() = %q", f.Error())
	}
	if ClientFault("x").Code != "soap:Client" {
		t.Fatal("ClientFault code wrong")
	}
}

func TestCanonicalizeEquivalences(t *testing.T) {
	cases := []struct{ a, b string }{
		{
			`<r><x>1</x><y>2</y></r>`,
			"<r>\n  <x>1</x>\n  <y>2</y>\n</r>",
		},
		{
			`<r b="2" a="1"/>`,
			`<r a="1" b="2"></r>`,
		},
		{
			`<n:r xmlns:n="urn:x"><n:c/></n:r>`,
			`<m:r xmlns:m="urn:x"><m:c/></m:r>`,
		},
		{
			`<r><!-- comment --><x>1</x></r>`,
			`<r><x>1</x></r>`,
		},
	}
	for i, c := range cases {
		if !EqualCanonical([]byte(c.a), []byte(c.b)) {
			ca, _ := Canonicalize([]byte(c.a))
			cb, _ := Canonicalize([]byte(c.b))
			t.Errorf("case %d: not equal:\n%s\n%s", i, ca, cb)
		}
	}
}

func TestCanonicalizeDistinguishesContent(t *testing.T) {
	cases := []struct{ a, b string }{
		{`<r>1</r>`, `<r>2</r>`},
		{`<r><x/></r>`, `<r><y/></r>`},
		{`<r a="1"/>`, `<r a="2"/>`},
		{`<r>a b</r>`, `<r>ab</r>`},
		{`<n:r xmlns:n="urn:x"/>`, `<n:r xmlns:n="urn:y"/>`},
	}
	for i, c := range cases {
		if EqualCanonical([]byte(c.a), []byte(c.b)) {
			t.Errorf("case %d: %q and %q compared equal", i, c.a, c.b)
		}
	}
}

func TestEqualCanonicalFallsBackOnGarbage(t *testing.T) {
	if !EqualCanonical([]byte("raw<"), []byte("raw<")) {
		t.Fatal("identical unparsable fragments should compare equal")
	}
	if EqualCanonical([]byte("raw<"), []byte("other<")) {
		t.Fatal("different unparsable fragments should differ")
	}
}

func TestInjectElement(t *testing.T) {
	out, err := InjectElement(
		[]byte(`<Op1Response><Op1Result>hi</Op1Result></Op1Response>`),
		[]byte(`<Op1Conf>0.99</Op1Conf>`))
	if err != nil {
		t.Fatal(err)
	}
	want := `<Op1Response><Op1Result>hi</Op1Result><Op1Conf>0.99</Op1Conf></Op1Response>`
	if string(out) != want {
		t.Fatalf("got %s", out)
	}
}

func TestInjectElementSelfClosing(t *testing.T) {
	out, err := InjectElement([]byte(`<Empty/>`), []byte(`<C>1</C>`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `<Empty><C>1</C></Empty>` {
		t.Fatalf("got %s", out)
	}
}

func TestInjectElementErrors(t *testing.T) {
	if _, err := InjectElement(nil, []byte(`<c/>`)); err == nil {
		t.Fatal("nil fragment accepted")
	}
	if _, err := InjectElement([]byte(`<unclosed>`), []byte(`<c/>`)); err == nil {
		t.Fatal("unclosed fragment accepted")
	}
}

func TestClientTransportErrors(t *testing.T) {
	c := &Client{URL: "http://127.0.0.1:1", HTTP: &http.Client{Timeout: 200 * time.Millisecond}}
	err := c.Call(context.Background(), "AddRequest", addRequest{}, nil)
	if err == nil {
		t.Fatal("dead endpoint did not error")
	}
	var f *Fault
	if errors.As(err, &f) {
		t.Fatal("transport error misreported as SOAP fault")
	}
}

func TestClientContextCancellation(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	defer slow.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &Client{URL: slow.URL}
	start := time.Now()
	err := c.Call(ctx, "AddRequest", addRequest{}, nil)
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation not honoured promptly")
	}
}

func TestNon200Non500Status(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer ts.Close()
	c := &Client{URL: ts.URL}
	err := c.Call(context.Background(), "AddRequest", addRequest{}, nil)
	if err == nil || !strings.Contains(err.Error(), "418") {
		t.Fatalf("err = %v, want HTTP 418 error", err)
	}
}

func TestCallRawPassthrough(t *testing.T) {
	ts := httptest.NewServer(newCalcServer(t))
	defer ts.Close()
	c := &Client{URL: ts.URL}
	env := EnvelopeRaw([]byte(`<AddRequest><a>3</a><b>4</b></AddRequest>`))
	resp, err := c.CallRaw(context.Background(), "AddRequest", env)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	var out addResponse
	if err := p.DecodeBody(&out); err != nil {
		t.Fatal(err)
	}
	if out.Sum != 7 {
		t.Fatalf("sum = %d", out.Sum)
	}
}

func ExampleClient_Call() {
	s := NewServer()
	s.Handle("EchoRequest", func(ctx context.Context, req *Request) (interface{}, error) {
		var in struct {
			XMLName struct{} `xml:"EchoRequest"`
			Text    string   `xml:"text"`
		}
		if err := req.Decode(&in); err != nil {
			return nil, err
		}
		return struct {
			XMLName struct{} `xml:"EchoResponse"`
			Text    string   `xml:"text"`
		}{Text: in.Text}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{URL: ts.URL}
	var out struct {
		XMLName struct{} `xml:"EchoResponse"`
		Text    string   `xml:"text"`
	}
	_ = c.Call(context.Background(), "EchoRequest", struct {
		XMLName struct{} `xml:"EchoRequest"`
		Text    string   `xml:"text"`
	}{Text: "hello"}, &out)
	fmt.Println(out.Text)
	// Output: hello
}
