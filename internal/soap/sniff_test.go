package soap

import (
	"bytes"
	"testing"
)

// The contract of the sniffer: whenever it reports ok, it agrees with
// the full DOM parse on both the operation name and the raw Body span.
func TestSniffAgreesWithParse(t *testing.T) {
	envelopes := []string{
		// Plain prefixed envelope (what EnvelopeRaw emits).
		`<?xml version="1.0" encoding="UTF-8"?>` +
			`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<soap:Body><addRequest><a>2</a><b>1</b></addRequest></soap:Body></soap:Envelope>`,
		// Default-namespace envelope.
		`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body><getQuote symbol="ACME"/></Body></Envelope>`,
		// Single-quoted namespace declaration, extra attributes first.
		`<e:Envelope id="1" xmlns:e='http://schemas.xmlsoap.org/soap/envelope/'>` +
			`<e:Body><op:run xmlns:op="urn:x"><arg>1</arg></op:run></e:Body></e:Envelope>`,
		// Header subtree with nesting, comments and CDATA.
		`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<soap:Header><auth><token><![CDATA[a<b>c]]></token><!-- note --></auth></soap:Header>` +
			`<soap:Body><transfer><amount>10</amount></transfer></soap:Body></soap:Envelope>`,
		// Whitespace and comments around everything.
		"\n <!-- preamble -->\n" +
			`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` + "\n  " +
			`<soap:Body>` + "\n    " + `<ping/>` + "\n  " + `</soap:Body>` + "\n" + `</soap:Envelope>`,
		// Attribute value containing '>' inside the body.
		`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<soap:Body><check expr="a > b"><x/></check></soap:Body></soap:Envelope>`,
		// Self-closing Header.
		`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<soap:Header/><soap:Body><noop/></soap:Body></soap:Envelope>`,
		// Nested element with the same name as the operation.
		`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<soap:Body><outer><outer>deep</outer></outer></soap:Body></soap:Envelope>`,
	}
	for _, env := range envelopes {
		data := []byte(env)
		parsed, err := Parse(data)
		if err != nil {
			t.Fatalf("corpus envelope does not parse: %v\n%s", err, env)
		}
		op, ok := SniffOperation(data)
		if !ok {
			t.Errorf("SniffOperation undetermined for:\n%s", env)
			continue
		}
		if op != parsed.Operation.Local {
			t.Errorf("SniffOperation = %q, Parse = %q for:\n%s", op, parsed.Operation.Local, env)
		}
		body, bodyOp, ok := SniffBody(data)
		if !ok {
			t.Errorf("SniffBody undetermined for:\n%s", env)
			continue
		}
		if bodyOp != parsed.Operation.Local {
			t.Errorf("SniffBody op = %q, Parse = %q", bodyOp, parsed.Operation.Local)
		}
		if !bytes.Equal(body, parsed.BodyXML) {
			t.Errorf("SniffBody = %q\nParse BodyXML = %q\nfor:\n%s", body, parsed.BodyXML, env)
		}
	}
}

// Round-trip: what Envelope/EnvelopeRaw emit must always be sniffable.
func TestSniffEnvelopeRawOutput(t *testing.T) {
	env := EnvelopeRaw([]byte(`<addResponse><sum>3</sum></addResponse>`),
		HeaderItem(`<conf:Confidence xmlns:conf="urn:c" value="0.9"/>`))
	op, ok := SniffOperation(env)
	if !ok || op != "addResponse" {
		t.Fatalf("SniffOperation = %q, %v", op, ok)
	}
	body, op, ok := SniffBody(env)
	if !ok || op != "addResponse" || string(body) != `<addResponse><sum>3</sum></addResponse>` {
		t.Fatalf("SniffBody = %q, %q, %v", body, op, ok)
	}
}

// Everything unusual must be reported as undetermined, never guessed.
func TestSniffFallsBackConservatively(t *testing.T) {
	cases := map[string]string{
		"empty":             ``,
		"not xml":           `hello`,
		"not an envelope":   `<root><Body><op/></Body></root>`,
		"wrong namespace":   `<Envelope xmlns="urn:not-soap"><Body><op/></Body></Envelope>`,
		"no namespace":      `<Envelope><Body><op/></Body></Envelope>`,
		"prefix undeclared": `<soap:Envelope><soap:Body><op/></soap:Body></soap:Envelope>`,
		"empty body": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body></Body></Envelope>`,
		"self-closing body": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body/></Envelope>`,
		"truncated": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><op`,
		"mismatched tags in body": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body><op><a></b></op></Body></Envelope>`,
		"mismatched body close": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body><op/></NotBody></Envelope>`,
		"mismatched tags in header": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Header><a></b></Header><Body><op/></Body></Envelope>`,
		"mismatched envelope close": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body><op/></Body></NotEnvelope>`,
		"unclosed envelope": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body><op/></Body>`,
		"text before operation": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Body>stray<op/></Body></Envelope>`,
		"unexpected envelope child": `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<Extra/><Body><op/></Body></Envelope>`,
		"doctype": `<!DOCTYPE Envelope>` +
			`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><op/></Body></Envelope>`,
	}
	for name, env := range cases {
		if op, ok := SniffOperation([]byte(env)); ok {
			t.Errorf("%s: SniffOperation guessed %q", name, op)
		}
		if body, op, ok := SniffBody([]byte(env)); ok {
			t.Errorf("%s: SniffBody guessed %q / %q", name, op, body)
		}
	}
}

func TestSniffRejectsOversizedMessage(t *testing.T) {
	huge := append([]byte(`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><op>`),
		bytes.Repeat([]byte(" "), maxMessageBytes)...)
	huge = append(huge, []byte(`</op></Body></Envelope>`)...)
	if _, ok := SniffOperation(huge); ok {
		t.Fatal("oversized message sniffed instead of deferred to Parse's limit check")
	}
}

func BenchmarkSniffOperation(b *testing.B) {
	env := EnvelopeRaw([]byte(`<addRequest><a>2</a><b>1</b></addRequest>`))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := SniffOperation(env); !ok {
			b.Fatal("sniff failed")
		}
	}
}

func BenchmarkSniffBodyVsParse(b *testing.B) {
	env := EnvelopeRaw([]byte(`<addResponse><sum>42</sum></addResponse>`))
	b.Run("sniff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, ok := SniffBody(env); !ok {
				b.Fatal("sniff failed")
			}
		}
	})
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Parse(env); err != nil {
				b.Fatal(err)
			}
		}
	})
}
