package soap

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// xmlSafeString is a quick generator producing strings XML can round-trip
// (printable ASCII — the decoder rejects most control characters).
type xmlSafeString string

var _ quick.Generator = xmlSafeString("")

// Generate implements quick.Generator.
func (xmlSafeString) Generate(r *rand.Rand, size int) reflect.Value {
	const alphabet = "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789<>&\"'-_.,!?()"
	n := r.Intn(size + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return reflect.ValueOf(xmlSafeString(b.String()))
}

type echoPayload struct {
	XMLName struct{} `xml:"EchoRequest"`
	Text    string   `xml:"text"`
	Number  int      `xml:"number"`
	Flag    bool     `xml:"flag"`
}

// Property: envelope marshalling round-trips arbitrary payload content,
// including XML metacharacters.
func TestEnvelopeRoundTripProperty(t *testing.T) {
	f := func(text xmlSafeString, number int, flag bool) bool {
		in := echoPayload{Text: string(text), Number: number, Flag: flag}
		env, err := Envelope(in)
		if err != nil {
			return false
		}
		parsed, err := Parse(env)
		if err != nil {
			return false
		}
		if parsed.Operation.Local != "EchoRequest" {
			return false
		}
		var out echoPayload
		if err := parsed.DecodeBody(&out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canonical equality is reflexive and symmetric on round-
// trippable payloads, and headers do not affect body comparison.
func TestCanonicalEqualityProperty(t *testing.T) {
	f := func(text xmlSafeString, number int) bool {
		in := echoPayload{Text: string(text), Number: number}
		a, err := Envelope(in)
		if err != nil {
			return false
		}
		b, err := Envelope(in, HeaderItem(`<h xmlns="urn:h">x</h>`))
		if err != nil {
			return false
		}
		pa, err1 := Parse(a)
		pb, err2 := Parse(b)
		if err1 != nil || err2 != nil {
			return false
		}
		if !EqualCanonical(pa.BodyXML, pb.BodyXML) {
			return false
		}
		return EqualCanonical(pa.BodyXML, pa.BodyXML)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canonical equality distinguishes payloads that differ in a
// field value.
func TestCanonicalInequalityProperty(t *testing.T) {
	f := func(text xmlSafeString, n int) bool {
		a, err := Envelope(echoPayload{Text: string(text), Number: n})
		if err != nil {
			return false
		}
		b, err := Envelope(echoPayload{Text: string(text), Number: n + 1})
		if err != nil {
			return false
		}
		pa, err1 := Parse(a)
		pb, err2 := Parse(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return !EqualCanonical(pa.BodyXML, pb.BodyXML)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RenameRoot preserves the payload and renames exactly the root.
func TestRenameRootProperty(t *testing.T) {
	f := func(text xmlSafeString, number int) bool {
		in := echoPayload{Text: string(text), Number: number}
		env, err := Envelope(in)
		if err != nil {
			return false
		}
		parsed, err := Parse(env)
		if err != nil {
			return false
		}
		renamed, err := RenameRoot(parsed.BodyXML, "RenamedRequest")
		if err != nil {
			return false
		}
		reparsed, err := Parse(EnvelopeRaw(renamed))
		if err != nil {
			return false
		}
		if reparsed.Operation.Local != "RenamedRequest" {
			return false
		}
		var out struct {
			XMLName struct{} `xml:"RenamedRequest"`
			Text    string   `xml:"text"`
			Number  int      `xml:"number"`
		}
		if err := reparsed.DecodeBody(&out); err != nil {
			return false
		}
		return out.Text == in.Text && out.Number == in.Number
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: InjectElement keeps the original children and appends the new
// one inside the root.
func TestInjectElementProperty(t *testing.T) {
	f := func(text xmlSafeString) bool {
		in := echoPayload{Text: string(text), Number: 7}
		env, err := Envelope(in)
		if err != nil {
			return false
		}
		parsed, err := Parse(env)
		if err != nil {
			return false
		}
		injected, err := InjectElement(parsed.BodyXML, []byte(`<extra>1</extra>`))
		if err != nil {
			return false
		}
		var out struct {
			XMLName struct{} `xml:"EchoRequest"`
			Text    string   `xml:"text"`
			Number  int      `xml:"number"`
			Extra   int      `xml:"extra"`
		}
		reparsed, err := Parse(EnvelopeRaw(injected))
		if err != nil {
			return false
		}
		if err := reparsed.DecodeBody(&out); err != nil {
			return false
		}
		return out.Text == in.Text && out.Number == in.Number && out.Extra == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
