package pool

import (
	"sync"
	"sync/atomic"
)

// defaultMaxBufCap bounds the capacity a BufPool retains when MaxCap is
// zero: an occasional giant body must not pin its buffer in the pool
// forever.
const defaultMaxBufCap = 1 << 16

// Buf is a pooled byte buffer with an explicit reference count — the
// unit of the body-buffer ownership protocol. A Get returns a buffer
// with one reference, owned by the caller; every transfer of ownership
// hands that reference on, every new alias that outlives the current
// owner takes its own reference with Retain, and each reference is
// discharged by exactly one Release. The final Release recycles the
// buffer, so any alias kept past one's own Release (a sniffed body, a
// logged observation) reads recycled memory — the aliasing hazard the
// protocol exists to make explicit.
//
// The reference count is atomic: Retain and Release are safe from
// concurrent owners, but the contents B are not synchronized — writers
// must be the sole owner.
type Buf struct {
	// B is the buffer contents. The owner may reslice and append to it
	// freely; the backing array returns to the pool on final Release.
	B []byte

	refs atomic.Int32
	pool *BufPool
}

// Retain adds a reference: the caller is keeping an alias of B beyond
// the lifetime of the reference it already holds, and commits to one
// additional Release. Retain on a nil buffer is a no-op, so unpooled
// bodies (nil Buf) flow through the same call sites.
//
//wsu:noalloc
func (b *Buf) Retain() {
	if b == nil {
		return
	}
	b.refs.Add(1)
}

// Release discharges one reference; the final one recycles the buffer
// into its pool, after which B must not be touched. Releasing more
// times than Get+Retain granted is a protocol violation and panics.
// Release on a nil buffer is a no-op (see Retain).
//
//wsu:noalloc
//wsu:owns b
//wsu:allow poolcheck -- a positive refcount keeps the buffer live; the final Release recycles it
func (b *Buf) Release() {
	if b == nil {
		return
	}
	switch n := b.refs.Add(-1); {
	case n > 0:
	case n == 0:
		b.pool.put(b)
	default:
		//wsu:allow noalloc -- the over-release panic is a protocol violation, never the steady state
		panic("pool: Buf released more times than its references allow")
	}
}

// Refs reports the current reference count (for tests and diagnostics).
func (b *Buf) Refs() int {
	if b == nil {
		return 0
	}
	return int(b.refs.Load())
}

// BufPool recycles Bufs. The zero value is ready to use.
type BufPool struct {
	// MaxCap bounds the capacity put keeps; larger buffers are dropped
	// to the GC. Zero means a 64 KiB default.
	MaxCap int

	bufs sync.Pool // *Buf with refs == 0
}

// Get returns a buffer with one reference and zero-length contents.
// Ownership transfers to the caller: exactly one Release (plus one per
// extra Retain) must eventually pair with it.
//
//wsu:owns return
func (p *BufPool) Get() *Buf {
	if b, ok := p.bufs.Get().(*Buf); ok {
		b.refs.Store(1)
		b.B = b.B[:0]
		return b
	}
	b := &Buf{pool: p}
	b.refs.Store(1)
	return b
}

// put recycles a fully released buffer, dropping oversized ones.
//
//wsu:owns b
//wsu:allow poolcheck -- oversized buffers are dropped to the GC by design
func (p *BufPool) put(b *Buf) {
	max := p.MaxCap
	if max == 0 {
		max = defaultMaxBufCap
	}
	if cap(b.B) > max {
		return
	}
	b.B = b.B[:0]
	p.bufs.Put(b)
}
