// Package pool holds the small recycling primitives the request hot
// path shares. They exist because the obvious sync.Pool idioms allocate
// on exactly the path pooling is meant to clear: Put(&s) boxes a fresh
// slice header per cycle, which the two-pool dance here avoids.
package pool

import "sync"

// Slice recycles []T scratch slices with zero steady-state allocations
// on either side of the cycle: the drained *[]T boxes travel in their
// own pool, so Put refills one instead of boxing a fresh slice header.
//
// Put's caller owns the aliasing discipline: nothing may retain the
// slice, and element references the caller cares about must be cleared
// before Put (backing-array entries beyond the next user's length stay
// reachable until overwritten).
type Slice[T any] struct {
	full  sync.Pool // *[]T boxes holding a recyclable slice
	empty sync.Pool // drained boxes awaiting a slice
}

// Get returns a zero-length slice with capacity at least min. A pooled
// slice whose capacity is too small is dropped in favour of a fresh
// allocation, matching the grow-once shape of scratch buffers.
func (p *Slice[T]) Get(min int) []T {
	if bp, ok := p.full.Get().(*[]T); ok {
		s := *bp
		*bp = nil
		p.empty.Put(bp)
		if cap(s) >= min {
			return s[:0]
		}
	}
	if min < 8 {
		min = 8
	}
	return make([]T, 0, min)
}

// Put recycles s for a future Get.
func (p *Slice[T]) Put(s []T) {
	bp, ok := p.empty.Get().(*[]T)
	if !ok {
		bp = new([]T)
	}
	*bp = s[:0]
	p.full.Put(bp)
}
