package pool

import "testing"

func TestSliceRoundTrip(t *testing.T) {
	var p Slice[int]
	s := p.Get(4)
	if len(s) != 0 || cap(s) < 4 {
		t.Fatalf("Get(4): len %d cap %d", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	p.Put(s)
	s2 := p.Get(2)
	if len(s2) != 0 {
		t.Fatalf("recycled slice has len %d", len(s2))
	}
}

func TestSliceGrowsPastSmallPooled(t *testing.T) {
	var p Slice[byte]
	p.Put(make([]byte, 0, 8))
	s := p.Get(1024)
	if cap(s) < 1024 {
		t.Fatalf("cap = %d, want ≥1024", cap(s))
	}
}

func TestSliceSteadyStateAllocFree(t *testing.T) {
	var p Slice[int]
	// Warm both pools.
	p.Put(p.Get(16))
	allocs := testing.AllocsPerRun(100, func() {
		s := p.Get(16)
		s = append(s, 42)
		p.Put(s)
	})
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocates %.1f/op", allocs)
	}
}
