package pool

import (
	"bytes"
	"testing"
)

func TestBufGetRelease(t *testing.T) {
	var p BufPool
	b := p.Get()
	if b.Refs() != 1 {
		t.Fatalf("fresh Buf has %d refs, want 1", b.Refs())
	}
	b.B = append(b.B, "hello"...)
	b.Release()
	if b.Refs() != 0 {
		t.Fatalf("released Buf has %d refs, want 0", b.Refs())
	}
}

func TestBufRecycles(t *testing.T) {
	var p BufPool
	b := p.Get()
	b.B = append(b.B, bytes.Repeat([]byte("x"), 1024)...)
	b.Release()
	// The next Get must come back zero-length even when it reuses the
	// released buffer's backing array.
	c := p.Get()
	if len(c.B) != 0 {
		t.Fatalf("recycled Buf has len %d, want 0", len(c.B))
	}
	if c.Refs() != 1 {
		t.Fatalf("recycled Buf has %d refs, want 1", c.Refs())
	}
	c.Release()
}

func TestBufRetainDefersRecycle(t *testing.T) {
	var p BufPool
	b := p.Get()
	b.B = append(b.B, "payload"...)
	b.Retain() // second owner
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("after Retain+Release refs = %d, want 1", b.Refs())
	}
	// Still live: contents must be intact and the pool must not hand
	// the buffer out again.
	if string(b.B) != "payload" {
		t.Fatalf("retained Buf contents clobbered: %q", b.B)
	}
	b.Release()
	if b.Refs() != 0 {
		t.Fatalf("after final Release refs = %d, want 0", b.Refs())
	}
}

func TestBufOverReleasePanics(t *testing.T) {
	var p = BufPool{}
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	b.Release()
}

func TestBufNilSafe(t *testing.T) {
	var b *Buf
	b.Retain()
	b.Release()
	if b.Refs() != 0 {
		t.Fatal("nil Buf reports nonzero refs")
	}
}

func TestBufPoolDropsOversized(t *testing.T) {
	p := BufPool{MaxCap: 64}
	b := p.Get()
	b.B = append(b.B, bytes.Repeat([]byte("x"), 128)...)
	b.Release()
	c := p.Get()
	defer c.Release()
	if cap(c.B) > 64 {
		t.Fatalf("oversized buffer was retained: cap %d", cap(c.B))
	}
}
