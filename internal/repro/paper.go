package repro

// PaperTable2Cell is one published cell of Table 2 ("Duration of managed
// upgrade"), kept as the paper prints it, including the qualitative notes.
type PaperTable2Cell struct {
	Criterion1 string
	Criterion2 string
	Criterion3 string
}

// PaperTable2 returns the published Table 2, keyed by scenario name then
// detection regime name, for side-by-side reporting in EXPERIMENTS.md and
// cmd/repro. Values are demands until switch.
func PaperTable2() map[string]map[string]PaperTable2Cell {
	return map[string]map[string]PaperTable2Cell{
		"scenario-1": {
			"perfect": {
				Criterion1: "35,500 demands",
				Criterion2: "Not attainable (> 50,000)",
				Criterion3: "40,000 demands",
			},
			"omission": {
				Criterion1: "22,000 (oscillates till 26,000)",
				Criterion2: "50,000 demands",
				Criterion3: "35,000 demands",
			},
			"back-to-back": {
				Criterion1: "20,000",
				Criterion2: "40,000",
				Criterion3: "34,000 demands",
			},
		},
		"scenario-2": {
			"perfect": {
				Criterion1: "1,400 demands",
				Criterion2: "10,000 demands",
				Criterion3: "1,100 demands",
			},
			"omission": {
				Criterion1: "1,400 demands",
				Criterion2: "7,000",
				Criterion3: "1,100 demands",
			},
			"back-to-back": {
				Criterion1: "1,400 demands",
				Criterion2: "6,000 demands",
				Criterion3: "1,100 demands",
			},
		},
	}
}

// PaperTable5Run1 holds the published system row of Table 5, run 1, for
// the three timeouts — used by EXPERIMENTS.md to anchor the comparison.
// Fields: MET (s), CR, EER, NER, Total, NRDT out of 10,000 requests.
type PaperSimCell struct {
	MET                float64
	CR, EER, NER, NRDT int
}

// PaperTable5SystemRun1 returns the paper's Table 5 run-1 system cells
// keyed by timeout.
func PaperTable5SystemRun1() map[float64]PaperSimCell {
	return map[float64]PaperSimCell{
		1.5: {MET: 1.2194, CR: 6762, EER: 1449, NER: 1463, NRDT: 326},
		2.0: {MET: 1.2290, CR: 6815, EER: 1470, NER: 1472, NRDT: 243},
		3.0: {MET: 1.2357, CR: 6851, EER: 1475, NER: 1480, NRDT: 194},
	}
}

// PaperTable6SystemRun1 returns the paper's Table 6 run-1 system cells
// keyed by timeout.
func PaperTable6SystemRun1() map[float64]PaperSimCell {
	return map[float64]PaperSimCell{
		1.5: {MET: 1.2095, CR: 7759, EER: 755, NER: 1177, NRDT: 309},
		2.0: {MET: 1.2191, CR: 7812, EER: 758, NER: 1194, NRDT: 236},
		3.0: {MET: 1.2267, CR: 7853, EER: 768, NER: 1201, NRDT: 178},
	}
}
