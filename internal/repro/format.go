package repro

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// FormatTable2 renders one or more switch studies as the paper's Table 2,
// with the published values alongside when available.
func FormatTable2(results ...*StudyResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	paper := PaperTable2()
	fmt.Fprintln(w, "Table 2: Duration of managed upgrade (demands until switch)")
	fmt.Fprintln(w, "scenario\tregime\tcriterion\tmeasured\tpaper")
	for _, res := range results {
		for _, rr := range res.Regimes {
			pcell, hasPaper := paper[res.Scenario][rr.Regime]
			pvals := [numCriteria]string{pcell.Criterion1, pcell.Criterion2, pcell.Criterion3}
			for ci, cr := range rr.Criteria {
				measured := "not attained"
				if cr.Attained {
					measured = fmt.Sprintf("%d", cr.FirstSwitch)
					if cr.StableSwitch > cr.FirstSwitch {
						measured += fmt.Sprintf(" (oscillates till %d)", cr.StableSwitch)
					}
				} else {
					measured = fmt.Sprintf("not attained (> %d)", res.Config.MaxDemands)
				}
				pv := "-"
				if hasPaper {
					pv = pvals[ci]
				}
				fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", res.Scenario, rr.Regime, cr.Criterion, measured, pv)
			}
		}
	}
	w.Flush()
	return b.String()
}

// FormatTrajectory renders a study's percentile curves as the data behind
// Fig 7 (Scenario 1) or Fig 8 (Scenario 2).
func FormatTrajectory(res *StudyResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fig := "Figure 7"
	if strings.HasSuffix(res.Scenario, "2") {
		fig = "Figure 8"
	}
	fmt.Fprintf(w, "%s: percentiles vs demands (%s)\n", fig, res.Scenario)
	fmt.Fprintln(w, "demands\tChB 90% perfect\tChB 99% perfect\tChB 99% omission\tChB 99% back-to-back\tChA 99% perfect")
	for _, p := range res.Trajectory {
		fmt.Fprintf(w, "%d\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\n",
			p.Demands, p.B90Perfect, p.B99Perfect, p.B99Omission, p.B99BackToBack, p.A99Perfect)
	}
	w.Flush()
	return b.String()
}

// FormatAvailability renders Table 5 or Table 6 rows in the paper's
// layout: one block per run × timeout with per-release and system
// columns.
func FormatAvailability(title string, rows []AvailabilityRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, "run\ttimeout\tmetric\tRel1\tRel2\tSystem")
	for _, row := range rows {
		r := row.Result
		fmt.Fprintf(w, "%d\t%.1f\tMET\t%.4f\t%.4f\t%.4f\n", row.Run, row.TimeOut, r.Rel1.MET, r.Rel2.MET, r.System.MET)
		fmt.Fprintf(w, "%d\t%.1f\tCR\t%d\t%d\t%d\n", row.Run, row.TimeOut, r.Rel1.CR, r.Rel2.CR, r.System.CR)
		fmt.Fprintf(w, "%d\t%.1f\tEER\t%d\t%d\t%d\n", row.Run, row.TimeOut, r.Rel1.EER, r.Rel2.EER, r.System.EER)
		fmt.Fprintf(w, "%d\t%.1f\tNER\t%d\t%d\t%d\n", row.Run, row.TimeOut, r.Rel1.NER, r.Rel2.NER, r.System.NER)
		fmt.Fprintf(w, "%d\t%.1f\tTotal\t%d\t%d\t%d\n", row.Run, row.TimeOut, r.Rel1.Total(), r.Rel2.Total(), r.System.Total())
		fmt.Fprintf(w, "%d\t%.1f\tNRDT\t%d\t%d\t%d\n", row.Run, row.TimeOut, r.Rel1.NRDT, r.Rel2.NRDT, r.System.NRDT)
	}
	w.Flush()
	return b.String()
}

// FormatModeAblation renders the §4.2 operating-mode comparison.
func FormatModeAblation(rows []ModeAblationRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Operating-mode ablation (§4.2): system outcomes on one workload")
	fmt.Fprintln(w, "mode\tMET\tCR\tEER\tNER\tNRDT\texecutions")
	for _, row := range rows {
		s := row.Result.System
		fmt.Fprintf(w, "%s\t%.4f\t%d\t%d\t%d\t%d\t%d\n",
			row.Label, s.MET, s.CR, s.EER, s.NER, s.NRDT, s.Executions)
	}
	w.Flush()
	return b.String()
}
