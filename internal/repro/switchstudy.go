// Package repro is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section from the building blocks in
// internal/bayes, internal/relmodel and internal/upgsim, and formats them
// for side-by-side comparison with the published values.
//
// Experiment index:
//
//	Table 2  — duration of the managed upgrade under three switch
//	           criteria × three failure-detection regimes (RunSwitchStudy)
//	Fig 7/8  — percentile trajectories for Scenarios 1 and 2
//	           (RunSwitchStudy, Trajectory field)
//	Table 5  — availability/performance simulation, correlated releases
//	           (RunAvailabilityStudy with correlated=true)
//	Table 6  — same with independent releases (correlated=false)
//
// plus the design ablations called out in DESIGN.md (grid resolution,
// operating modes, dynamic quorum).
package repro

import (
	"errors"
	"fmt"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/xrand"
)

// ErrBadStudy reports an invalid study configuration.
var ErrBadStudy = errors.New("repro: bad study configuration")

// Regime indexes the three failure-detection regimes of Table 2.
type Regime int

const (
	// RegimePerfect uses error-free oracles.
	RegimePerfect Regime = iota
	// RegimeOmission uses oracles that miss each failure with
	// probability Pomit (0.15 in the paper).
	RegimeOmission
	// RegimeBackToBack detects failures only by comparing the two
	// releases, pessimistically missing all coincident failures.
	RegimeBackToBack

	numRegimes = 3
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimePerfect:
		return "perfect"
	case RegimeOmission:
		return "omission"
	case RegimeBackToBack:
		return "back-to-back"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// CriterionID indexes the three switch criteria of §5.1.1.2.
type CriterionID int

const (
	// Criterion1 switches when the new release reaches the old release's
	// prior dependability level.
	Criterion1 CriterionID = iota
	// Criterion2 switches when the new release meets an explicit target.
	Criterion2
	// Criterion3 switches when the new release is no worse than the old
	// on the evolving posteriors.
	Criterion3

	numCriteria = 3
)

// String implements fmt.Stringer.
func (c CriterionID) String() string {
	switch c {
	case Criterion1:
		return "criterion-1"
	case Criterion2:
		return "criterion-2"
	case Criterion3:
		return "criterion-3"
	default:
		return fmt.Sprintf("CriterionID(%d)", int(c))
	}
}

// GridConfig sets the white-box inference resolution for a study. Zero
// values take the bayes package defaults (100×100×40, 200 marginal bins).
type GridConfig struct {
	A, B, C, AB int
}

// StudyConfig parameterizes one Table 2 / Fig 7 / Fig 8 sweep.
type StudyConfig struct {
	// Scenario provides priors, ground truth and study length.
	Scenario relmodel.Scenario
	// Pomit is the omission regime's miss probability (default 0.15).
	Pomit float64
	// Step is the checkpoint granularity in demands (default 500).
	Step int
	// MaxDemands caps the sweep (default Scenario.Demands).
	MaxDemands int
	// Grid sets the inference resolution.
	Grid GridConfig
	// Seed drives the Monte-Carlo demand stream and the omission oracle.
	Seed uint64
}

func (c *StudyConfig) applyDefaults() {
	if c.Pomit == 0 {
		c.Pomit = 0.15
	}
	if c.Step == 0 {
		c.Step = 500
	}
	if c.MaxDemands == 0 {
		c.MaxDemands = c.Scenario.Demands
	}
}

// CriterionResult reports when one criterion allowed the switch.
type CriterionResult struct {
	// Criterion names the switch rule.
	Criterion string
	// Attained reports whether the criterion was ever satisfied.
	Attained bool
	// FirstSwitch is the demand count at the first checkpoint satisfying
	// the criterion (0 when never attained).
	FirstSwitch int
	// StableSwitch is the first checkpoint from which the criterion
	// remained satisfied until the end of the sweep (0 when none). A
	// StableSwitch later than FirstSwitch is the paper's "oscillates
	// till N" phenomenon.
	StableSwitch int
}

// RegimeResult groups the per-criterion outcomes of one detection regime.
type RegimeResult struct {
	// Regime names the detection regime.
	Regime string
	// Criteria holds the outcomes indexed by CriterionID.
	Criteria [numCriteria]CriterionResult
}

// TrajectoryPoint is one checkpoint of the Fig 7 / Fig 8 percentile
// curves. All values are pfd percentiles (eq. 6 read at 90% or 99%).
type TrajectoryPoint struct {
	// Demands is the checkpoint position.
	Demands int
	// A99Perfect is Channel A's 99% percentile with perfect oracles.
	A99Perfect float64
	// B90Perfect is Channel B's 90% percentile with perfect oracles.
	B90Perfect float64
	// B99Perfect is Channel B's 99% percentile with perfect oracles.
	B99Perfect float64
	// B99Omission is Channel B's 99% percentile with omission oracles.
	B99Omission float64
	// B99BackToBack is Channel B's 99% percentile under back-to-back
	// testing.
	B99BackToBack float64
}

// StudyResult is a complete Table 2 block plus the figure trajectory for
// one scenario.
type StudyResult struct {
	// Scenario names the study.
	Scenario string
	// Config echoes the effective configuration.
	Config StudyConfig
	// Regimes holds the switch outcomes indexed by Regime.
	Regimes [numRegimes]RegimeResult
	// Trajectory holds the percentile curves (Fig 7 for Scenario 1,
	// Fig 8 for Scenario 2).
	Trajectory []TrajectoryPoint
	// Counts holds the final observation record per regime.
	Counts [numRegimes]bayes.JointCounts
	// TrueFailures counts the actual (pre-detection) failures of each
	// release over the sweep.
	TrueAFailures, TrueBFailures int
}

// RunSwitchStudy executes the Monte-Carlo + inference sweep behind
// Table 2 and Figures 7/8 for one scenario: it simulates the demand
// stream, pushes it through the three detection regimes, runs the
// white-box Bayesian inference at every checkpoint, evaluates the three
// switch criteria, and records the percentile trajectories.
func RunSwitchStudy(cfg StudyConfig) (*StudyResult, error) {
	cfg.applyDefaults()
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStudy, err)
	}
	if cfg.Step <= 0 || cfg.MaxDemands <= 0 {
		return nil, fmt.Errorf("%w: step %d, max demands %d", ErrBadStudy, cfg.Step, cfg.MaxDemands)
	}

	engine, err := bayes.NewWhiteBox(bayes.WhiteBoxConfig{
		PriorA: cfg.Scenario.PriorA,
		PriorB: cfg.Scenario.PriorB,
		GridA:  cfg.Grid.A,
		GridB:  cfg.Grid.B,
		GridC:  cfg.Grid.C,
		GridAB: cfg.Grid.AB,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: building inference engine: %w", err)
	}

	c1, err := bayes.NewCriterion1(cfg.Scenario.PriorA, cfg.Scenario.Confidence)
	if err != nil {
		return nil, fmt.Errorf("repro: criterion 1: %w", err)
	}
	criteria := [numCriteria]bayes.Criterion{
		c1,
		bayes.Criterion2{Confidence: cfg.Scenario.Confidence, Target: cfg.Scenario.C2Target},
		bayes.Criterion3{Confidence: cfg.Scenario.Confidence},
	}

	omission, err := bayes.NewOmissionDetector(cfg.Pomit, xrand.New(cfg.Seed^0x0a11dd7))
	if err != nil {
		return nil, fmt.Errorf("repro: omission detector: %w", err)
	}
	detectors := [numRegimes]bayes.Detector{
		RegimePerfect:    bayes.PerfectDetector{},
		RegimeOmission:   omission,
		RegimeBackToBack: bayes.BackToBackDetector{},
	}

	res := &StudyResult{Scenario: cfg.Scenario.Name, Config: cfg}
	var satisfied [numRegimes][numCriteria][]bool
	var checkpoints []int

	demandRng := xrand.New(cfg.Seed)
	var counts [numRegimes]bayes.JointCounts

	for demand := 1; demand <= cfg.MaxDemands; demand++ {
		aFailed, bFailed := cfg.Scenario.Truth.Sample(demandRng)
		if aFailed {
			res.TrueAFailures++
		}
		if bFailed {
			res.TrueBFailures++
		}
		for r := 0; r < numRegimes; r++ {
			ra, rb := detectors[r].Detect(aFailed, bFailed)
			counts[r].Add(bayes.Outcome(ra, rb))
		}

		if demand%cfg.Step != 0 && demand != cfg.MaxDemands {
			continue
		}
		checkpoints = append(checkpoints, demand)
		point := TrajectoryPoint{Demands: demand}
		for r := 0; r < numRegimes; r++ {
			post, err := engine.Posterior(counts[r])
			if err != nil {
				return nil, fmt.Errorf("repro: posterior at %d demands (%v): %w",
					demand, Regime(r), err)
			}
			for ci, crit := range criteria {
				satisfied[r][ci] = append(satisfied[r][ci], crit.Satisfied(post))
			}
			switch Regime(r) {
			case RegimePerfect:
				point.A99Perfect = post.PercentileA(0.99)
				point.B90Perfect = post.PercentileB(0.90)
				point.B99Perfect = post.PercentileB(0.99)
			case RegimeOmission:
				point.B99Omission = post.PercentileB(0.99)
			case RegimeBackToBack:
				point.B99BackToBack = post.PercentileB(0.99)
			}
		}
		res.Trajectory = append(res.Trajectory, point)
	}

	for r := 0; r < numRegimes; r++ {
		res.Counts[r] = counts[r]
		rr := RegimeResult{Regime: Regime(r).String()}
		for ci := 0; ci < numCriteria; ci++ {
			cr := CriterionResult{Criterion: CriterionID(ci).String()}
			sats := satisfied[r][ci]
			for k, ok := range sats {
				if ok {
					cr.Attained = true
					cr.FirstSwitch = checkpoints[k]
					break
				}
			}
			// Stable switch: last unsatisfied checkpoint + 1 position.
			lastBad := -1
			for k, ok := range sats {
				if !ok {
					lastBad = k
				}
			}
			if lastBad+1 < len(sats) {
				cr.StableSwitch = checkpoints[lastBad+1]
			}
			rr.Criteria[ci] = cr
		}
		res.Regimes[r] = rr
	}
	return res, nil
}
