package repro

import (
	"strings"
	"testing"

	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/upgsim"
)

// coarse grid settings keep the fast tests fast; the fidelity test below
// uses the full resolution.
var coarse = GridConfig{A: 40, B: 40, C: 12, AB: 64}

func runStudy(t *testing.T, cfg StudyConfig) *StudyResult {
	t.Helper()
	res, err := RunSwitchStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSwitchStudyValidation(t *testing.T) {
	bad := StudyConfig{Scenario: relmodel.Scenario{}}
	if _, err := RunSwitchStudy(bad); err == nil {
		t.Fatal("empty scenario accepted")
	}
}

func TestRegimeAndCriterionStrings(t *testing.T) {
	if RegimePerfect.String() != "perfect" || RegimeOmission.String() != "omission" ||
		RegimeBackToBack.String() != "back-to-back" {
		t.Fatal("regime names wrong")
	}
	if Regime(9).String() != "Regime(9)" {
		t.Fatal("unknown regime name wrong")
	}
	if Criterion1.String() != "criterion-1" || Criterion2.String() != "criterion-2" ||
		Criterion3.String() != "criterion-3" {
		t.Fatal("criterion names wrong")
	}
	if CriterionID(9).String() != "CriterionID(9)" {
		t.Fatal("unknown criterion name wrong")
	}
}

func TestSwitchStudyDeterminism(t *testing.T) {
	cfg := StudyConfig{Scenario: relmodel.Scenario2(), Step: 500, MaxDemands: 4000,
		Grid: coarse, Seed: 7}
	a := runStudy(t, cfg)
	b := runStudy(t, cfg)
	if a.TrueAFailures != b.TrueAFailures || a.TrueBFailures != b.TrueBFailures {
		t.Fatal("same seed, different demand streams")
	}
	for r := range a.Regimes {
		if a.Regimes[r] != b.Regimes[r] {
			t.Fatalf("same seed, different outcomes in %s", a.Regimes[r].Regime)
		}
	}
}

func TestSwitchStudyCheckpointStructure(t *testing.T) {
	cfg := StudyConfig{Scenario: relmodel.Scenario2(), Step: 300, MaxDemands: 1000,
		Grid: coarse, Seed: 1}
	res := runStudy(t, cfg)
	// Checkpoints at 300, 600, 900 and the final 1000.
	want := []int{300, 600, 900, 1000}
	if len(res.Trajectory) != len(want) {
		t.Fatalf("got %d checkpoints, want %d", len(res.Trajectory), len(want))
	}
	for i, p := range res.Trajectory {
		if p.Demands != want[i] {
			t.Fatalf("checkpoint %d at %d demands, want %d", i, p.Demands, want[i])
		}
	}
	// All three regimes saw every demand.
	for r, c := range res.Counts {
		if c.N != 1000 {
			t.Fatalf("regime %s recorded %d demands, want 1000", Regime(r), c.N)
		}
	}
}

// The detection regimes distort the record in the documented directions:
// omission strictly removes failures; back-to-back removes exactly the
// coincident ones.
func TestDetectionRegimeBookkeeping(t *testing.T) {
	cfg := StudyConfig{Scenario: relmodel.Scenario1(), Step: 10000, MaxDemands: 50000,
		Grid: coarse, Seed: 42}
	res := runStudy(t, cfg)
	perfect := res.Counts[RegimePerfect]
	omission := res.Counts[RegimeOmission]
	b2b := res.Counts[RegimeBackToBack]

	if perfect.AFailures() != res.TrueAFailures || perfect.BFailures() != res.TrueBFailures {
		t.Fatalf("perfect regime lost failures: %+v vs true %d/%d",
			perfect, res.TrueAFailures, res.TrueBFailures)
	}
	if omission.AFailures() > perfect.AFailures() || omission.BFailures() > perfect.BFailures() {
		t.Fatal("omission regime invented failures")
	}
	if b2b.Both != 0 {
		t.Fatalf("back-to-back recorded %d coincident failures, want 0", b2b.Both)
	}
	if b2b.AOnly != perfect.AOnly || b2b.BOnly != perfect.BOnly {
		t.Fatal("back-to-back distorted discordant demands")
	}
}

// Scenario 2 must switch orders of magnitude earlier than Scenario 1 —
// the paper's headline contrast between the two studies.
func TestScenario2SwitchesMuchEarlier(t *testing.T) {
	s1 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario1(), Step: 1000,
		Grid: coarse, Seed: 42})
	s2 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario2(), Step: 200,
		MaxDemands: 15000, Grid: coarse, Seed: 42})

	c1s1 := s1.Regimes[RegimePerfect].Criteria[Criterion1]
	c1s2 := s2.Regimes[RegimePerfect].Criteria[Criterion1]
	if !c1s1.Attained || !c1s2.Attained {
		t.Fatalf("criterion 1 unattained: s1=%+v s2=%+v", c1s1, c1s2)
	}
	if c1s2.FirstSwitch*5 > c1s1.FirstSwitch {
		t.Fatalf("scenario 2 (%d) not much earlier than scenario 1 (%d)",
			c1s2.FirstSwitch, c1s1.FirstSwitch)
	}
	// Criterion 3 in scenario 2 fires even earlier than criterion 1
	// (paper: 1,100 vs 1,400).
	c3s2 := s2.Regimes[RegimePerfect].Criteria[Criterion3]
	if !c3s2.Attained || c3s2.FirstSwitch > c1s2.FirstSwitch {
		t.Fatalf("criterion 3 (%+v) should fire no later than criterion 1 (%+v)", c3s2, c1s2)
	}
}

// Criterion 2's explicit 10⁻³ target sits just above the new release's
// true pfd in Scenario 1: unattainable with perfect detection within
// 50,000 demands (paper Table 2, top-right).
func TestScenario1Criterion2NotAttainedWithPerfectDetection(t *testing.T) {
	s1 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario1(), Step: 2500,
		Grid: coarse, Seed: 42})
	c2 := s1.Regimes[RegimePerfect].Criteria[Criterion2]
	if c2.Attained {
		t.Fatalf("criterion 2 attained at %d with perfect detection", c2.FirstSwitch)
	}
	// Back-to-back testing masks the coincident failures, making the new
	// release look better than it is — criterion 2 becomes attainable.
	b2b := s1.Regimes[RegimeBackToBack].Criteria[Criterion2]
	if !b2b.Attained {
		t.Fatal("criterion 2 not attained under back-to-back detection")
	}
}

// Imperfect detection biases the inference optimistically: switches occur
// no later than with perfect oracles (paper §5.1.1.3).
func TestImperfectDetectionSwitchesEarlier(t *testing.T) {
	s1 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario1(), Step: 1000,
		Grid: coarse, Seed: 42})
	for _, ci := range []CriterionID{Criterion1, Criterion3} {
		perfect := s1.Regimes[RegimePerfect].Criteria[ci]
		if !perfect.Attained {
			t.Fatalf("%v not attained with perfect detection", ci)
		}
		for _, reg := range []Regime{RegimeOmission, RegimeBackToBack} {
			imp := s1.Regimes[reg].Criteria[ci]
			if !imp.Attained {
				t.Fatalf("%v not attained under %v", ci, reg)
			}
			if imp.FirstSwitch > perfect.FirstSwitch {
				t.Errorf("%v under %v switched at %d, later than perfect %d",
					ci, reg, imp.FirstSwitch, perfect.FirstSwitch)
			}
		}
	}
}

// The figures' headline: percentile curves with more data move down, and
// Channel B's 90% percentile under perfect detection stays below its 99%
// percentile under imperfect detection for most of the sweep (the ≤9%
// confidence-error band).
func TestTrajectoryShape(t *testing.T) {
	s1 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario1(), Step: 1000,
		Grid: coarse, Seed: 42})
	traj := s1.Trajectory
	if len(traj) < 10 {
		t.Fatalf("trajectory too short: %d", len(traj))
	}
	first, last := traj[0], traj[len(traj)-1]
	if last.B99Perfect >= first.B99Perfect {
		t.Errorf("B99 perfect did not tighten: %v -> %v", first.B99Perfect, last.B99Perfect)
	}
	if last.B90Perfect >= last.B99Perfect {
		t.Errorf("90%% percentile above 99%% at the end: %v vs %v",
			last.B90Perfect, last.B99Perfect)
	}
	within := 0
	for _, p := range traj {
		if p.B90Perfect <= p.B99Omission {
			within++
		}
	}
	if frac := float64(within) / float64(len(traj)); frac < 0.8 {
		t.Errorf("B90 perfect below B99 omission only %.0f%% of checkpoints", 100*frac)
	}
	// All percentiles live in the prior support.
	for _, p := range traj {
		for _, v := range []float64{p.A99Perfect, p.B90Perfect, p.B99Perfect, p.B99Omission, p.B99BackToBack} {
			if v <= 0 || v > 0.002 {
				t.Fatalf("percentile %v outside (0, 0.002]", v)
			}
		}
	}
}

// Full-resolution fidelity check against the published Table 2 values.
// Slow (~6 s); skipped in -short runs.
func TestTable2PaperFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution sweep")
	}
	grid := GridConfig{A: 80, B: 80, C: 24, AB: 120}
	s1 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario1(), Step: 500, Grid: grid, Seed: 42})
	s2 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario2(), Step: 100,
		MaxDemands: 15000, Grid: grid, Seed: 42})

	// Paper: 35,500. Accept the right order of magnitude and side.
	c1 := s1.Regimes[RegimePerfect].Criteria[Criterion1]
	if !c1.Attained || c1.FirstSwitch < 20000 || c1.FirstSwitch > 50000 {
		t.Errorf("scenario 1 perfect criterion 1 = %+v, paper 35,500", c1)
	}
	// Paper: 40,000.
	c3 := s1.Regimes[RegimePerfect].Criteria[Criterion3]
	if !c3.Attained || c3.FirstSwitch < 20000 {
		t.Errorf("scenario 1 perfect criterion 3 = %+v, paper 40,000", c3)
	}
	// Paper: 1,400.
	c1s2 := s2.Regimes[RegimePerfect].Criteria[Criterion1]
	if !c1s2.Attained || c1s2.FirstSwitch < 500 || c1s2.FirstSwitch > 4000 {
		t.Errorf("scenario 2 perfect criterion 1 = %+v, paper 1,400", c1s2)
	}
	// Paper: 10,000.
	c2s2 := s2.Regimes[RegimePerfect].Criteria[Criterion2]
	if !c2s2.Attained || c2s2.FirstSwitch < 4000 {
		t.Errorf("scenario 2 perfect criterion 2 = %+v, paper 10,000", c2s2)
	}
	// Paper: back-to-back reaches criterion 2 earlier (6,000 vs 10,000).
	c2b2b := s2.Regimes[RegimeBackToBack].Criteria[Criterion2]
	if !c2b2b.Attained || c2b2b.FirstSwitch > c2s2.FirstSwitch {
		t.Errorf("scenario 2 b2b criterion 2 = %+v, not earlier than perfect %+v", c2b2b, c2s2)
	}
}

func TestAvailabilityStudyStructure(t *testing.T) {
	rows, err := RunAvailabilityStudy(AvailabilityConfig{Correlated: true, Requests: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 4 runs × 3 timeouts", len(rows))
	}
	seen := map[[2]int]bool{}
	for _, row := range rows {
		seen[[2]int{row.Run, int(row.TimeOut * 10)}] = true
		if row.Result == nil {
			t.Fatal("nil result")
		}
		if got := row.Result.System.Total() + row.Result.System.NRDT; got != 2000 {
			t.Fatalf("run %d: system accounts for %d of 2000", row.Run, got)
		}
	}
	if len(seen) != 12 {
		t.Fatalf("duplicate blocks: %v", seen)
	}
}

// Per-release MET must be identical across the timeout columns of one run
// — the property visible in the paper's tables.
func TestAvailabilityMETConstantAcrossTimeouts(t *testing.T) {
	rows, err := RunAvailabilityStudy(AvailabilityConfig{Correlated: true, Requests: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	met := map[int]float64{}
	for _, row := range rows {
		if prev, ok := met[row.Run]; ok {
			if prev != row.Result.Rel1.MET {
				t.Fatalf("run %d rel1 MET varies across timeouts: %v vs %v",
					row.Run, prev, row.Result.Rel1.MET)
			}
		} else {
			met[row.Run] = row.Result.Rel1.MET
		}
	}
}

func TestModeAblation(t *testing.T) {
	rows, err := RunModeAblation(1, 2.0, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	byMode := map[string]*upgsim.Result{}
	for _, r := range rows {
		byMode[r.Label] = r.Result
	}
	seq := byMode["mode 4: sequential, min capacity"]
	par := byMode["mode 1: parallel, max reliability"]
	if seq.System.Executions >= par.System.Executions {
		t.Fatal("sequential did not save capacity")
	}
	fast := byMode["mode 2: parallel, max responsiveness"]
	if fast.System.MET >= par.System.MET {
		t.Fatal("responsiveness mode not faster")
	}
	if _, err := RunModeAblation(9, 2.0, 100, 1); err == nil {
		t.Fatal("invalid run ID accepted")
	}
}

func TestFormatters(t *testing.T) {
	s2 := runStudy(t, StudyConfig{Scenario: relmodel.Scenario2(), Step: 500,
		MaxDemands: 2000, Grid: coarse, Seed: 3})
	tbl := FormatTable2(s2)
	for _, want := range []string{"Table 2", "scenario-2", "criterion-1", "perfect", "back-to-back", "paper"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("FormatTable2 output missing %q:\n%s", want, tbl)
		}
	}
	fig := FormatTrajectory(s2)
	if !strings.Contains(fig, "Figure 8") || !strings.Contains(fig, "demands") {
		t.Errorf("FormatTrajectory output malformed:\n%s", fig)
	}
	rows, err := RunAvailabilityStudy(AvailabilityConfig{Correlated: false, Requests: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl6 := FormatAvailability("Table 6", rows)
	for _, want := range []string{"Table 6", "MET", "NRDT", "System"} {
		if !strings.Contains(tbl6, want) {
			t.Errorf("FormatAvailability missing %q", want)
		}
	}
	ab, err := RunModeAblation(1, 1.5, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	abStr := FormatModeAblation(ab)
	if !strings.Contains(abStr, "sequential") || !strings.Contains(abStr, "executions") {
		t.Errorf("FormatModeAblation malformed:\n%s", abStr)
	}
}

func TestPaperReferenceData(t *testing.T) {
	p := PaperTable2()
	if p["scenario-1"]["perfect"].Criterion1 != "35,500 demands" {
		t.Fatal("paper table 2 cell wrong")
	}
	if len(p) != 2 || len(p["scenario-2"]) != 3 {
		t.Fatal("paper table 2 incomplete")
	}
	t5 := PaperTable5SystemRun1()
	if t5[1.5].CR != 6762 || t5[3.0].NRDT != 194 {
		t.Fatal("paper table 5 anchors wrong")
	}
	t6 := PaperTable6SystemRun1()
	if t6[1.5].CR != 7759 {
		t.Fatal("paper table 6 anchors wrong")
	}
}
