package repro

import (
	"fmt"

	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/upgsim"
)

// PaperTimeouts are the three middleware timeout settings of Tables 5-6.
var PaperTimeouts = []float64{1.5, 2.0, 3.0}

// AvailabilityRow is one Run × TimeOut block of Table 5 or 6.
type AvailabilityRow struct {
	// Run is the paper's run number (1-4).
	Run int
	// TimeOut is the middleware collection deadline, seconds.
	TimeOut float64
	// Result carries the full per-release and system tallies.
	Result *upgsim.Result
}

// AvailabilityConfig parameterizes a Table 5/6 regeneration.
type AvailabilityConfig struct {
	// Correlated selects Table 5 (true) or Table 6 (false).
	Correlated bool
	// Requests per simulation (default 10,000, the paper's setting).
	Requests int
	// Seed drives the sampling; each Run × TimeOut block derives its own
	// stream from it.
	Seed uint64
	// Latency overrides the execution-time model (default: the paper's
	// §5.2.2 parameters).
	Latency *relmodel.Latency
	// Mode overrides the middleware operating mode (default: mode 1,
	// parallel for maximum reliability — the measured configuration).
	Mode upgsim.Mode
	// Quorum configures upgsim.ParallelDynamic.
	Quorum int
}

// RunAvailabilityStudy regenerates Table 5 (correlated=true) or Table 6
// (correlated=false): all four runs at the three paper timeouts.
func RunAvailabilityStudy(cfg AvailabilityConfig) ([]AvailabilityRow, error) {
	if cfg.Requests == 0 {
		cfg.Requests = 10000
	}
	latency := relmodel.PaperLatency()
	if cfg.Latency != nil {
		latency = *cfg.Latency
	}
	var rows []AvailabilityRow
	for _, run := range relmodel.Runs() {
		for ti, timeout := range PaperTimeouts {
			res, err := upgsim.Simulate(upgsim.Config{
				Run:        run,
				Correlated: cfg.Correlated,
				Latency:    latency,
				TimeOut:    timeout,
				Requests:   cfg.Requests,
				// The paper reuses one random stream per run across the
				// timeout columns (per-release MET is identical in all
				// three); deriving the seed from the run only preserves
				// that property.
				Seed:   cfg.Seed ^ (uint64(run.ID) << 8),
				Mode:   cfg.Mode,
				Quorum: cfg.Quorum,
			})
			if err != nil {
				return nil, fmt.Errorf("repro: run %d timeout %v: %w", run.ID, timeout, err)
			}
			_ = ti
			rows = append(rows, AvailabilityRow{Run: run.ID, TimeOut: timeout, Result: res})
		}
	}
	return rows, nil
}

// ModeAblationRow reports one operating mode's system-level outcome on a
// fixed workload — the §4.2 trade-off measured.
type ModeAblationRow struct {
	Mode   upgsim.Mode
	Quorum int
	Label  string
	Result *upgsim.Result
}

// RunModeAblation measures all four §4.2 operating modes on the same run,
// timeout and seed, exposing the reliability / responsiveness / capacity
// trade-offs the paper discusses qualitatively.
func RunModeAblation(runID int, timeout float64, requests int, seed uint64) ([]ModeAblationRow, error) {
	runs := relmodel.Runs()
	if runID < 1 || runID > len(runs) {
		return nil, fmt.Errorf("%w: run %d", ErrBadStudy, runID)
	}
	if requests == 0 {
		requests = 10000
	}
	configs := []ModeAblationRow{
		{Mode: upgsim.ParallelReliability, Label: "mode 1: parallel, max reliability"},
		{Mode: upgsim.ParallelResponsiveness, Label: "mode 2: parallel, max responsiveness"},
		{Mode: upgsim.ParallelDynamic, Quorum: 1, Label: "mode 3: parallel, quorum 1"},
		{Mode: upgsim.ParallelDynamic, Quorum: 2, Label: "mode 3: parallel, quorum 2"},
		{Mode: upgsim.Sequential, Label: "mode 4: sequential, min capacity"},
	}
	for i := range configs {
		res, err := upgsim.Simulate(upgsim.Config{
			Run:        runs[runID-1],
			Correlated: true,
			Latency:    relmodel.PaperLatency(),
			TimeOut:    timeout,
			Requests:   requests,
			Seed:       seed,
			Mode:       configs[i].Mode,
			Quorum:     configs[i].Quorum,
		})
		if err != nil {
			return nil, fmt.Errorf("repro: mode ablation %v: %w", configs[i].Mode, err)
		}
		configs[i].Result = res
	}
	return configs, nil
}
