// Package testutil holds shared test infrastructure. Its centerpiece is
// the goroutine-leak checker: a snapshot/diff over the runtime's
// goroutine stacks that Close-path tests use to prove retired engines,
// fleets and wire clients leave nothing running behind — no watcher
// goroutines pinned to poisoned connections, no janitors outliving
// their client, no background collectors wedged on a drained channel.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// GoroutineSnapshot is a point-in-time set of live goroutines, keyed by
// goroutine ID, each carrying its full stack for diagnostics.
type GoroutineSnapshot map[string]string

// ignorable reports stacks that are never leaks: runtime housekeeping,
// the testing framework itself, and the stack-capture goroutine.
func ignorable(stack string) bool {
	for _, marker := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.tRunner",
		"testing.runFuzzing",
		"testing.(*M).",
		"runtime.goexit0",
		"runtime.MHeap_Scavenger",
		"runtime.gc(",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.GC(",
		"runtime.ensureSigM",
		"runtime.ReadTrace",
		"runtime/trace.Start",
		"os/signal.signal_recv",
		"os/signal.loop",
		"signal.Notify",
		"testutil.SnapshotGoroutines",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// SnapshotGoroutines captures every live goroutine's stack, excluding
// runtime/testing housekeeping.
func SnapshotGoroutines() GoroutineSnapshot {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	snap := make(GoroutineSnapshot)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		id := goroutineID(g)
		if id == "" || ignorable(g) {
			continue
		}
		snap[id] = g
	}
	return snap
}

// goroutineID extracts the "123" from "goroutine 123 [running]:".
func goroutineID(stack string) string {
	const prefix = "goroutine "
	if !strings.HasPrefix(stack, prefix) {
		return ""
	}
	rest := stack[len(prefix):]
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return ""
}

// Leaked returns the goroutines live now that were not in the baseline.
func (base GoroutineSnapshot) Leaked() []string {
	now := SnapshotGoroutines()
	var leaks []string
	for id, stack := range now {
		if _, ok := base[id]; !ok {
			leaks = append(leaks, stack)
		}
	}
	sort.Strings(leaks)
	return leaks
}

// settleWait bounds how long CheckGoroutines waits for asynchronous
// teardown (drained dispatch collectors, closing watcher goroutines) to
// finish before declaring a leak.
const settleWait = 3 * time.Second

// CheckGoroutines snapshots the live goroutines and registers a cleanup
// that fails the test if, once everything the test itself cleans up has
// run, new goroutines are still alive. Call it FIRST in the test body:
// t.Cleanup runs LIFO, so the check executes after every server/engine
// the test registered for closing has been closed. Teardown is given a
// grace period — goroutines that exit within settleWait are not leaks.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := SnapshotGoroutines()
	t.Cleanup(func() {
		var leaks []string
		deadline := time.Now().Add(settleWait)
		for {
			leaks = base.Leaked()
			if len(leaks) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d goroutine(s) leaked:\n", len(leaks))
		for _, g := range leaks {
			sb.WriteString("\n")
			sb.WriteString(g)
			sb.WriteString("\n")
		}
		t.Error(sb.String())
	})
}
