package testutil

import (
	"testing"
	"time"
)

func TestSnapshotDiffDetectsNewGoroutine(t *testing.T) {
	base := SnapshotGoroutines()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started
	leaks := base.Leaked()
	if len(leaks) != 1 {
		t.Fatalf("leaked = %d goroutines, want exactly the blocked one:\n%v", len(leaks), leaks)
	}
	close(block)
}

func TestSnapshotDiffSettles(t *testing.T) {
	base := SnapshotGoroutines()
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(done)
	}()
	<-done
	// The goroutine has exited (or is about to); within the settle
	// window the diff must come back clean.
	deadline := time.Now().Add(settleWait)
	for {
		if len(base.Leaked()) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("exited goroutine still reported leaked: %v", base.Leaked())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCheckGoroutinesCleanTest(t *testing.T) {
	CheckGoroutines(t)
	// Spawn and fully reap a goroutine: the cleanup must not fire.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestGoroutineIDParsing(t *testing.T) {
	if got := goroutineID("goroutine 42 [running]:\nmain.main()"); got != "42" {
		t.Fatalf("goroutineID = %q, want 42", got)
	}
	if got := goroutineID("garbage"); got != "" {
		t.Fatalf("goroutineID(garbage) = %q, want empty", got)
	}
}
