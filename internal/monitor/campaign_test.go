package monitor

import (
	"reflect"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
)

// noteSome drives a deterministic mixed workload into m and returns how
// many demands it recorded.
func noteSome(m *Monitor, n int) {
	for i := 0; i < n; i++ {
		joint := bayes.NeitherFails
		switch i % 5 {
		case 1:
			joint = bayes.BOnlyFails
		case 3:
			joint = bayes.BothFail
		}
		op := "add"
		if i%2 == 0 {
			op = "operation1"
		}
		m.Note(Record{
			Time:      time.Unix(int64(i), 0),
			Operation: op,
			Releases: []Observation{
				{Release: "1.0", Responded: true, Latency: time.Duration(10+i) * time.Millisecond},
				{Release: "2.0", Responded: i%7 != 0, Evident: i%7 == 0, Judged: true, Failed: i%5 == 1,
					Latency: time.Duration(12+i) * time.Millisecond},
			},
			Winner: "1.0",
			Joint:  joint,
		})
	}
}

// A restored monitor must agree with the original on every aggregation
// surface the confidence engine and the admin API read.
func TestCampaignStateRestoreRoundTrip(t *testing.T) {
	live := New()
	noteSome(live, 137)

	restoredM := New()
	if err := restoredM.Restore(live.CampaignState()); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	if got, want := restoredM.Joint(), live.Joint(); got != want {
		t.Fatalf("Joint after restore: got %+v want %+v", got, want)
	}
	for _, op := range []string{"add", "operation1", "never-seen"} {
		if got, want := restoredM.JointFor(op), live.JointFor(op); got != want {
			t.Fatalf("JointFor(%q) after restore: got %+v want %+v", op, got, want)
		}
	}
	for _, rel := range []string{"1.0", "2.0"} {
		got, err := restoredM.Stats(rel)
		if err != nil {
			t.Fatalf("Stats(%q): %v", rel, err)
		}
		want, err := live.Stats(rel)
		if err != nil {
			t.Fatalf("Stats(%q): %v", rel, err)
		}
		if got != want {
			t.Fatalf("Stats(%q) after restore: got %+v want %+v", rel, got, want)
		}
	}
}

// Restoring and then continuing to observe must equal having observed
// the whole history live — the recovery invariant the journal relies on.
func TestRestoreThenObserveMatchesUninterrupted(t *testing.T) {
	full := New()
	noteSome(full, 200)

	crashed := New()
	noteSome(crashed, 120) // pre-crash traffic
	resumed := New()
	if err := resumed.Restore(crashed.CampaignState()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// Replay the post-crash tail. noteSome is deterministic in i, so
	// drive the same demands 120..199 by re-running and skipping.
	for i := 120; i < 200; i++ {
		joint := bayes.NeitherFails
		switch i % 5 {
		case 1:
			joint = bayes.BOnlyFails
		case 3:
			joint = bayes.BothFail
		}
		op := "add"
		if i%2 == 0 {
			op = "operation1"
		}
		resumed.Note(Record{
			Time:      time.Unix(int64(i), 0),
			Operation: op,
			Releases: []Observation{
				{Release: "1.0", Responded: true, Latency: time.Duration(10+i) * time.Millisecond},
				{Release: "2.0", Responded: i%7 != 0, Evident: i%7 == 0, Judged: true, Failed: i%5 == 1,
					Latency: time.Duration(12+i) * time.Millisecond},
			},
			Winner: "1.0",
			Joint:  joint,
		})
	}

	if got, want := resumed.Joint(), full.Joint(); got != want {
		t.Fatalf("Joint: resumed %+v, uninterrupted %+v", got, want)
	}
	for _, rel := range []string{"1.0", "2.0"} {
		got, _ := resumed.Stats(rel)
		want, _ := full.Stats(rel)
		// The integer counters must match exactly; the mean latency is a
		// Welford merge whose float rounding depends on partition order,
		// so it gets a nanosecond-scale tolerance.
		meanDelta := got.MeanLatency - want.MeanLatency
		if meanDelta < 0 {
			meanDelta = -meanDelta
		}
		got.MeanLatency, want.MeanLatency = 0, 0
		if got != want || meanDelta > time.Microsecond {
			t.Fatalf("Stats(%q): resumed %+v, uninterrupted %+v (mean delta %v)", rel, got, want, meanDelta)
		}
	}
}

func TestCampaignStateDeterministicOrder(t *testing.T) {
	m := New()
	noteSome(m, 30)
	a := m.CampaignState()
	b := m.CampaignState()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two snapshots of an idle monitor differ:\n%+v\n%+v", a, b)
	}
	for i := 1; i < len(a.Releases); i++ {
		if a.Releases[i-1].Release >= a.Releases[i].Release {
			t.Fatalf("releases not sorted: %v", a.Releases)
		}
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	cases := []CampaignState{
		{Joint: bayes.JointCounts{N: -1}},
		{Joint: bayes.JointCounts{N: 2, Both: 1, AOnly: 1, BOnly: 1}},
		{PerOp: map[string]bayes.JointCounts{"add": {N: 1, Both: 2}}},
		{Releases: []ReleaseCampaignStats{{Release: ""}}},
		{Releases: []ReleaseCampaignStats{{Release: "1.0", Demands: 1, Responses: 2}}},
		{Releases: []ReleaseCampaignStats{{Release: "1.0", Demands: 5, Responses: 3}}}, // latency.N mismatch
	}
	for i, st := range cases {
		m := New()
		if err := m.Restore(st); err == nil {
			t.Errorf("case %d: Restore accepted corrupt state %+v", i, st)
		}
		// The failed restore must leave the monitor untouched.
		if got := m.Joint(); got != (bayes.JointCounts{}) {
			t.Errorf("case %d: failed Restore mutated joint: %+v", i, got)
		}
		if rels := m.Releases(); len(rels) != 0 {
			t.Errorf("case %d: failed Restore interned releases: %v", i, rels)
		}
	}
}
