package monitor

import (
	"testing"
	"time"
)

// binWidthDur is one latency-histogram bin as a duration (60 s / 2048 =
// 29.296875 ms, exactly representable).
const binWidthDur = latencyRange / latencyBinCount

// noteLatency records one responded demand with the given latency.
func noteLatency(m *Monitor, release string, d time.Duration) {
	m.Note(Record{Releases: []Observation{{
		Release: release, Responded: true, Latency: d,
	}}})
}

// TestSlowResponsesBoundary is the regression for the boundary math:
// with a threshold exactly on a bin boundary, the bin right above the
// threshold is entirely slow and must be counted. The pre-fix
// int(t/w)+1 skipped it, undercounting the §6.1 responsiveness
// numerator for every boundary-aligned threshold.
func TestSlowResponsesBoundary(t *testing.T) {
	m := New()
	// One response in bin 1 ([w, 2w)), one comfortably fast in bin 0,
	// one comfortably slow in bin 40.
	noteLatency(m, "1.0", binWidthDur+binWidthDur/2)
	noteLatency(m, "1.0", binWidthDur/4)
	noteLatency(m, "1.0", 40*binWidthDur+binWidthDur/2)

	// Threshold exactly on the bin-1 boundary: bins 1+ are entirely
	// above it, so both the bin-1 and the bin-40 response are slow.
	slow, demands, err := m.SlowResponses("1.0", binWidthDur)
	if err != nil {
		t.Fatal(err)
	}
	if demands != 3 {
		t.Fatalf("demands = %d, want 3", demands)
	}
	if slow != 2 {
		t.Fatalf("slow = %d at boundary threshold %v, want 2 (boundary bin skipped?)", slow, binWidthDur)
	}

	// Mid-bin threshold: bin 1 cannot be split, so only bin 40 counts —
	// the documented conservative rounding, unchanged by the fix.
	slow, _, err = m.SlowResponses("1.0", binWidthDur+binWidthDur/2)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 1 {
		t.Fatalf("slow = %d at mid-bin threshold, want 1", slow)
	}

	// Threshold zero: every response is in a bin at or above it.
	slow, _, err = m.SlowResponses("1.0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 3 {
		t.Fatalf("slow = %d at zero threshold, want 3", slow)
	}
}

// TestSlowResponsesOverflow is the regression for over-range latencies:
// observations at or beyond the histogram range are clamped into the top
// bin, and a threshold at or beyond the range used to report zero slow
// responses for them.
func TestSlowResponsesOverflow(t *testing.T) {
	m := New()
	noteLatency(m, "1.0", 2*latencyRange) // 120 s, clamped
	noteLatency(m, "1.0", latencyRange)   // exactly the range edge: also over-range
	noteLatency(m, "1.0", time.Second)    // comfortably in range
	m.Note(Record{Releases: []Observation{{Release: "1.0", Responded: false}}})

	// Threshold beyond the histogram range: only the clamped over-range
	// responses (and the non-response) can be slow.
	slow, demands, err := m.SlowResponses("1.0", 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if demands != 4 {
		t.Fatalf("demands = %d, want 4", demands)
	}
	if slow != 3 {
		t.Fatalf("slow = %d for over-range threshold, want 3 (2 clamped + 1 no-response)", slow)
	}

	// Exactly at the range: same, via the overflow count.
	slow, _, err = m.SlowResponses("1.0", latencyRange)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 3 {
		t.Fatalf("slow = %d at range threshold, want 3", slow)
	}

	// An in-range threshold still counts clamped responses through the
	// top bin, not the overflow counter — no double counting.
	slow, _, err = m.SlowResponses("1.0", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 3 {
		t.Fatalf("slow = %d at 30s threshold, want 3", slow)
	}

	// A threshold beyond even the slowest observed response: no response
	// was slow, over-range or not — only the non-response counts.
	slow, _, err = m.SlowResponses("1.0", 150*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 1 {
		t.Fatalf("slow = %d beyond the max latency, want 1 (no-response only)", slow)
	}
}

// TestInternStableAndConcurrent pins the interning contract: IDs are
// dense, 1-based, stable across repeated interning, and resolvable
// concurrently.
func TestInternStableAndConcurrent(t *testing.T) {
	m := New()
	a := m.Intern("1.0")
	b := m.Intern("1.1")
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d; want dense 1-based 1, 2", a, b)
	}
	done := make(chan ReleaseID, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- m.Intern("1.1") }()
	}
	for i := 0; i < 16; i++ {
		if got := <-done; got != b {
			t.Fatalf("concurrent Intern(1.1) = %d, want %d", got, b)
		}
	}
	if got := m.Intern("1.0"); got != a {
		t.Fatalf("re-Intern(1.0) = %d, want %d", got, a)
	}
}

// TestNoteRejectsForeignIDs feeds Note an observation whose ID does not
// belong to this monitor (or not to this release): it must aggregate by
// name instead of crediting the wrong release's slot.
func TestNoteRejectsForeignIDs(t *testing.T) {
	m := New()
	legit := m.Intern("1.0")
	// Bogus out-of-range ID and a mismatched in-range ID.
	m.Note(Record{Releases: []Observation{{Release: "1.1", ID: 57, Responded: true}}})
	m.Note(Record{Releases: []Observation{{Release: "1.2", ID: legit, Responded: true}}})

	for _, rel := range []string{"1.1", "1.2"} {
		st, err := m.Stats(rel)
		if err != nil {
			t.Fatalf("Stats(%s): %v", rel, err)
		}
		if st.Demands != 1 || st.Responses != 1 {
			t.Fatalf("Stats(%s) = %+v, want 1 demand, 1 response", rel, st)
		}
	}
	// The legit slot must stay empty: "1.0" was interned but never
	// observed, so it reports unknown rather than stolen observations.
	if st, err := m.Stats("1.0"); err == nil {
		t.Fatalf("Stats(1.0) = %+v, want ErrUnknownRelease", st)
	}
}

// TestNoteSteadyStateZeroAlloc holds the hot write path to zero
// allocations once the event-log ring has lapped, for both interned and
// by-name observations.
func TestNoteSteadyStateZeroAlloc(t *testing.T) {
	for _, interned := range []bool{true, false} {
		m := New(WithLogCapacity(64))
		rec := Record{
			Operation: "add",
			Releases: []Observation{
				{Release: "1.0", Responded: true, Latency: 3 * time.Millisecond},
				{Release: "1.1", Responded: true, Latency: 2 * time.Millisecond},
			},
		}
		if interned {
			for i := range rec.Releases {
				rec.Releases[i].ID = m.Intern(rec.Releases[i].Release)
			}
		}
		for i := 0; i < 80; i++ { // lap the ring
			m.Note(rec)
		}
		allocs := testing.AllocsPerRun(200, func() { m.Note(rec) })
		if allocs != 0 {
			t.Errorf("interned=%v: %v allocs per Note, want 0", interned, allocs)
		}
	}
}
