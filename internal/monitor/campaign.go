package monitor

import (
	"fmt"
	"sort"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/stats"
)

// ErrBadCampaignState reports a campaign-state snapshot the monitor
// refuses to restore (the journal it came from may be corrupt).
var ErrBadCampaignState = fmt.Errorf("monitor: bad campaign state")

// ReleaseCampaignStats is one release's aggregate counters in exported,
// serializable form — the per-release slice of a CampaignState.
type ReleaseCampaignStats struct {
	Release        string             `json:"release"`
	Demands        int                `json:"demands"`
	Responses      int                `json:"responses"`
	Evident        int                `json:"evident"`
	JudgedFailures int                `json:"judged_failures"`
	Overflow       int                `json:"overflow"`
	Latency        stats.SummaryState `json:"latency"`
}

// CampaignState is the serializable aggregation state of a campaign:
// everything the Bayesian confidence engine and the status surfaces need
// to resume after a mediator restart. It deliberately excludes the
// event-log ring (diagnostic, bounded, rebuilt from live traffic) and
// the 2048-bin latency histograms (cheap to regrow; a restored campaign
// under-resolves SlowResponses for the pre-crash prefix — see Restore).
type CampaignState struct {
	Joint    bayes.JointCounts            `json:"joint"`
	PerOp    map[string]bayes.JointCounts `json:"per_op,omitempty"`
	Releases []ReleaseCampaignStats       `json:"releases,omitempty"`
}

// CampaignState snapshots the monitor's aggregation state. The snapshot
// is assembled shard by shard; a concurrent Note may or may not be
// included, exactly like every other read-side aggregation here.
func (m *Monitor) CampaignState() CampaignState {
	st := CampaignState{}
	t := m.intern.Load()
	var names []string
	if t != nil {
		names = t.names
	}
	merged := make([]*releaseAgg, len(names))
	perOp := make(map[string]bayes.JointCounts)
	for _, sh := range m.shards {
		sh.mu.Lock()
		st.Joint.Merge(sh.joint)
		for op, jc := range sh.perOp {
			total := perOp[op]
			total.Merge(jc)
			perOp[op] = total
		}
		for idx, agg := range sh.aggs {
			if agg == nil || idx >= len(merged) {
				continue
			}
			if merged[idx] == nil {
				merged[idx] = newReleaseAgg()
			}
			merged[idx].merge(agg)
		}
		sh.mu.Unlock()
	}
	if len(perOp) > 0 {
		st.PerOp = perOp
	}
	for idx, agg := range merged {
		if agg == nil {
			continue
		}
		st.Releases = append(st.Releases, ReleaseCampaignStats{
			Release:        names[idx],
			Demands:        agg.demands,
			Responses:      agg.responses,
			Evident:        agg.evident,
			JudgedFailures: agg.judgedFailed,
			Overflow:       agg.overflow,
			Latency:        agg.latency.State(),
		})
	}
	// Deterministic order so identical states serialize identically.
	sort.Slice(st.Releases, func(i, j int) bool {
		return st.Releases[i].Release < st.Releases[j].Release
	})
	return st
}

// Restore merges a previously snapshotted campaign state into the
// monitor, seeding the joint record, the per-operation records, and the
// per-release counters so that Joint/JointFor/Stats report the restored
// history plus anything observed since. Latency summaries are restored
// exactly (mean/variance/extrema); the latency histograms are not part
// of the snapshot, so SlowResponses resolves only post-restore traffic —
// the restored prefix contributes its no-response demands (which need no
// histogram) but its over-threshold responses are not re-counted. The
// snapshot is validated before any state is touched: a corrupt snapshot
// leaves the monitor unchanged.
func (m *Monitor) Restore(st CampaignState) error {
	if err := validateCampaignState(st); err != nil {
		return err
	}
	restored := make([]stats.Summary, len(st.Releases))
	for i, rs := range st.Releases {
		sum, err := stats.RestoreSummary(rs.Latency)
		if err != nil {
			return fmt.Errorf("%w: release %q: %v", ErrBadCampaignState, rs.Release, err)
		}
		restored[i] = sum
	}
	// Everything lands in shard 0: restore is a one-time management
	// operation, not a hot path, and read-side aggregation makes the
	// placement invisible.
	sh := m.shards[0]
	for i, rs := range st.Releases {
		id := m.Intern(rs.Release)
		sh.mu.Lock()
		agg := sh.agg(id)
		agg.demands += rs.Demands
		agg.responses += rs.Responses
		agg.evident += rs.Evident
		agg.judgedFailed += rs.JudgedFailures
		agg.overflow += rs.Overflow
		agg.latency.Merge(restored[i])
		sh.mu.Unlock()
	}
	sh.mu.Lock()
	sh.joint.Merge(st.Joint)
	for op, jc := range st.PerOp {
		total := sh.perOp[op]
		total.Merge(jc)
		sh.perOp[op] = total
	}
	sh.mu.Unlock()
	return nil
}

// validateCampaignState rejects snapshots whose counters cannot have
// come from a real campaign.
func validateCampaignState(st CampaignState) error {
	check := func(name string, jc bayes.JointCounts) error {
		if jc.N < 0 || jc.Both < 0 || jc.AOnly < 0 || jc.BOnly < 0 ||
			jc.Both+jc.AOnly+jc.BOnly > jc.N {
			return fmt.Errorf("%w: %s joint counts %+v", ErrBadCampaignState, name, jc)
		}
		return nil
	}
	if err := check("total", st.Joint); err != nil {
		return err
	}
	for op, jc := range st.PerOp {
		if err := check("operation "+op, jc); err != nil {
			return err
		}
	}
	for _, rs := range st.Releases {
		if rs.Release == "" {
			return fmt.Errorf("%w: release with empty name", ErrBadCampaignState)
		}
		if rs.Demands < 0 || rs.Responses < 0 || rs.Evident < 0 ||
			rs.JudgedFailures < 0 || rs.Overflow < 0 ||
			rs.Responses > rs.Demands || rs.Latency.N != rs.Responses {
			return fmt.Errorf("%w: release %q counters %+v", ErrBadCampaignState, rs.Release, rs)
		}
	}
	return nil
}
