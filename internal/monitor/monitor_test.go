package monitor

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
)

func obs(release string, responded, evident, failed bool, latency time.Duration) Observation {
	return Observation{
		Release:   release,
		Responded: responded,
		Evident:   evident,
		Judged:    true,
		Failed:    failed,
		Latency:   latency,
	}
}

func TestStatsAggregation(t *testing.T) {
	m := New()
	m.Note(Record{
		Operation: "operation1",
		Releases: []Observation{
			obs("1.0", true, false, false, 100*time.Millisecond),
			obs("1.1", true, true, true, 50*time.Millisecond),
		},
		Winner: "1.0",
		Joint:  bayes.BOnlyFails,
	})
	m.Note(Record{
		Operation: "operation1",
		Releases: []Observation{
			obs("1.0", true, false, false, 300*time.Millisecond),
			{Release: "1.1", Responded: false, Evident: true, Latency: 0},
		},
		Winner: "1.0",
		Joint:  bayes.BOnlyFails,
	})

	s10, err := m.Stats("1.0")
	if err != nil {
		t.Fatal(err)
	}
	if s10.Demands != 2 || s10.Responses != 2 || s10.Evident != 0 || s10.JudgedFailures != 0 {
		t.Fatalf("1.0 stats = %+v", s10)
	}
	if s10.Availability() != 1 {
		t.Fatalf("1.0 availability = %v", s10.Availability())
	}
	if s10.MeanLatency != 200*time.Millisecond || s10.MaxLatency != 300*time.Millisecond {
		t.Fatalf("1.0 latency = %v / %v", s10.MeanLatency, s10.MaxLatency)
	}

	s11, err := m.Stats("1.1")
	if err != nil {
		t.Fatal(err)
	}
	if s11.Demands != 2 || s11.Responses != 1 || s11.Evident != 2 || s11.JudgedFailures != 1 {
		t.Fatalf("1.1 stats = %+v", s11)
	}
	if got := s11.Availability(); got != 0.5 {
		t.Fatalf("1.1 availability = %v", got)
	}

	joint := m.Joint()
	if joint.N != 2 || joint.BOnly != 2 {
		t.Fatalf("joint = %+v", joint)
	}
}

func TestUnknownRelease(t *testing.T) {
	m := New()
	if _, err := m.Stats("ghost"); !errors.Is(err, ErrUnknownRelease) {
		t.Fatalf("err = %v", err)
	}
	if s := (ReleaseStats{}); s.Availability() != 0 {
		t.Fatal("empty stats availability should be 0")
	}
}

func TestJointOnlyCountedWhenSet(t *testing.T) {
	m := New()
	m.Note(Record{Releases: []Observation{obs("1.0", true, false, false, 0)}})
	if m.Joint().N != 0 {
		t.Fatal("zero joint outcome was counted")
	}
}

func TestLogRingBuffer(t *testing.T) {
	m := New(WithLogCapacity(3))
	for i := 0; i < 5; i++ {
		m.Note(Record{Operation: string(rune('a' + i))})
	}
	log := m.Log()
	if len(log) != 3 {
		t.Fatalf("log length = %d", len(log))
	}
	if log[0].Operation != "c" || log[2].Operation != "e" {
		t.Fatalf("log = %+v", log)
	}
}

func TestSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	m := New(WithSink(&buf))
	m.Note(Record{
		Operation: "add",
		Releases:  []Observation{obs("1.0", true, false, false, time.Millisecond)},
		Winner:    "1.0",
		Joint:     bayes.NeitherFails,
	})
	m.Note(Record{Operation: "add"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d", len(lines))
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Operation != "add" || rec.Winner != "1.0" || len(rec.Releases) != 1 {
		t.Fatalf("decoded record = %+v", rec)
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestSinkErrorRemembered(t *testing.T) {
	m := New(WithSink(failingWriter{}))
	m.Note(Record{Operation: "x"})
	if m.Err() == nil {
		t.Fatal("sink error lost")
	}
	// Recording continues in memory.
	if len(m.Log()) != 1 {
		t.Fatal("record lost after sink error")
	}
}

func TestReleasesList(t *testing.T) {
	m := New()
	m.Note(Record{Releases: []Observation{obs("1.0", true, false, false, 0), obs("1.1", true, false, false, 0)}})
	rels := m.Releases()
	if len(rels) != 2 {
		t.Fatalf("releases = %v", rels)
	}
}

func TestJointForPerOperation(t *testing.T) {
	m := New()
	m.Note(Record{
		Operation: "add",
		Releases:  []Observation{obs("1.0", true, false, false, 0)},
		Joint:     bayes.BOnlyFails,
	})
	m.Note(Record{
		Operation: "operation1",
		Releases:  []Observation{obs("1.0", true, false, false, 0)},
		Joint:     bayes.NeitherFails,
	})
	if got := m.JointFor("add"); got.N != 1 || got.BOnly != 1 {
		t.Fatalf("JointFor(add) = %+v", got)
	}
	if got := m.JointFor("operation1"); got.N != 1 || got.BOnly != 0 {
		t.Fatalf("JointFor(operation1) = %+v", got)
	}
	if got := m.JointFor("ghost"); got.N != 0 {
		t.Fatalf("JointFor(ghost) = %+v", got)
	}
	if got := m.Joint(); got.N != 2 {
		t.Fatalf("pooled joint = %+v", got)
	}
}

func TestSlowResponses(t *testing.T) {
	m := New()
	for _, lat := range []time.Duration{
		10 * time.Millisecond, 50 * time.Millisecond, 2 * time.Second,
	} {
		m.Note(Record{Releases: []Observation{obs("1.0", true, false, false, lat)}})
	}
	// One demand with no response at all.
	m.Note(Record{Releases: []Observation{{Release: "1.0", Responded: false, Evident: true}}})

	slow, demands, err := m.SlowResponses("1.0", 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if demands != 4 {
		t.Fatalf("demands = %d", demands)
	}
	// The 2 s response and the no-response count as slow.
	if slow != 2 {
		t.Fatalf("slow = %d, want 2", slow)
	}
	slow, _, err = m.SlowResponses("1.0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 1 { // only the no-response remains
		t.Fatalf("slow at 10s = %d, want 1", slow)
	}
	if _, _, err := m.SlowResponses("ghost", time.Second); !errors.Is(err, ErrUnknownRelease) {
		t.Fatalf("ghost: %v", err)
	}
}

func TestConcurrentNotes(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				m.Note(Record{
					Releases: []Observation{obs("1.0", true, false, false, time.Millisecond)},
					Joint:    bayes.NeitherFails,
				})
			}
		}()
	}
	wg.Wait()
	s, err := m.Stats("1.0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Demands != 2000 {
		t.Fatalf("demands = %d, want 2000", s.Demands)
	}
	if m.Joint().N != 2000 {
		t.Fatalf("joint N = %d", m.Joint().N)
	}
}
