package monitor

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/xrand"
)

// refMonitor is the single-lock reference the sharded monitor must be
// observationally equivalent to: the pre-sharding implementation's
// aggregation semantics, kept deliberately naive.
type refMonitor struct {
	mu       sync.Mutex
	demands  map[string]int
	resp     map[string]int
	evident  map[string]int
	failed   map[string]int
	latSum   map[string]float64
	latMax   map[string]float64
	latHist  map[string][]int
	joint    bayes.JointCounts
	perOp    map[string]bayes.JointCounts
	releases map[string]bool
}

func newRefMonitor() *refMonitor {
	return &refMonitor{
		demands:  map[string]int{},
		resp:     map[string]int{},
		evident:  map[string]int{},
		failed:   map[string]int{},
		latSum:   map[string]float64{},
		latMax:   map[string]float64{},
		latHist:  map[string][]int{},
		perOp:    map[string]bayes.JointCounts{},
		releases: map[string]bool{},
	}
}

func (r *refMonitor) note(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, obs := range rec.Releases {
		r.releases[obs.Release] = true
		r.demands[obs.Release]++
		if obs.Responded {
			r.resp[obs.Release]++
			sec := obs.Latency.Seconds()
			r.latSum[obs.Release] += sec
			if sec > r.latMax[obs.Release] {
				r.latMax[obs.Release] = sec
			}
			hist := r.latHist[obs.Release]
			if hist == nil {
				hist = make([]int, latencyBinCount)
				r.latHist[obs.Release] = hist
			}
			idx := int(float64(latencyBinCount) * sec / latencyRange.Seconds())
			if idx < 0 {
				idx = 0
			}
			if idx >= latencyBinCount {
				idx = latencyBinCount - 1
			}
			hist[idx]++
		}
		if obs.Evident {
			r.evident[obs.Release]++
		}
		if obs.Judged && obs.Failed {
			r.failed[obs.Release]++
		}
	}
	if rec.Joint != 0 {
		r.joint.Add(rec.Joint)
		if rec.Operation != "" {
			c := r.perOp[rec.Operation]
			c.Add(rec.Joint)
			r.perOp[rec.Operation] = c
		}
	}
}

func (r *refMonitor) slowResponses(release string, threshold time.Duration) (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	noResponse := r.demands[release] - r.resp[release]
	// Mirrors the fixed boundary math: the first bin counted as slow is
	// the first whose lower edge is at or past the threshold (ceil, not
	// int(x/w)+1 which skipped a fully-above bin on exact boundaries).
	binWidth := latencyRange.Seconds() / latencyBinCount
	sec := threshold.Seconds()
	firstAbove := int(sec / binWidth)
	if float64(firstAbove)*binWidth < sec {
		firstAbove++
	}
	if firstAbove < 0 {
		firstAbove = 0
	}
	slow := 0
	for i := firstAbove; i < latencyBinCount; i++ {
		if hist := r.latHist[release]; hist != nil {
			slow += hist[i]
		}
	}
	return noResponse + slow, r.demands[release]
}

// randomRecord draws one randomized demand record.
func randomRecord(rng *xrand.Rand, ops, releases []string) Record {
	rec := Record{Operation: ops[rng.Intn(len(ops))]}
	n := 1 + rng.Intn(len(releases))
	for _, idx := range rng.Perm(len(releases))[:n] {
		responded := rng.Bool(0.9)
		rec.Releases = append(rec.Releases, Observation{
			Release:   releases[idx],
			Responded: responded,
			Evident:   !responded || rng.Bool(0.1),
			Judged:    rng.Bool(0.8),
			Failed:    rng.Bool(0.15),
			Latency:   time.Duration(rng.Intn(5000)) * time.Millisecond,
		})
	}
	if rng.Bool(0.7) {
		rec.Joint = []bayes.JointOutcome{
			bayes.NeitherFails, bayes.AOnlyFails, bayes.BOnlyFails, bayes.BothFail,
		}[rng.Intn(4)]
	}
	return rec
}

// TestShardedEqualsReference drives the sharded monitor and the
// single-lock reference with identical randomized concurrent workloads
// and requires every read API to agree: per-shard aggregation must be
// observationally equivalent to sequential accumulation.
func TestShardedEqualsReference(t *testing.T) {
	ops := []string{"add", "sub", "mul"}
	releases := []string{"1.0", "1.1", "1.2"}

	for trial := 0; trial < 3; trial++ {
		m := New()
		ref := newRefMonitor()

		const workers = 8
		const perWorker = 300
		master := xrand.New(uint64(1000 + trial))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			rng := master.Split()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					rec := randomRecord(rng, ops, releases)
					m.Note(rec)
					ref.note(rec)
				}
			}()
		}
		wg.Wait()

		if got, want := m.Joint(), ref.joint; got != want {
			t.Fatalf("trial %d: Joint() = %+v, reference %+v", trial, got, want)
		}
		for _, op := range ops {
			if got, want := m.JointFor(op), ref.perOp[op]; got != want {
				t.Fatalf("trial %d: JointFor(%s) = %+v, reference %+v", trial, op, got, want)
			}
		}
		if got := len(m.Releases()); got != len(ref.releases) {
			t.Fatalf("trial %d: Releases() has %d entries, reference %d", trial, got, len(ref.releases))
		}
		for _, rel := range releases {
			s, err := m.Stats(rel)
			if err != nil {
				t.Fatalf("trial %d: Stats(%s): %v", trial, rel, err)
			}
			if s.Demands != ref.demands[rel] || s.Responses != ref.resp[rel] ||
				s.Evident != ref.evident[rel] || s.JudgedFailures != ref.failed[rel] {
				t.Fatalf("trial %d: Stats(%s) = %+v, reference demands=%d resp=%d evident=%d failed=%d",
					trial, rel, s, ref.demands[rel], ref.resp[rel], ref.evident[rel], ref.failed[rel])
			}
			// Mean via merged Welford summaries vs a plain sum: equal up
			// to float round-off.
			if ref.resp[rel] > 0 {
				wantMean := ref.latSum[rel] / float64(ref.resp[rel])
				gotMean := s.MeanLatency.Seconds()
				// Tolerance covers ns truncation of time.Duration plus
				// float round-off of the merge order.
				if math.Abs(gotMean-wantMean) > 2e-9*math.Max(1, wantMean) {
					t.Fatalf("trial %d: Stats(%s) mean latency %v, reference %v", trial, rel, gotMean, wantMean)
				}
				if math.Abs(s.MaxLatency.Seconds()-ref.latMax[rel]) > 1e-12 {
					t.Fatalf("trial %d: Stats(%s) max latency %v, reference %v", trial, rel, s.MaxLatency.Seconds(), ref.latMax[rel])
				}
			}
			for _, threshold := range []time.Duration{
				0, 30 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second, time.Minute,
			} {
				slow, demands, err := m.SlowResponses(rel, threshold)
				if err != nil {
					t.Fatalf("trial %d: SlowResponses(%s, %v): %v", trial, rel, threshold, err)
				}
				wantSlow, wantDemands := ref.slowResponses(rel, threshold)
				if slow != wantSlow || demands != wantDemands {
					t.Fatalf("trial %d: SlowResponses(%s, %v) = (%d, %d), reference (%d, %d)",
						trial, rel, threshold, slow, demands, wantSlow, wantDemands)
				}
			}
		}
	}
}

// TestRingEviction: the ring must retain exactly the newest capacity
// records, oldest first, and evict in O(1) (covered by the Note
// benchmark; here we pin the semantics).
func TestRingEviction(t *testing.T) {
	m := New(WithLogCapacity(4))
	for i := 0; i < 11; i++ {
		m.Note(Record{Operation: fmt.Sprintf("op-%d", i)})
	}
	log := m.Log()
	if len(log) != 4 {
		t.Fatalf("log length = %d, want 4", len(log))
	}
	for i, rec := range log {
		if want := fmt.Sprintf("op-%d", 7+i); rec.Operation != want {
			t.Fatalf("log[%d] = %q, want %q", i, rec.Operation, want)
		}
	}
}

// TestRingDisabled: capacity 0 disables the log entirely.
func TestRingDisabled(t *testing.T) {
	m := New(WithLogCapacity(0))
	m.Note(Record{Operation: "x"})
	if log := m.Log(); len(log) != 0 {
		t.Fatalf("disabled log returned %d records", len(log))
	}
}

// TestRingConcurrent: under concurrent writers the ring must stay full
// (exactly capacity records once more than capacity were written), hold
// no duplicates, and order retained records consistently with each
// writer's own sequence.
func TestRingConcurrent(t *testing.T) {
	const capacity = 64
	const workers = 8
	const perWorker = 200
	m := New(WithLogCapacity(capacity))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Note(Record{Operation: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	log := m.Log()
	if len(log) != capacity {
		t.Fatalf("log length = %d, want %d", len(log), capacity)
	}
	seen := map[string]bool{}
	lastPerWorker := map[string]int{}
	for _, rec := range log {
		if seen[rec.Operation] {
			t.Fatalf("duplicate record %q in log", rec.Operation)
		}
		seen[rec.Operation] = true
		var w, i int
		if _, err := fmt.Sscanf(rec.Operation, "w%d-%d", &w, &i); err != nil {
			t.Fatalf("unparsable record %q", rec.Operation)
		}
		// Within one writer, retained records must appear in write order.
		key := fmt.Sprintf("w%d", w)
		if last, ok := lastPerWorker[key]; ok && i < last {
			t.Fatalf("writer %d's records out of order: %d after %d", w, i, last)
		}
		lastPerWorker[key] = i
	}
}
