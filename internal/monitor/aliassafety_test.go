package monitor_test

import (
	"bytes"
	"testing"
	"time"

	"wsupgrade/internal/monitor"
	"wsupgrade/internal/pool"
)

// TestLoggedBodySurvivesBufferRecycle is the alias-safety regression test
// for the buffer ownership protocol: an observation recorded with a Body
// that aliases a pooled reply buffer must stay intact in the event log
// after the dispatch layer recycles the buffer and the pool hands its
// backing array to a later request that overwrites it. The monitor's
// copy-on-record boundary (logRing.add) is what makes this hold.
func TestLoggedBodySurvivesBufferRecycle(t *testing.T) {
	m := monitor.New(monitor.WithLogCapacity(8))

	var bufs pool.BufPool
	b := bufs.Get()
	b.B = append(b.B, "<GetQuoteResponse><Price>42.17</Price></GetQuoteResponse>"...)
	want := append([]byte(nil), b.B...)

	m.Note(monitor.Record{
		Time:      time.Now(),
		Operation: "GetQuote",
		Winner:    "v1",
		Releases: []monitor.Observation{{
			Release:   "v1",
			Responded: true,
			Judged:    true,
			Latency:   3 * time.Millisecond,
			Body:      b.B, // aliases the pooled buffer
		}},
	})

	// The dispatcher's completion: the reply buffer goes back to the pool.
	b.Release()

	// A later request draws the same backing array and overwrites it.
	b2 := bufs.Get()
	b2.B = b2.B[:cap(b2.B)]
	for i := range b2.B {
		b2.B[i] = 'X'
	}

	log := m.Log()
	if len(log) != 1 || len(log[0].Releases) != 1 {
		t.Fatalf("log shape: %d records", len(log))
	}
	if got := log[0].Releases[0].Body; !bytes.Equal(got, want) {
		t.Fatalf("logged body corrupted by buffer recycle:\n got %q\nwant %q", got, want)
	}
	b2.Release()
}

// TestLoggedBodySurvivesRingLap asserts the second half of the contract:
// a snapshot taken from the log owns its body bytes, so later records
// lapping the ring (which overwrite the slot's reused backing in place)
// do not corrupt an earlier snapshot.
func TestLoggedBodySurvivesRingLap(t *testing.T) {
	m := monitor.New(monitor.WithLogCapacity(1))

	m.Note(monitor.Record{
		Operation: "GetQuote",
		Releases: []monitor.Observation{{
			Release:   "v1",
			Responded: true,
			Body:      []byte("first body"),
		}},
	})
	snap := m.Log()

	// Lap the one-slot ring: the slot's backing is overwritten in place.
	m.Note(monitor.Record{
		Operation: "GetQuote",
		Releases: []monitor.Observation{{
			Release:   "v1",
			Responded: true,
			Body:      []byte("second, rather longer body"),
		}},
	})

	if got := string(snap[0].Releases[0].Body); got != "first body" {
		t.Fatalf("snapshot body corrupted by ring lap: %q", got)
	}
	if got := string(m.Log()[0].Releases[0].Body); got != "second, rather longer body" {
		t.Fatalf("post-lap log body: %q", got)
	}
}
