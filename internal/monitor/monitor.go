// Package monitor is the middleware's monitoring subsystem (§4.3): for
// every consumer invocation it records, per deployed release, the
// availability (was a response received within the timeout), the
// execution time, and the judged correctness of the response; it
// maintains the joint observation record (Table 1) that feeds the
// Bayesian confidence engine; and it keeps an event log for further
// analysis (the "Data Base" of Figs 3-5), optionally streamed to a JSONL
// writer.
//
// A Monitor is safe for concurrent use by the request handlers of the
// upgrade middleware, and is built for them: writes (Note) are striped
// across lock-sharded accumulators so concurrent recorders do not
// serialize on one mutex, release names are interned to dense indices
// (Intern) so per-observation aggregation is a slice index rather than
// a map lookup under the shard lock, and the bounded event log is a
// sequence-stamped ring with per-slot locking. Reads (Joint, JointFor, Stats,
// SlowResponses) aggregate across the shards; because every record lands
// in exactly one shard, aggregated totals are exact — no observation is
// double-counted or lost — although a read that races a write may or may
// not include that single in-flight record.
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/stats"
)

// ErrUnknownRelease reports a query for a release never observed.
var ErrUnknownRelease = errors.New("monitor: unknown release")

// ReleaseID is a dense interned index for a release version string,
// assigned by Intern. IDs are 1-based; the zero value means "not
// interned" and makes the zero Observation safe. IDs are only meaningful
// for the Monitor that issued them.
type ReleaseID int32

// Observation is one release's behaviour on one intercepted demand.
type Observation struct {
	// Release is the release's version string.
	Release string `json:"release"`
	// ID optionally carries this Monitor's interned index for Release
	// (from Intern), letting Note aggregate by slice index instead of a
	// map lookup per observation. Zero — or an ID that does not match
	// Release — falls back to interning by name.
	ID ReleaseID `json:"-"`
	// Responded reports whether a response arrived within the timeout.
	Responded bool `json:"responded"`
	// Evident reports an evident failure (fault, transport error, or —
	// when Responded is false — the timeout itself).
	Evident bool `json:"evident"`
	// Judged reports whether the oracle judged correctness.
	Judged bool `json:"judged"`
	// Failed is the oracle's verdict (meaningful when Judged).
	Failed bool `json:"failed"`
	// Latency is the observed execution time.
	Latency time.Duration `json:"latency_ns"`
	// Body is the release's response payload as observed by the
	// middleware (nil when not captured). At Note time it may alias a
	// pooled reply buffer owned by the dispatcher: the monitor copies it
	// into log-slot-owned backing at the record boundary (logRing.add)
	// and never retains the caller's bytes, so the dispatcher may
	// recycle the buffer the moment Note returns. Excluded from JSON
	// sinks, which would otherwise base64 every payload.
	Body []byte `json:"-"`
}

// Record is one intercepted demand with all its release observations.
// Note does not retain the Releases slice — or the bytes its
// observations' Body fields alias — past its return: callers may
// recycle both.
type Record struct {
	// Time is the interception timestamp.
	Time time.Time `json:"time"`
	// Operation is the invoked operation name.
	Operation string `json:"operation"`
	// Releases holds one observation per deployed release.
	Releases []Observation `json:"releases"`
	// Winner is the release whose response was delivered ("" if none).
	Winner string `json:"winner,omitempty"`
	// Joint is the pairwise outcome for the (old, new) release pair fed
	// to the white-box inference; zero when not derivable.
	Joint bayes.JointOutcome `json:"joint,omitempty"`
}

// ReleaseStats aggregates one release's observed behaviour.
type ReleaseStats struct {
	// Release is the version string.
	Release string
	// Demands counts observations.
	Demands int
	// Responses counts demands with a response within the timeout.
	Responses int
	// Evident counts evident failures.
	Evident int
	// JudgedFailures counts oracle-judged failures (evident or not).
	JudgedFailures int
	// MeanLatency is the mean observed execution time.
	MeanLatency time.Duration
	// MaxLatency is the slowest observed execution time.
	MaxLatency time.Duration
}

// Availability is the fraction of demands that produced a response
// within the timeout (§2: availability including responsiveness).
func (s ReleaseStats) Availability() float64 {
	if s.Demands == 0 {
		return 0
	}
	return float64(s.Responses) / float64(s.Demands)
}

// latencyBins discretize response latencies for exceedance queries; the
// range covers [0, latencyRange) with 1 ms resolution at the low end
// growing geometrically, which keeps responsiveness confidence accurate
// where it matters.
const (
	latencyBinCount = 2048
	latencyRange    = 60 * time.Second
)

// numShards stripes the write path. Must be a power of two. 32 shards
// keep mutex hand-offs negligible up to well past the core counts this
// middleware deploys on, at ~(releases × 16 KiB) memory per shard.
const numShards = 32

type releaseAgg struct {
	demands, responses, evident, judgedFailed int
	// overflow counts responses whose latency was at or beyond the
	// histogram range: they are clamped into the top bin (totals always
	// balance) but SlowResponses needs to know they exist when the
	// queried threshold itself lies beyond the range.
	overflow    int
	latency     stats.Summary
	latencyHist *stats.Histogram
}

// merge folds another accumulator into agg.
func (agg *releaseAgg) merge(o *releaseAgg) {
	agg.demands += o.demands
	agg.responses += o.responses
	agg.evident += o.evident
	agg.judgedFailed += o.judgedFailed
	agg.overflow += o.overflow
	agg.latency.Merge(o.latency)
	if err := agg.latencyHist.Merge(o.latencyHist); err != nil {
		panic("monitor: merging latency histograms: " + err.Error()) // identical static bounds, unreachable
	}
}

func newReleaseAgg() *releaseAgg {
	hist, err := stats.NewHistogram(0, latencyRange.Seconds(), latencyBinCount)
	if err != nil {
		panic("monitor: latency histogram: " + err.Error()) // static bounds, unreachable
	}
	return &releaseAgg{latencyHist: hist}
}

// shard is one lock-striped bucket of the observation store. Per-release
// accumulators are indexed by interned ReleaseID (slot id-1, nil until
// this shard's first observation of that release), so the write path
// under the shard lock is a slice index, not a map lookup per
// observation.
type shard struct {
	mu    sync.Mutex
	aggs  []*releaseAgg
	joint bayes.JointCounts
	perOp map[string]bayes.JointCounts
}

// agg returns the shard's accumulator for an interned release, creating
// it on first sight. Callers hold sh.mu.
func (sh *shard) agg(id ReleaseID) *releaseAgg {
	idx := int(id) - 1
	if idx >= len(sh.aggs) {
		grown := make([]*releaseAgg, idx+1)
		copy(grown, sh.aggs)
		sh.aggs = grown
	}
	a := sh.aggs[idx]
	if a == nil {
		a = newReleaseAgg()
		sh.aggs[idx] = a
	}
	return a
}

// internTable is the immutable release-name interning state, swapped
// atomically so Note's lookups are lock-free.
type internTable struct {
	ids   map[string]ReleaseID
	names []string // names[id-1] — the reverse mapping
}

// Monitor accumulates records. Construct with New.
type Monitor struct {
	shards [numShards]*shard
	// next round-robins Note calls across the shards; uniform striping
	// beats key hashing here because one hot operation must still spread.
	next atomic.Uint64

	// intern maps release names to dense indices (copy-on-write; readers
	// never lock, writers serialize on internMu).
	intern   atomic.Pointer[internTable]
	internMu sync.Mutex

	ring *logRing // nil when the event log is disabled

	sinkMu  sync.Mutex
	sink    io.Writer
	sinkErr error

	logCap int
}

var _ bayes.JointSource = (*Monitor)(nil)

// Option configures a Monitor.
type Option func(*Monitor)

// WithLogCapacity bounds the in-memory event log (default 4096 records;
// older records are dropped first; 0 disables the log).
func WithLogCapacity(n int) Option {
	return func(m *Monitor) { m.logCap = n }
}

// WithSink streams every record as one JSON line to w (the persistent
// "Data Base" of the architecture diagrams). Write errors are remembered
// and reported by Err; recording continues in memory.
func WithSink(w io.Writer) Option {
	return func(m *Monitor) { m.sink = w }
}

// New returns an empty monitor.
func New(opts ...Option) *Monitor {
	m := &Monitor{logCap: 4096}
	for i := range m.shards {
		m.shards[i] = &shard{
			perOp: make(map[string]bayes.JointCounts),
		}
	}
	for _, o := range opts {
		o(m)
	}
	if m.logCap > 0 {
		m.ring = newLogRing(m.logCap)
	}
	return m
}

// Intern returns the dense index for a release name, assigning the next
// one on first sight. Lookups are a lock-free load of the immutable
// table; assignment copies the table under a mutex. Recording paths that
// observe the same releases on every demand should intern once and carry
// the ID on their Observations.
func (m *Monitor) Intern(release string) ReleaseID {
	if t := m.intern.Load(); t != nil {
		if id, ok := t.ids[release]; ok {
			return id
		}
	}
	m.internMu.Lock()
	defer m.internMu.Unlock()
	old := m.intern.Load()
	if old != nil {
		if id, ok := old.ids[release]; ok {
			return id
		}
	}
	next := &internTable{}
	if old != nil {
		next.ids = make(map[string]ReleaseID, len(old.ids)+1)
		for k, v := range old.ids {
			next.ids[k] = v
		}
		next.names = append(append([]string(nil), old.names...), release)
	} else {
		next.ids = make(map[string]ReleaseID, 1)
		next.names = []string{release}
	}
	id := ReleaseID(len(next.names))
	next.ids[release] = id
	m.intern.Store(next)
	return id
}

// lookup resolves a release name to its interned ID (0 when never
// interned).
func (m *Monitor) lookup(release string) ReleaseID {
	if t := m.intern.Load(); t != nil {
		return t.ids[release]
	}
	return 0
}

// resolve returns the trusted interned ID for one observation: the
// pre-interned ID when it matches the observation's release name, or a
// fresh interning by name (IDs from a different Monitor must not
// aggregate into the wrong slot).
func (m *Monitor) resolve(t *internTable, obs *Observation) ReleaseID {
	if id := obs.ID; id > 0 && t != nil && int(id) <= len(t.names) && t.names[id-1] == obs.Release {
		return id
	}
	return m.Intern(obs.Release)
}

// Note records one demand. The no-sink configuration is the judgment
// hot path and must stay allocation-free; the sink write (which
// marshals) lives in sinkWrite so its allocations stay outside Note's
// checked span.
//
//wsu:noalloc
func (m *Monitor) Note(rec Record) {
	t := m.intern.Load()
	sh := m.shards[m.next.Add(1)&(numShards-1)]
	sh.mu.Lock()
	for i := range rec.Releases {
		obs := &rec.Releases[i]
		agg := sh.agg(m.resolve(t, obs))
		agg.demands++
		if obs.Responded {
			sec := obs.Latency.Seconds()
			agg.responses++
			agg.latency.Observe(sec)
			agg.latencyHist.Observe(sec)
			if sec >= latencyRange.Seconds() {
				agg.overflow++
			}
		}
		if obs.Evident {
			agg.evident++
		}
		if obs.Judged && obs.Failed {
			agg.judgedFailed++
		}
	}
	if rec.Joint != 0 {
		sh.joint.Add(rec.Joint)
		if rec.Operation != "" {
			perOp := sh.perOp[rec.Operation]
			perOp.Add(rec.Joint)
			sh.perOp[rec.Operation] = perOp
		}
	}
	sh.mu.Unlock()

	if m.ring != nil {
		m.ring.add(rec)
	}
	if m.sink != nil {
		m.sinkWrite(rec)
	}
}

// sinkWrite marshals one record to the configured sink. It allocates by
// nature (JSON encoding), which is why it lives outside Note's
// //wsu:noalloc span.
func (m *Monitor) sinkWrite(rec Record) {
	// Marshalling runs outside every lock; only the actual write is
	// serialized, since io.Writer interleaving must stay line-atomic.
	line, err := json.Marshal(rec)
	m.sinkMu.Lock()
	if err == nil {
		line = append(line, '\n')
		_, err = m.sink.Write(line)
	}
	if err != nil && m.sinkErr == nil {
		m.sinkErr = fmt.Errorf("monitor: writing sink: %w", err)
	}
	m.sinkMu.Unlock()
}

// Err reports the first sink write error, if any.
func (m *Monitor) Err() error {
	m.sinkMu.Lock()
	defer m.sinkMu.Unlock()
	return m.sinkErr
}

// Joint returns the accumulated pairwise observation record (Table 1)
// for the Bayesian inference.
func (m *Monitor) Joint() bayes.JointCounts {
	var total bayes.JointCounts
	for _, sh := range m.shards {
		sh.mu.Lock()
		total.Merge(sh.joint)
		sh.mu.Unlock()
	}
	return total
}

// JointFor returns the pairwise observation record restricted to one
// operation — the §6.2 per-operation confidence is computed from it.
func (m *Monitor) JointFor(operation string) bayes.JointCounts {
	var total bayes.JointCounts
	for _, sh := range m.shards {
		sh.mu.Lock()
		total.Merge(sh.perOp[operation])
		sh.mu.Unlock()
	}
	return total
}

// mergedAgg aggregates one release's accumulators across every shard.
func (m *Monitor) mergedAgg(release string) (*releaseAgg, bool) {
	id := m.lookup(release)
	if id == 0 {
		return nil, false
	}
	idx := int(id) - 1
	var merged *releaseAgg
	for _, sh := range m.shards {
		sh.mu.Lock()
		if idx < len(sh.aggs) && sh.aggs[idx] != nil {
			if merged == nil {
				merged = newReleaseAgg()
			}
			merged.merge(sh.aggs[idx])
		}
		sh.mu.Unlock()
	}
	return merged, merged != nil
}

// SlowResponses returns how many of a release's demands either produced
// no response at all or responded slower than the threshold — the
// numerator of the §6.1 responsiveness attribute. The count is computed
// from a 2048-bin latency histogram, so thresholds are resolved to
// ~30 ms granularity: a threshold inside a bin charges that whole bin as
// fast (the conservative rounding), while a threshold on a bin boundary
// charges the bin above it as slow. Latencies at or beyond the histogram
// range are tracked explicitly, so a threshold beyond the range still
// counts them instead of silently reporting zero slow responses —
// unless the slowest observed response was itself within the threshold,
// in which case nothing was slow.
func (m *Monitor) SlowResponses(release string, threshold time.Duration) (slow, demands int, err error) {
	agg, ok := m.mergedAgg(release)
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownRelease, release)
	}
	noResponse := agg.demands - agg.responses
	// Count responses in bins entirely above the threshold: the first
	// bin whose lower edge is at or past the threshold. This is a ceil —
	// int(x/w)+1 skipped one fully-above bin whenever the threshold
	// landed exactly on a bin boundary.
	binWidth := latencyRange.Seconds() / latencyBinCount
	sec := threshold.Seconds()
	firstAbove := int(sec / binWidth)
	if float64(firstAbove)*binWidth < sec {
		firstAbove++
	}
	if firstAbove < 0 {
		firstAbove = 0
	}
	slowResponded := 0
	if firstAbove < latencyBinCount {
		for i := firstAbove; i < latencyBinCount; i++ {
			slowResponded += agg.latencyHist.Counts[i]
		}
	} else if agg.latency.Max() > sec {
		// The threshold is at or beyond the histogram range: every
		// in-range latency is fast, and the histogram cannot resolve
		// the responses clamped into the top bin (>= the range) any
		// further. When the slowest observed response did exceed the
		// threshold, count all over-range responses rather than
		// undercount the §6.1 numerator to zero — the documented
		// granularity limit beyond the range. When even the slowest
		// response was within the threshold, nothing was slow.
		slowResponded = agg.overflow
	}
	return noResponse + slowResponded, agg.demands, nil
}

// Stats returns one release's aggregate behaviour.
func (m *Monitor) Stats(release string) (ReleaseStats, error) {
	agg, ok := m.mergedAgg(release)
	if !ok {
		return ReleaseStats{}, fmt.Errorf("%w: %q", ErrUnknownRelease, release)
	}
	return ReleaseStats{
		Release:        release,
		Demands:        agg.demands,
		Responses:      agg.responses,
		Evident:        agg.evident,
		JudgedFailures: agg.judgedFailed,
		MeanLatency:    time.Duration(agg.latency.Mean() * float64(time.Second)),
		MaxLatency:     time.Duration(agg.latency.Max() * float64(time.Second)),
	}, nil
}

// Releases lists the observed release versions (unordered). Releases
// that were interned but never observed are not listed.
func (m *Monitor) Releases() []string {
	t := m.intern.Load()
	if t == nil {
		return nil
	}
	seen := make([]bool, len(t.names))
	for _, sh := range m.shards {
		sh.mu.Lock()
		for idx, agg := range sh.aggs {
			if agg != nil && idx < len(seen) {
				seen[idx] = true
			}
		}
		sh.mu.Unlock()
	}
	out := make([]string, 0, len(t.names))
	for idx, ok := range seen {
		if ok {
			out = append(out, t.names[idx])
		}
	}
	return out
}

// Log returns a copy of the retained event records, oldest first (empty
// when the log is disabled).
func (m *Monitor) Log() []Record {
	if m.ring == nil {
		return nil
	}
	return m.ring.snapshot()
}

// ---------------------------------------------------------------------------
// Event-log ring

// logRing is a bounded, sequence-stamped ring of records. A global
// atomic ticket assigns each record a slot, so writers contend only when
// two of them land exactly capacity apart; eviction of the oldest record
// is an O(1) overwrite rather than the O(capacity) shift of a sliced
// queue.
type logRing struct {
	seq   atomic.Uint64 // records ever written; slot = (seq-1) % len(slots)
	slots []logSlot
}

type logSlot struct {
	mu  sync.Mutex
	seq uint64 // 0 = never written
	rec Record
	// bodies is the slot-owned backing for the observations' Body
	// copies, reused across ring laps so steady-state recording
	// allocates nothing.
	bodies [][]byte
}

func newLogRing(capacity int) *logRing {
	return &logRing{slots: make([]logSlot, capacity)}
}

// add is on the judgment hot path (Note calls it whenever the log is
// enabled) and allocates only when the per-demand observation count
// grows past anything the slot has seen — steady state recycles the
// slot's own backing.
//
//wsu:noalloc
func (r *logRing) add(rec Record) {
	n := r.seq.Add(1)
	s := &r.slots[(n-1)%uint64(len(r.slots))]
	s.mu.Lock()
	// A writer that stalled between taking its ticket and locking the
	// slot must not clobber a newer record that lapped it.
	if n > s.seq {
		s.seq = n
		// The observations — and their body bytes — are copied into the
		// slot's own backing arrays (reused across laps), so the ring
		// never retains or aliases a caller's slice: callers may pool
		// their observation slices and recycle the pooled reply buffers
		// the bodies alias as soon as add returns. This is the
		// copy-on-record boundary of the buffer ownership protocol.
		releases := s.rec.Releases
		s.rec = rec
		s.rec.Releases = append(releases[:0], rec.Releases...)
		if len(s.rec.Releases) > len(s.bodies) {
			//wsu:allow noalloc -- the backing grows only when the per-demand observation count exceeds anything this slot has seen
			s.bodies = make([][]byte, len(s.rec.Releases))
		}
		for i := range s.rec.Releases {
			obs := &s.rec.Releases[i]
			s.bodies[i] = append(s.bodies[i][:0], obs.Body...)
			obs.Body = s.bodies[i]
		}
	}
	s.mu.Unlock()
}

// snapshot returns the retained records ordered oldest first.
func (r *logRing) snapshot() []Record {
	type entry struct {
		seq uint64
		rec Record
	}
	entries := make([]entry, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			e := entry{s.seq, s.rec}
			// The slot's backing arrays are overwritten in place when the
			// ring laps; the snapshot takes its own copies (observations
			// and body bytes) while the slot lock still protects them.
			e.rec.Releases = append([]Observation(nil), s.rec.Releases...)
			for i := range e.rec.Releases {
				obs := &e.rec.Releases[i]
				obs.Body = append([]byte(nil), obs.Body...)
			}
			entries = append(entries, e)
		}
		s.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]Record, len(entries))
	for i, e := range entries {
		out[i] = e.rec
	}
	return out
}
