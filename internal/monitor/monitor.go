// Package monitor is the middleware's monitoring subsystem (§4.3): for
// every consumer invocation it records, per deployed release, the
// availability (was a response received within the timeout), the
// execution time, and the judged correctness of the response; it
// maintains the joint observation record (Table 1) that feeds the
// Bayesian confidence engine; and it keeps an event log for further
// analysis (the "Data Base" of Figs 3-5), optionally streamed to a JSONL
// writer.
//
// A Monitor is safe for concurrent use by the request handlers of the
// upgrade middleware, and is built for them: writes (Note) are striped
// across lock-sharded accumulators so concurrent recorders do not
// serialize on one mutex, and the bounded event log is a sequence-stamped
// ring with per-slot locking. Reads (Joint, JointFor, Stats,
// SlowResponses) aggregate across the shards; because every record lands
// in exactly one shard, aggregated totals are exact — no observation is
// double-counted or lost — although a read that races a write may or may
// not include that single in-flight record.
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/stats"
)

// ErrUnknownRelease reports a query for a release never observed.
var ErrUnknownRelease = errors.New("monitor: unknown release")

// Observation is one release's behaviour on one intercepted demand.
type Observation struct {
	// Release is the release's version string.
	Release string `json:"release"`
	// Responded reports whether a response arrived within the timeout.
	Responded bool `json:"responded"`
	// Evident reports an evident failure (fault, transport error, or —
	// when Responded is false — the timeout itself).
	Evident bool `json:"evident"`
	// Judged reports whether the oracle judged correctness.
	Judged bool `json:"judged"`
	// Failed is the oracle's verdict (meaningful when Judged).
	Failed bool `json:"failed"`
	// Latency is the observed execution time.
	Latency time.Duration `json:"latency_ns"`
}

// Record is one intercepted demand with all its release observations.
// Note does not retain the Releases slice past its return: callers may
// recycle it.
type Record struct {
	// Time is the interception timestamp.
	Time time.Time `json:"time"`
	// Operation is the invoked operation name.
	Operation string `json:"operation"`
	// Releases holds one observation per deployed release.
	Releases []Observation `json:"releases"`
	// Winner is the release whose response was delivered ("" if none).
	Winner string `json:"winner,omitempty"`
	// Joint is the pairwise outcome for the (old, new) release pair fed
	// to the white-box inference; zero when not derivable.
	Joint bayes.JointOutcome `json:"joint,omitempty"`
}

// ReleaseStats aggregates one release's observed behaviour.
type ReleaseStats struct {
	// Release is the version string.
	Release string
	// Demands counts observations.
	Demands int
	// Responses counts demands with a response within the timeout.
	Responses int
	// Evident counts evident failures.
	Evident int
	// JudgedFailures counts oracle-judged failures (evident or not).
	JudgedFailures int
	// MeanLatency is the mean observed execution time.
	MeanLatency time.Duration
	// MaxLatency is the slowest observed execution time.
	MaxLatency time.Duration
}

// Availability is the fraction of demands that produced a response
// within the timeout (§2: availability including responsiveness).
func (s ReleaseStats) Availability() float64 {
	if s.Demands == 0 {
		return 0
	}
	return float64(s.Responses) / float64(s.Demands)
}

// latencyBins discretize response latencies for exceedance queries; the
// range covers [0, latencyRange) with 1 ms resolution at the low end
// growing geometrically, which keeps responsiveness confidence accurate
// where it matters.
const (
	latencyBinCount = 2048
	latencyRange    = 60 * time.Second
)

// numShards stripes the write path. Must be a power of two. 32 shards
// keep mutex hand-offs negligible up to well past the core counts this
// middleware deploys on, at ~(releases × 16 KiB) memory per shard.
const numShards = 32

type releaseAgg struct {
	demands, responses, evident, judgedFailed int
	latency                                   stats.Summary
	latencyHist                               *stats.Histogram
}

// merge folds another accumulator into agg.
func (agg *releaseAgg) merge(o *releaseAgg) {
	agg.demands += o.demands
	agg.responses += o.responses
	agg.evident += o.evident
	agg.judgedFailed += o.judgedFailed
	agg.latency.Merge(o.latency)
	if err := agg.latencyHist.Merge(o.latencyHist); err != nil {
		panic("monitor: merging latency histograms: " + err.Error()) // identical static bounds, unreachable
	}
}

func newReleaseAgg() *releaseAgg {
	hist, err := stats.NewHistogram(0, latencyRange.Seconds(), latencyBinCount)
	if err != nil {
		panic("monitor: latency histogram: " + err.Error()) // static bounds, unreachable
	}
	return &releaseAgg{latencyHist: hist}
}

// shard is one lock-striped bucket of the observation store.
type shard struct {
	mu       sync.Mutex
	releases map[string]*releaseAgg
	joint    bayes.JointCounts
	perOp    map[string]bayes.JointCounts
}

// Monitor accumulates records. Construct with New.
type Monitor struct {
	shards [numShards]*shard
	// next round-robins Note calls across the shards; uniform striping
	// beats key hashing here because one hot operation must still spread.
	next atomic.Uint64

	ring *logRing // nil when the event log is disabled

	sinkMu  sync.Mutex
	sink    io.Writer
	sinkErr error

	logCap int
}

var _ bayes.JointSource = (*Monitor)(nil)

// Option configures a Monitor.
type Option func(*Monitor)

// WithLogCapacity bounds the in-memory event log (default 4096 records;
// older records are dropped first; 0 disables the log).
func WithLogCapacity(n int) Option {
	return func(m *Monitor) { m.logCap = n }
}

// WithSink streams every record as one JSON line to w (the persistent
// "Data Base" of the architecture diagrams). Write errors are remembered
// and reported by Err; recording continues in memory.
func WithSink(w io.Writer) Option {
	return func(m *Monitor) { m.sink = w }
}

// New returns an empty monitor.
func New(opts ...Option) *Monitor {
	m := &Monitor{logCap: 4096}
	for i := range m.shards {
		m.shards[i] = &shard{
			releases: make(map[string]*releaseAgg),
			perOp:    make(map[string]bayes.JointCounts),
		}
	}
	for _, o := range opts {
		o(m)
	}
	if m.logCap > 0 {
		m.ring = newLogRing(m.logCap)
	}
	return m
}

// Note records one demand.
func (m *Monitor) Note(rec Record) {
	sh := m.shards[m.next.Add(1)&(numShards-1)]
	sh.mu.Lock()
	for _, obs := range rec.Releases {
		agg, ok := sh.releases[obs.Release]
		if !ok {
			agg = newReleaseAgg()
			sh.releases[obs.Release] = agg
		}
		agg.demands++
		if obs.Responded {
			agg.responses++
			agg.latency.Observe(obs.Latency.Seconds())
			agg.latencyHist.Observe(obs.Latency.Seconds())
		}
		if obs.Evident {
			agg.evident++
		}
		if obs.Judged && obs.Failed {
			agg.judgedFailed++
		}
	}
	if rec.Joint != 0 {
		sh.joint.Add(rec.Joint)
		if rec.Operation != "" {
			perOp := sh.perOp[rec.Operation]
			perOp.Add(rec.Joint)
			sh.perOp[rec.Operation] = perOp
		}
	}
	sh.mu.Unlock()

	if m.ring != nil {
		m.ring.add(rec)
	}
	if m.sink != nil {
		// Marshalling runs outside every lock; only the actual write is
		// serialized, since io.Writer interleaving must stay line-atomic.
		line, err := json.Marshal(rec)
		m.sinkMu.Lock()
		if err == nil {
			line = append(line, '\n')
			_, err = m.sink.Write(line)
		}
		if err != nil && m.sinkErr == nil {
			m.sinkErr = fmt.Errorf("monitor: writing sink: %w", err)
		}
		m.sinkMu.Unlock()
	}
}

// Err reports the first sink write error, if any.
func (m *Monitor) Err() error {
	m.sinkMu.Lock()
	defer m.sinkMu.Unlock()
	return m.sinkErr
}

// Joint returns the accumulated pairwise observation record (Table 1)
// for the Bayesian inference.
func (m *Monitor) Joint() bayes.JointCounts {
	var total bayes.JointCounts
	for _, sh := range m.shards {
		sh.mu.Lock()
		total.Merge(sh.joint)
		sh.mu.Unlock()
	}
	return total
}

// JointFor returns the pairwise observation record restricted to one
// operation — the §6.2 per-operation confidence is computed from it.
func (m *Monitor) JointFor(operation string) bayes.JointCounts {
	var total bayes.JointCounts
	for _, sh := range m.shards {
		sh.mu.Lock()
		total.Merge(sh.perOp[operation])
		sh.mu.Unlock()
	}
	return total
}

// mergedAgg aggregates one release's accumulators across every shard.
func (m *Monitor) mergedAgg(release string) (*releaseAgg, bool) {
	var merged *releaseAgg
	for _, sh := range m.shards {
		sh.mu.Lock()
		agg, ok := sh.releases[release]
		if ok {
			if merged == nil {
				merged = newReleaseAgg()
			}
			merged.merge(agg)
		}
		sh.mu.Unlock()
	}
	return merged, merged != nil
}

// SlowResponses returns how many of a release's demands either produced
// no response at all or responded slower than the threshold — the
// numerator of the §6.1 responsiveness attribute. The count is computed
// from a 2048-bin latency histogram, so thresholds are resolved to
// ~30 ms granularity.
func (m *Monitor) SlowResponses(release string, threshold time.Duration) (slow, demands int, err error) {
	agg, ok := m.mergedAgg(release)
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownRelease, release)
	}
	noResponse := agg.demands - agg.responses
	// Count responses in bins entirely above the threshold.
	binWidth := latencyRange.Seconds() / latencyBinCount
	firstAbove := int(threshold.Seconds()/binWidth) + 1
	slowResponded := 0
	for i := firstAbove; i < latencyBinCount; i++ {
		slowResponded += agg.latencyHist.Counts[i]
	}
	return noResponse + slowResponded, agg.demands, nil
}

// Stats returns one release's aggregate behaviour.
func (m *Monitor) Stats(release string) (ReleaseStats, error) {
	agg, ok := m.mergedAgg(release)
	if !ok {
		return ReleaseStats{}, fmt.Errorf("%w: %q", ErrUnknownRelease, release)
	}
	return ReleaseStats{
		Release:        release,
		Demands:        agg.demands,
		Responses:      agg.responses,
		Evident:        agg.evident,
		JudgedFailures: agg.judgedFailed,
		MeanLatency:    time.Duration(agg.latency.Mean() * float64(time.Second)),
		MaxLatency:     time.Duration(agg.latency.Max() * float64(time.Second)),
	}, nil
}

// Releases lists the observed release versions (unordered).
func (m *Monitor) Releases() []string {
	seen := make(map[string]bool)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for name := range sh.releases {
			seen[name] = true
		}
		sh.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	return out
}

// Log returns a copy of the retained event records, oldest first (empty
// when the log is disabled).
func (m *Monitor) Log() []Record {
	if m.ring == nil {
		return nil
	}
	return m.ring.snapshot()
}

// ---------------------------------------------------------------------------
// Event-log ring

// logRing is a bounded, sequence-stamped ring of records. A global
// atomic ticket assigns each record a slot, so writers contend only when
// two of them land exactly capacity apart; eviction of the oldest record
// is an O(1) overwrite rather than the O(capacity) shift of a sliced
// queue.
type logRing struct {
	seq   atomic.Uint64 // records ever written; slot = (seq-1) % len(slots)
	slots []logSlot
}

type logSlot struct {
	mu  sync.Mutex
	seq uint64 // 0 = never written
	rec Record
}

func newLogRing(capacity int) *logRing {
	return &logRing{slots: make([]logSlot, capacity)}
}

func (r *logRing) add(rec Record) {
	n := r.seq.Add(1)
	s := &r.slots[(n-1)%uint64(len(r.slots))]
	s.mu.Lock()
	// A writer that stalled between taking its ticket and locking the
	// slot must not clobber a newer record that lapped it.
	if n > s.seq {
		s.seq = n
		// The observations are copied into the slot's own backing array
		// (reused across laps), so the ring never retains — or aliases —
		// a caller's slice, and callers may pool theirs.
		releases := s.rec.Releases
		s.rec = rec
		s.rec.Releases = append(releases[:0], rec.Releases...)
	}
	s.mu.Unlock()
}

// snapshot returns the retained records ordered oldest first.
func (r *logRing) snapshot() []Record {
	type entry struct {
		seq uint64
		rec Record
	}
	entries := make([]entry, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			e := entry{s.seq, s.rec}
			// The slot's backing array is overwritten in place when the
			// ring laps; the snapshot takes its own copy while the slot
			// lock still protects it.
			e.rec.Releases = append([]Observation(nil), s.rec.Releases...)
			entries = append(entries, e)
		}
		s.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]Record, len(entries))
	for i, e := range entries {
		out[i] = e.rec
	}
	return out
}
