// Package monitor is the middleware's monitoring subsystem (§4.3): for
// every consumer invocation it records, per deployed release, the
// availability (was a response received within the timeout), the
// execution time, and the judged correctness of the response; it
// maintains the joint observation record (Table 1) that feeds the
// Bayesian confidence engine; and it keeps an event log for further
// analysis (the "Data Base" of Figs 3-5), optionally streamed to a JSONL
// writer.
//
// A Monitor is safe for concurrent use by the request handlers of the
// upgrade middleware.
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/stats"
)

// ErrUnknownRelease reports a query for a release never observed.
var ErrUnknownRelease = errors.New("monitor: unknown release")

// Observation is one release's behaviour on one intercepted demand.
type Observation struct {
	// Release is the release's version string.
	Release string `json:"release"`
	// Responded reports whether a response arrived within the timeout.
	Responded bool `json:"responded"`
	// Evident reports an evident failure (fault, transport error, or —
	// when Responded is false — the timeout itself).
	Evident bool `json:"evident"`
	// Judged reports whether the oracle judged correctness.
	Judged bool `json:"judged"`
	// Failed is the oracle's verdict (meaningful when Judged).
	Failed bool `json:"failed"`
	// Latency is the observed execution time.
	Latency time.Duration `json:"latency_ns"`
}

// Record is one intercepted demand with all its release observations.
type Record struct {
	// Time is the interception timestamp.
	Time time.Time `json:"time"`
	// Operation is the invoked operation name.
	Operation string `json:"operation"`
	// Releases holds one observation per deployed release.
	Releases []Observation `json:"releases"`
	// Winner is the release whose response was delivered ("" if none).
	Winner string `json:"winner,omitempty"`
	// Joint is the pairwise outcome for the (old, new) release pair fed
	// to the white-box inference; zero when not derivable.
	Joint bayes.JointOutcome `json:"joint,omitempty"`
}

// ReleaseStats aggregates one release's observed behaviour.
type ReleaseStats struct {
	// Release is the version string.
	Release string
	// Demands counts observations.
	Demands int
	// Responses counts demands with a response within the timeout.
	Responses int
	// Evident counts evident failures.
	Evident int
	// JudgedFailures counts oracle-judged failures (evident or not).
	JudgedFailures int
	// MeanLatency is the mean observed execution time.
	MeanLatency time.Duration
	// MaxLatency is the slowest observed execution time.
	MaxLatency time.Duration
}

// Availability is the fraction of demands that produced a response
// within the timeout (§2: availability including responsiveness).
func (s ReleaseStats) Availability() float64 {
	if s.Demands == 0 {
		return 0
	}
	return float64(s.Responses) / float64(s.Demands)
}

// latencyBins discretize response latencies for exceedance queries; the
// range covers [0, latencyRange) with 1 ms resolution at the low end
// growing geometrically, which keeps responsiveness confidence accurate
// where it matters.
const (
	latencyBinCount = 2048
	latencyRange    = 60 * time.Second
)

type releaseAgg struct {
	demands, responses, evident, judgedFailed int
	latency                                   stats.Summary
	latencyHist                               *stats.Histogram
}

// Monitor accumulates records. Construct with New.
type Monitor struct {
	mu       sync.Mutex
	releases map[string]*releaseAgg
	joint    bayes.JointCounts
	perOp    map[string]bayes.JointCounts
	log      []Record
	logCap   int
	sink     io.Writer
	sinkErr  error
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithLogCapacity bounds the in-memory event log (default 4096 records;
// older records are dropped first).
func WithLogCapacity(n int) Option {
	return func(m *Monitor) { m.logCap = n }
}

// WithSink streams every record as one JSON line to w (the persistent
// "Data Base" of the architecture diagrams). Write errors are remembered
// and reported by Err; recording continues in memory.
func WithSink(w io.Writer) Option {
	return func(m *Monitor) { m.sink = w }
}

// New returns an empty monitor.
func New(opts ...Option) *Monitor {
	m := &Monitor{
		releases: make(map[string]*releaseAgg),
		perOp:    make(map[string]bayes.JointCounts),
		logCap:   4096,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Note records one demand.
func (m *Monitor) Note(rec Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, obs := range rec.Releases {
		agg, ok := m.releases[obs.Release]
		if !ok {
			hist, err := stats.NewHistogram(0, latencyRange.Seconds(), latencyBinCount)
			if err != nil {
				panic("monitor: latency histogram: " + err.Error()) // static bounds, unreachable
			}
			agg = &releaseAgg{latencyHist: hist}
			m.releases[obs.Release] = agg
		}
		agg.demands++
		if obs.Responded {
			agg.responses++
			agg.latency.Observe(obs.Latency.Seconds())
			agg.latencyHist.Observe(obs.Latency.Seconds())
		}
		if obs.Evident {
			agg.evident++
		}
		if obs.Judged && obs.Failed {
			agg.judgedFailed++
		}
	}
	if rec.Joint != 0 {
		m.joint.Add(rec.Joint)
		if rec.Operation != "" {
			perOp := m.perOp[rec.Operation]
			perOp.Add(rec.Joint)
			m.perOp[rec.Operation] = perOp
		}
	}
	if m.logCap > 0 {
		if len(m.log) >= m.logCap {
			copy(m.log, m.log[1:])
			m.log = m.log[:len(m.log)-1]
		}
		m.log = append(m.log, rec)
	}
	if m.sink != nil {
		line, err := json.Marshal(rec)
		if err == nil {
			line = append(line, '\n')
			_, err = m.sink.Write(line)
		}
		if err != nil && m.sinkErr == nil {
			m.sinkErr = fmt.Errorf("monitor: writing sink: %w", err)
		}
	}
}

// Err reports the first sink write error, if any.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sinkErr
}

// Joint returns the accumulated pairwise observation record (Table 1)
// for the Bayesian inference.
func (m *Monitor) Joint() bayes.JointCounts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.joint
}

// SlowResponses returns how many of a release's demands either produced
// no response at all or responded slower than the threshold — the
// numerator of the §6.1 responsiveness attribute. The count is computed
// from a 2048-bin latency histogram, so thresholds are resolved to
// ~30 ms granularity.
func (m *Monitor) SlowResponses(release string, threshold time.Duration) (slow, demands int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.releases[release]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownRelease, release)
	}
	noResponse := agg.demands - agg.responses
	// Count responses in bins entirely above the threshold.
	binWidth := latencyRange.Seconds() / latencyBinCount
	firstAbove := int(threshold.Seconds()/binWidth) + 1
	slowResponded := 0
	for i := firstAbove; i < latencyBinCount; i++ {
		slowResponded += agg.latencyHist.Counts[i]
	}
	return noResponse + slowResponded, agg.demands, nil
}

// JointFor returns the pairwise observation record restricted to one
// operation — the §6.2 per-operation confidence is computed from it.
func (m *Monitor) JointFor(operation string) bayes.JointCounts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.perOp[operation]
}

// Stats returns one release's aggregate behaviour.
func (m *Monitor) Stats(release string) (ReleaseStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.releases[release]
	if !ok {
		return ReleaseStats{}, fmt.Errorf("%w: %q", ErrUnknownRelease, release)
	}
	return ReleaseStats{
		Release:        release,
		Demands:        agg.demands,
		Responses:      agg.responses,
		Evident:        agg.evident,
		JudgedFailures: agg.judgedFailed,
		MeanLatency:    time.Duration(agg.latency.Mean() * float64(time.Second)),
		MaxLatency:     time.Duration(agg.latency.Max() * float64(time.Second)),
	}, nil
}

// Releases lists the observed release versions (unordered).
func (m *Monitor) Releases() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.releases))
	for name := range m.releases {
		out = append(out, name)
	}
	return out
}

// Log returns a copy of the retained event records, oldest first.
func (m *Monitor) Log() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.log...)
}
