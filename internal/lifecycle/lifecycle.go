// Package lifecycle is the §4.1 upgrade lifecycle: the phase state
// machine a managed upgrade moves through, the guards that reject
// transitions the paper's process does not allow, the hooks the
// management subsystem uses to observe transitions, and the Bayesian
// switch policy (§5.1.1.2) that decides when the automatic transition to
// the new release may fire.
//
// The package deliberately does not own mutable state: the phase of an
// upgrade unit lives in its owner's atomically-published snapshot (one
// consistent value with the release set and the fan-out mode), and the
// owner consults Validate/Rules before publishing a successor. This
// keeps the hot path's single-atomic-load invariant while concentrating
// every lifecycle rule here.
//
// The canonical progression (§3.3, §4.1) is
//
//	OldOnly → Observation → Parallel → NewOnly
//
// Forward movement — including skipping phases — is a management
// decision the paper permits ("the number of responses and the timeout
// can be changed dynamically"; switching directly is mode 4's
// degenerate upgrade). Two backward movements are meaningful management
// operations and individually gated:
//
//   - abort: any phase → OldOnly, rolling the campaign back to the old
//     release (e.g. the new release misbehaves during observation);
//   - restart: NewOnly → any phase, beginning a new campaign after a
//     completed switch (the switched-to release is the next campaign's
//     "old" release once a newer one is deployed).
//
// Every other backward movement (Parallel → Observation is the only
// one) is illegal: once adjudicated delivery has exposed the new
// release to consumers, the campaign either advances, aborts, or
// completes — it cannot "unobserve".
package lifecycle

import (
	"errors"
	"fmt"
	"sync"

	"wsupgrade/internal/bayes"
)

// Errors reported by the lifecycle machine.
var (
	// ErrBadPhase reports a phase value outside the §4.1 lifecycle, or a
	// phase that is not viable for the deployed release count.
	ErrBadPhase = errors.New("lifecycle: bad phase")
	// ErrIllegalTransition reports a transition the §4.1 process forbids.
	ErrIllegalTransition = errors.New("lifecycle: illegal transition")
	// ErrBadPolicy reports an invalid switch policy.
	ErrBadPolicy = errors.New("lifecycle: bad switch policy")
)

// Phase is the upgrade lifecycle state (§3.3, §4.2).
type Phase int

const (
	// PhaseOldOnly: only the oldest release serves; newer releases are
	// deployed but not invoked.
	PhaseOldOnly Phase = iota + 1
	// PhaseObservation: all releases are invoked back-to-back; the old
	// release's response is delivered (§3.1's transitional period).
	PhaseObservation
	// PhaseParallel: all releases are invoked and the adjudicated
	// response is delivered (1-out-of-2 fault tolerance, §4.2 mode 1).
	PhaseParallel
	// PhaseNewOnly: only the newest release is invoked — the switch has
	// happened.
	PhaseNewOnly
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseOldOnly:
		return "old-only"
	case PhaseObservation:
		return "observation"
	case PhaseParallel:
		return "parallel"
	case PhaseNewOnly:
		return "new-only"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Known reports whether p is one of the four lifecycle phases.
func (p Phase) Known() bool {
	return p >= PhaseOldOnly && p <= PhaseNewOnly
}

// ParsePhase converts a phase name (the String form) back to its value.
func ParsePhase(s string) (Phase, error) {
	switch s {
	case "old-only":
		return PhaseOldOnly, nil
	case "observation":
		return PhaseObservation, nil
	case "parallel":
		return PhaseParallel, nil
	case "new-only":
		return PhaseNewOnly, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrBadPhase, s)
	}
}

// Validate checks that a phase is viable for the deployed release
// count: the multi-release phases need at least two releases.
func Validate(p Phase, releases int) error {
	switch p {
	case PhaseOldOnly, PhaseNewOnly:
		return nil
	case PhaseObservation, PhaseParallel:
		if releases < 2 {
			return fmt.Errorf("%w: %v needs at least two releases", ErrBadPhase, p)
		}
		return nil
	default:
		return fmt.Errorf("%w: %v", ErrBadPhase, p)
	}
}

// TransitionError is the typed rejection of an illegal transition.
// errors.Is matches it against both ErrIllegalTransition and
// ErrBadPhase (an illegal transition is a bad phase request to callers
// that don't care which rule rejected it).
type TransitionError struct {
	From, To Phase
}

// Error implements error.
func (e *TransitionError) Error() string {
	return fmt.Sprintf("lifecycle: illegal transition %v → %v", e.From, e.To)
}

// Is implements errors.Is matching.
func (e *TransitionError) Is(target error) bool {
	return target == ErrIllegalTransition || target == ErrBadPhase
}

// Rules parameterizes which transitions beyond the canonical forward
// step the machine accepts. The zero value is the strict chain:
// adjacent forward steps only.
type Rules struct {
	// AllowSkip permits forward jumps over intermediate phases
	// (OldOnly → Parallel, Observation → NewOnly, …).
	AllowSkip bool
	// AllowAbort permits any phase → OldOnly: the campaign rolls back
	// to the old release.
	AllowAbort bool
	// AllowRestart permits NewOnly → any phase: a completed switch
	// starts a new campaign (after a newer release is deployed).
	AllowRestart bool
}

// DefaultRules is the management subsystem's default: forward movement
// with skips, abort, and campaign restart are all allowed; the only
// rejected movement is a backward step inside a live campaign.
var DefaultRules = Rules{AllowSkip: true, AllowAbort: true, AllowRestart: true}

// Strict allows only the canonical adjacent forward steps of §4.1.
var Strict = Rules{}

// CanTransition reports whether the rules permit from → to. A nil
// return means the transition is legal; otherwise the error is a
// *TransitionError (or wraps ErrBadPhase for unknown values).
func (r Rules) CanTransition(from, to Phase) error {
	if !from.Known() {
		return fmt.Errorf("%w: %v", ErrBadPhase, from)
	}
	if !to.Known() {
		return fmt.Errorf("%w: %v", ErrBadPhase, to)
	}
	switch {
	case from == to:
		return nil // no-op transitions are always fine
	case to == from+1:
		return nil // the canonical §4.1 forward step
	case from < to:
		if r.AllowSkip {
			return nil
		}
	case to == PhaseOldOnly:
		if r.AllowAbort {
			return nil
		}
		// NewOnly → OldOnly is also a restart when aborts are off.
		if from == PhaseNewOnly && r.AllowRestart {
			return nil
		}
	case from == PhaseNewOnly:
		if r.AllowRestart {
			return nil
		}
	}
	return &TransitionError{From: from, To: to}
}

// ---------------------------------------------------------------------------
// Transition observation

// Cause classifies what drove a transition.
type Cause int

const (
	// CauseManual: an explicit management call (SetPhase).
	CauseManual Cause = iota + 1
	// CausePolicy: the automatic Bayesian switch policy fired.
	CausePolicy
	// CauseTopology: a release-set change forced the phase (removing
	// below two releases collapses the multi-release phases to NewOnly).
	CauseTopology
	// CauseRecovery: a restarted mediator restored the phase from its
	// campaign journal (the restart is itself an observable, journaled
	// event, so an audit trail never has an unexplained phase jump).
	CauseRecovery
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseManual:
		return "manual"
	case CausePolicy:
		return "policy"
	case CauseTopology:
		return "topology"
	case CauseRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// Transition is one observed phase change of an upgrade unit.
type Transition struct {
	// Unit names the upgrade unit; "" for a standalone engine.
	Unit string
	// From, To are the endpoints of the transition.
	From, To Phase
	// Cause classifies what drove it.
	Cause Cause
	// Demands is the joint-observation count at the transition, when
	// the owner tracks one (the automatic policy reports it; manual
	// transitions may leave it 0).
	Demands int
}

// Hooks is an ordered set of transition observers. The zero value is
// ready to use; methods are safe for concurrent use. Hooks fire after
// the transition has been published, outside the owner's write lock;
// observers must tolerate seeing transitions slightly out of order
// under concurrent management writes, and must not block.
type Hooks struct {
	mu  sync.Mutex
	fns []func(Transition)
}

// Add registers an observer.
func (h *Hooks) Add(fn func(Transition)) {
	if fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fns = append(h.fns, fn)
}

// Fire delivers a transition to every observer in registration order.
// A panicking observer is contained: the panic is swallowed and the
// remaining observers still run, so a buggy subscriber (a journal
// writer, an SSE publisher) can neither wedge the phase transition that
// already happened nor starve observers registered after it.
func (h *Hooks) Fire(t Transition) {
	h.mu.Lock()
	fns := h.fns
	h.mu.Unlock()
	for _, fn := range fns {
		fireOne(fn, t)
	}
}

// fireOne isolates one observer call so its panic cannot propagate.
func fireOne(fn func(Transition), t Transition) {
	defer func() { _ = recover() }()
	fn(t)
}

// ---------------------------------------------------------------------------
// The automatic switch policy (§5.1.1.2)

// SwitchPolicy is the management subsystem's automatic switch rule:
// when Criterion is satisfied on the posterior, the owner advances to
// PhaseNewOnly.
type SwitchPolicy struct {
	// Criterion decides the switch.
	Criterion bayes.Criterion
	// CheckEvery evaluates the criterion every N joint observations
	// (default 50).
	CheckEvery int
	// MinDemands suppresses switching before this many joint
	// observations (default CheckEvery).
	MinDemands int
}

// Normalize applies defaults and validates the policy.
func (p *SwitchPolicy) Normalize() error {
	if p.Criterion == nil {
		return fmt.Errorf("%w: policy without criterion", ErrBadPolicy)
	}
	if p.CheckEvery == 0 {
		p.CheckEvery = 50
	}
	if p.CheckEvery < 1 {
		return fmt.Errorf("%w: check interval %d", ErrBadPolicy, p.CheckEvery)
	}
	if p.MinDemands == 0 {
		p.MinDemands = p.CheckEvery
	}
	return nil
}

// Due reports whether the criterion should be evaluated at n joint
// observations: not before MinDemands, then every CheckEvery-th demand.
func (p *SwitchPolicy) Due(n int) bool {
	return n >= p.MinDemands && n%p.CheckEvery == 0
}

// ShouldSwitch evaluates the criterion on the posterior inferred from
// counts. It reports false without error when the evaluation is not
// due yet; inference failures also report false (a posterior the
// engine cannot compute is never grounds to switch).
func (p *SwitchPolicy) ShouldSwitch(counts bayes.JointCounts, inference *bayes.WhiteBox) bool {
	if inference == nil || !p.Due(counts.N) {
		return false
	}
	post, err := inference.Posterior(counts)
	if err != nil {
		return false
	}
	return p.Criterion.Satisfied(post)
}
