package lifecycle

import (
	"sync"
	"testing"
)

// A panicking observer must not prevent observers registered after it
// from seeing the transition, and must not propagate out of Fire (which
// would wedge the management call that published the phase change).
func TestHooksFirePanickingObserverIsContained(t *testing.T) {
	var h Hooks
	var order []string
	h.Add(func(Transition) { order = append(order, "first") })
	h.Add(func(Transition) { panic("subscriber bug") })
	h.Add(func(Transition) { order = append(order, "last") })

	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Fire propagated observer panic: %v", r)
			}
		}()
		h.Fire(Transition{From: PhaseOldOnly, To: PhaseObservation, Cause: CauseManual})
	}()

	if len(order) != 2 || order[0] != "first" || order[1] != "last" {
		t.Fatalf("observers after the panicking one were skipped: ran %v", order)
	}
}

// Every registered observer keeps receiving later transitions even when
// one of them panics on every delivery.
func TestHooksFireRepeatedPanicsDoNotWedge(t *testing.T) {
	var h Hooks
	var mu sync.Mutex
	seen := 0
	h.Add(func(Transition) { panic("always") })
	h.Add(func(Transition) { mu.Lock(); seen++; mu.Unlock() })

	const fires = 5
	for i := 0; i < fires; i++ {
		h.Fire(Transition{From: PhaseObservation, To: PhaseParallel, Cause: CausePolicy})
	}
	if seen != fires {
		t.Fatalf("healthy observer saw %d of %d transitions", seen, fires)
	}
}

func TestCauseRecoveryString(t *testing.T) {
	if got := CauseRecovery.String(); got != "recovery" {
		t.Fatalf("CauseRecovery.String() = %q", got)
	}
	if CauseRecovery == CauseManual || CauseRecovery == CausePolicy || CauseRecovery == CauseTopology {
		t.Fatal("CauseRecovery collides with an existing cause")
	}
}
