package lifecycle

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/stats"
)

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseOldOnly:     "old-only",
		PhaseObservation: "observation",
		PhaseParallel:    "parallel",
		PhaseNewOnly:     "new-only",
		Phase(9):         "Phase(9)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestParsePhaseRoundTrips(t *testing.T) {
	for _, p := range []Phase{PhaseOldOnly, PhaseObservation, PhaseParallel, PhaseNewOnly} {
		got, err := ParsePhase(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePhase(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePhase("sideways"); !errors.Is(err, ErrBadPhase) {
		t.Errorf("ParsePhase garbage: %v", err)
	}
}

func TestValidateViability(t *testing.T) {
	for _, p := range []Phase{PhaseObservation, PhaseParallel} {
		if err := Validate(p, 1); !errors.Is(err, ErrBadPhase) {
			t.Errorf("%v with one release: %v", p, err)
		}
		if err := Validate(p, 2); err != nil {
			t.Errorf("%v with two releases: %v", p, err)
		}
	}
	for _, p := range []Phase{PhaseOldOnly, PhaseNewOnly} {
		if err := Validate(p, 1); err != nil {
			t.Errorf("%v with one release: %v", p, err)
		}
	}
	if err := Validate(Phase(0), 2); !errors.Is(err, ErrBadPhase) {
		t.Errorf("unknown phase: %v", err)
	}
}

// The satellite requirement: every one of the 16 phase pairs is either
// legal under the default rules or rejected with the typed error —
// checked exhaustively against the §4.1 semantics.
func TestDefaultRulesTransitionTable(t *testing.T) {
	phases := []Phase{PhaseOldOnly, PhaseObservation, PhaseParallel, PhaseNewOnly}
	legal := func(from, to Phase) bool {
		switch {
		case from == to: // no-op
			return true
		case from < to: // forward, skips included
			return true
		case to == PhaseOldOnly: // abort
			return true
		case from == PhaseNewOnly: // campaign restart
			return true
		}
		return false
	}
	for _, from := range phases {
		for _, to := range phases {
			err := DefaultRules.CanTransition(from, to)
			if legal(from, to) {
				if err != nil {
					t.Errorf("%v → %v rejected: %v", from, to, err)
				}
				continue
			}
			var te *TransitionError
			if !errors.As(err, &te) {
				t.Errorf("%v → %v: error %v is not a *TransitionError", from, to, err)
				continue
			}
			if te.From != from || te.To != to {
				t.Errorf("%v → %v: error carries %v → %v", from, to, te.From, te.To)
			}
			if !errors.Is(err, ErrIllegalTransition) || !errors.Is(err, ErrBadPhase) {
				t.Errorf("%v → %v: error does not match the sentinels: %v", from, to, err)
			}
		}
	}
	// Under the defaults exactly one pair is illegal: the backward step
	// inside a live campaign.
	if err := DefaultRules.CanTransition(PhaseParallel, PhaseObservation); err == nil {
		t.Error("Parallel → Observation accepted")
	}
}

func TestStrictRulesRejectEverythingButTheChain(t *testing.T) {
	phases := []Phase{PhaseOldOnly, PhaseObservation, PhaseParallel, PhaseNewOnly}
	for _, from := range phases {
		for _, to := range phases {
			err := Strict.CanTransition(from, to)
			if from == to || to == from+1 {
				if err != nil {
					t.Errorf("strict: %v → %v rejected: %v", from, to, err)
				}
			} else if !errors.Is(err, ErrIllegalTransition) {
				t.Errorf("strict: %v → %v accepted (%v)", from, to, err)
			}
		}
	}
}

func TestRuleKnobs(t *testing.T) {
	skip := Rules{AllowSkip: true}
	if err := skip.CanTransition(PhaseOldOnly, PhaseNewOnly); err != nil {
		t.Errorf("skip: %v", err)
	}
	if err := skip.CanTransition(PhaseParallel, PhaseOldOnly); !errors.Is(err, ErrIllegalTransition) {
		t.Errorf("skip-only abort accepted: %v", err)
	}
	abort := Rules{AllowAbort: true}
	if err := abort.CanTransition(PhaseParallel, PhaseOldOnly); err != nil {
		t.Errorf("abort: %v", err)
	}
	if err := abort.CanTransition(PhaseNewOnly, PhaseParallel); !errors.Is(err, ErrIllegalTransition) {
		t.Errorf("abort-only restart accepted: %v", err)
	}
	restart := Rules{AllowRestart: true}
	if err := restart.CanTransition(PhaseNewOnly, PhaseObservation); err != nil {
		t.Errorf("restart: %v", err)
	}
	if err := restart.CanTransition(PhaseNewOnly, PhaseOldOnly); err != nil {
		t.Errorf("restart to old-only: %v", err)
	}
}

func TestCanTransitionRejectsUnknownPhases(t *testing.T) {
	if err := DefaultRules.CanTransition(Phase(0), PhaseParallel); !errors.Is(err, ErrBadPhase) {
		t.Errorf("unknown from: %v", err)
	}
	if err := DefaultRules.CanTransition(PhaseParallel, Phase(42)); !errors.Is(err, ErrBadPhase) {
		t.Errorf("unknown to: %v", err)
	}
}

func TestHooksFireInOrder(t *testing.T) {
	var h Hooks
	var got []string
	h.Add(func(tr Transition) { got = append(got, "a:"+tr.To.String()) })
	h.Add(func(tr Transition) { got = append(got, "b:"+tr.To.String()) })
	h.Add(nil) // ignored
	h.Fire(Transition{From: PhaseParallel, To: PhaseNewOnly, Cause: CausePolicy})
	if len(got) != 2 || got[0] != "a:new-only" || got[1] != "b:new-only" {
		t.Fatalf("hooks fired: %v", got)
	}
}

func TestHooksConcurrentAddAndFire(t *testing.T) {
	var h Hooks
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Add(func(Transition) {
				mu.Lock()
				count++
				mu.Unlock()
			})
			h.Fire(Transition{From: PhaseOldOnly, To: PhaseObservation})
		}()
	}
	wg.Wait()
	h.Fire(Transition{From: PhaseObservation, To: PhaseParallel})
	mu.Lock()
	defer mu.Unlock()
	if count < 8 { // every observer sees at least the final fire
		t.Fatalf("count = %d", count)
	}
}

func TestCauseStrings(t *testing.T) {
	if CauseManual.String() != "manual" || CausePolicy.String() != "policy" ||
		CauseTopology.String() != "topology" || Cause(7).String() != "Cause(7)" {
		t.Fatal("cause strings wrong")
	}
}

func TestSwitchPolicyNormalize(t *testing.T) {
	p := SwitchPolicy{Criterion: bayes.Criterion3{Confidence: 0.9}}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	if p.CheckEvery != 50 || p.MinDemands != 50 {
		t.Fatalf("defaults: %+v", p)
	}
	bad := SwitchPolicy{}
	if err := bad.Normalize(); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("no criterion: %v", err)
	}
	neg := SwitchPolicy{Criterion: bayes.Criterion3{Confidence: 0.9}, CheckEvery: -1}
	if err := neg.Normalize(); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("negative interval: %v", err)
	}
}

func TestSwitchPolicyDue(t *testing.T) {
	p := SwitchPolicy{Criterion: bayes.Criterion3{Confidence: 0.9}, CheckEvery: 10, MinDemands: 30}
	cases := map[int]bool{0: false, 10: false, 29: false, 30: true, 35: false, 40: true}
	for n, want := range cases {
		if p.Due(n) != want {
			t.Errorf("Due(%d) = %v, want %v", n, p.Due(n), want)
		}
	}
}

func TestSwitchPolicyShouldSwitch(t *testing.T) {
	prior := stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.4}
	wb, err := bayes.NewWhiteBox(bayes.WhiteBoxConfig{
		PriorA: prior, PriorB: prior,
		GridA: 30, GridB: 30, GridC: 8, GridAB: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := SwitchPolicy{Criterion: bayes.Criterion3{Confidence: 0.6}, CheckEvery: 10, MinDemands: 10}
	// The old release fails often, the new one never: criterion 3 (new no
	// worse than old) is easily satisfied.
	counts := bayes.JointCounts{N: 100, AOnly: 40}
	if !p.ShouldSwitch(counts, wb) {
		t.Fatal("clear evidence did not switch")
	}
	// Not due: never evaluates.
	counts.N = 95
	if p.ShouldSwitch(counts, wb) {
		t.Fatal("switched off-schedule")
	}
	// No inference engine: never switches.
	counts.N = 100
	if p.ShouldSwitch(counts, nil) {
		t.Fatal("switched without inference")
	}
}

func TestTransitionErrorMessage(t *testing.T) {
	err := &TransitionError{From: PhaseParallel, To: PhaseObservation}
	want := fmt.Sprintf("lifecycle: illegal transition %v → %v", PhaseParallel, PhaseObservation)
	if err.Error() != want {
		t.Fatalf("message = %q", err.Error())
	}
}
