// Adversarial transport suite: a misbehaving release endpoint must not
// be able to wedge, starve, or balloon the dispatch hot path, whichever
// transport carries it. Each attack runs against both entries of the
// conformance table — the lean wire client and the net/http fallback —
// because an asymmetry here would make transport choice a correctness
// decision instead of a performance one.
package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wsupgrade/internal/faulty"
	"wsupgrade/internal/httpx"
	"wsupgrade/internal/testutil"
)

// TestAdversarialSlowDripBody: a release that acknowledges instantly but
// drips its body one byte every 50ms (≈13s for a small envelope) must
// not hold a dispatch past its deadline.
func TestAdversarialSlowDripBody(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			testutil.CheckGoroutines(t)
			inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", testCT)
				_, _ = w.Write([]byte("<response>slow and steady loses the race</response>"))
			})
			ts := httptest.NewServer(faulty.Wrap(inner, 1,
				faulty.Fault{Mode: faulty.SlowDrip, Rate: 1, DripInterval: 50 * time.Millisecond, DripChunk: 1}))
			defer ts.Close()

			post, closeTr := tr.make(t)
			defer closeTr()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := post(ctx, ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("dripped body delivered despite a 200ms deadline")
			}
			if elapsed > 3*time.Second {
				t.Fatalf("transport released the dispatch after %v — read deadline not honoured", elapsed)
			}
		})
	}
}

// TestAdversarialOversizedChunkedBody: a release streaming an unbounded
// chunked body (no Content-Length to pre-reject on) must be cut off at
// MaxResponseBytes, with the server's outbound byte count bounded too —
// proof the client aborted the transfer instead of swallowing it.
func TestAdversarialOversizedChunkedBody(t *testing.T) {
	const (
		limit   = 256 << 10 // client-side MaxResponseBytes
		hardCap = 64 << 20  // server gives up here: the attack "won"
	)
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			testutil.CheckGoroutines(t)
			written := make(chan int64, 1)
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", testCT)
				flusher := w.(http.Flusher)
				chunk := make([]byte, 32<<10)
				for i := range chunk {
					chunk[i] = 'x'
				}
				var n int64
				for n < hardCap {
					wrote, err := w.Write(chunk)
					n += int64(wrote)
					if err != nil {
						break
					}
					flusher.Flush()
				}
				written <- n
			}))
			defer ts.Close()

			post, closeTr := tr.make(t)
			defer closeTr()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := post(ctx, ts.URL, testCT, []byte("<in/>"),
				httpx.RetryPolicy{Attempts: 1, MaxResponseBytes: limit})
			if !errors.Is(err, httpx.ErrTooLarge) {
				t.Fatalf("err = %v, want ErrTooLarge", err)
			}
			closeTr() // drop pooled connections so the server's write fails now
			select {
			case n := <-written:
				if n >= hardCap {
					t.Fatalf("server streamed the full %d bytes — client never cut the transfer", n)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("server still streaming 5s after the client rejected the body")
			}
		})
	}
}

// floodServer is a raw TCP origin that answers any request with an
// endless response-header section (4KB lines), up to hardCap bytes. It
// bypasses net/http on the server side because net/http cannot be made
// to emit an adversarial header section.
func floodServer(t *testing.T, hardCap int64) (url string, written func() int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	done := make(chan struct{})
	// LIFO: close the listener first so a never-connected flood
	// goroutine unblocks from Accept before the done-wait.
	t.Cleanup(func() { <-done })
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read until the end of the request headers; the body may follow
		// but the flood does not need it.
		br := bufio.NewReader(conn)
		for {
			line, err := br.ReadString('\n')
			if err != nil || line == "\r\n" || line == "\n" {
				break
			}
		}
		_ = conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\n"); err != nil {
			return
		}
		pad := make([]byte, 4096)
		for i := range pad {
			pad[i] = 'h'
		}
		for i := 0; total < hardCap; i++ {
			n, err := fmt.Fprintf(conn, "X-Flood-%d: %s\r\n", i, pad)
			total += int64(n)
			if err != nil {
				return
			}
		}
	}()
	return "http://" + ln.Addr().String(), func() int64 { <-done; return total }
}

// TestAdversarialHeaderFlood: a release flooding the response header
// section must hit the client's header budget (1MB for the wire client,
// net/http's own response-header cap for the fallback), not OOM the
// dispatcher. The server-side write counter proves the client hung up.
func TestAdversarialHeaderFlood(t *testing.T) {
	const hardCap = 64 << 20
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			testutil.CheckGoroutines(t)
			url, written := floodServer(t, hardCap)
			post, closeTr := tr.make(t)
			defer closeTr()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			_, err := post(ctx, url, testCT, []byte("<in/>"), httpx.NoRetry)
			if err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
				t.Fatal("client sat through 20s of header flood instead of rejecting it")
			}
			if err == nil {
				t.Fatal("header flood accepted as a response")
			}
			closeTr() // hang up so the flood's next write fails
			if n := written(); n >= hardCap {
				t.Fatalf("server flooded the full %d bytes — no header budget enforced", n)
			}
		})
	}
}
