package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/testutil"
)

func TestRequestTargetAndHost(t *testing.T) {
	var gotTarget, gotHost atomic.Value
	ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTarget.Store(r.URL.RequestURI())
		gotHost.Store(r.Host)
		_, _ = w.Write([]byte("<ok/>"))
	}))
	c := NewClient(Options{})
	defer c.Close()
	url := ts.URL + "/deep/path?q=1&x=two"
	if _, err := c.PostXML(context.Background(), url, testCT, []byte("<in/>"), httpx.NoRetry); err != nil {
		t.Fatal(err)
	}
	if gotTarget.Load() != "/deep/path?q=1&x=two" {
		t.Fatalf("request target = %q", gotTarget.Load())
	}
	if gotHost.Load() != strings.TrimPrefix(ts.URL, "http://") {
		t.Fatalf("Host = %q, want %q", gotHost.Load(), strings.TrimPrefix(ts.URL, "http://"))
	}
}

func TestConcurrentCalls(t *testing.T) {
	ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprintf(w, "<ok n=%q/>", r.Header.Get("Content-Type"))
	}))
	c := NewClient(Options{})
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
			if err != nil {
				errs <- err
				return
			}
			if res.Status != http.StatusOK {
				errs <- fmt.Errorf("status %d", res.Status)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestIdlePoolBounded(t *testing.T) {
	ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(10 * time.Millisecond) // force concurrent conns
		_, _ = w.Write([]byte("<ok/>"))
	}))
	c := NewClient(Options{MaxIdlePerHost: 2})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
		}()
	}
	wg.Wait()
	v, ok := c.pools.Load(ts.URL)
	if !ok {
		t.Fatal("no pool built")
	}
	p := v.(*pool)
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle > 2 {
		t.Fatalf("idle pool holds %d conns, cap 2", idle)
	}
}

func TestClientClose(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<ok/>"))
	}))
	c := NewClient(Options{})
	if _, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestEmptyBodyResponses(t *testing.T) {
	for _, status := range []int{http.StatusNoContent, http.StatusOK} {
		t.Run(fmt.Sprint(status), func(t *testing.T) {
			ts, cl := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(status) // no body in either case
			}))
			c := NewClient(Options{})
			defer c.Close()
			for i := 0; i < 2; i++ {
				res, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
				if err != nil {
					t.Fatal(err)
				}
				if res.Status != status || len(res.Body) != 0 {
					t.Fatalf("status %d body %q", res.Status, res.Body)
				}
			}
			if got := cl.accepts.Load(); got != 1 {
				t.Fatalf("accepted %d conns, want reuse", got)
			}
		})
	}
}

func TestHeaderCacheTracksChanges(t *testing.T) {
	var n atomic.Int64
	ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Call", fmt.Sprint(n.Add(1)))
		_, _ = w.Write([]byte("<ok/>"))
	}))
	c := NewClient(Options{})
	defer c.Close()
	for i := 1; i <= 3; i++ {
		res, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Header.Get("X-Call"); got != fmt.Sprint(i) {
			t.Fatalf("call %d: X-Call = %q (stale cached header?)", i, got)
		}
	}
}

func TestLargeRequestBody(t *testing.T) {
	want := strings.Repeat("y", 300<<10)
	ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := httpx.ReadBounded(r.Body, 1<<20)
		if err != nil || string(b) != want {
			http.Error(w, "body mismatch", http.StatusBadRequest)
			return
		}
		_, _ = w.Write([]byte("<ok/>"))
	}))
	c := NewClient(Options{})
	defer c.Close()
	res, err := c.PostXML(context.Background(), ts.URL, testCT, []byte(want), httpx.NoRetry)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status = %d", res.Status)
	}
}

func TestTimeoutBackstopWithoutContextDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	c := NewClient(Options{Timeout: 80 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	_, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
	if err == nil {
		t.Fatal("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backstop took %v", elapsed)
	}
}

// TestIdleConnectionsReaped: a pooled connection unused past
// IdleTimeout is closed by the janitor (watcher goroutine included), so
// retired release endpoints do not hold sockets for the client's
// lifetime.
func TestIdleConnectionsReaped(t *testing.T) {
	ts, cl := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<ok/>"))
	}))
	c := NewClient(Options{IdleTimeout: 50 * time.Millisecond})
	defer c.Close()
	if _, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok := c.pools.Load(ts.URL)
		if !ok {
			t.Fatal("no pool built")
		}
		p := v.(*pool)
		p.mu.Lock()
		idle := len(p.idle)
		p.mu.Unlock()
		if idle == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle conn not reaped after IdleTimeout (still %d pooled)", idle)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The next call must transparently re-dial.
	if _, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry); err != nil {
		t.Fatal(err)
	}
	if got := cl.accepts.Load(); got != 2 {
		t.Fatalf("accepted %d connections, want 2 (reap then re-dial)", got)
	}
}

// TestHeaderSectionBounded: a peer streaming endless header lines must
// exhaust the header budget, not the mediator's memory.
func TestHeaderSectionBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		_, _ = conn.Write([]byte("HTTP/1.1 200 OK\r\n"))
		line := []byte("X-Flood: " + strings.Repeat("x", 1024) + "\r\n")
		for { // endless header lines until the client hangs up
			if _, err := conn.Write(line); err != nil {
				return
			}
		}
	}()
	c := NewClient(Options{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = c.PostXML(ctx, "http://"+ln.Addr().String()+"/", testCT, []byte("<in/>"), httpx.NoRetry)
	if err == nil || !strings.Contains(err.Error(), "header section exceeds limit") {
		t.Fatalf("err = %v, want header-section bound", err)
	}
}

func TestDialFuncSeam(t *testing.T) {
	var dialed atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					_, _ = c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n<ok/>"))
				}
			}(conn)
		}
	}()
	c := NewClient(Options{Dial: func(ctx context.Context, network, addr string) (net.Conn, error) {
		dialed.Add(1)
		if addr != "release.invalid:80" {
			return nil, fmt.Errorf("unexpected addr %q", addr)
		}
		return net.Dial("tcp", ln.Addr().String())
	}})
	defer c.Close()
	for i := 0; i < 3; i++ {
		res, err := c.PostXML(context.Background(), "http://release.invalid/", testCT, []byte("<in/>"), httpx.NoRetry)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Body) != "<ok/>" {
			t.Fatalf("body = %q", res.Body)
		}
	}
	if dialed.Load() != 1 {
		t.Fatalf("dialed %d times, want 1", dialed.Load())
	}
}
