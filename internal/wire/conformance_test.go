// Conformance suite: every retry/backoff/size-bound/cancellation
// behaviour of the release-call transport, asserted identically against
// the wire client and the net/http fallback (httpx.PostXML over
// httpx.NewPooledClient). The dispatch layer treats the two as
// interchangeable; this table is what makes that claim checkable.
package wire

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsupgrade/internal/httpx"
)

// postFunc is the shared transport signature both implementations
// satisfy.
type postFunc func(ctx context.Context, url, contentType string, body []byte, policy httpx.RetryPolicy) (httpx.Result, error)

// transport builds a fresh transport per test so connection-count
// assertions are isolated; close releases its pooled connections.
type transport struct {
	name string
	make func(t *testing.T) (post postFunc, close func())
}

var transports = []transport{
	{
		name: "wire",
		make: func(t *testing.T) (postFunc, func()) {
			c := NewClient(Options{})
			return c.PostXML, func() { _ = c.Close() }
		},
	},
	{
		name: "nethttp",
		make: func(t *testing.T) (postFunc, func()) {
			client := httpx.NewPooledClient(10*time.Second, 1)
			post := func(ctx context.Context, url, contentType string, body []byte, policy httpx.RetryPolicy) (httpx.Result, error) {
				return httpx.PostXML(ctx, client, url, contentType, body, policy)
			}
			return post, func() { client.CloseIdleConnections() }
		},
	},
}

// countingListener counts accepted connections.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// newCountingServer starts an httptest server whose accepted-connection
// count is observable.
func newCountingServer(t *testing.T, h http.Handler) (*httptest.Server, *countingListener) {
	t.Helper()
	ts := httptest.NewUnstartedServer(h)
	cl := &countingListener{Listener: ts.Listener}
	ts.Listener = cl
	ts.Start()
	t.Cleanup(ts.Close)
	return ts, cl
}

const testCT = "text/xml; charset=utf-8"

func TestConformanceBasic(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var gotCT, gotBody atomic.Value
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				gotCT.Store(r.Header.Get("Content-Type"))
				b := make([]byte, r.ContentLength)
				_, _ = r.Body.Read(b)
				gotBody.Store(string(b))
				w.Header().Set("X-Conform", "yes")
				w.Header().Set("Content-Type", testCT)
				_, _ = w.Write([]byte("<ok/>"))
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != http.StatusOK {
				t.Fatalf("status = %d", res.Status)
			}
			if string(res.Body) != "<ok/>" {
				t.Fatalf("body = %q", res.Body)
			}
			if res.Attempts != 1 {
				t.Fatalf("attempts = %d", res.Attempts)
			}
			if got := res.Header.Get("X-Conform"); got != "yes" {
				t.Fatalf("X-Conform = %q", got)
			}
			if got := res.Header.Get("Content-Type"); got != testCT {
				t.Fatalf("response Content-Type = %q", got)
			}
			if gotCT.Load() != testCT {
				t.Fatalf("request Content-Type seen by server = %q", gotCT.Load())
			}
			if gotBody.Load() != "<in/>" {
				t.Fatalf("request body seen by server = %q", gotBody.Load())
			}
		})
	}
}

func TestConformanceRetryTransient(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var hits atomic.Int64
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if hits.Add(1) < 3 {
					http.Error(w, "busy", http.StatusServiceUnavailable)
					return
				}
				_, _ = w.Write([]byte("<ok/>"))
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"),
				httpx.RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != http.StatusOK || res.Attempts != 3 {
				t.Fatalf("status %d after %d attempts", res.Status, res.Attempts)
			}
			if hits.Load() != 3 {
				t.Fatalf("server hits = %d", hits.Load())
			}
		})
	}
}

func TestConformance500IsNotTransient(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var hits atomic.Int64
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				http.Error(w, "fault", http.StatusInternalServerError)
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"),
				httpx.RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			// The SOAP 1.1 binding carries deterministic faults on 500:
			// delivered, never retried.
			if res.Status != http.StatusInternalServerError || res.Attempts != 1 {
				t.Fatalf("status %d after %d attempts", res.Status, res.Attempts)
			}
			if hits.Load() != 1 {
				t.Fatalf("server hits = %d", hits.Load())
			}
		})
	}
}

func TestConformanceExhaustedRetriesReturnFinalStatus(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var hits atomic.Int64
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				http.Error(w, "busy", http.StatusServiceUnavailable)
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			start := time.Now()
			res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"),
				httpx.RetryPolicy{Attempts: 3, Backoff: 40 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			// The final attempt's transient status is delivered as-is.
			if res.Status != http.StatusServiceUnavailable || res.Attempts != 3 {
				t.Fatalf("status %d after %d attempts", res.Status, res.Attempts)
			}
			if hits.Load() != 3 {
				t.Fatalf("server hits = %d", hits.Load())
			}
			// Backoff doubles: 40ms before attempt 2, 80ms before attempt 3.
			if elapsed := time.Since(start); elapsed < 110*time.Millisecond {
				t.Fatalf("elapsed %v: backoff did not double", elapsed)
			}
		})
	}
}

func TestConformanceCancelDuringBackoff(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var hits atomic.Int64
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				http.Error(w, "busy", http.StatusServiceUnavailable)
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(50 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := post(ctx, ts.URL, testCT, []byte("<in/>"),
				httpx.RetryPolicy{Attempts: 3, Backoff: 5 * time.Second})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !strings.Contains(err.Error(), "cancelled during backoff") {
				t.Fatalf("err = %v, want backoff-cancellation cause", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("cancellation took %v", elapsed)
			}
			if hits.Load() != 1 {
				t.Fatalf("server hits = %d", hits.Load())
			}
		})
	}
}

func TestConformanceOversizedResponseIsTerminal(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var hits atomic.Int64
			big := strings.Repeat("x", 64<<10)
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				_, _ = w.Write([]byte(big))
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			_, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"),
				httpx.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, MaxResponseBytes: 1024})
			if !errors.Is(err, httpx.ErrTooLarge) {
				t.Fatalf("err = %v, want ErrTooLarge", err)
			}
			if hits.Load() != 1 {
				t.Fatalf("server hits = %d: oversized response must not be retried", hits.Load())
			}
		})
	}
}

func TestConformanceConnectionReuse(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			ts, cl := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write([]byte("<ok/>"))
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			for i := 0; i < 3; i++ {
				res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
				if err != nil {
					t.Fatal(err)
				}
				if res.Status != http.StatusOK {
					t.Fatalf("status = %d", res.Status)
				}
			}
			if got := cl.accepts.Load(); got != 1 {
				t.Fatalf("accepted %d connections, want 1 (keep-alive reuse)", got)
			}
		})
	}
}

func TestConformancePoisonedConnAfterContextCancel(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var hits atomic.Int64
			release := make(chan struct{})
			var releaseOnce sync.Once
			releaseNow := func() { releaseOnce.Do(func() { close(release) }) }
			defer releaseNow() // a failing assertion must not wedge server shutdown
			ts, cl := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if hits.Add(1) == 1 {
					<-release // hold the first exchange until cancelled
				}
				_, _ = w.Write([]byte("<ok/>"))
			}))
			post, closeTr := tr.make(t)
			defer closeTr()

			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			_, err := post(ctx, ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			releaseNow()

			// The cancelled exchange's connection is poisoned: the next
			// call must not be handed a half-used wire.
			res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != http.StatusOK || string(res.Body) != "<ok/>" {
				t.Fatalf("status %d body %q", res.Status, res.Body)
			}
			if got := cl.accepts.Load(); got != 2 {
				t.Fatalf("accepted %d connections, want 2 (cancelled conn must not be reused)", got)
			}
		})
	}
}

func TestConformanceChunkedResponse(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				// Flushing before the handler returns forces chunked
				// transfer coding.
				_, _ = w.Write([]byte("<first/>"))
				w.(http.Flusher).Flush()
				_, _ = w.Write([]byte("<second/>"))
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			for i := 0; i < 2; i++ { // twice: the chunked conn must stay reusable
				res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
				if err != nil {
					t.Fatal(err)
				}
				if string(res.Body) != "<first/><second/>" {
					t.Fatalf("body = %q", res.Body)
				}
			}
		})
	}
}

func TestConformanceConnectionClose(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			ts, cl := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Connection", "close")
				_, _ = w.Write([]byte("<ok/>"))
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			for i := 0; i < 2; i++ {
				res, err := post(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
				if err != nil {
					t.Fatal(err)
				}
				if string(res.Body) != "<ok/>" {
					t.Fatalf("body = %q", res.Body)
				}
			}
			if got := cl.accepts.Load(); got != 2 {
				t.Fatalf("accepted %d connections, want 2 (Connection: close honoured)", got)
			}
		})
	}
}

func TestConformanceDeadline(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			release := make(chan struct{})
			defer close(release)
			ts, _ := newCountingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				<-release
			}))
			post, closeTr := tr.make(t)
			defer closeTr()
			ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := post(ctx, ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
			if err == nil {
				t.Fatal("want deadline error")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("deadline took %v to fire", elapsed)
			}
		})
	}
}

// TestConformanceStaleKeepAliveRedial: a server that closes a pooled
// connection while it idles must not surface as a caller-visible
// failure, even with NoRetry — both transports transparently redial a
// request that died before any response byte.
func TestConformanceStaleKeepAliveRedial(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var accepts atomic.Int64
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			resp := "HTTP/1.1 200 OK\r\nContent-Type: text/xml\r\nContent-Length: 5\r\n\r\n<ok/>"
			go func() {
				for {
					c, err := ln.Accept()
					if err != nil {
						return
					}
					accepts.Add(1)
					go func(c net.Conn) {
						defer c.Close()
						buf := make([]byte, 4096)
						if _, err := c.Read(buf); err != nil {
							return
						}
						_, _ = c.Write([]byte(resp))
						// Close without announcing: the client's pooled
						// connection goes stale.
					}(c)
				}
			}()
			post, closeTr := tr.make(t)
			defer closeTr()
			url := "http://" + ln.Addr().String() + "/"
			for i := 0; i < 2; i++ {
				res, err := post(context.Background(), url, testCT, []byte("<in/>"), httpx.NoRetry)
				if err != nil {
					t.Fatalf("call %d: %v", i+1, err)
				}
				if string(res.Body) != "<ok/>" {
					t.Fatalf("call %d body = %q", i+1, res.Body)
				}
			}
			if got := accepts.Load(); got != 2 {
				t.Fatalf("accepted %d connections, want 2", got)
			}
		})
	}
}

// TestWireHTTPSFallsBack: wire speaks plain HTTP only; TLS endpoints are
// delegated to the Fallback client, keeping the *http.Client seam for
// exotic deployments.
func TestWireHTTPSFallsBack(t *testing.T) {
	ts := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<ok/>"))
	}))
	defer ts.Close()
	c := NewClient(Options{Fallback: ts.Client()})
	defer c.Close()
	res, err := c.PostXML(context.Background(), ts.URL, testCT, []byte("<in/>"), httpx.NoRetry)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || string(res.Body) != "<ok/>" {
		t.Fatalf("status %d body %q", res.Status, res.Body)
	}
}
