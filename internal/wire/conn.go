package wire

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/textproto"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wsupgrade/internal/httpx"
	bufpool "wsupgrade/internal/pool"
)

// respBodyPool backs response-body buffers. Ownership of each buffer
// transfers out of the transport with the exchange result (see
// Client.PostXML); the final Release — typically in dispatch after the
// reply is judged, written and recorded — recycles it here. Bodies
// above the connection scratch cap are dropped rather than retained.
var respBodyPool = bufpool.BufPool{MaxCap: maxConnScratch}

// aLongTimeAgo is the past deadline that poisons an in-flight read.
var aLongTimeAgo = time.Unix(1, 0)

// defaultDialer backs defaultDial when Options.Dial is nil.
var defaultDialer = &net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}

func defaultDial(ctx context.Context, network, addr string) (net.Conn, error) {
	return defaultDialer.DialContext(ctx, network, addr)
}

// pool is one endpoint's persistent-connection pool plus its precomputed
// request-head prefix.
type pool struct {
	c    *Client
	addr string // dial target host:port
	// prefix is the request head through "Content-Length: " — everything
	// that never changes per call for this endpoint: method, target,
	// Host, User-Agent and the Content-Type the pool was built with.
	// Only the length digits, the blank line and the body follow it.
	prefix []byte
	ct     string // the Content-Type baked into prefix
	// preCT/postCT rebuild the head around a different Content-Type for
	// the rare call that passes one.
	preCT, postCT string

	mu     sync.Mutex
	idle   []*conn // LIFO: the most recently used connection is hottest
	closed bool
}

func newPool(c *Client, u *url.URL, contentType string) *pool {
	addr := u.Host
	if u.Port() == "" {
		addr = net.JoinHostPort(u.Hostname(), "80")
	}
	target := u.RequestURI()
	if target == "" {
		target = "/"
	}
	preCT := "POST " + target + " HTTP/1.1\r\nHost: " + u.Host +
		"\r\nUser-Agent: wsupgrade-wire\r\nContent-Type: "
	postCT := "\r\nContent-Length: "
	return &pool{
		c:      c,
		addr:   addr,
		prefix: []byte(preCT + contentType + postCT),
		ct:     contentType,
		preCT:  preCT,
		postCT: postCT,
	}
}

// get checks a connection out of the pool, dialing when none is idle.
// fresh reports a newly dialed connection (its first exchange cannot be
// a stale-keep-alive failure).
func (p *pool) get(ctx context.Context) (cn *conn, fresh bool, err error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		cn = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return cn, false, nil
	}
	p.mu.Unlock()
	cn, err = p.dial(ctx)
	return cn, true, err
}

func (p *pool) dial(ctx context.Context) (*conn, error) {
	nc, err := p.c.opts.Dial(ctx, "tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", p.addr, err)
	}
	cn := &conn{
		nc:     nc,
		br:     bufio.NewReaderSize(nc, 4096),
		arm:    make(chan (<-chan struct{})),
		disarm: make(chan struct{}),
	}
	go cn.watch()
	return cn, nil
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full or closed).
func (p *pool) put(cn *conn) {
	cn.idleSince = time.Now()
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.c.opts.MaxIdlePerHost {
		p.idle = append(p.idle, cn)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	cn.close()
}

// reapIdle closes every pooled connection idle since before cutoff and
// reports how many survive. LIFO order means the stalest connections
// sit at the front of the slice.
func (p *pool) reapIdle(cutoff time.Time) int {
	p.mu.Lock()
	stale := 0
	for stale < len(p.idle) && p.idle[stale].idleSince.Before(cutoff) {
		stale++
	}
	expired := p.idle[:stale]
	p.idle = append([]*conn(nil), p.idle[stale:]...)
	n := len(p.idle)
	p.mu.Unlock()
	for _, cn := range expired {
		cn.close()
	}
	return n
}

func (p *pool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, cn := range idle {
		cn.close()
	}
}

// do runs one exchange against the endpoint. A pooled connection that
// fails before yielding any response byte is assumed to be a stale
// keep-alive (the peer closed it while it sat idle) and is transparently
// replaced by a fresh dial without consuming a retry attempt — matching
// net/http, which re-dials retriable requests internally.
// Ownership of the returned body buffer transfers to the caller: one
// Release pairs with it (data is nil exactly when err is non-nil).
//
//wsu:owns return
func (p *pool) do(ctx context.Context, contentType string, body []byte, maxBytes int64) (status int, data *bufpool.Buf, hdr http.Header, err error) {
	cn, fresh, err := p.get(ctx)
	if err != nil {
		return 0, nil, nil, err
	}
	res := p.exchange(ctx, cn, contentType, body, maxBytes)
	if res.err != nil && !fresh && !res.gotResponse && ctx.Err() == nil {
		cn2, derr := p.dial(ctx)
		if derr != nil {
			return 0, nil, nil, res.err
		}
		res = p.exchange(ctx, cn2, contentType, body, maxBytes)
	}
	return res.status, res.body, res.header, res.err
}

// exchangeResult carries one exchange's outcome. body is a pooled
// buffer owned by whoever receives the result; it is non-nil exactly
// when err is nil.
type exchangeResult struct {
	status      int
	body        *bufpool.Buf
	header      http.Header
	gotResponse bool // a full status line arrived
	err         error
}

// exchange writes one request on cn and reads the response. It owns the
// connection's fate: healthy and fully drained → pooled; anything else →
// closed.
func (p *pool) exchange(ctx context.Context, cn *conn, contentType string, body []byte, maxBytes int64) (res exchangeResult) {
	// Deadline: the context's, with the client Timeout as backstop.
	dl, ok := ctx.Deadline()
	if !ok && p.c.opts.Timeout > 0 {
		dl = time.Now().Add(p.c.opts.Timeout)
		ok = true
	}
	if ok {
		_ = cn.nc.SetDeadline(dl)
	} else {
		_ = cn.nc.SetDeadline(time.Time{})
	}

	armed := cn.armCancel(ctx.Done())
	reuse := false
	defer func() {
		if armed {
			cn.disarmCancel()
		}
		// Read the poison flag only after disarming: past that point the
		// watcher is parked and cannot set it for THIS exchange anymore.
		if reuse && res.err == nil && !cn.poisoned.Load() {
			p.put(cn)
		} else {
			cn.close()
		}
		if res.err != nil {
			// Surface the cancellation cause so errors.Is(err,
			// context.Canceled/DeadlineExceeded) holds, as with net/http.
			// The conn deadline and the context's own timer race by a few
			// microseconds, so an expired deadline whose context has not
			// ticked yet is mapped explicitly.
			var ne net.Error
			switch {
			case ctx.Err() != nil:
				res.err = fmt.Errorf("wire: POST exchange: %w", ctx.Err())
			case ok && !time.Now().Before(dl) && errors.As(res.err, &ne) && ne.Timeout():
				res.err = fmt.Errorf("wire: POST exchange: %w", context.DeadlineExceeded)
			}
		}
	}()

	if err := cn.writeRequest(p, contentType, body); err != nil {
		res.err = fmt.Errorf("wire: writing request: %w", err)
		return res
	}
	//wsu:allow poolcheck -- ownership travels to the caller in res.body
	status, data, hdr, reusable, err := cn.readResponse(maxBytes)
	res.gotResponse = cn.sawStatusLine
	if err != nil {
		res.err = err
		return res
	}
	res.status = status
	res.body = data
	res.header = hdr
	reuse = reusable
	return res
}

// ---------------------------------------------------------------------------
// Connection

// conn is one persistent HTTP/1.1 connection with all per-exchange
// scratch state reused across calls.
type conn struct {
	nc net.Conn
	br *bufio.Reader

	wbuf     []byte      // request write scratch
	lineBuf  []byte      // long-line overflow scratch
	hdrBuf   []byte      // raw response header block (current exchange)
	lastRaw  []byte      // previous exchange's raw header block
	lastHdr  http.Header // parsed form of lastRaw, reused on byte-equal blocks
	poisoned atomic.Bool

	// lineBudget is the remaining header-section byte budget of the
	// response being read; see maxHeaderBytes.
	lineBudget int
	// idleSince stamps the moment the connection entered the idle pool;
	// the client's janitor closes connections idle past IdleTimeout.
	idleSince time.Time

	sawStatusLine bool

	// The cancellation watcher: arm carries the exchange context's Done
	// channel; disarm ends the watch. Both are unbuffered — the watcher
	// goroutine lives as long as the connection, so arming is two
	// rendezvous channel operations, never an allocation or a spawn.
	arm    chan (<-chan struct{})
	disarm chan struct{}

	closeOnce sync.Once
}

func (c *conn) watch() {
	for done := range c.arm {
		select {
		case <-done:
			c.poisoned.Store(true)
			_ = c.nc.SetDeadline(aLongTimeAgo)
			<-c.disarm
		case <-c.disarm:
		}
	}
}

// armCancel starts cancellation propagation for one exchange; it
// reports whether disarmCancel must be called.
func (c *conn) armCancel(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	c.arm <- done
	return true
}

func (c *conn) disarmCancel() { c.disarm <- struct{}{} }

// close shuts the connection and its watcher down. Must not be called
// while an exchange is armed.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		_ = c.nc.Close()
		close(c.arm)
	})
}

// largeBodyThreshold: request bodies above it are written in a second
// syscall instead of being copied into the head buffer.
const largeBodyThreshold = 8 << 10

// maxConnScratch caps the per-connection scratch buffers a giant
// message may have grown; larger ones are dropped so an outlier does
// not pin memory for the connection's lifetime.
const maxConnScratch = 64 << 10

func (c *conn) writeRequest(p *pool, contentType string, body []byte) error {
	b := c.wbuf[:0]
	if contentType == p.ct {
		b = append(b, p.prefix...)
	} else {
		b = append(b, p.preCT...)
		b = append(b, contentType...)
		b = append(b, p.postCT...)
	}
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, '\r', '\n', '\r', '\n')
	small := len(body) <= largeBodyThreshold
	if small {
		b = append(b, body...)
	}
	if cap(b) <= maxConnScratch {
		c.wbuf = b[:0]
	}
	if _, err := c.nc.Write(b); err != nil {
		return err
	}
	if !small {
		if _, err := c.nc.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// maxHeaderBytes bounds one response's whole non-body line section —
// status lines, headers, chunk-size lines and trailers. A release
// streaming endless header lines (or one never-terminated line) must
// exhaust this budget, not the mediator's memory: the body direction is
// bounded by RetryPolicy.MaxResponseBytes, and this is the header-side
// counterpart of net/http's MaxResponseHeaderBytes.
const maxHeaderBytes = 1 << 20

// errHeaderTooLarge reports a response whose header section exceeds
// maxHeaderBytes; the connection is unusable (mid-line) and is closed.
var errHeaderTooLarge = errors.New("wire: response header section exceeds limit")

// readLine returns the next CRLF-terminated line (without the
// terminator), valid until the next read on the connection. Every line
// draws on c.lineBudget, reset per response by readResponse.
func (c *conn) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err == nil {
		if c.lineBudget -= len(line); c.lineBudget < 0 {
			return nil, errHeaderTooLarge
		}
		return trimCRLF(line), nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	// Header line longer than the read buffer: spill into lineBuf.
	buf := append(c.lineBuf[:0], line...)
	for {
		if c.lineBudget -= len(line); c.lineBudget < 0 {
			return nil, errHeaderTooLarge
		}
		line, err = c.br.ReadSlice('\n')
		buf = append(buf, line...)
		if err == nil {
			if c.lineBudget -= len(line); c.lineBudget < 0 {
				return nil, errHeaderTooLarge
			}
			if cap(buf) <= maxConnScratch {
				c.lineBuf = buf[:0]
			}
			return trimCRLF(buf), nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n > 1 && b[n-2] == '\r' {
			b = b[:n-2]
		}
	}
	return b
}

// maxInterimResponses bounds the 1xx responses skipped before the final
// status, so a misbehaving peer cannot hold an exchange in a loop.
const maxInterimResponses = 5

// readResponse parses one response. reusable reports whether the
// connection may serve another exchange. body is a pooled buffer whose
// ownership transfers to the caller (nil exactly when err is non-nil);
// hdr may be shared with earlier responses on this connection (see
// setHeader) and is read-only.
//
//wsu:owns return
func (c *conn) readResponse(maxBytes int64) (status int, body *bufpool.Buf, hdr http.Header, reusable bool, err error) {
	c.sawStatusLine = false
	c.lineBudget = maxHeaderBytes
	var proto11, connClose, chunked bool
	contentLength := int64(-1)
	for interim := 0; ; interim++ {
		// Status line; 1xx interim responses are skipped.
		line, err := c.readLine()
		if err != nil {
			return 0, nil, nil, false, fmt.Errorf("wire: reading status line: %w", err)
		}
		status, proto11, err = parseStatusLine(line)
		if err != nil {
			return 0, nil, nil, false, err
		}
		c.sawStatusLine = true

		// Header block: accumulated raw for the cache comparison, with
		// the three framing-relevant headers parsed on the way.
		hdrRaw := c.hdrBuf[:0]
		connClose, chunked, contentLength = false, false, int64(-1)
		for {
			line, err := c.readLine()
			if err != nil {
				return 0, nil, nil, false, fmt.Errorf("wire: reading header: %w", err)
			}
			if len(line) == 0 {
				break
			}
			hdrRaw = append(hdrRaw, line...)
			hdrRaw = append(hdrRaw, '\n')
			key, val, ok := cutHeaderLine(line)
			if !ok {
				return 0, nil, nil, false, fmt.Errorf("wire: malformed header line %q", line)
			}
			switch {
			case asciiEqualFold(key, "content-length"):
				n, perr := strconv.ParseInt(string(bytes.TrimSpace(val)), 10, 64)
				if perr != nil || n < 0 {
					return 0, nil, nil, false, fmt.Errorf("wire: bad Content-Length %q", val)
				}
				contentLength = n
			case asciiEqualFold(key, "transfer-encoding"):
				chunked = asciiEqualFold(bytes.TrimSpace(val), "chunked")
			case asciiEqualFold(key, "connection"):
				connClose = asciiEqualFold(bytes.TrimSpace(val), "close")
			}
		}
		if cap(hdrRaw) <= maxConnScratch {
			c.hdrBuf = hdrRaw[:0]
		}
		if status >= 200 {
			hdr = c.header(hdrRaw)
			break
		}
		if interim >= maxInterimResponses {
			return 0, nil, nil, false, fmt.Errorf("wire: too many interim responses")
		}
		// 1xx interim: the next status line follows.
	}

	keepAlive := proto11 && !connClose

	// Body framing per RFC 7230 §3.3.3 (the subset a release can send).
	// Each arm returns directly so the pooled buffer it acquires flows
	// straight to the //wsu:owns return handoff.
	switch {
	case status == http.StatusNoContent || status == http.StatusNotModified:
		return status, respBodyPool.Get(), hdr, keepAlive, nil
	case chunked:
		body, err := c.readChunkedBody(maxBytes)
		if err != nil {
			body.Release() // nil on error; Release is nil-safe
			return 0, nil, nil, false, err
		}
		return status, body, hdr, keepAlive, nil
	case contentLength >= 0:
		if contentLength > maxBytes {
			return 0, nil, nil, false, fmt.Errorf("wire: response of %d bytes: %w", contentLength, httpx.ErrTooLarge)
		}
		body := respBodyPool.Get()
		if contentLength == 0 {
			return status, body, hdr, keepAlive, nil
		}
		// The declared length already passed the bound check, so an
		// exact read enforces it without further plumbing. The pooled
		// buffer grows at most once per connection steady state.
		if int64(cap(body.B)) < contentLength {
			body.B = make([]byte, contentLength)
		} else {
			body.B = body.B[:contentLength]
		}
		if _, err := io.ReadFull(c.br, body.B); err != nil {
			body.Release()
			return 0, nil, nil, false, fmt.Errorf("wire: reading body: %w", err)
		}
		return status, body, hdr, keepAlive, nil
	default:
		// No explicit framing: the body runs to connection close.
		body, err := httpx.ReadBoundedBuf(c.br, maxBytes)
		if err != nil {
			body.Release() // nil on error; Release is nil-safe
			return 0, nil, nil, false, fmt.Errorf("wire: reading body: %w", err)
		}
		return status, body, hdr, false, nil
	}
}

// header exposes the response headers, reusing the previous parsed map
// whenever the raw header block is byte-identical to the previous
// exchange's — the steady state on a release connection, where only the
// payload varies call to call. The returned map is therefore shared and
// read-only by contract.
func (c *conn) header(raw []byte) http.Header {
	if c.lastHdr != nil && bytes.Equal(raw, c.lastRaw) {
		return c.lastHdr
	}
	hdr := make(http.Header)
	rest := raw
	for len(rest) > 0 {
		var line []byte
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, nil
		}
		key, val, ok := cutHeaderLine(line)
		if !ok {
			continue
		}
		ck := textproto.CanonicalMIMEHeaderKey(string(key))
		hdr[ck] = append(hdr[ck], string(bytes.TrimSpace(val)))
	}
	c.lastRaw = append(c.lastRaw[:0], raw...)
	c.lastHdr = hdr
	return hdr
}

// readChunkedBody decodes a chunked transfer coding, bounded by max,
// into a pooled buffer the caller owns.
//
//wsu:owns return
func (c *conn) readChunkedBody(max int64) (*bufpool.Buf, error) {
	b := respBodyPool.Get()
	b.B = b.B[:0]
	for {
		line, err := c.readLine()
		if err != nil {
			b.Release()
			return nil, fmt.Errorf("wire: reading chunk size: %w", err)
		}
		if i := bytes.IndexByte(line, ';'); i >= 0 {
			line = line[:i] // chunk extensions are ignored
		}
		size, err := strconv.ParseInt(string(bytes.TrimSpace(line)), 16, 63)
		if err != nil || size < 0 {
			b.Release()
			return nil, fmt.Errorf("wire: bad chunk size %q", line)
		}
		if size == 0 {
			break
		}
		if int64(len(b.B))+size > max {
			b.Release()
			return nil, fmt.Errorf("wire: chunked response: %w", httpx.ErrTooLarge)
		}
		n := len(b.B)
		b.B = grow(b.B, int(size))
		if _, err := io.ReadFull(c.br, b.B[n:n+int(size)]); err != nil {
			b.Release()
			return nil, fmt.Errorf("wire: reading chunk: %w", err)
		}
		crlf, err := c.readLine()
		if err != nil || len(crlf) != 0 {
			b.Release()
			return nil, fmt.Errorf("wire: missing chunk terminator")
		}
	}
	// Trailers (discarded) run to the blank line.
	for {
		line, err := c.readLine()
		if err != nil {
			b.Release()
			return nil, fmt.Errorf("wire: reading trailers: %w", err)
		}
		if len(line) == 0 {
			break
		}
	}
	return b, nil
}

func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, 2*len(b)+n)
	copy(nb, b)
	return nb
}

// parseStatusLine parses "HTTP/1.x NNN reason".
func parseStatusLine(line []byte) (status int, proto11 bool, err error) {
	switch {
	case bytes.HasPrefix(line, []byte("HTTP/1.1 ")):
		proto11 = true
	case bytes.HasPrefix(line, []byte("HTTP/1.0 ")):
	default:
		return 0, false, fmt.Errorf("wire: malformed status line %q", line)
	}
	rest := line[9:]
	if len(rest) < 3 {
		return 0, false, fmt.Errorf("wire: malformed status line %q", line)
	}
	for _, d := range rest[:3] {
		if d < '0' || d > '9' {
			return 0, false, fmt.Errorf("wire: malformed status line %q", line)
		}
		status = status*10 + int(d-'0')
	}
	return status, proto11, nil
}

// cutHeaderLine splits "Key: value".
func cutHeaderLine(line []byte) (key, val []byte, ok bool) {
	i := bytes.IndexByte(line, ':')
	if i <= 0 {
		return nil, nil, false
	}
	return line[:i], line[i+1:], true
}

// asciiEqualFold reports ASCII case-insensitive equality of b against
// the lower-case reference string, without allocating.
func asciiEqualFold(b []byte, lower string) bool {
	if len(b) != len(lower) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}
