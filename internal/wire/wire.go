// Package wire is a lean HTTP/1.1 client purpose-built for release
// dispatch — the transport under the mediator's fan-out hot path.
//
// The paper's middleware sits on every consumer request and multiplies
// per-call client overhead by the number of deployed releases (§4.2), so
// the generic net/http client machinery (request construction, response
// and header structs, cancellation plumbing) was the dominant per-call
// cost once the engine's own work was pooled away. This package replaces
// it for the traffic shape the mediator actually has: POSTs of small XML
// envelopes to a small, fixed set of plain-HTTP endpoints, with bounded
// response reads.
//
//   - Per-endpoint persistent connection pools: each connection keeps its
//     bufio reader, write scratch and header scratch across calls.
//   - Request heads are written from a precomputed per-endpoint byte
//     prefix — method, target, Host and Content-Type never change per
//     call; only Content-Length and the body do.
//   - Response headers are parsed into an http.Header that is cached per
//     connection and reused verbatim while the raw header block repeats
//     (release responses are near-identical call to call), so the steady
//     state allocates nothing for headers. The cached Header is shared
//     across calls on the same connection: callers must treat
//     Result.Header as read-only.
//   - Context cancellation is implemented as deadline-on-conn plus
//     poisoning: every exchange arms a per-connection watcher that, when
//     the context fires, marks the connection poisoned and forces its
//     deadline into the past, unblocking any in-flight read. A poisoned
//     connection is closed, never pooled.
//
// Retry, backoff and response-size semantics are httpx.PostXML's,
// enforced by sharing the httpx.RetryPolicy implementation and a
// conformance suite run against both transports. URLs the wire client
// does not speak natively (anything but plain http://) are delegated to
// the Fallback net/http client, which also remains the configuration
// seam for TLS, proxies and other exotic deployments.
package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsupgrade/internal/httpx"
)

// ErrClosed reports a call on a closed client.
var ErrClosed = errors.New("wire: client closed")

// DialFunc establishes the transport connection to addr ("host:port").
// Tests and in-process benchmarks substitute in-memory pipes.
type DialFunc = func(ctx context.Context, network, addr string) (net.Conn, error)

// Options parameterizes a Client.
type Options struct {
	// Dial overrides connection establishment; nil means a TCP dial with
	// a 5 s connect timeout.
	Dial DialFunc
	// MaxIdlePerHost bounds each endpoint's idle-connection pool
	// (default httpx.DefaultMaxIdleConnsPerHost).
	MaxIdlePerHost int
	// Timeout is the per-exchange deadline backstop applied when the
	// call context carries no deadline of its own. Zero means none: an
	// exchange is then bounded only by its context.
	Timeout time.Duration
	// IdleTimeout bounds how long an unused pooled connection (and its
	// watcher goroutine) survives before the janitor closes it — the
	// wire counterpart of http.Transport.IdleConnTimeout, and what keeps
	// connections to retired release endpoints from living for the
	// client's lifetime. Default 90 s; negative disables reaping.
	IdleTimeout time.Duration
	// Fallback handles URLs this client does not speak natively
	// (https, proxies); nil means http.DefaultClient.
	Fallback *http.Client
}

// Client is the lean dispatch transport. Construct with NewClient; it is
// safe for concurrent use. Close shuts down all pooled connections.
type Client struct {
	opts        Options
	pools       sync.Map // endpoint URL string → *pool
	closed      atomic.Bool
	janitorOnce sync.Once
	janitorDone chan struct{}
}

// NewClient builds a wire client.
func NewClient(opts Options) *Client {
	if opts.MaxIdlePerHost <= 0 {
		opts.MaxIdlePerHost = httpx.DefaultMaxIdleConnsPerHost
	}
	if opts.Dial == nil {
		opts.Dial = defaultDial
	}
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = 90 * time.Second
	}
	return &Client{opts: opts, janitorDone: make(chan struct{})}
}

// Close closes every pooled connection. In-flight exchanges finish; the
// connections they hold are closed on return instead of pooled.
func (c *Client) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.janitorDone)
	}
	c.pools.Range(func(_, v interface{}) bool {
		v.(*pool).close()
		return true
	})
	return nil
}

// startJanitor launches (once, lazily on first pool creation) the
// goroutine that ages idle connections out of every pool, so sockets
// and watcher goroutines to retired release endpoints do not persist
// for the client's lifetime.
func (c *Client) startJanitor() {
	if c.opts.IdleTimeout < 0 {
		return
	}
	c.janitorOnce.Do(func() {
		interval := c.opts.IdleTimeout / 2
		if interval < time.Second {
			interval = c.opts.IdleTimeout // sub-2s timeouts (tests) sweep at their own pace
		}
		go func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-c.janitorDone:
					return
				case <-ticker.C:
					cutoff := time.Now().Add(-c.opts.IdleTimeout)
					c.pools.Range(func(_, v interface{}) bool {
						v.(*pool).reapIdle(cutoff)
						return true
					})
				}
			}
		}()
	})
}

func (c *Client) fallback() *http.Client {
	if c.opts.Fallback != nil {
		return c.opts.Fallback
	}
	return http.DefaultClient
}

// PostXML posts an XML payload with httpx.PostXML's exact retry,
// backoff and response-size semantics (see that function); the
// conformance suite in this package asserts the equivalence. Non-http://
// URLs are delegated to the Fallback client.
//
// Result.Header may be shared with subsequent results from the same
// endpoint and must be treated as read-only.
//
// Result.BodyBuf carries ownership of the pooled response-body buffer
// to the caller; see httpx.Result.
func (c *Client) PostXML(ctx context.Context, rawURL, contentType string, body []byte, policy httpx.RetryPolicy) (httpx.Result, error) {
	if err := policy.Validate(); err != nil {
		return httpx.Result{}, err
	}
	if !strings.HasPrefix(rawURL, "http://") {
		return httpx.PostXML(ctx, c.fallback(), rawURL, contentType, body, policy)
	}
	if c.closed.Load() {
		return httpx.Result{}, ErrClosed
	}
	p, err := c.pool(rawURL, contentType)
	if err != nil {
		return httpx.Result{}, fmt.Errorf("wire: building request: %w", err)
	}
	maxBytes := policy.EffectiveMaxResponseBytes()
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts; attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return httpx.Result{}, fmt.Errorf("wire: cancelled during backoff: %w", ctx.Err())
			case <-time.After(policy.BackoffFor(attempt)):
			}
		}
		//wsu:allow poolcheck -- a non-nil error carries no body; ownership otherwise transfers via Result.BodyBuf
		status, data, hdr, err := p.do(ctx, contentType, body, maxBytes)
		if err != nil {
			if errors.Is(err, httpx.ErrTooLarge) {
				// An oversized response is not transient; terminal, as in
				// httpx.PostXML.
				return httpx.Result{}, fmt.Errorf("wire: POST %s: %w", rawURL, err)
			}
			lastErr = err
			if ctx.Err() != nil {
				break // deadline spent; no point retrying
			}
			continue
		}
		if policy.ShouldRetryStatus(status) && attempt < policy.Attempts {
			lastErr = fmt.Errorf("wire: transient HTTP %d from %s", status, rawURL)
			data.Release()
			continue
		}
		return httpx.Result{
			Status:   status,
			Body:     data.B,
			Header:   hdr,
			Attempts: attempt,
			Latency:  time.Since(start),
			BodyBuf:  data,
		}, nil
	}
	return httpx.Result{}, fmt.Errorf("wire: POST %s failed after retries: %w", rawURL, lastErr)
}

// pool returns (building on first use) the endpoint's connection pool.
func (c *Client) pool(rawURL, contentType string) (*pool, error) {
	if v, ok := c.pools.Load(rawURL); ok {
		return v.(*pool), nil
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	if u.Host == "" {
		return nil, fmt.Errorf("missing host in %q", rawURL)
	}
	p := newPool(c, u, contentType)
	if v, loaded := c.pools.LoadOrStore(rawURL, p); loaded {
		return v.(*pool), nil
	}
	if c.closed.Load() {
		// Raced Close; the pool must not outlive the client.
		p.close()
		return nil, ErrClosed
	}
	c.startJanitor()
	return p, nil
}
