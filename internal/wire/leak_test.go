package wire

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/testutil"
)

// TestClientCloseReleasesGoroutines: after Close, nothing of the client
// survives — not the janitor, not per-connection watchers, not a reader
// parked on a connection whose request was cancelled mid-flight.
func TestClientCloseReleasesGoroutines(t *testing.T) {
	testutil.CheckGoroutines(t)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<ok/>"))
	}))
	defer fast.Close()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer slow.Close()

	c := NewClient(Options{})
	// Populate pools (and start the janitor) against two endpoints.
	for i := 0; i < 3; i++ {
		if _, err := c.PostXML(context.Background(), fast.URL, testCT, []byte("<in/>"), httpx.NoRetry); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon a request mid-flight: the poisoned connection's teardown
	// must not orphan a goroutine.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, err := c.PostXML(ctx, slow.URL, testCT, []byte("<in/>"), httpx.NoRetry); err == nil {
		t.Fatal("cancelled post succeeded")
	}
	cancel()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// CheckGoroutines' cleanup does the actual assertion.
}
