package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs of %d", same, n)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p := New(7)
	p.Uint64() // consume the draw Split used
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("split stream mirrors parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < n/7-1000 || c > n/7+1000 {
			t.Fatalf("Intn bucket %d count %d deviates from uniform %d", i, c, n/7)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	const mean = 0.7
	const n = 400000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~%v", m, mean)
	}
	if math.Abs(variance-mean*mean) > 0.03 {
		t.Fatalf("Exp variance = %v, want ~%v", variance, mean*mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	if v := New(1).Exp(0); v != 0 {
		t.Fatalf("Exp(0) = %v, want 0", v)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const n = 400000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m) > 0.01 {
		t.Fatalf("Normal mean = %v, want ~0", m)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Normal variance = %v, want ~1", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(19)
	for _, shape := range []float64{0.5, 1, 2, 5, 20} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Gamma(shape)
			if v < 0 {
				t.Fatalf("negative Gamma(%v) draw %v", shape, v)
			}
			sum += v
		}
		m := sum / n
		if math.Abs(m-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean = %v, want ~%v", shape, m, shape)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(23)
	cases := []struct{ a, b float64 }{
		{20, 20}, {2, 3}, {1, 10}, {0.5, 0.5},
	}
	for _, c := range cases {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Beta(c.a, c.b)
			if v < 0 || v > 1 {
				t.Fatalf("Beta(%v,%v) out of [0,1]: %v", c.a, c.b, v)
			}
			sum += v
		}
		want := c.a / (c.a + c.b)
		m := sum / n
		if math.Abs(m-want) > 0.01 {
			t.Fatalf("Beta(%v,%v) mean = %v, want ~%v", c.a, c.b, m, want)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(29)
	const n, p = 50, 0.3
	const trials = 50000
	sum := 0.0
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial out of range: %d", k)
		}
		sum += float64(k)
	}
	m := sum / trials
	if math.Abs(m-n*p) > 0.2 {
		t.Fatalf("Binomial mean = %v, want ~%v", m, n*p)
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := New(31)
	w := []float64{1, 2, 3, 4}
	counts := make([]float64, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10 * n
		if math.Abs(c-want) > 0.05*want+200 {
			t.Fatalf("Categorical bucket %d: %v draws, want ~%v", i, c, want)
		}
	}
}

func TestCategoricalZeroWeightNeverDrawn(t *testing.T) {
	r := New(37)
	w := []float64{0, 1, 0}
	for i := 0; i < 10000; i++ {
		if got := r.Categorical(w); got != 1 {
			t.Fatalf("Categorical drew zero-weight bucket %d", got)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"all-zero": {0, 0},
		"nan":      {math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%s) did not panic", name)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	if err := quick.Check(func(seed uint64) bool {
		n := int(seed%20) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkBeta(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Beta(2, 3)
	}
	_ = sink
}
