// Package xrand provides a small, deterministic pseudo-random number
// generator with the distribution samplers the reproduction needs
// (uniform, exponential, Beta, binomial, categorical).
//
// Every experiment in the repository threads an explicit *xrand.Rand seeded
// from a fixed constant, so all tables and figures are bit-for-bit
// reproducible across runs and platforms. The generator is xoshiro256**
// seeded via splitmix64, following the reference implementations by
// Blackman and Vigna.
//
// A *Rand is NOT safe for concurrent use; give each goroutine its own
// stream via Split.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds yield unrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from the current stream. It is the
// supported way to hand deterministic sub-streams to concurrent workers.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling is overkill here;
	// modulo bias at n << 2^64 is far below our statistical tolerances,
	// but reject to keep the sampler exact.
	bound := uint64(n)
	limit := (^uint64(0) / bound) * bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// A non-positive mean yields 0, which models a degenerate instantaneous
// delay rather than an error: latency models use mean 0 to switch a
// component off.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// 1-u is in (0,1]; log of it is finite.
	return -mean * math.Log(1-u)
}

// Gamma samples a Gamma(shape, 1) variate using Marsaglia-Tsang for
// shape >= 1 and the boost transform for shape < 1. It panics for
// non-positive shape.
func (r *Rand) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma called with shape <= 0")
	}
	if shape < 1 {
		// Boost: G(a) = G(a+1) * U^{1/a}.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// Normal returns a standard normal variate (polar Marsaglia method).
func (r *Rand) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Beta samples a Beta(alpha, beta) variate via the Gamma ratio.
// It panics for non-positive parameters.
func (r *Rand) Beta(alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		panic("xrand: Beta called with non-positive parameter")
	}
	x := r.Gamma(alpha)
	y := r.Gamma(beta)
	if x == 0 && y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Binomial returns the number of successes in n independent trials with
// success probability p. O(n) inversion is fine at the n used here.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("xrand: Binomial called with n < 0")
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Bool(p) {
			k++
		}
	}
	return k
}

// Categorical returns an index in [0, len(weights)) drawn proportionally to
// weights. Negative weights panic; all-zero weights panic.
func (r *Rand) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: Categorical called with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: Categorical called with all-zero weights")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n integers using Fisher-Yates and calls swap
// for each exchange, mirroring math/rand's contract.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
