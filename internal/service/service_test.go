package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/soap"
)

func startRelease(t *testing.T, version string, plan FaultPlan) (*Release, *httptest.Server) {
	t.Helper()
	rel, err := New(DemoContract(version), DemoBehaviours(), plan)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rel.Handler())
	t.Cleanup(ts.Close)
	return rel, ts
}

func TestCorrectService(t *testing.T) {
	rel, ts := startRelease(t, "1.0", FaultPlan{})
	c := &soap.Client{URL: ts.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	var out Operation1Response
	err := c.Call(context.Background(), "operation1",
		Operation1Request{Param1: 21, Param2: "x"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Op1Result != "x/42" {
		t.Fatalf("result = %q", out.Op1Result)
	}
	var sum AddResponse
	if err := c.Call(context.Background(), "add", AddRequest{A: 2, B: 3}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sum != 5 {
		t.Fatalf("sum = %d", sum.Sum)
	}
	if rel.Calls() != 2 {
		t.Fatalf("calls = %d", rel.Calls())
	}
	if rel.Injected()[relmodel.Correct] != 2 {
		t.Fatalf("injected = %v", rel.Injected())
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(DemoContract("1.0"), nil, FaultPlan{}); !errors.Is(err, ErrBadService) {
		t.Fatalf("missing handlers: %v", err)
	}
	bad := FaultPlan{Profile: relmodel.Profile{CR: 0.5}}
	if _, err := New(DemoContract("1.0"), DemoBehaviours(), bad); err == nil {
		t.Fatal("broken profile accepted")
	}
}

func TestEvidentFailureInjection(t *testing.T) {
	rel, ts := startRelease(t, "1.1", FaultPlan{
		Profile: relmodel.Profile{CR: 0, ER: 1, NER: 0},
		Seed:    1,
	})
	c := &soap.Client{URL: ts.URL}
	err := c.Call(context.Background(), "add", AddRequest{A: 1, B: 1}, nil)
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if !strings.Contains(f.String, "injected evident failure") {
		t.Fatalf("fault = %+v", f)
	}
	if rel.Injected()[relmodel.EvidentFailure] != 1 {
		t.Fatalf("injected = %v", rel.Injected())
	}
}

func TestNonEvidentFailureUsesFaultyHandler(t *testing.T) {
	_, ts := startRelease(t, "1.1", FaultPlan{
		Profile: relmodel.Profile{CR: 0, ER: 0, NER: 1},
		Seed:    2,
	})
	c := &soap.Client{URL: ts.URL}
	var out AddResponse
	if err := c.Call(context.Background(), "add", AddRequest{A: 2, B: 2}, &out); err != nil {
		t.Fatal(err)
	}
	// Plausible but wrong: the demo's non-evident failure mode.
	if out.Sum != 5 {
		t.Fatalf("sum = %d, want the off-by-one wrong answer 5", out.Sum)
	}
}

func TestNonEvidentFallbackCorruption(t *testing.T) {
	contract := DemoContract("1.1")
	behaviours := DemoBehaviours()
	add := behaviours["add"]
	add.Faulty = nil // force the generic corruption path
	behaviours["add"] = add
	rel, err := New(contract, behaviours, FaultPlan{Profile: relmodel.Profile{NER: 1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rel.Handler())
	defer ts.Close()
	c := &soap.Client{URL: ts.URL}
	env := soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`))
	resp, err := c.CallRaw(context.Background(), "add", env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp), "corrupted") {
		t.Fatalf("generic corruption missing: %s", resp)
	}
}

func TestInjectionFrequencies(t *testing.T) {
	rel, ts := startRelease(t, "1.1", FaultPlan{
		Profile: relmodel.Profile{CR: 0.7, ER: 0.15, NER: 0.15},
		Seed:    4,
	})
	c := &soap.Client{URL: ts.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	const n = 400
	for i := 0; i < n; i++ {
		_ = c.Call(context.Background(), "add", AddRequest{A: i, B: i}, nil)
	}
	inj := rel.Injected()
	if inj[relmodel.Correct]+inj[relmodel.EvidentFailure]+inj[relmodel.NonEvidentFailure] != n {
		t.Fatalf("injection accounting: %v", inj)
	}
	if inj[relmodel.Correct] < n/2 || inj[relmodel.EvidentFailure] == 0 || inj[relmodel.NonEvidentFailure] == 0 {
		t.Fatalf("implausible injection counts: %v", inj)
	}
}

func TestGroundTruthHeaders(t *testing.T) {
	_, ts := startRelease(t, "2.0", FaultPlan{})
	resp, err := http.Post(ts.URL, soap.ContentType,
		strings.NewReader(string(soap.EnvelopeRaw([]byte(`<addRequest><a>1</a><b>2</b></addRequest>`)))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(VersionHeader); got != "2.0" {
		t.Fatalf("version header = %q", got)
	}
	if got := resp.Header.Get(oracle.InjectionHeader); got != "CR" {
		t.Fatalf("injection header = %q", got)
	}
}

func TestWSDLEndpoint(t *testing.T) {
	_, ts := startRelease(t, "1.0", FaultPlan{})
	resp, err := http.Get(ts.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /wsdl = %d", resp.StatusCode)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{"operation1Request", "addRequest", "WebService1"} {
		if !strings.Contains(text, want) {
			t.Errorf("WSDL missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := startRelease(t, "1.0", FaultPlan{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(VersionHeader) != "1.0" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, resp.Header.Get(VersionHeader))
	}
}

func TestLatencyInjection(t *testing.T) {
	_, ts := startRelease(t, "1.0", FaultPlan{MeanLatency: 5 * time.Millisecond, Seed: 5})
	c := &soap.Client{URL: ts.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	start := time.Now()
	const n = 30
	for i := 0; i < n; i++ {
		if err := c.Call(context.Background(), "add", AddRequest{A: 1, B: 2}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// With mean 5 ms over 30 calls the total artificial delay should be
	// clearly measurable (≥ 50 ms even with generous variance).
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("latency injection had no effect: %v for %d calls", elapsed, n)
	}
}

func TestDeterministicInjectionStreams(t *testing.T) {
	relA, err := New(DemoContract("1.0"), DemoBehaviours(), FaultPlan{
		Profile: relmodel.Profile{CR: 0.5, ER: 0.25, NER: 0.25}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	relB, err := New(DemoContract("1.0"), DemoBehaviours(), FaultPlan{
		Profile: relmodel.Profile{CR: 0.5, ER: 0.25, NER: 0.25}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ka, _ := relA.draw()
		kb, _ := relB.draw()
		if ka != kb {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
}
