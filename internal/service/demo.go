package service

import (
	"context"
	"fmt"

	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
)

// The demo service mirrors the paper's §6.2 running example — a service
// publishing "operation1(param1 int, param2 string) → Op1Result string" —
// plus an arithmetic operation, so examples, commands and integration
// tests all exercise the same realistic contract.

// Operation1Request is the §6.2 example request element.
type Operation1Request struct {
	XMLName struct{} `xml:"operation1Request"`
	Param1  int      `xml:"param1"`
	Param2  string   `xml:"param2"`
}

// Operation1Response is the §6.2 example response element.
type Operation1Response struct {
	XMLName   struct{} `xml:"operation1Response"`
	Op1Result string   `xml:"Op1Result"`
}

// AddRequest asks for the sum of two integers.
type AddRequest struct {
	XMLName struct{} `xml:"addRequest"`
	A       int      `xml:"a"`
	B       int      `xml:"b"`
}

// AddResponse carries the sum.
type AddResponse struct {
	XMLName struct{} `xml:"addResponse"`
	Sum     int      `xml:"sum"`
}

// DemoContract returns the demo service contract at a given version.
func DemoContract(version string) wsdl.Contract {
	return wsdl.Contract{
		Name:            "WebService1",
		TargetNamespace: "urn:wsupgrade:demo",
		Version:         version,
		Operations: []wsdl.Operation{
			{
				Name:   "operation1",
				Doc:    "The paper's running example operation.",
				Input:  []wsdl.Param{{Name: "param1", Type: "s:int"}, {Name: "param2", Type: "s:string"}},
				Output: []wsdl.Param{{Name: "Op1Result", Type: "s:string"}},
			},
			{
				Name:   "add",
				Doc:    "Integer addition.",
				Input:  []wsdl.Param{{Name: "a", Type: "s:int"}, {Name: "b", Type: "s:int"}},
				Output: []wsdl.Param{{Name: "sum", Type: "s:int"}},
			},
		},
	}
}

// DemoBehaviours returns the demo operations' implementations, including
// their plausible-but-wrong failure modes used for NER injection.
func DemoBehaviours() map[string]Behaviour {
	return map[string]Behaviour{
		"operation1": {
			Handler: func(ctx context.Context, req *soap.Request) (interface{}, error) {
				var in Operation1Request
				if err := req.Decode(&in); err != nil {
					return nil, soap.ClientFault(err.Error())
				}
				return Operation1Response{Op1Result: fmt.Sprintf("%s/%d", in.Param2, in.Param1*2)}, nil
			},
			Faulty: func(ctx context.Context, req *soap.Request) (interface{}, error) {
				var in Operation1Request
				if err := req.Decode(&in); err != nil {
					return nil, soap.ClientFault(err.Error())
				}
				// Off-by-one in the doubling: plausible, wrong, and only
				// detectable by comparing against a diverse channel.
				return Operation1Response{Op1Result: fmt.Sprintf("%s/%d", in.Param2, in.Param1*2+1)}, nil
			},
		},
		"add": {
			Handler: func(ctx context.Context, req *soap.Request) (interface{}, error) {
				var in AddRequest
				if err := req.Decode(&in); err != nil {
					return nil, soap.ClientFault(err.Error())
				}
				return AddResponse{Sum: in.A + in.B}, nil
			},
			Faulty: func(ctx context.Context, req *soap.Request) (interface{}, error) {
				var in AddRequest
				if err := req.Decode(&in); err != nil {
					return nil, soap.ClientFault(err.Error())
				}
				return AddResponse{Sum: in.A + in.B + 1}, nil
			},
		},
	}
}
