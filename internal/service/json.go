package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/xrand"
)

// JSONBehaviour is one operation's REST/JSON implementation: the JSON
// twin of Behaviour, with the same CR/ER/NER injection semantics.
type JSONBehaviour struct {
	// Handler is the correct implementation; body is the request's JSON
	// payload, the returned value is marshalled as the response body.
	Handler func(ctx context.Context, body []byte) (interface{}, error)
	// Faulty optionally produces the operation's non-evident failure
	// mode. When nil, injected NER demands are served by extending the
	// correct response object with a marker key — detectable by
	// comparison, like any other content error.
	Faulty func(ctx context.Context, body []byte) (interface{}, error)
}

// jsonError is the wire error body a JSON release raises:
// {"error":{"message":...}} — what protocol/jsoncodec classifies as an
// evident failure.
type jsonError struct {
	Message string `json:"message"`
	// status is the HTTP status to respond with (500 when zero).
	status int
}

func (e *jsonError) Error() string { return e.Message }

// jsonClientError builds a 400 error body (malformed request).
func jsonClientError(msg string) *jsonError {
	return &jsonError{Message: msg, status: http.StatusBadRequest}
}

// maxJSONRequestBytes bounds request bodies, mirroring the SOAP
// runtime's message limit.
const maxJSONRequestBytes = 10 << 20

// JSONRelease hosts one release of a Web Service over REST/JSON: one
// operation per URL path, JSON request/response bodies, the same
// injectable CR/ER/NER fault model and ground-truth marker headers as
// the SOAP Release. Construct with NewJSON; serve via Handler.
type JSONRelease struct {
	version    string
	plan       FaultPlan
	profile    relmodel.Profile
	behaviours map[string]JSONBehaviour

	mu       sync.Mutex
	rng      *xrand.Rand
	injected map[relmodel.OutcomeKind]int
	calls    int
}

// NewJSON builds a JSON release runtime from behaviours keyed by
// operation name (the URL path segment that invokes them).
func NewJSON(version string, behaviours map[string]JSONBehaviour, plan FaultPlan) (*JSONRelease, error) {
	if version == "" {
		return nil, fmt.Errorf("%w: version required", ErrBadService)
	}
	if len(behaviours) == 0 {
		return nil, fmt.Errorf("%w: no operations", ErrBadService)
	}
	for name, b := range behaviours {
		if name == "" || strings.ContainsRune(name, '/') || b.Handler == nil {
			return nil, fmt.Errorf("%w: operation %q needs a name without '/' and a handler", ErrBadService, name)
		}
	}
	profile, err := plan.normalized()
	if err != nil {
		return nil, fmt.Errorf("service: fault plan: %w", err)
	}
	return &JSONRelease{
		version:    version,
		plan:       plan,
		profile:    profile,
		behaviours: behaviours,
		rng:        xrand.New(plan.Seed),
		injected:   make(map[relmodel.OutcomeKind]int),
	}, nil
}

// Version returns the release version string.
func (r *JSONRelease) Version() string { return r.version }

// Calls returns the number of operations served.
func (r *JSONRelease) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Injected returns how many responses of each kind were injected — the
// ground truth the test harness compares the monitor against.
func (r *JSONRelease) Injected() map[relmodel.OutcomeKind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[relmodel.OutcomeKind]int, len(r.injected))
	for k, v := range r.injected {
		out[k] = v
	}
	return out
}

// draw samples the outcome kind and latency for one demand.
func (r *JSONRelease) draw() (relmodel.OutcomeKind, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	kind := r.profile.Sample(r.rng)
	r.injected[kind]++
	var delay time.Duration
	if r.plan.MeanLatency > 0 {
		delay = time.Duration(r.rng.Exp(float64(r.plan.MeanLatency)))
	}
	return kind, delay
}

// Handler returns the HTTP handler for this release: one JSON endpoint
// per operation at "/<operation>", and a liveness probe at "/healthz".
func (r *JSONRelease) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", r.serve)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set(VersionHeader, r.version)
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

func (r *JSONRelease) serve(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(w, nil, &jsonError{Message: "json endpoint: POST only", status: http.StatusMethodNotAllowed})
		return
	}
	op := strings.Trim(req.URL.Path, "/")
	b, ok := r.behaviours[op]
	if !ok {
		r.writeError(w, nil, jsonClientError(fmt.Sprintf("unknown operation %q", op)))
		return
	}
	body, err := httpx.ReadBounded(req.Body, maxJSONRequestBytes)
	if err != nil {
		r.writeError(w, nil, jsonClientError(fmt.Sprintf("reading request: %v", err)))
		return
	}

	kind, delay := r.draw()
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return
		case <-time.After(delay):
		}
	}
	hdr := w.Header()
	hdr.Set(VersionHeader, r.version)
	hdr.Set(oracle.InjectionHeader, kind.String())

	var resp interface{}
	switch kind {
	case relmodel.EvidentFailure:
		r.writeError(w, hdr, &jsonError{Message: fmt.Sprintf(
			"injected evident failure in %s (release %s)", op, r.version)})
		return
	case relmodel.NonEvidentFailure:
		if b.Faulty != nil {
			resp, err = b.Faulty(req.Context(), body)
		} else {
			resp, err = b.Handler(req.Context(), body)
			if err == nil {
				resp, err = corruptJSON(resp)
			}
		}
	default:
		resp, err = b.Handler(req.Context(), body)
	}
	if err != nil {
		je, ok := err.(*jsonError)
		if !ok {
			je = &jsonError{Message: err.Error()}
		}
		r.writeError(w, hdr, je)
		return
	}
	out, err := json.Marshal(resp)
	if err != nil {
		r.writeError(w, hdr, &jsonError{Message: fmt.Sprintf("encoding response: %v", err)})
		return
	}
	hdr.Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}

// writeError renders the {"error":{...}} body. hdr is passed when the
// marker headers were already set on it (nil otherwise).
func (r *JSONRelease) writeError(w http.ResponseWriter, hdr http.Header, je *jsonError) {
	if hdr == nil {
		hdr = w.Header()
		hdr.Set(VersionHeader, r.version)
	}
	hdr.Set("Content-Type", "application/json")
	status := je.status
	if status == 0 {
		status = http.StatusInternalServerError
	}
	w.WriteHeader(status)
	body, err := json.Marshal(struct {
		Error *jsonError `json:"error"`
	}{je})
	if err != nil {
		body = []byte(fmt.Sprintf(`{"error":{"message":%q}}`, je.Message))
	}
	_, _ = w.Write(body)
}

// corruptJSON turns a correct response into a detectably wrong one by
// adding a marker key to the response object.
func corruptJSON(resp interface{}) (interface{}, error) {
	raw, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	var obj map[string]interface{}
	if err := json.Unmarshal(raw, &obj); err != nil {
		// Non-object responses corrupt by wrapping.
		return map[string]interface{}{"corrupted": "injected non-evident failure", "value": json.RawMessage(raw)}, nil
	}
	obj["corrupted"] = "injected non-evident failure"
	return obj, nil
}

// ---------------------------------------------------------------------------
// Demo service over JSON

// AddJSONRequest is the demo add request body.
type AddJSONRequest struct {
	A int `json:"a"`
	B int `json:"b"`
}

// AddJSONResponse carries the sum.
type AddJSONResponse struct {
	Sum int `json:"sum"`
}

// Operation1JSONRequest is the §6.2 example request body.
type Operation1JSONRequest struct {
	Param1 int    `json:"param1"`
	Param2 string `json:"param2"`
}

// Operation1JSONResponse is the §6.2 example response body.
type Operation1JSONResponse struct {
	Op1Result string `json:"Op1Result"`
}

// DemoJSONBehaviours returns the demo operations' REST/JSON
// implementations — the same logical operations and failure modes as
// DemoBehaviours, so cross-protocol tests can drive identical demands
// through both gateways.
func DemoJSONBehaviours() map[string]JSONBehaviour {
	return map[string]JSONBehaviour{
		"operation1": {
			Handler: func(ctx context.Context, body []byte) (interface{}, error) {
				var in Operation1JSONRequest
				if err := json.Unmarshal(body, &in); err != nil {
					return nil, jsonClientError(err.Error())
				}
				return Operation1JSONResponse{Op1Result: fmt.Sprintf("%s/%d", in.Param2, in.Param1*2)}, nil
			},
			Faulty: func(ctx context.Context, body []byte) (interface{}, error) {
				var in Operation1JSONRequest
				if err := json.Unmarshal(body, &in); err != nil {
					return nil, jsonClientError(err.Error())
				}
				// The same off-by-one as the SOAP demo's faulty variant.
				return Operation1JSONResponse{Op1Result: fmt.Sprintf("%s/%d", in.Param2, in.Param1*2+1)}, nil
			},
		},
		"add": {
			Handler: func(ctx context.Context, body []byte) (interface{}, error) {
				var in AddJSONRequest
				if err := json.Unmarshal(body, &in); err != nil {
					return nil, jsonClientError(err.Error())
				}
				return AddJSONResponse{Sum: in.A + in.B}, nil
			},
			Faulty: func(ctx context.Context, body []byte) (interface{}, error) {
				var in AddJSONRequest
				if err := json.Unmarshal(body, &in); err != nil {
					return nil, jsonClientError(err.Error())
				}
				return AddJSONResponse{Sum: in.A + in.B + 1}, nil
			},
		},
	}
}
