// Package service is the Web Service runtime: it hosts one *release* of a
// service — a WSDL contract plus operation handlers — over the SOAP/HTTP
// stack, with an injectable fault and latency model.
//
// The fault model follows the paper's taxonomy (§2.1, §5.2.1): on each
// demand the release responds correctly (CR), raises an evident failure
// (ER — a SOAP fault), or returns a plausible but wrong response (NER —
// produced by the operation's Faulty handler, the application-level
// failure only diversity can detect). Injection is deterministic given
// the seed, and every response carries a ground-truth marker header that
// only the test harness's oracle reads.
//
// Releases built with this package stand in for the paper's real
// third-party services: same interface, controllable dependability.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
	"wsupgrade/internal/xrand"
)

// VersionHeader is the response header carrying the release version, the
// §3.2 requirement that releases be distinguishable.
const VersionHeader = "X-Wsupgrade-Release"

// ErrBadService reports an invalid service definition.
var ErrBadService = errors.New("service: bad definition")

// Behaviour is one operation's implementation.
type Behaviour struct {
	// Handler is the correct implementation.
	Handler soap.HandlerFunc
	// Faulty optionally produces the operation's non-evident failure
	// mode: a plausible wrong answer. When nil, injected NER demands are
	// served by corrupting the correct response with a marker element —
	// detectable by comparison, like any other content error.
	Faulty soap.HandlerFunc
}

// FaultPlan is the release's injected dependability profile.
type FaultPlan struct {
	// Profile gives the CR/ER/NER probabilities per demand. The zero
	// value means always correct.
	Profile relmodel.Profile
	// MeanLatency adds exponentially distributed artificial latency.
	MeanLatency time.Duration
	// Seed drives the injection stream.
	Seed uint64
}

// normalized returns the profile, defaulting the zero value to
// always-correct.
func (p FaultPlan) normalized() (relmodel.Profile, error) {
	if p.Profile == (relmodel.Profile{}) {
		return relmodel.Profile{CR: 1}, nil
	}
	if err := p.Profile.Validate(); err != nil {
		return relmodel.Profile{}, err
	}
	return p.Profile, nil
}

// Release hosts one release of a Web Service. Construct with New; serve
// via Handler.
type Release struct {
	contract wsdl.Contract
	plan     FaultPlan
	profile  relmodel.Profile
	soapSrv  *soap.Server

	mu       sync.Mutex
	rng      *xrand.Rand
	injected map[relmodel.OutcomeKind]int
	calls    int
}

// New builds a release runtime from a contract and its behaviours,
// keyed by operation name.
func New(contract wsdl.Contract, behaviours map[string]Behaviour, plan FaultPlan) (*Release, error) {
	if err := contract.Validate(); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	profile, err := plan.normalized()
	if err != nil {
		return nil, fmt.Errorf("service: fault plan: %w", err)
	}
	r := &Release{
		contract: contract,
		plan:     plan,
		profile:  profile,
		soapSrv:  soap.NewServer(),
		rng:      xrand.New(plan.Seed),
		injected: make(map[relmodel.OutcomeKind]int),
	}
	for _, op := range contract.Operations {
		b, ok := behaviours[op.Name]
		if !ok || b.Handler == nil {
			return nil, fmt.Errorf("%w: operation %q has no handler", ErrBadService, op.Name)
		}
		r.soapSrv.Handle(op.RequestElement(), r.instrument(op.Name, b))
	}
	return r, nil
}

// Contract returns the hosted contract.
func (r *Release) Contract() wsdl.Contract { return r.contract }

// Version returns the release version string.
func (r *Release) Version() string { return r.contract.Version }

// Calls returns the number of operations served.
func (r *Release) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Injected returns how many responses of each kind were injected — the
// ground truth the test harness compares the monitor against.
func (r *Release) Injected() map[relmodel.OutcomeKind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[relmodel.OutcomeKind]int, len(r.injected))
	for k, v := range r.injected {
		out[k] = v
	}
	return out
}

// draw samples the outcome kind and latency for one demand.
func (r *Release) draw() (relmodel.OutcomeKind, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	kind := r.profile.Sample(r.rng)
	r.injected[kind]++
	var delay time.Duration
	if r.plan.MeanLatency > 0 {
		delay = time.Duration(r.rng.Exp(float64(r.plan.MeanLatency)))
	}
	return kind, delay
}

// instrument wraps a behaviour with fault and latency injection.
func (r *Release) instrument(opName string, b Behaviour) soap.HandlerFunc {
	return func(ctx context.Context, req *soap.Request) (interface{}, error) {
		kind, delay := r.draw()
		if delay > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
		}
		req.ResponseHeader.Set(VersionHeader, r.contract.Version)
		req.ResponseHeader.Set(oracle.InjectionHeader, kind.String())
		switch kind {
		case relmodel.EvidentFailure:
			return nil, soap.ServerFault(fmt.Sprintf("injected evident failure in %s (release %s)",
				opName, r.contract.Version))
		case relmodel.NonEvidentFailure:
			if b.Faulty != nil {
				return b.Faulty(ctx, req)
			}
			resp, err := b.Handler(ctx, req)
			if err != nil {
				return nil, err
			}
			return corrupt(resp)
		default:
			return b.Handler(ctx, req)
		}
	}
}

// corrupt turns a correct response into a detectably wrong one by
// appending a marker element inside the response element.
func corrupt(resp interface{}) (interface{}, error) {
	var body []byte
	var err error
	if raw, ok := resp.(soap.Raw); ok {
		body = raw
	} else {
		body, err = marshalValue(resp)
		if err != nil {
			return nil, err
		}
	}
	out, err := soap.InjectElement(body, []byte("<corrupted>injected non-evident failure</corrupted>"))
	if err != nil {
		return nil, fmt.Errorf("service: corrupting response: %w", err)
	}
	return soap.Raw(out), nil
}

func marshalValue(v interface{}) ([]byte, error) {
	env, err := soap.Envelope(v)
	if err != nil {
		return nil, err
	}
	parsed, err := soap.Parse(env)
	if err != nil {
		return nil, err
	}
	return parsed.BodyXML, nil
}

// Handler returns the HTTP handler for this release: the SOAP endpoint at
// "/", the WSDL document at "/wsdl" (bound to the requesting host), and a
// liveness probe at "/healthz" (the management subsystem polls it when
// recovering failed releases).
func (r *Release) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", r.soapSrv)
	mux.HandleFunc("/wsdl", func(w http.ResponseWriter, req *http.Request) {
		location := "http://" + req.Host + "/"
		def, err := wsdl.Generate(r.contract, location)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		data, err := def.Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set(VersionHeader, r.contract.Version)
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}
