package bayes

import (
	"math"
	"testing"
	"testing/quick"

	"wsupgrade/internal/stats"
	"wsupgrade/internal/xrand"
)

func scenario1Priors() (a, b stats.ScaledBeta) {
	return stats.ScaledBeta{Alpha: 20, Beta: 20, Upper: 0.002},
		stats.ScaledBeta{Alpha: 2, Beta: 3, Upper: 0.002}
}

func smallWhiteBox(t testing.TB) *WhiteBox {
	t.Helper()
	pa, pb := scenario1Priors()
	w, err := NewWhiteBox(WhiteBoxConfig{PriorA: pa, PriorB: pb, GridA: 40, GridB: 40, GridC: 16, GridAB: 64})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOutcomeMapping(t *testing.T) {
	cases := []struct {
		a, b bool
		want JointOutcome
	}{
		{true, true, BothFail},
		{true, false, AOnlyFails},
		{false, true, BOnlyFails},
		{false, false, NeitherFails},
	}
	for _, c := range cases {
		if got := Outcome(c.a, c.b); got != c.want {
			t.Errorf("Outcome(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJointCountsAccounting(t *testing.T) {
	var c JointCounts
	seq := []JointOutcome{BothFail, AOnlyFails, BOnlyFails, NeitherFails, NeitherFails, BothFail}
	for _, o := range seq {
		c.Add(o)
	}
	if c.N != 6 || c.Both != 2 || c.AOnly != 1 || c.BOnly != 1 || c.Neither() != 2 {
		t.Fatalf("counts = %+v (neither %d)", c, c.Neither())
	}
	if c.AFailures() != 3 || c.BFailures() != 3 {
		t.Fatalf("per-release failures = %d/%d, want 3/3", c.AFailures(), c.BFailures())
	}
	if !c.Valid() {
		t.Fatal("consistent counts reported invalid")
	}
	bad := JointCounts{N: 1, Both: 2}
	if bad.Valid() {
		t.Fatal("inconsistent counts reported valid")
	}
}

func TestJointOutcomeString(t *testing.T) {
	for o, want := range map[JointOutcome]string{
		BothFail:        "both-fail",
		AOnlyFails:      "a-only-fails",
		BOnlyFails:      "b-only-fails",
		NeitherFails:    "neither-fails",
		JointOutcome(9): "JointOutcome(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(o), got, want)
		}
	}
}

func TestPerfectDetectorIdentity(t *testing.T) {
	d := PerfectDetector{}
	if err := quick.Check(func(a, b bool) bool {
		ra, rb := d.Detect(a, b)
		return ra == a && rb == b
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOmissionDetectorRates(t *testing.T) {
	rng := xrand.New(5)
	d, err := NewOmissionDetector(0.15, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	missedA := 0
	for i := 0; i < n; i++ {
		ra, rb := d.Detect(true, false)
		if rb {
			t.Fatal("omission detector invented a failure")
		}
		if !ra {
			missedA++
		}
	}
	rate := float64(missedA) / n
	if math.Abs(rate-0.15) > 0.01 {
		t.Fatalf("omission rate = %v, want ~0.15", rate)
	}
	// Successes are never turned into failures.
	ra, rb := d.Detect(false, false)
	if ra || rb {
		t.Fatal("omission detector flagged a success as failure")
	}
}

func TestOmissionDetectorValidation(t *testing.T) {
	if _, err := NewOmissionDetector(-0.1, xrand.New(1)); err == nil {
		t.Fatal("negative pomit accepted")
	}
	if _, err := NewOmissionDetector(1.5, xrand.New(1)); err == nil {
		t.Fatal("pomit > 1 accepted")
	}
	if _, err := NewOmissionDetector(0.5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestBackToBackDetector(t *testing.T) {
	d := BackToBackDetector{}
	// Coincident failures recorded as joint success (pessimistic model).
	ra, rb := d.Detect(true, true)
	if ra || rb {
		t.Fatal("coincident failure not masked")
	}
	// Discordant demands recorded truthfully.
	ra, rb = d.Detect(true, false)
	if !ra || rb {
		t.Fatal("discordant demand distorted")
	}
	ra, rb = d.Detect(false, true)
	if ra || !rb {
		t.Fatal("discordant demand distorted")
	}
	ra, rb = d.Detect(false, false)
	if ra || rb {
		t.Fatal("joint success distorted")
	}
}

func TestBlackBoxPosteriorSharpensWithEvidence(t *testing.T) {
	prior, _ := scenario1Priors()
	bb, err := NewBlackBox(prior, 400)
	if err != nil {
		t.Fatal(err)
	}
	// With no data the posterior equals the prior.
	post0, err := bb.Posterior(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := post0.Mean(), prior.Mean(); math.Abs(got-want) > 1e-5 {
		t.Fatalf("posterior(0,0) mean %v, want prior mean %v", got, want)
	}
	// Failure-free operation shifts mass down.
	postClean, err := bb.Posterior(20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if postClean.Mean() >= post0.Mean() {
		t.Fatalf("failure-free evidence did not reduce pfd estimate: %v >= %v",
			postClean.Mean(), post0.Mean())
	}
	// Heavy failures shift mass up.
	postDirty, err := bb.Posterior(20000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if postDirty.Mean() <= post0.Mean() {
		t.Fatalf("failure evidence did not raise pfd estimate: %v <= %v",
			postDirty.Mean(), post0.Mean())
	}
}

func TestBlackBoxPosteriorConcentratesAtTruth(t *testing.T) {
	prior := stats.ScaledBeta{Alpha: 2, Beta: 3, Upper: 0.01}
	bb, err := NewBlackBox(prior, 500)
	if err != nil {
		t.Fatal(err)
	}
	const truth = 2e-3
	post, err := bb.Posterior(200000, int(200000*truth))
	if err != nil {
		t.Fatal(err)
	}
	if got := post.Mean(); math.Abs(got-truth) > 2e-4 {
		t.Fatalf("posterior mean %v far from truth %v", got, truth)
	}
	lo := post.Quantile(0.005)
	hi := post.Quantile(0.995)
	if truth < lo || truth > hi {
		t.Fatalf("99%% credible interval [%v, %v] excludes truth %v", lo, hi, truth)
	}
}

func TestBlackBoxValidation(t *testing.T) {
	prior, _ := scenario1Priors()
	if _, err := NewBlackBox(stats.ScaledBeta{}, 100); err == nil {
		t.Fatal("invalid prior accepted")
	}
	if _, err := NewBlackBox(prior, 1); err == nil {
		t.Fatal("grid of 1 accepted")
	}
	bb, err := NewBlackBox(prior, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ n, r int }{{-1, 0}, {0, -1}, {3, 4}} {
		if _, err := bb.Posterior(c.n, c.r); err == nil {
			t.Errorf("Posterior(%d,%d) accepted", c.n, c.r)
		}
	}
}

func TestWhiteBoxConfigValidation(t *testing.T) {
	pa, pb := scenario1Priors()
	if _, err := NewWhiteBox(WhiteBoxConfig{PriorA: stats.ScaledBeta{}, PriorB: pb}); err == nil {
		t.Fatal("invalid prior A accepted")
	}
	if _, err := NewWhiteBox(WhiteBoxConfig{PriorA: pa, PriorB: stats.ScaledBeta{}}); err == nil {
		t.Fatal("invalid prior B accepted")
	}
	if _, err := NewWhiteBox(WhiteBoxConfig{
		PriorA: stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.6},
		PriorB: stats.ScaledBeta{Alpha: 1, Beta: 1, Upper: 0.6},
	}); err == nil {
		t.Fatal("supports summing above 1 accepted")
	}
	if _, err := NewWhiteBox(WhiteBoxConfig{PriorA: pa, PriorB: pb, GridA: 1}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestWhiteBoxPriorMatchesMarginals(t *testing.T) {
	w := smallWhiteBox(t)
	post, err := w.Posterior(JointCounts{})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := scenario1Priors()
	// With no observations the marginal posterior of P_A is the prior.
	if got, want := post.A.Mean(), pa.Mean(); math.Abs(got-want) > 1e-5 {
		t.Fatalf("prior-marginal A mean = %v, want %v", got, want)
	}
	if got, want := post.B.Mean(), pb.Mean(); math.Abs(got-want) > 1e-5 {
		t.Fatalf("prior-marginal B mean = %v, want %v", got, want)
	}
	// The indifference prior puts E[P_AB | P_A, P_B] = min(P_A,P_B)/2,
	// so the prior mean of P_AB must be below both marginal means.
	if ab := post.AB.Mean(); ab <= 0 || ab >= math.Min(post.A.Mean(), post.B.Mean()) {
		t.Fatalf("prior P_AB mean %v outside (0, min(A,B))", ab)
	}
}

func TestWhiteBoxMarginalsNormalized(t *testing.T) {
	w := smallWhiteBox(t)
	for _, c := range []JointCounts{
		{},
		{N: 1000, Both: 1, AOnly: 2, BOnly: 1},
		{N: 50000, Both: 15, AOnly: 35, BOnly: 25},
	} {
		post, err := w.Posterior(c)
		if err != nil {
			t.Fatal(err)
		}
		for name, g := range map[string]*stats.Grid1D{"A": post.A, "B": post.B, "AB": post.AB} {
			sum := 0.0
			for _, v := range g.Ws {
				if v < 0 {
					t.Fatalf("%s marginal has negative mass", name)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s marginal mass = %v for %+v", name, sum, c)
			}
		}
	}
}

func TestWhiteBoxRejectsBadCounts(t *testing.T) {
	w := smallWhiteBox(t)
	if _, err := w.Posterior(JointCounts{N: 1, Both: 5}); err == nil {
		t.Fatal("inconsistent counts accepted")
	}
}

func TestWhiteBoxEvidenceMovesMarginals(t *testing.T) {
	w := smallWhiteBox(t)
	clean, err := w.Posterior(JointCounts{N: 30000})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := w.Posterior(JointCounts{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.B.Mean() >= prior.B.Mean() {
		t.Fatal("failure-free demands did not improve confidence in B")
	}
	// Observing B-only failures must push B's pfd estimate above A's shift.
	bBad, err := w.Posterior(JointCounts{N: 30000, BOnly: 60})
	if err != nil {
		t.Fatal(err)
	}
	if bBad.B.Mean() <= clean.B.Mean() {
		t.Fatal("B failures did not raise B's pfd estimate")
	}
	if bBad.A.Mean() >= bBad.B.Mean() {
		t.Fatalf("A mean %v should stay below B mean %v when only B fails",
			bBad.A.Mean(), bBad.B.Mean())
	}
}

func TestWhiteBoxCoincidentFailuresRaisePAB(t *testing.T) {
	w := smallWhiteBox(t)
	separate, err := w.Posterior(JointCounts{N: 20000, AOnly: 20, BOnly: 16})
	if err != nil {
		t.Fatal(err)
	}
	coincident, err := w.Posterior(JointCounts{N: 20000, Both: 16, AOnly: 4})
	if err != nil {
		t.Fatal(err)
	}
	if coincident.AB.Mean() <= separate.AB.Mean() {
		t.Fatalf("coincident evidence P_AB mean %v not above separate-failure %v",
			coincident.AB.Mean(), separate.AB.Mean())
	}
}

func TestWhiteBoxConfidenceMonotoneInTarget(t *testing.T) {
	w := smallWhiteBox(t)
	post, err := w.Posterior(JointCounts{N: 10000, Both: 2, AOnly: 6, BOnly: 4})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for target := 0.0; target <= 0.002; target += 0.0001 {
		c := post.ConfidenceB(target)
		if c < prev-1e-12 {
			t.Fatalf("ConfidenceB not monotone at %v", target)
		}
		if c < 0 || c > 1+1e-12 {
			t.Fatalf("ConfidenceB out of range: %v", c)
		}
		prev = c
	}
	if got := post.ConfidenceB(0.002); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ConfidenceB at support end = %v, want 1", got)
	}
}

func TestWhiteBoxPercentileInvertsConfidence(t *testing.T) {
	w := smallWhiteBox(t)
	post, err := w.Posterior(JointCounts{N: 25000, Both: 5, AOnly: 20, BOnly: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, conf := range []float64{0.5, 0.9, 0.99} {
		tq := post.PercentileB(conf)
		if got := post.ConfidenceB(tq); got < conf {
			t.Fatalf("ConfidenceB(PercentileB(%v)) = %v < %v", conf, got, conf)
		}
	}
	// Percentiles are monotone in the confidence level.
	if post.PercentileB(0.5) > post.PercentileB(0.99) {
		t.Fatal("percentiles not monotone")
	}
	// Same for A.
	if post.PercentileA(0.5) > post.PercentileA(0.99) {
		t.Fatal("A percentiles not monotone")
	}
	if got := post.ConfidenceA(post.PercentileA(0.9)); got < 0.9 {
		t.Fatalf("A percentile/confidence inversion broken: %v", got)
	}
	_ = post.ConfidenceAB(post.AB.Quantile(0.9))
}

// The inference must recover ground truth: with many observations drawn
// from known (P_A, P_B), the posterior credible intervals cover the truth.
func TestWhiteBoxRecoversGroundTruth(t *testing.T) {
	pa := stats.ScaledBeta{Alpha: 2, Beta: 2, Upper: 0.004}
	pb := stats.ScaledBeta{Alpha: 2, Beta: 2, Upper: 0.004}
	w, err := NewWhiteBox(WhiteBoxConfig{PriorA: pa, PriorB: pb, GridA: 60, GridB: 60, GridC: 20, GridAB: 100})
	if err != nil {
		t.Fatal(err)
	}
	const (
		truthA  = 2.0e-3
		truthB  = 1.0e-3
		demands = 400000
	)
	rng := xrand.New(77)
	var c JointCounts
	for i := 0; i < demands; i++ {
		aF := rng.Bool(truthA)
		bF := rng.Bool(truthB) // independent failures
		c.Add(Outcome(aF, bF))
	}
	post, err := w.Posterior(c)
	if err != nil {
		t.Fatal(err)
	}
	if loA, hiA := post.A.Quantile(0.005), post.A.Quantile(0.995); truthA < loA || truthA > hiA {
		t.Fatalf("A interval [%v,%v] excludes truth %v", loA, hiA, truthA)
	}
	if loB, hiB := post.B.Quantile(0.005), post.B.Quantile(0.995); truthB < loB || truthB > hiB {
		t.Fatalf("B interval [%v,%v] excludes truth %v", loB, hiB, truthB)
	}
	if math.Abs(post.A.Mean()-truthA) > 3e-4 {
		t.Fatalf("A mean %v far from truth %v", post.A.Mean(), truthA)
	}
	if math.Abs(post.B.Mean()-truthB) > 3e-4 {
		t.Fatalf("B mean %v far from truth %v", post.B.Mean(), truthB)
	}
}

func TestCriterion1DerivesPriorTarget(t *testing.T) {
	pa, _ := scenario1Priors()
	c1, err := NewCriterion1(pa, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pa.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c1.Target-want) > 1e-12 {
		t.Fatalf("criterion 1 target %v, want prior percentile %v", c1.Target, want)
	}
	if c1.Name() != "criterion-1" {
		t.Fatalf("name = %q", c1.Name())
	}
	if _, err := NewCriterion1(pa, 0); err == nil {
		t.Fatal("confidence 0 accepted")
	}
	if _, err := NewCriterion1(pa, 1); err == nil {
		t.Fatal("confidence 1 accepted")
	}
}

func TestCriteriaSemantics(t *testing.T) {
	w := smallWhiteBox(t)
	pa, _ := scenario1Priors()

	// A clean run should eventually satisfy all three criteria.
	clean, err := w.Posterior(JointCounts{N: 40000})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewCriterion1(pa, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	c2 := Criterion2{Confidence: 0.99, Target: 1e-3}
	c3 := Criterion3{Confidence: 0.99}
	for _, cr := range []Criterion{c1, c2, c3} {
		if !cr.Satisfied(clean) {
			t.Errorf("%s unsatisfied after 40k clean demands", cr.Name())
		}
	}

	// A run where B fails constantly must satisfy none.
	dirty, err := w.Posterior(JointCounts{N: 40000, BOnly: 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range []Criterion{c1, c2, c3} {
		if cr.Satisfied(dirty) {
			t.Errorf("%s satisfied although B fails at 2e-3", cr.Name())
		}
	}

	if c2.Name() != "criterion-2" || c3.Name() != "criterion-3" {
		t.Fatal("criterion names wrong")
	}
}

// Criterion 3 compares the evolving percentiles: when A turns out worse
// than its prior and B never fails, C3 must trigger quickly.
func TestCriterion3TracksRelativeQuality(t *testing.T) {
	pa := stats.ScaledBeta{Alpha: 1, Beta: 10, Upper: 0.01}
	pb := stats.ScaledBeta{Alpha: 2, Beta: 3, Upper: 0.01}
	w, err := NewWhiteBox(WhiteBoxConfig{PriorA: pa, PriorB: pb, GridA: 50, GridB: 50, GridC: 16, GridAB: 64})
	if err != nil {
		t.Fatal(err)
	}
	c3 := Criterion3{Confidence: 0.99}
	// A fails a lot, B never: 25 A-only failures in 5000 demands.
	post, err := w.Posterior(JointCounts{N: 5000, AOnly: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !c3.Satisfied(post) {
		t.Fatalf("criterion 3 unsatisfied: TB99=%v TA99=%v",
			post.PercentileB(0.99), post.PercentileA(0.99))
	}
}

func BenchmarkWhiteBoxPosterior(b *testing.B) {
	pa, pb := scenario1Priors()
	w, err := NewWhiteBox(WhiteBoxConfig{PriorA: pa, PriorB: pb})
	if err != nil {
		b.Fatal(err)
	}
	c := JointCounts{N: 50000, Both: 15, AOnly: 35, BOnly: 25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Posterior(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlackBoxPosterior(b *testing.B) {
	prior, _ := scenario1Priors()
	bb, err := NewBlackBox(prior, 400)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.Posterior(50000, 50); err != nil {
			b.Fatal(err)
		}
	}
}
