// Package bayes implements the paper's confidence machinery (§5.1):
// Bayesian inference of the probability of failure on demand (pfd) of Web
// Service releases.
//
// Two inference models are provided.
//
// Black box (Fig 6): a single service observed as success/failure per
// demand. The prior over the pfd is a Beta distribution scaled onto
// [0, Upper]; the likelihood is binomial. The posterior is computed on a
// one-dimensional grid (the scaled Beta prior is not conjugate with the
// truncated-support binomial, so a numeric posterior keeps the model
// faithful to the paper rather than forcing conjugacy).
//
// White box (Table 1, eq. 2-5): two releases A (old) and B (new) run
// side by side; each demand yields one of four joint outcomes
// (both fail / A only / B only / neither). The prior is a trivariate
// distribution over (P_A, P_B, P_AB): independent scaled-Beta marginals
// for P_A and P_B, and the paper's "indifference" prior
// P_AB | P_A, P_B ~ Uniform[0, min(P_A, P_B)]. The likelihood is
// multinomial with cell probabilities
//
//	p11 = P_AB, p10 = P_A − P_AB, p01 = P_B − P_AB, p00 = 1 − P_A − P_B + P_AB.
//
// The posterior is evaluated on a three-dimensional grid; marginal
// posteriors for P_A, P_B and P_AB are exposed as discrete distributions
// from which confidences P(P ≤ T) and percentiles are read (eq. 6).
//
// The package also provides the three switch criteria of §5.1.1.2 and the
// imperfect-detection regimes of §5.1.1.3 (omission oracles and
// back-to-back testing).
package bayes

import (
	"errors"
	"fmt"
	"math"

	"wsupgrade/internal/stats"
	"wsupgrade/internal/xrand"
)

// ErrBadConfig reports an invalid inference configuration.
var ErrBadConfig = errors.New("bayes: bad configuration")

// JointOutcome is one of the four per-demand events of Table 1.
type JointOutcome int

// Joint outcomes, in the paper's α, β, γ, δ order.
const (
	// BothFail (α): both releases fail on the demand. Probability p11.
	BothFail JointOutcome = iota + 1
	// AOnlyFails (β): the old release fails, the new succeeds. p10.
	AOnlyFails
	// BOnlyFails (γ): the new release fails, the old succeeds. p01.
	BOnlyFails
	// NeitherFails (δ): both releases succeed. p00.
	NeitherFails
)

// String implements fmt.Stringer.
func (o JointOutcome) String() string {
	switch o {
	case BothFail:
		return "both-fail"
	case AOnlyFails:
		return "a-only-fails"
	case BOnlyFails:
		return "b-only-fails"
	case NeitherFails:
		return "neither-fails"
	default:
		return fmt.Sprintf("JointOutcome(%d)", int(o))
	}
}

// Outcome maps the pair of per-release failure indicators to the joint
// outcome they represent.
func Outcome(aFailed, bFailed bool) JointOutcome {
	switch {
	case aFailed && bFailed:
		return BothFail
	case aFailed:
		return AOnlyFails
	case bFailed:
		return BOnlyFails
	default:
		return NeitherFails
	}
}

// JointCounts accumulates the observed joint outcomes (r1, r2, r3 and the
// total N of Table 1; r4 is derived). The zero value is an empty record.
type JointCounts struct {
	N     int // demands observed
	Both  int // r1: both releases failed
	AOnly int // r2: only the old release failed
	BOnly int // r3: only the new release failed
}

// Add records one joint outcome.
func (c *JointCounts) Add(o JointOutcome) {
	c.N++
	switch o {
	case BothFail:
		c.Both++
	case AOnlyFails:
		c.AOnly++
	case BOnlyFails:
		c.BOnly++
	case NeitherFails:
		// counted via N only
	default:
		panic(fmt.Sprintf("bayes: JointCounts.Add(%d): unknown outcome", int(o)))
	}
}

// Merge folds another record into c field-wise. Lock-striped observation
// stores (the sharded monitor) accumulate partial records per shard and
// merge them on the read side, so the inference always sees a record
// equivalent to a single sequential accumulator.
func (c *JointCounts) Merge(o JointCounts) {
	c.N += o.N
	c.Both += o.Both
	c.AOnly += o.AOnly
	c.BOnly += o.BOnly
}

// Neither returns r4 = N − r1 − r2 − r3.
func (c JointCounts) Neither() int { return c.N - c.Both - c.AOnly - c.BOnly }

// JointSource is the read-side contract between an observation store and
// the confidence machinery: a pooled Table 1 record and its restriction
// to a single operation (§6.2). The monitoring subsystem implements it;
// inference consumers should depend on this interface rather than on a
// concrete store, so the store's internal layout (single-lock, sharded,
// remote) can change freely.
type JointSource interface {
	// Joint returns the accumulated pairwise observation record.
	Joint() JointCounts
	// JointFor returns the record restricted to one operation.
	JointFor(operation string) JointCounts
}

// AFailures returns the recorded failures of the old release (r1 + r2).
func (c JointCounts) AFailures() int { return c.Both + c.AOnly }

// BFailures returns the recorded failures of the new release (r1 + r3).
func (c JointCounts) BFailures() int { return c.Both + c.BOnly }

// Valid reports whether the counts are internally consistent.
func (c JointCounts) Valid() bool {
	return c.N >= 0 && c.Both >= 0 && c.AOnly >= 0 && c.BOnly >= 0 && c.Neither() >= 0
}

// ---------------------------------------------------------------------------
// Detection regimes (§5.1.1.3)

// Detector transforms the true per-demand failure indicators of the two
// releases into the indicators actually recorded by the monitoring
// subsystem. Imperfect detectors bias the inference; the paper studies
// omission failures and pessimistic back-to-back testing.
type Detector interface {
	// Detect maps true failure indicators to recorded ones.
	Detect(aFailed, bFailed bool) (recordedA, recordedB bool)
	// Name identifies the regime in reports.
	Name() string
}

// PerfectDetector records failures exactly as they occur.
type PerfectDetector struct{}

var _ Detector = PerfectDetector{}

// Detect implements Detector.
func (PerfectDetector) Detect(aFailed, bFailed bool) (bool, bool) { return aFailed, bFailed }

// Name implements Detector.
func (PerfectDetector) Name() string { return "perfect" }

// OmissionDetector models imperfect per-release oracles: each true failure
// is independently missed (recorded as success) with probability Pomit.
// Missed failures make the observations optimistic.
type OmissionDetector struct {
	Pomit float64
	rng   *xrand.Rand
}

var _ Detector = (*OmissionDetector)(nil)

// NewOmissionDetector returns a detector that misses each failure with
// probability pomit, drawing from the given stream.
func NewOmissionDetector(pomit float64, rng *xrand.Rand) (*OmissionDetector, error) {
	if pomit < 0 || pomit > 1 || math.IsNaN(pomit) {
		return nil, fmt.Errorf("%w: omission probability %v", ErrBadConfig, pomit)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadConfig)
	}
	return &OmissionDetector{Pomit: pomit, rng: rng}, nil
}

// Detect implements Detector.
func (d *OmissionDetector) Detect(aFailed, bFailed bool) (bool, bool) {
	if aFailed && d.rng.Bool(d.Pomit) {
		aFailed = false
	}
	if bFailed && d.rng.Bool(d.Pomit) {
		bFailed = false
	}
	return aFailed, bFailed
}

// Name implements Detector.
func (d *OmissionDetector) Name() string { return fmt.Sprintf("omission(p=%.2f)", d.Pomit) }

// BackToBackDetector models detection purely by comparing the two
// releases' responses, under the paper's pessimistic assumption that all
// coincident failures are identical and non-evident: a demand on which
// both releases fail is recorded as a joint success ('11' → '00').
// Discordant demands are recorded truthfully.
type BackToBackDetector struct{}

var _ Detector = BackToBackDetector{}

// Detect implements Detector.
func (BackToBackDetector) Detect(aFailed, bFailed bool) (bool, bool) {
	if aFailed && bFailed {
		return false, false
	}
	return aFailed, bFailed
}

// Name implements Detector.
func (BackToBackDetector) Name() string { return "back-to-back" }

// ---------------------------------------------------------------------------
// Black-box inference

// BlackBox infers the pfd of a single service from (n, r) success/failure
// observations under a scaled-Beta prior, on a one-dimensional grid.
type BlackBox struct {
	prior stats.ScaledBeta
	xs    []float64 // support midpoints
	logPr []float64 // log prior weight per point
}

// NewBlackBox builds a black-box inference engine with the given prior and
// grid resolution (number of support points; 400 is a good default).
func NewBlackBox(prior stats.ScaledBeta, grid int) (*BlackBox, error) {
	if err := prior.Validate(); err != nil {
		return nil, fmt.Errorf("bayes: black-box prior: %w", err)
	}
	if grid < 2 {
		return nil, fmt.Errorf("%w: black-box grid %d", ErrBadConfig, grid)
	}
	b := &BlackBox{
		prior: prior,
		xs:    make([]float64, grid),
		logPr: make([]float64, grid),
	}
	h := prior.Upper / float64(grid)
	for i := 0; i < grid; i++ {
		x := (float64(i) + 0.5) * h
		b.xs[i] = x
		b.logPr[i] = prior.LogPDF(x) // + log h, constant, cancels in normalization
	}
	return b, nil
}

// Prior returns the prior distribution the engine was built with.
func (b *BlackBox) Prior() stats.ScaledBeta { return b.prior }

// Posterior returns the posterior pfd distribution after observing r
// failures in n demands.
func (b *BlackBox) Posterior(n, r int) (*stats.Grid1D, error) {
	if n < 0 || r < 0 || r > n {
		return nil, fmt.Errorf("%w: black-box observation n=%d r=%d", ErrBadConfig, n, r)
	}
	g := &stats.Grid1D{
		Xs: append([]float64(nil), b.xs...),
		Ws: make([]float64, len(b.xs)),
	}
	logs := make([]float64, len(b.xs))
	maxL := math.Inf(-1)
	for i, x := range b.xs {
		ll := b.logPr[i] + float64(r)*math.Log(x) + float64(n-r)*math.Log(1-x)
		logs[i] = ll
		if ll > maxL {
			maxL = ll
		}
	}
	for i, ll := range logs {
		g.Ws[i] = math.Exp(ll - maxL)
	}
	if err := g.Normalize(); err != nil {
		return nil, fmt.Errorf("bayes: black-box posterior: %w", err)
	}
	return g, nil
}

// ---------------------------------------------------------------------------
// White-box inference

// WhiteBoxConfig parameterizes the trivariate inference engine.
type WhiteBoxConfig struct {
	// PriorA is the prior pfd distribution of the old release.
	PriorA stats.ScaledBeta
	// PriorB is the prior pfd distribution of the new release.
	PriorB stats.ScaledBeta
	// GridA, GridB are the marginal grid resolutions (default 100).
	GridA, GridB int
	// GridC is the resolution of the conditional P_AB grid (default 40).
	GridC int
	// GridAB is the bin count of the reported P_AB marginal (default 200).
	GridAB int
}

func (c *WhiteBoxConfig) applyDefaults() {
	if c.GridA == 0 {
		c.GridA = 100
	}
	if c.GridB == 0 {
		c.GridB = 100
	}
	if c.GridC == 0 {
		c.GridC = 40
	}
	if c.GridAB == 0 {
		c.GridAB = 200
	}
}

// WhiteBox is the trivariate inference engine. The expensive parts of the
// model — the prior weights and the per-cell log outcome probabilities —
// are precomputed once at construction; each Posterior call then costs one
// fused pass over the grid, so the engine can be queried at every
// monitoring checkpoint.
//
// A WhiteBox is immutable after construction and safe for concurrent use.
type WhiteBox struct {
	cfg WhiteBoxConfig

	paXs, pbXs []float64 // marginal support midpoints

	// Flattened cell arrays of size GridA*GridB*GridC, indexed
	// (i*GridB + j)*GridC + k.
	logPrior           []float64
	l11, l10, l01, l00 []float64
	pabVals            []float64 // P_AB value at each cell
}

// NewWhiteBox precomputes the inference grids.
func NewWhiteBox(cfg WhiteBoxConfig) (*WhiteBox, error) {
	cfg.applyDefaults()
	if err := cfg.PriorA.Validate(); err != nil {
		return nil, fmt.Errorf("bayes: white-box prior A: %w", err)
	}
	if err := cfg.PriorB.Validate(); err != nil {
		return nil, fmt.Errorf("bayes: white-box prior B: %w", err)
	}
	if cfg.GridA < 2 || cfg.GridB < 2 || cfg.GridC < 1 || cfg.GridAB < 2 {
		return nil, fmt.Errorf("%w: white-box grid %d×%d×%d (marginal %d)",
			ErrBadConfig, cfg.GridA, cfg.GridB, cfg.GridC, cfg.GridAB)
	}
	if cfg.PriorA.Upper+cfg.PriorB.Upper >= 1 {
		return nil, fmt.Errorf("%w: pfd supports sum to %v ≥ 1",
			ErrBadConfig, cfg.PriorA.Upper+cfg.PriorB.Upper)
	}

	w := &WhiteBox{cfg: cfg}
	w.paXs = midpoints(cfg.PriorA.Upper, cfg.GridA)
	w.pbXs = midpoints(cfg.PriorB.Upper, cfg.GridB)

	cells := cfg.GridA * cfg.GridB * cfg.GridC
	w.logPrior = make([]float64, cells)
	w.l11 = make([]float64, cells)
	w.l10 = make([]float64, cells)
	w.l01 = make([]float64, cells)
	w.l00 = make([]float64, cells)
	w.pabVals = make([]float64, cells)

	logPrA := make([]float64, cfg.GridA)
	for i, pa := range w.paXs {
		logPrA[i] = cfg.PriorA.LogPDF(pa)
	}
	logPrB := make([]float64, cfg.GridB)
	for j, pb := range w.pbXs {
		logPrB[j] = cfg.PriorB.LogPDF(pb)
	}

	idx := 0
	for i, pa := range w.paXs {
		for j, pb := range w.pbXs {
			m := math.Min(pa, pb)
			// P_AB | P_A, P_B ~ Uniform[0, m]: each conditional grid
			// point carries weight 1/GridC; the 1/m density and the m/GridC
			// cell width cancel, so the conditional weight is uniform and
			// constant, and drops out of the normalization entirely.
			lp := logPrA[i] + logPrB[j]
			for k := 0; k < cfg.GridC; k++ {
				pab := m * (float64(k) + 0.5) / float64(cfg.GridC)
				w.pabVals[idx] = pab
				w.logPrior[idx] = lp
				w.l11[idx] = math.Log(pab)
				w.l10[idx] = math.Log(pa - pab)
				w.l01[idx] = math.Log(pb - pab)
				w.l00[idx] = math.Log1p(-(pa + pb - pab))
				idx++
			}
		}
	}
	return w, nil
}

// Config returns the configuration the engine was built with.
func (w *WhiteBox) Config() WhiteBoxConfig { return w.cfg }

func midpoints(upper float64, n int) []float64 {
	xs := make([]float64, n)
	h := upper / float64(n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) * h
	}
	return xs
}

// Posterior computes the joint posterior for the given observation and
// returns its marginals. The call is read-only on the engine and may be
// made concurrently.
func (w *WhiteBox) Posterior(c JointCounts) (*Posterior, error) {
	if !c.Valid() {
		return nil, fmt.Errorf("%w: inconsistent counts %+v", ErrBadConfig, c)
	}
	r1 := float64(c.Both)
	r2 := float64(c.AOnly)
	r3 := float64(c.BOnly)
	r4 := float64(c.Neither())

	cells := len(w.logPrior)
	logs := make([]float64, cells)
	maxL := math.Inf(-1)
	for idx := 0; idx < cells; idx++ {
		ll := w.logPrior[idx] + r1*w.l11[idx] + r2*w.l10[idx] + r3*w.l01[idx] + r4*w.l00[idx]
		logs[idx] = ll
		if ll > maxL {
			maxL = ll
		}
	}
	if math.IsInf(maxL, -1) {
		return nil, fmt.Errorf("%w: posterior has no mass (all cells -Inf)", ErrBadConfig)
	}

	nA, nB, nC := w.cfg.GridA, w.cfg.GridB, w.cfg.GridC
	wsA := make([]float64, nA)
	wsB := make([]float64, nB)
	abUpper := math.Min(w.cfg.PriorA.Upper, w.cfg.PriorB.Upper)
	nAB := w.cfg.GridAB
	wsAB := make([]float64, nAB)
	var total stats.KahanSum

	idx := 0
	for i := 0; i < nA; i++ {
		for j := 0; j < nB; j++ {
			for k := 0; k < nC; k++ {
				p := math.Exp(logs[idx] - maxL)
				if p > 0 {
					wsA[i] += p
					wsB[j] += p
					bin := int(float64(nAB) * w.pabVals[idx] / abUpper)
					if bin >= nAB {
						bin = nAB - 1
					}
					wsAB[bin] += p
					total.Add(p)
				}
				idx++
			}
		}
	}
	t := total.Sum()
	if t <= 0 || math.IsInf(t, 0) || math.IsNaN(t) {
		return nil, fmt.Errorf("%w: posterior mass %v", ErrBadConfig, t)
	}
	for i := range wsA {
		wsA[i] /= t
	}
	for j := range wsB {
		wsB[j] /= t
	}
	for b := range wsAB {
		wsAB[b] /= t
	}

	post := &Posterior{
		Counts: c,
		A:      &stats.Grid1D{Xs: append([]float64(nil), w.paXs...), Ws: wsA},
		B:      &stats.Grid1D{Xs: append([]float64(nil), w.pbXs...), Ws: wsB},
		AB:     &stats.Grid1D{Xs: midpoints(abUpper, nAB), Ws: wsAB},
	}
	return post, nil
}

// Posterior carries the marginal posterior distributions of the white-box
// model after an observation.
type Posterior struct {
	// Counts is the observation the posterior conditions on.
	Counts JointCounts
	// A is the marginal posterior of P_A (old release pfd).
	A *stats.Grid1D
	// B is the marginal posterior of P_B (new release pfd).
	B *stats.Grid1D
	// AB is the (binned) marginal posterior of P_AB (coincident failure).
	AB *stats.Grid1D
}

// ConfidenceA returns P(P_A ≤ target | observations), eq. 6.
func (p *Posterior) ConfidenceA(target float64) float64 { return p.A.CDF(target) }

// ConfidenceB returns P(P_B ≤ target | observations).
func (p *Posterior) ConfidenceB(target float64) float64 { return p.B.CDF(target) }

// ConfidenceAB returns P(P_AB ≤ target | observations).
func (p *Posterior) ConfidenceAB(target float64) float64 { return p.AB.CDF(target) }

// PercentileA returns T_A^conf: the smallest t with P(P_A ≤ t) ≥ conf.
func (p *Posterior) PercentileA(conf float64) float64 { return p.A.Quantile(conf) }

// PercentileB returns T_B^conf.
func (p *Posterior) PercentileB(conf float64) float64 { return p.B.Quantile(conf) }

// ---------------------------------------------------------------------------
// Switch criteria (§5.1.1.2)

// Criterion decides, from the current posterior, whether the managed
// upgrade may switch the composite service to the new release.
type Criterion interface {
	// Satisfied reports whether the switch condition holds.
	Satisfied(p *Posterior) bool
	// Name identifies the criterion in reports.
	Name() string
}

// Criterion1 switches when the new release reaches the dependability level
// the old release offered at deployment time: if the prior gave
// P(P_A ≤ X) = conf, the upgrade lasts until P(P_B ≤ X) ≥ conf.
type Criterion1 struct {
	Confidence float64
	// Target is X: the prior conf-percentile of the old release.
	Target float64
}

var _ Criterion = Criterion1{}

// NewCriterion1 derives the target X from the old release's prior at the
// given confidence level.
func NewCriterion1(priorA stats.ScaledBeta, confidence float64) (Criterion1, error) {
	if confidence <= 0 || confidence >= 1 {
		return Criterion1{}, fmt.Errorf("%w: criterion 1 confidence %v", ErrBadConfig, confidence)
	}
	x, err := priorA.Quantile(confidence)
	if err != nil {
		return Criterion1{}, fmt.Errorf("bayes: criterion 1 target: %w", err)
	}
	return Criterion1{Confidence: confidence, Target: x}, nil
}

// Satisfied implements Criterion.
func (c Criterion1) Satisfied(p *Posterior) bool {
	return p.ConfidenceB(c.Target) >= c.Confidence
}

// Name implements Criterion.
func (c Criterion1) Name() string { return "criterion-1" }

// Criterion2 switches when the new release reaches a predefined
// dependability target with a predefined confidence, e.g.
// P(P_B ≤ 10⁻³) ≥ 99%. The old release is irrelevant.
type Criterion2 struct {
	Confidence float64
	Target     float64
}

var _ Criterion = Criterion2{}

// Satisfied implements Criterion.
func (c Criterion2) Satisfied(p *Posterior) bool {
	return p.ConfidenceB(c.Target) >= c.Confidence
}

// Name implements Criterion.
func (c Criterion2) Name() string { return "criterion-2" }

// Criterion3 switches when, at the given confidence, the new release is no
// worse than the old: T_B^conf ≤ T_A^conf on the evolving posteriors.
type Criterion3 struct {
	Confidence float64
}

var _ Criterion = Criterion3{}

// Satisfied implements Criterion.
func (c Criterion3) Satisfied(p *Posterior) bool {
	return p.PercentileB(c.Confidence) <= p.PercentileA(c.Confidence)
}

// Name implements Criterion.
func (c Criterion3) Name() string { return "criterion-3" }
