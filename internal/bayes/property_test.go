package bayes

import (
	"math"
	"testing"
	"testing/quick"

	"wsupgrade/internal/xrand"
)

// Property: for any consistent observation record, the posterior
// marginals are proper distributions and the confidences behave like
// CDFs.
func TestPosteriorIsProperDistributionProperty(t *testing.T) {
	w := smallWhiteBox(t)
	cfg := &quick.Config{MaxCount: 25, Rand: nil}
	f := func(n uint16, both, aOnly, bOnly uint8) bool {
		c := JointCounts{
			N:     int(n) + int(both) + int(aOnly) + int(bOnly),
			Both:  int(both),
			AOnly: int(aOnly),
			BOnly: int(bOnly),
		}
		post, err := w.Posterior(c)
		if err != nil {
			return false
		}
		for _, g := range []interface{ CDF(float64) float64 }{post.A, post.B, post.AB} {
			if g.CDF(1) < 1-1e-9 {
				return false
			}
			if g.CDF(-1) != 0 {
				return false
			}
		}
		// Percentile/confidence inversion.
		for _, conf := range []float64{0.5, 0.9, 0.99} {
			if post.ConfidenceB(post.PercentileB(conf)) < conf-1e-9 {
				return false
			}
			if post.ConfidenceA(post.PercentileA(conf)) < conf-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: extra failures of the new release can only reduce the
// confidence that it meets a fixed target.
func TestMoreBFailuresLowerConfidenceProperty(t *testing.T) {
	w := smallWhiteBox(t)
	const n = 30000
	const target = 1e-3
	prev := math.Inf(1)
	for bOnly := 0; bOnly <= 60; bOnly += 10 {
		post, err := w.Posterior(JointCounts{N: n, BOnly: bOnly})
		if err != nil {
			t.Fatal(err)
		}
		conf := post.ConfidenceB(target)
		if conf > prev+1e-9 {
			t.Fatalf("confidence rose with more failures: %v -> %v at bOnly=%d", prev, conf, bOnly)
		}
		prev = conf
	}
}

// Property: more failure-free demands can only increase the confidence.
func TestMoreCleanDemandsRaiseConfidenceProperty(t *testing.T) {
	w := smallWhiteBox(t)
	const target = 1e-3
	prev := -1.0
	for n := 0; n <= 50000; n += 10000 {
		post, err := w.Posterior(JointCounts{N: n})
		if err != nil {
			t.Fatal(err)
		}
		conf := post.ConfidenceB(target)
		if conf < prev-1e-9 {
			t.Fatalf("confidence fell with more clean demands: %v -> %v at n=%d", prev, conf, n)
		}
		prev = conf
	}
}

// Property: detectors never invent failures, and the omission detector
// only ever removes them.
func TestDetectorSafetyProperty(t *testing.T) {
	rng := xrand.New(99)
	om, err := NewOmissionDetector(0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	dets := []Detector{PerfectDetector{}, om, BackToBackDetector{}}
	f := func(a, b bool) bool {
		for _, d := range dets {
			ra, rb := d.Detect(a, b)
			if ra && !a {
				return false // invented a failure of A
			}
			if rb && !b {
				return false // invented a failure of B
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the joint counts stay consistent under any outcome sequence.
func TestJointCountsConsistencyProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		var c JointCounts
		for _, v := range seq {
			c.Add(JointOutcome(int(v%4) + 1))
		}
		return c.Valid() &&
			c.AFailures() <= c.N && c.BFailures() <= c.N &&
			c.Neither()+c.Both+c.AOnly+c.BOnly == c.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The white-box marginal for A must agree with a black-box inference on
// the same prior when the demands are plentiful and B never fails —
// the coupling through P_AB vanishes in the small-pfd limit.
func TestWhiteBoxMatchesBlackBoxInLimit(t *testing.T) {
	pa, pb := scenario1Priors()
	w, err := NewWhiteBox(WhiteBoxConfig{PriorA: pa, PriorB: pb, GridA: 100, GridB: 40, GridC: 16, GridAB: 64})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := NewBlackBox(pa, 100)
	if err != nil {
		t.Fatal(err)
	}
	const n, aFails = 40000, 45
	wPost, err := w.Posterior(JointCounts{N: n, AOnly: aFails})
	if err != nil {
		t.Fatal(err)
	}
	bPost, err := bb.Posterior(n, aFails)
	if err != nil {
		t.Fatal(err)
	}
	wMean := wPost.A.Mean()
	bMean := bPost.Mean()
	if math.Abs(wMean-bMean)/bMean > 0.05 {
		t.Fatalf("white-box A mean %v deviates from black-box %v", wMean, bMean)
	}
	w99 := wPost.PercentileA(0.99)
	b99 := bPost.Quantile(0.99)
	if math.Abs(w99-b99)/b99 > 0.05 {
		t.Fatalf("white-box A p99 %v deviates from black-box %v", w99, b99)
	}
}
