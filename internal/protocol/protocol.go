// Package protocol is the codec seam between the mediator and the wire
// formats it fronts. The paper's middleware (§3–4) is defined over
// *demands* — request/reply pairs fanned out to releases, judged and
// counted — and nothing in dispatch, adjudication, lifecycle or
// monitoring actually depends on SOAP; this package names the small
// per-unit contract they do depend on, so one upgrade unit can mediate
// a 2004-era WS-* service while its neighbour fronts a REST/JSON one.
//
// A Codec answers exactly the questions the request pipeline asks:
//
//   - classify an inbound demand — which operation is being invoked,
//     extracted zero-copy from the envelope (SOAP sniffer) or the URL
//     path (JSON router);
//   - classify a release's reply — payload bytes, a protocol fault
//     (an *evident* failure that still carried a response, §5.2.1), or
//     a transport-level error;
//   - compare two reply payloads canonically, the oracle primitive for
//     non-evident failure detection (§5.1.1.3);
//   - render errors and the winning payload back to the consumer, and
//     name the wire content type.
//
// Implementations live in the subpackages protocol/soapcodec (a thin
// adapter over internal/soap, bit-for-bit the mediator's historical
// behaviour) and protocol/jsoncodec (the REST/JSON gateway). The
// package itself imports nothing above the standard library, so every
// layer of the mediator can consume it without cycles.
package protocol

import (
	"errors"
	"fmt"
	"io"
	"net/http"
)

// HeaderItem is one protocol-level response header entry, kept as raw
// bytes in the codec's native header encoding (SOAP: a header element's
// XML; JSON: unused). soap.HeaderItem aliases this type, so items flow
// across the seam without conversion.
type HeaderItem []byte

// Request is one classified inbound demand.
type Request struct {
	// Op is the invoked operation name — the monitoring and routing
	// key. For SOAP it is the first body element's local name with the
	// conventional "Request" suffix trimmed; for JSON it is the URL
	// path's single segment. Op may alias the inbound envelope or URL:
	// it is valid for the life of the request only.
	Op string
	// Element is the wire-level operation element name as written
	// (SOAP: the untrimmed first body element; JSON: same as Op). The
	// §6.2 confidence-operation routing matches on it.
	Element string
}

// Codec is the per-unit protocol contract. Implementations must be
// stateless values (or internally synchronized): one codec instance
// serves every request of its unit concurrently. Methods on the demand
// hot path (DecodeRequest, DecodeReply, Equal, WriteBody, TargetURL,
// Accepts) must not allocate in steady state.
type Codec interface {
	// Name identifies the codec ("soap", "json") in configuration and
	// diagnostics.
	Name() string
	// ContentType is the response Content-Type value.
	ContentType() string
	// Accepts reports whether an inbound Content-Type is compatible
	// with this codec. Unknown and absent types are accepted
	// conservatively (the body decides); only a clearly contradicting
	// type — a JSON media type on a SOAP unit, an XML one on a JSON
	// unit — is rejected, with HTTP 415 at the gateway.
	Accepts(contentType string) bool
	// DecodeRequest classifies one inbound demand from the request path
	// and body. The returned Request may alias both. Errors are
	// consumer-side and render through WriteError.
	DecodeRequest(path string, body []byte) (Request, error)
	// DecodeReply classifies one release reply. On success, payload is
	// the reply body to adjudicate and aliases reports whether it
	// aliases the caller's body buffer (true: the buffer must outlive
	// the payload; false: the caller may release the buffer
	// immediately — payload, if non-nil, is an independent copy). On
	// failure, err is either a protocol fault (IsFault(err), an evident
	// failure that still counts as a response) or a classification
	// error the dispatcher wraps with release context.
	DecodeReply(status int, body []byte) (payload []byte, aliases bool, err error)
	// Equal reports whether two reply payloads are canonically
	// equivalent — formatting-insensitive by the codec's own rules
	// (SOAP: XML canonicalization; JSON: key order, whitespace and
	// number-form insensitive). Payloads the codec cannot parse compare
	// by raw bytes, which are already unequal when Equal is asked.
	Equal(a, b []byte) bool
	// WriteBody writes the winning payload in the codec's response
	// framing (SOAP: re-enveloped with optional header items; JSON:
	// verbatim). Headers the codec has no representation for are
	// ignored.
	WriteBody(w io.Writer, body []byte, headers ...HeaderItem) (int, error)
	// WriteError renders err as the codec's error body with the
	// appropriate status code. A fault native to the codec renders as
	// itself; a *Error maps to the codec's client/server error shape;
	// anything else renders as a server-side error.
	WriteError(w http.ResponseWriter, operation string, err error)
	// WriteRejection renders a gateway-level rejection (405, 415) that
	// precedes protocol processing.
	WriteRejection(w http.ResponseWriter, status int, msg string)
	// TargetURL resolves the release-call URL for one operation (SOAP:
	// the endpoint as deployed; JSON: endpoint/operation, interned so
	// the hot path does not rebuild the string per demand).
	TargetURL(base, operation string) string
}

// Error is a protocol-agnostic demand-processing error. Codecs render
// it in their native error shape; Client selects the consumer-side
// variant (SOAP soap:Client, JSON HTTP 400).
type Error struct {
	// Client marks a consumer-side error.
	Client bool
	// Msg is the error text.
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return e.Msg }

// ClientError builds a consumer-side protocol error.
func ClientError(msg string) *Error { return &Error{Client: true, Msg: msg} }

// ServerError builds a mediator/provider-side protocol error.
func ServerError(msg string) *Error { return &Error{Msg: msg} }

// Fault marks a codec's native fault errors: evident failures that
// still carried a protocol-level response (a SOAP fault envelope, a
// JSON error body), as opposed to timeouts and transport errors from
// which nothing was collected. The distinction drives the paper's
// availability accounting (§5.2.1): a faulting release responded.
type Fault interface {
	error
	// ProtocolFault is the marker method; it carries no behaviour.
	ProtocolFault()
}

// IsFault reports whether err is (or wraps) a codec fault.
func IsFault(err error) bool {
	var f Fault
	return errors.As(err, &f)
}

// StatusError is a release reply with an HTTP status the codec cannot
// classify. Its text matches the historical dispatch classification
// ("HTTP 503"), which release-context wrapping turns into
// "dispatch: release 1.0: HTTP 503".
type StatusError int

// Error implements error.
func (s StatusError) Error() string { return fmt.Sprintf("HTTP %d", int(s)) }

// ConfOps is the optional §6.2 confidence-publishing extension: the
// dedicated OperationConf operation, "<op>Conf" variants, and the
// per-response confidence header. Only codecs whose wire format has a
// place for these implement it (SOAP); the engine falls back to plain
// HTTP headers for the rest.
type ConfOps interface {
	// ConfQueryElement is the wire element name that selects the
	// dedicated confidence-query operation.
	ConfQueryElement() string
	// DecodeConfQuery extracts the queried operation name from a
	// confidence-query request body.
	DecodeConfQuery(body []byte) (operation string, err error)
	// EncodeConfResponse renders the confidence-query response as a
	// complete response body.
	EncodeConfResponse(confidence float64) ([]byte, error)
	// RewriteConfVariant rewrites an "<op>Conf" variant request body
	// into the underlying operation's request envelope.
	RewriteConfVariant(body []byte, baseOp string) ([]byte, error)
	// ExtendConfVariant extends the winning payload of the underlying
	// operation with the confidence element and renames it to the
	// variant's response shape.
	ExtendConfVariant(winnerBody []byte, baseOp string, confidence float64) ([]byte, error)
	// ConfidenceHeader renders the per-response confidence header item.
	ConfidenceHeader(operation string, value float64) HeaderItem
}

// ContainsFold reports whether s contains substr ASCII
// case-insensitively — the content-type contradiction test, run per
// request before the body is read.
//
//wsu:noalloc
func ContainsFold(s, substr string) bool {
	if len(substr) == 0 {
		return true
	}
	for i := 0; i+len(substr) <= len(s); i++ {
		if equalFoldAt(s, i, substr) {
			return true
		}
	}
	return false
}

//wsu:noalloc
func equalFoldAt(s string, off int, substr string) bool {
	for j := 0; j < len(substr); j++ {
		a, b := s[off+j], substr[j]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}
