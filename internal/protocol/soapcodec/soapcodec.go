// Package soapcodec adapts internal/soap to the protocol.Codec seam.
// It is a thin veneer over the existing zero-copy sniffer, pooled
// envelope writer and XML canonicalizer: every byte the mediator puts
// on the wire through this codec is identical to what the pre-seam
// SOAP-only pipeline produced.
package soapcodec

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"wsupgrade/internal/protocol"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
)

// Codec is the SOAP 1.1 protocol codec. The zero value is ready to use.
type Codec struct{}

// Default is the pre-boxed shared instance; using it avoids re-boxing
// the zero-size struct at every configuration site.
var Default protocol.Codec = Codec{}

// contentTypeHeader is the shared Content-Type header value slice;
// response writers must not mutate it.
var contentTypeHeader = []string{soap.ContentType}

// Name implements protocol.Codec.
func (Codec) Name() string { return "soap" }

// ContentType implements protocol.Codec.
func (Codec) ContentType() string { return soap.ContentType }

// Accepts implements protocol.Codec: only a clearly JSON media type
// contradicts a SOAP unit. text/xml, application/soap+xml, absent and
// unknown types all pass — the envelope itself is the authority.
//
//wsu:noalloc
func (Codec) Accepts(contentType string) bool {
	return !protocol.ContainsFold(contentType, "json")
}

// DecodeRequest implements protocol.Codec. The hot path is the
// zero-copy sniff (which validates the whole structural tag tree); the
// full DOM parse runs only for unusual or malformed envelopes, exactly
// as core.ServeHTTP historically did.
func (Codec) DecodeRequest(path string, body []byte) (protocol.Request, error) {
	opElement, sniffed := soap.SniffOperation(body)
	if !sniffed {
		parsed, err := soap.Parse(body)
		if err != nil {
			return protocol.Request{}, protocol.ClientError(err.Error())
		}
		opElement = parsed.Operation.Local
	}
	return protocol.Request{
		Op:      strings.TrimSuffix(opElement, "Request"),
		Element: opElement,
	}, nil
}

// DecodeReply implements protocol.Codec, reproducing the dispatcher's
// historical reply classification byte for byte:
//
//   - 200 with a sniffable envelope: the inner body XML, aliasing the
//     response buffer (zero copy);
//   - 200 needing a DOM parse: the parsed body (an independent copy);
//   - 500 carrying a SOAP fault: the fault itself (an evident failure
//     that still counts as a response — protocol.IsFault);
//   - anything else: a StatusError the dispatcher wraps with release
//     context ("dispatch: release 1.0: HTTP 503").
func (Codec) DecodeReply(status int, body []byte) (payload []byte, aliases bool, err error) {
	switch status {
	case http.StatusOK:
		if inner, _, ok := soap.SniffBody(body); ok {
			return inner, true, nil
		}
		parsed, perr := soap.Parse(body)
		if perr != nil {
			return nil, false, perr
		}
		return parsed.BodyXML, false, nil
	case http.StatusInternalServerError:
		parsed, perr := soap.Parse(body)
		if perr == nil && parsed.Fault != nil {
			return nil, false, parsed.Fault
		}
		return nil, false, protocol.StatusError(status)
	default:
		return nil, false, protocol.StatusError(status)
	}
}

// Equal implements protocol.Codec via XML canonicalization
// (bytes.Equal fast path; the canonicalizing slow path runs only for
// textually unequal payloads).
func (Codec) Equal(a, b []byte) bool { return soap.EqualCanonical(a, b) }

// WriteBody implements protocol.Codec: the winning inner body XML is
// re-enveloped around the optional header items.
func (Codec) WriteBody(w io.Writer, body []byte, headers ...protocol.HeaderItem) (int, error) {
	return soap.WriteEnvelopeRaw(w, body, headers...)
}

// WriteError implements protocol.Codec. A *soap.Fault renders as
// itself; a *protocol.Error maps to soap:Client/soap:Server; anything
// else becomes a soap:Server fault carrying the error text. The frame
// (Content-Type, HTTP 500, fault envelope) matches the engine's
// historical writeFault exactly.
func (Codec) WriteError(w http.ResponseWriter, operation string, err error) {
	var f *soap.Fault
	if !errors.As(err, &f) {
		var pe *protocol.Error
		if errors.As(err, &pe) && pe.Client {
			f = soap.ClientFault(pe.Msg)
		} else {
			f = soap.ServerFault(err.Error())
		}
	}
	w.Header()["Content-Type"] = contentTypeHeader
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(soap.FaultEnvelope(f))
}

// WriteRejection implements protocol.Codec. Gateway-level rejections
// (405, 415) precede SOAP processing and render as plain text, exactly
// as the pre-seam engine's method check did.
func (Codec) WriteRejection(w http.ResponseWriter, status int, msg string) {
	http.Error(w, msg, status)
}

// TargetURL implements protocol.Codec: SOAP releases expose one
// endpoint and route on the envelope, so the base URL is the target.
//
//wsu:noalloc
func (Codec) TargetURL(base, operation string) string { return base }

// ---------------------------------------------------------------------------
// §6.2 confidence publishing (protocol.ConfOps)

// confQueryElement is the wire element selecting the dedicated
// confidence-query operation, precomputed once.
var confQueryElement = wsdl.ConfOperationName + "Request"

// operationConfRequest is §6.2 option 2's request payload.
type operationConfRequest struct {
	Operation string `xml:"operation"`
}

type operationConfResponse struct {
	XMLName    struct{} `xml:"OperationConfResponse"`
	Confidence float64  `xml:"confidence"`
}

// ConfQueryElement implements protocol.ConfOps.
func (Codec) ConfQueryElement() string { return confQueryElement }

// DecodeConfQuery implements protocol.ConfOps.
func (Codec) DecodeConfQuery(body []byte) (string, error) {
	parsed, err := soap.Parse(body)
	if err != nil {
		return "", protocol.ClientError(err.Error())
	}
	var req operationConfRequest
	if err := parsed.DecodeBody(&req); err != nil {
		return "", protocol.ClientError(err.Error())
	}
	return req.Operation, nil
}

// EncodeConfResponse implements protocol.ConfOps.
func (Codec) EncodeConfResponse(confidence float64) ([]byte, error) {
	return soap.Envelope(operationConfResponse{Confidence: confidence})
}

// RewriteConfVariant implements protocol.ConfOps: the "<op>Conf"
// variant's body is renamed to the underlying operation's request
// element and re-enveloped for the managed dispatch path.
func (Codec) RewriteConfVariant(body []byte, baseOp string) ([]byte, error) {
	parsed, err := soap.Parse(body)
	if err != nil {
		return nil, protocol.ClientError(err.Error())
	}
	renamed, err := soap.RenameRoot(parsed.BodyXML, baseOp+"Request")
	if err != nil {
		return nil, protocol.ClientError(err.Error())
	}
	return soap.EnvelopeRaw(renamed), nil
}

// ExtendConfVariant implements protocol.ConfOps: the winner's body
// gains the "<op>Conf" confidence element and the variant response
// root name.
func (Codec) ExtendConfVariant(winnerBody []byte, baseOp string, confidence float64) ([]byte, error) {
	extended, err := soap.InjectElement(winnerBody,
		[]byte(fmt.Sprintf("<%sConf>%.6f</%sConf>", baseOp, confidence, baseOp)))
	if err != nil {
		return nil, err
	}
	return soap.RenameRoot(extended, baseOp+"ConfResponse")
}

// ConfidenceHeader implements protocol.ConfOps: the per-response
// confidence SOAP header element (§6.2 option 1).
func (Codec) ConfidenceHeader(operation string, value float64) protocol.HeaderItem {
	return protocol.HeaderItem(fmt.Sprintf(
		`<conf:Confidence xmlns:conf=%q operation=%q value="%.6f"/>`,
		wsdl.UpgradeNS, operation, value))
}
