package jsoncodec

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"wsupgrade/internal/protocol"
)

// referenceEqual is the specification Equal must agree with on
// parsable inputs: a full encoding/json round trip into interface
// values compared structurally.
func referenceEqual(a, b []byte) (equal, parsable bool) {
	var va, vb any
	if json.Unmarshal(a, &va) != nil || json.Unmarshal(b, &vb) != nil {
		return false, false
	}
	return reflect.DeepEqual(va, vb), true
}

// equivalenceCorpus is the shared canonical-JSON corpus: key
// reordering, whitespace, number forms, unicode escapes, nested
// arrays/objects — plus pairs that must stay distinguishable.
var equivalenceCorpus = []struct {
	name  string
	a, b  string
	equal bool
}{
	{"identical", `{"sum":3}`, `{"sum":3}`, true},
	{"key-reorder", `{"a":1,"b":2}`, `{"b":2,"a":1}`, true},
	{"nested-key-reorder",
		`{"outer":{"x":1,"y":[{"p":1,"q":2}]}}`,
		`{"outer":{"y":[{"q":2,"p":1}],"x":1}}`, true},
	{"whitespace", `{"a": 1,  "b": [1, 2, 3]}`, `{"a":1,"b":[1,2,3]}`, true},
	{"newlines-and-tabs", "{\n\t\"a\": 1\n}", `{"a":1}`, true},
	{"number-int-vs-decimal", `{"n":1}`, `{"n":1.0}`, true},
	{"number-exponent", `{"n":1}`, `{"n":1e0}`, true},
	{"number-exponent-decimal", `{"n":100}`, `{"n":1.0e2}`, true},
	{"number-negative-forms", `{"n":-0.5}`, `{"n":-5e-1}`, true},
	{"unicode-escape", `{"s":"\u0041BC"}`, `{"s":"ABC"}`, true},
	{"unicode-escape-nonascii", `{"s":"\u00e9"}`, `{"s":"é"}`, true},
	{"escaped-solidus", `{"s":"a\/b"}`, `{"s":"a/b"}`, true},
	{"nested-arrays", `[[1, 2], [3, [4]]]`, `[[1,2],[3,[4]]]`, true},
	{"top-level-scalar", `  1e3 `, `1000`, true},
	{"null-vs-missing", `{"a":null}`, `{}`, false},
	{"different-values", `{"n":1}`, `{"n":2}`, false},
	{"array-order-matters", `[1,2]`, `[2,1]`, false},
	{"string-vs-number", `{"n":"1"}`, `{"n":1}`, false},
	{"case-sensitive-keys", `{"A":1}`, `{"a":1}`, false},
	{"extra-key", `{"a":1}`, `{"a":1,"b":1}`, false},
	{"bool-vs-string", `{"ok":true}`, `{"ok":"true"}`, false},
}

func TestEqualAgreesWithReference(t *testing.T) {
	var c Codec
	for _, tc := range equivalenceCorpus {
		t.Run(tc.name, func(t *testing.T) {
			a, b := []byte(tc.a), []byte(tc.b)
			refEq, parsable := referenceEqual(a, b)
			if !parsable {
				t.Fatalf("corpus entry %q is not parsable JSON", tc.name)
			}
			if refEq != tc.equal {
				t.Fatalf("corpus entry %q: reference says %v, corpus says %v",
					tc.name, refEq, tc.equal)
			}
			if got := c.Equal(a, b); got != tc.equal {
				t.Errorf("Equal(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.equal)
			}
			if got := c.Equal(b, a); got != tc.equal {
				t.Errorf("Equal(%q, %q) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.equal)
			}
		})
	}
}

// TestEqualMalformedFallsBack mirrors the SOAP sniffer's conservatism:
// payloads that do not parse compare by raw bytes only.
func TestEqualMalformedFallsBack(t *testing.T) {
	var c Codec
	malformed := []string{`{"a":`, `{broken}`, ``, `{"a":1}trailing`}
	for _, m := range malformed {
		if !c.Equal([]byte(m), []byte(m)) {
			t.Errorf("identical malformed payload %q must compare equal (byte fast path)", m)
		}
		if c.Equal([]byte(m), []byte(`{"a":1}`)) {
			t.Errorf("malformed %q must not compare equal to valid JSON", m)
		}
		if c.Equal([]byte(m), []byte(m+" ")) {
			t.Errorf("textually distinct malformed payloads %q must stay unequal", m)
		}
	}
}

func TestRouteOperation(t *testing.T) {
	cases := []struct {
		path, want string
	}{
		{"/add", "add"},
		{"add", "add"},
		{"/add/", "add"},
		{"//add//", "add"},
		{"/", ""},
		{"", ""},
		{"/a/b", ""},
		{"/operation1", "operation1"},
	}
	for _, tc := range cases {
		if got := routeOperation(tc.path); got != tc.want {
			t.Errorf("routeOperation(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestDecodeRequest(t *testing.T) {
	var c Codec
	req, err := c.DecodeRequest("/add", []byte(`{"a":1,"b":2}`))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if req.Op != "add" || req.Element != "add" {
		t.Fatalf("DecodeRequest = %+v", req)
	}

	if _, err := c.DecodeRequest("/a/b", []byte(`{}`)); err == nil {
		t.Error("nested path must be rejected")
	}
	_, err = c.DecodeRequest("/add", []byte(`{"a":`))
	if err == nil {
		t.Fatal("malformed body must be rejected")
	}
	var pe *protocol.Error
	if !errors.As(err, &pe) || !pe.Client {
		t.Errorf("malformed body error must be a client protocol.Error, got %v", err)
	}
}

func TestDecodeReplyClassification(t *testing.T) {
	var c Codec

	payload, aliases, err := c.DecodeReply(200, []byte(`{"sum":3}`))
	if err != nil || !aliases || string(payload) != `{"sum":3}` {
		t.Fatalf("200 valid: payload=%q aliases=%v err=%v", payload, aliases, err)
	}

	if _, _, err := c.DecodeReply(200, []byte(`not json`)); err == nil {
		t.Fatal("200 invalid JSON must classify as error")
	} else if protocol.IsFault(err) {
		t.Fatal("invalid 200 body is not a protocol fault")
	}

	_, _, err = c.DecodeReply(500, []byte(`{"error":{"message":"boom","operation":"add"}}`))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("500 error body must yield *Fault, got %v", err)
	}
	if !protocol.IsFault(err) {
		t.Error("*Fault must satisfy protocol.IsFault")
	}
	if f.Message != "boom" || f.Operation != "add" || f.Status != 500 {
		t.Errorf("fault = %+v", f)
	}

	_, _, err = c.DecodeReply(500, []byte(`plain crash text`))
	if se, ok := err.(protocol.StatusError); !ok || se.Error() != "HTTP 500" {
		t.Errorf("unclassifiable 500 must be StatusError, got %v", err)
	}
	_, _, err = c.DecodeReply(503, []byte(`{"error":{"message":"x"}}`))
	if se, ok := err.(protocol.StatusError); !ok || se.Error() != "HTTP 503" {
		t.Errorf("non-fault status must be StatusError, got %v", err)
	}
}

func TestAccepts(t *testing.T) {
	var c Codec
	for _, ct := range []string{"", "application/json", "application/json; charset=utf-8", "text/plain"} {
		if !c.Accepts(ct) {
			t.Errorf("Accepts(%q) = false, want true", ct)
		}
	}
	for _, ct := range []string{"text/xml", "application/soap+xml", "TEXT/XML; charset=utf-8"} {
		if c.Accepts(ct) {
			t.Errorf("Accepts(%q) = true, want false", ct)
		}
	}
}

func TestWriteErrorShapes(t *testing.T) {
	var c Codec

	rec := httptest.NewRecorder()
	c.WriteError(rec, "add", &Fault{Status: 500, Message: "boom", Operation: "add"})
	if rec.Code != 500 {
		t.Errorf("fault status = %d", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil {
		t.Fatalf("error body %q: %v", rec.Body.String(), err)
	}
	if env.Error.Message != "boom" || env.Error.Operation != "add" {
		t.Errorf("fault body = %+v", env.Error)
	}
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q", got)
	}

	rec = httptest.NewRecorder()
	c.WriteError(rec, "add", protocol.ClientError("bad demand"))
	if rec.Code != 400 {
		t.Errorf("client error status = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	c.WriteError(rec, "add", errors.New("opaque"))
	if rec.Code != 500 {
		t.Errorf("opaque error status = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	c.WriteRejection(rec, 415, "json endpoint: unsupported content type")
	if rec.Code != 415 {
		t.Errorf("rejection status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unsupported content type") {
		t.Errorf("rejection body = %q", rec.Body.String())
	}
}

func TestTargetURLInterning(t *testing.T) {
	var c Codec
	u1 := c.TargetURL("http://release:8080", "add")
	if u1 != "http://release:8080/add" {
		t.Fatalf("TargetURL = %q", u1)
	}
	u2 := c.TargetURL("http://release:8080", "add")
	if u2 != u1 {
		t.Errorf("interned URL changed: %q vs %q", u1, u2)
	}
	if got := c.TargetURL("http://release:8080/", "add"); got != "http://release:8080/add" {
		t.Errorf("trailing slash join = %q", got)
	}
}

func TestTargetURLAllocFree(t *testing.T) {
	var c Codec
	c.TargetURL("http://warm:1", "op") // prime the cache
	allocs := testing.AllocsPerRun(100, func() {
		if c.TargetURL("http://warm:1", "op") == "" {
			t.Fatal("empty target")
		}
	})
	if allocs != 0 {
		t.Errorf("warm TargetURL allocates %v/op, want 0", allocs)
	}
}

func TestEqualFastPathAllocFree(t *testing.T) {
	var c Codec
	a := []byte(`{"sum":3}`)
	b := []byte(`{"sum":3}`)
	allocs := testing.AllocsPerRun(100, func() {
		if !c.Equal(a, b) {
			t.Fatal("equal payloads")
		}
	})
	if allocs != 0 {
		t.Errorf("byte-equal fast path allocates %v/op, want 0", allocs)
	}
}
