// Package jsoncodec is the REST/JSON gateway implementation of the
// protocol.Codec seam: the same dispatch core, adjudication and
// monitoring mediate a JSON/HTTP service instead of a SOAP one.
//
// The design mirrors internal/soap's hot-path discipline:
//
//   - the operation routes zero-copy from the URL path (a substring,
//     sniffer-style — no split allocation);
//   - reply validation is json.Valid, whose scanner is pooled by
//     encoding/json (zero allocations in steady state);
//   - canonical equivalence starts with a bytes.Equal fast path and
//     falls back to an encoding/json round trip that is key-order,
//     whitespace and number-form insensitive;
//   - release-call URLs ("endpoint/operation") are interned in a
//     copy-on-write map so the fan-out path never rebuilds the string.
package jsoncodec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"wsupgrade/internal/protocol"
)

// ContentType is the wire content type of the JSON gateway.
const ContentType = "application/json"

// Codec is the REST/JSON protocol codec. The zero value is ready to
// use.
type Codec struct{}

// Default is the pre-boxed shared instance.
var Default protocol.Codec = Codec{}

// contentTypeHeader is the shared Content-Type header value slice;
// response writers must not mutate it.
var contentTypeHeader = []string{ContentType}

// Name implements protocol.Codec.
func (Codec) Name() string { return "json" }

// ContentType implements protocol.Codec.
func (Codec) ContentType() string { return ContentType }

// Accepts implements protocol.Codec: only a clearly XML media type
// (text/xml, application/soap+xml, ...) contradicts a JSON unit.
//
//wsu:noalloc
func (Codec) Accepts(contentType string) bool {
	return !protocol.ContainsFold(contentType, "xml")
}

// DecodeRequest implements protocol.Codec: the operation is the URL
// path's single segment, taken as a zero-copy substring, and the body
// must be well-formed JSON (the structural check mirroring the SOAP
// sniffer's envelope validation).
//
//wsu:noalloc
func (Codec) DecodeRequest(path string, body []byte) (protocol.Request, error) {
	op := routeOperation(path)
	if op == "" {
		return protocol.Request{}, errBadPath
	}
	if !json.Valid(body) {
		return protocol.Request{}, errBadBody
	}
	return protocol.Request{Op: op, Element: op}, nil
}

// errBadPath and errBadBody are preallocated so rejecting malformed
// demands does not allocate.
var (
	errBadPath = protocol.ClientError("json endpoint: request path must name exactly one operation")
	errBadBody = protocol.ClientError("json endpoint: request body is not valid JSON")
)

// routeOperation extracts the operation from the URL path: exactly one
// non-empty segment, optional leading and trailing slash. The result
// aliases path.
//
//wsu:noalloc
func routeOperation(path string) string {
	for len(path) > 0 && path[0] == '/' {
		path = path[1:]
	}
	for len(path) > 0 && path[len(path)-1] == '/' {
		path = path[:len(path)-1]
	}
	if path == "" || strings.IndexByte(path, '/') >= 0 {
		return ""
	}
	return path
}

// Fault is a JSON error body returned by a release: an evident failure
// that still carried a protocol-level response (protocol.Fault), the
// JSON analogue of a SOAP fault envelope.
type Fault struct {
	// Status is the HTTP status the fault arrived with.
	Status int `json:"-"`
	// Message is the error text.
	Message string `json:"message"`
	// Operation names the faulting operation, when the release said.
	Operation string `json:"operation,omitempty"`
}

// Error implements error.
func (f *Fault) Error() string { return "json error: " + f.Message }

// ProtocolFault marks the fault for protocol.IsFault.
func (f *Fault) ProtocolFault() {}

// errorEnvelope is the wire shape of a JSON error body:
// {"error":{"message":...,"operation":...}}.
type errorEnvelope struct {
	Error *Fault `json:"error"`
}

// DecodeReply implements protocol.Codec:
//
//   - 200 with well-formed JSON: the body itself, aliasing the
//     response buffer (zero copy);
//   - 400/500 carrying an {"error":{...}} body: a *Fault (an evident
//     failure that still counts as a response — protocol.IsFault);
//   - anything else: a StatusError the dispatcher wraps with release
//     context.
func (Codec) DecodeReply(status int, body []byte) (payload []byte, aliases bool, err error) {
	switch status {
	case http.StatusOK:
		if !json.Valid(body) {
			return nil, false, errInvalidReply
		}
		return body, true, nil
	case http.StatusBadRequest, http.StatusInternalServerError:
		var env errorEnvelope
		if jerr := json.Unmarshal(body, &env); jerr == nil && env.Error != nil && env.Error.Message != "" {
			env.Error.Status = status
			return nil, false, env.Error
		}
		return nil, false, protocol.StatusError(status)
	default:
		return nil, false, protocol.StatusError(status)
	}
}

// errInvalidReply classifies a 200 whose body is not JSON; the
// dispatcher wraps it with release context.
var errInvalidReply = protocol.ServerError("invalid JSON body")

// Equal implements protocol.Codec: canonical-JSON equivalence. The
// fast path is a raw byte comparison; payloads that differ textually
// fall back to an encoding/json round trip that sorts object keys,
// strips whitespace, resolves escapes and normalizes number forms
// (1, 1.0 and 1e0 agree). Payloads that do not parse compare by the
// raw bytes — already unequal here — mirroring the SOAP
// canonicalizer's conservatism on unparsable fragments.
//
//wsu:noalloc
func (Codec) Equal(a, b []byte) bool {
	if bytes.Equal(a, b) {
		return true
	}
	return canonicalEqual(a, b)
}

// canonicalEqual is Equal's allocating slow path, kept out of the
// zero-alloc span above.
//
//go:noinline
func canonicalEqual(a, b []byte) bool {
	ca, ok := canonicalize(a)
	if !ok {
		return false
	}
	cb, ok := canonicalize(b)
	if !ok {
		return false
	}
	return bytes.Equal(ca, cb)
}

// canonicalize re-marshals one JSON payload into its canonical text:
// encoding/json sorts map keys, emits minimal whitespace, and folds
// every number form through float64.
func canonicalize(in []byte) ([]byte, bool) {
	var v any
	if err := json.Unmarshal(in, &v); err != nil {
		return nil, false
	}
	out, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	return out, true
}

// WriteBody implements protocol.Codec: the winning payload is already
// a complete JSON body and is written verbatim. JSON has no response
// header framing, so header items are ignored.
func (Codec) WriteBody(w io.Writer, body []byte, headers ...protocol.HeaderItem) (int, error) {
	return w.Write(body)
}

// WriteError implements protocol.Codec: errors render as an
// {"error":{...}} body. A release's *Fault keeps its status; a
// consumer-side *protocol.Error maps to 400; everything else is 500.
func (Codec) WriteError(w http.ResponseWriter, operation string, err error) {
	status := http.StatusInternalServerError
	f := &Fault{Message: err.Error(), Operation: operation}
	var jf *Fault
	var pe *protocol.Error
	switch {
	case errors.As(err, &jf):
		f = &Fault{Message: jf.Message, Operation: jf.Operation}
		if jf.Status != 0 {
			status = jf.Status
		}
	case errors.As(err, &pe):
		f.Message = pe.Msg
		if pe.Client {
			status = http.StatusBadRequest
		}
	}
	writeErrorBody(w, status, f)
}

// WriteRejection implements protocol.Codec: gateway-level rejections
// (405, 415) also speak JSON.
func (Codec) WriteRejection(w http.ResponseWriter, status int, msg string) {
	writeErrorBody(w, status, &Fault{Message: msg})
}

func writeErrorBody(w http.ResponseWriter, status int, f *Fault) {
	body, err := json.Marshal(errorEnvelope{Error: f})
	if err != nil {
		body = []byte(fmt.Sprintf(`{"error":{"message":%q}}`, f.Message))
	}
	w.Header()["Content-Type"] = contentTypeHeader
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// ---------------------------------------------------------------------------
// Release-target interning

// targetKey identifies one interned release-call URL.
type targetKey struct{ base, op string }

// maxTargets caps the interning map: a mediator fronts a handful of
// releases with a bounded operation contract, so 256 distinct
// (endpoint, operation) pairs is generous; beyond it the URL is built
// per call rather than growing without bound.
const maxTargets = 256

var (
	targetMu    sync.Mutex
	targetCache atomic.Pointer[map[targetKey]string]
)

// TargetURL implements protocol.Codec: JSON releases route on the URL
// path, so the target is "endpoint/operation". Hot-path lookups hit a
// copy-on-write interning map — the struct-keyed map index does not
// allocate — and only a first encounter builds the string.
//
//wsu:noalloc
func (Codec) TargetURL(base, operation string) string {
	if m := targetCache.Load(); m != nil {
		if u, ok := (*m)[targetKey{base, operation}]; ok {
			return u
		}
	}
	return internTarget(base, operation)
}

// internTarget is TargetURL's slow path: build the URL and publish a
// copy-on-write successor map containing it.
//
//go:noinline
func internTarget(base, operation string) string {
	u := strings.TrimSuffix(base, "/") + "/" + operation
	targetMu.Lock()
	defer targetMu.Unlock()
	old := targetCache.Load()
	if old != nil {
		if cached, ok := (*old)[targetKey{base, operation}]; ok {
			return cached
		}
		if len(*old) >= maxTargets {
			return u
		}
	}
	next := make(map[targetKey]string, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[targetKey{base, operation}] = u
	targetCache.Store(&next)
	return u
}
