package adjudicate

import (
	"errors"
	"testing"
	"time"

	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/xrand"
)

func TestKindsUnavailable(t *testing.T) {
	v := Kinds(nil, xrand.New(1))
	if !v.Unavailable {
		t.Fatal("empty collection should be unavailable")
	}
}

func TestKindsAllEvident(t *testing.T) {
	v := Kinds([]relmodel.OutcomeKind{relmodel.EvidentFailure, relmodel.EvidentFailure}, xrand.New(1))
	if v.Unavailable {
		t.Fatal("collected responses marked unavailable")
	}
	if v.Outcome != relmodel.EvidentFailure {
		t.Fatalf("all-evident verdict = %v, want ER", v.Outcome)
	}
}

func TestKindsFiltersEvident(t *testing.T) {
	rng := xrand.New(2)
	for i := 0; i < 100; i++ {
		v := Kinds([]relmodel.OutcomeKind{relmodel.EvidentFailure, relmodel.Correct}, rng)
		if v.Outcome != relmodel.Correct {
			t.Fatal("evident response won over a valid one")
		}
	}
}

func TestKindsRandomPickExposesNER(t *testing.T) {
	// With one correct and one non-evident response the consumer gets the
	// wrong answer about half the time — the §5.2.1 exposure.
	rng := xrand.New(3)
	ner := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := Kinds([]relmodel.OutcomeKind{relmodel.Correct, relmodel.NonEvidentFailure}, rng)
		if v.Outcome == relmodel.NonEvidentFailure {
			ner++
		}
	}
	if ner < n*4/10 || ner > n*6/10 {
		t.Fatalf("NER picked %d/%d times, want ~50%%", ner, n)
	}
}

func TestKindsSingleValid(t *testing.T) {
	v := Kinds([]relmodel.OutcomeKind{relmodel.NonEvidentFailure}, xrand.New(4))
	if v.Outcome != relmodel.NonEvidentFailure || v.Unavailable {
		t.Fatalf("single valid response mishandled: %+v", v)
	}
}

func TestKindsDoesNotMutateInput(t *testing.T) {
	in := []relmodel.OutcomeKind{relmodel.EvidentFailure, relmodel.Correct, relmodel.NonEvidentFailure}
	Kinds(in, xrand.New(5))
	if in[0] != relmodel.EvidentFailure || in[1] != relmodel.Correct || in[2] != relmodel.NonEvidentFailure {
		t.Fatal("input slice mutated")
	}
}

func reply(rel, body string, err error, ms int) Reply {
	var b []byte
	if err == nil {
		b = []byte(body)
	}
	return Reply{Release: rel, Body: b, Err: err, Latency: time.Duration(ms) * time.Millisecond}
}

var errBoom = errors.New("boom")

func TestRandomValidRules(t *testing.T) {
	rng := xrand.New(7)
	a := RandomValid{}

	if _, err := a.Adjudicate(nil, rng); !errors.Is(err, ErrNoResponses) {
		t.Fatalf("empty: err = %v, want ErrNoResponses", err)
	}
	_, err := a.Adjudicate([]Reply{reply("1.0", "", errBoom, 10)}, rng)
	if !errors.Is(err, ErrAllEvident) {
		t.Fatalf("all-evident: err = %v, want ErrAllEvident", err)
	}
	// Valid responses beat evident failures.
	for i := 0; i < 50; i++ {
		got, err := a.Adjudicate([]Reply{
			reply("1.0", "", errBoom, 10),
			reply("1.1", "answer", nil, 20),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got.Release != "1.1" {
			t.Fatal("picked evident failure")
		}
	}
	if a.Name() != "random-valid" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestRandomValidIsUniform(t *testing.T) {
	rng := xrand.New(8)
	a := RandomValid{}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		got, err := a.Adjudicate([]Reply{
			reply("1.0", "x", nil, 10),
			reply("1.1", "y", nil, 20),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[got.Release]++
	}
	if counts["1.0"] < n*4/10 || counts["1.0"] > n*6/10 {
		t.Fatalf("pick distribution %v not ~uniform", counts)
	}
}

func TestMajorityOutvotesMinority(t *testing.T) {
	rng := xrand.New(9)
	a := Majority{}
	got, err := a.Adjudicate([]Reply{
		reply("1.0", "42", nil, 10),
		reply("1.1", "42", nil, 12),
		reply("1.2", "wrong", nil, 8),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "42" {
		t.Fatalf("majority lost: got %q", got.Body)
	}
	if a.Name() != "majority" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestMajorityTieFallsBackToRandom(t *testing.T) {
	rng := xrand.New(10)
	a := Majority{}
	counts := map[string]int{}
	const n = 6000
	for i := 0; i < n; i++ {
		got, err := a.Adjudicate([]Reply{
			reply("1.0", "x", nil, 10),
			reply("1.1", "y", nil, 20),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[string(got.Body)]++
	}
	if counts["x"] < n*4/10 || counts["x"] > n*6/10 {
		t.Fatalf("tie-break distribution %v not ~uniform", counts)
	}
}

func TestMajorityErrors(t *testing.T) {
	rng := xrand.New(11)
	a := Majority{}
	if _, err := a.Adjudicate(nil, rng); !errors.Is(err, ErrNoResponses) {
		t.Fatalf("empty: %v", err)
	}
	_, err := a.Adjudicate([]Reply{reply("1.0", "", errBoom, 1)}, rng)
	if !errors.Is(err, ErrAllEvident) {
		t.Fatalf("all evident: %v", err)
	}
}

func TestFastestValidPicksLowestLatency(t *testing.T) {
	rng := xrand.New(12)
	a := FastestValid{}
	got, err := a.Adjudicate([]Reply{
		reply("1.0", "slow", nil, 300),
		reply("1.1", "fast", nil, 20),
		reply("1.2", "", errBoom, 1), // fastest but evident
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Release != "1.1" {
		t.Fatalf("picked %s, want 1.1", got.Release)
	}
	if a.Name() != "fastest-valid" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestFastestValidTieBreaksByName(t *testing.T) {
	rng := xrand.New(13)
	a := FastestValid{}
	got, err := a.Adjudicate([]Reply{
		reply("1.1", "b", nil, 20),
		reply("1.0", "a", nil, 20),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Release != "1.0" {
		t.Fatalf("tie broke to %s, want 1.0", got.Release)
	}
}

func TestFastestValidErrors(t *testing.T) {
	rng := xrand.New(14)
	a := FastestValid{}
	if _, err := a.Adjudicate(nil, rng); !errors.Is(err, ErrNoResponses) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := a.Adjudicate([]Reply{reply("1.0", "", errBoom, 1)}, rng); !errors.Is(err, ErrAllEvident) {
		t.Fatalf("all evident: %v", err)
	}
}

func TestPreferredReturnsNamedRelease(t *testing.T) {
	rng := xrand.New(15)
	a := Preferred{Release: "1.0"}
	got, err := a.Adjudicate([]Reply{
		reply("1.1", "new", nil, 5),
		reply("1.0", "old", nil, 50),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Release != "1.0" {
		t.Fatalf("picked %s, want preferred 1.0", got.Release)
	}
	if a.Name() != "preferred(1.0)" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestPreferredFallsBackWhenPreferredFails(t *testing.T) {
	rng := xrand.New(16)
	a := Preferred{Release: "1.0", Fallback: FastestValid{}}
	got, err := a.Adjudicate([]Reply{
		reply("1.0", "", errBoom, 5),
		reply("1.1", "new", nil, 50),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Release != "1.1" {
		t.Fatalf("fallback picked %s, want 1.1", got.Release)
	}
	// Nil fallback defaults to RandomValid.
	b := Preferred{Release: "gone"}
	got, err = b.Adjudicate([]Reply{reply("1.1", "new", nil, 50)}, rng)
	if err != nil || got.Release != "1.1" {
		t.Fatalf("nil-fallback: %v %v", got, err)
	}
}

func TestAdjudicatorsDoNotMutateInput(t *testing.T) {
	rng := xrand.New(17)
	in := []Reply{
		reply("1.2", "c", nil, 30),
		reply("1.0", "a", nil, 10),
		reply("1.1", "b", nil, 20),
	}
	for _, a := range []Adjudicator{RandomValid{}, Majority{}, FastestValid{}, Preferred{Release: "1.0"}} {
		if _, err := a.Adjudicate(in, rng); err != nil {
			t.Fatal(err)
		}
		if in[0].Release != "1.2" || in[1].Release != "1.0" || in[2].Release != "1.1" {
			t.Fatalf("%s mutated the replies slice", a.Name())
		}
	}
}
