// Package adjudicate implements the response adjudication of the managed
// upgrade middleware (§4.2, §5.2.1): deciding which of the responses
// collected from the concurrently running releases is returned to the
// consumer of the Web Service.
//
// Two layers are provided.
//
// The kind level works on abstract outcome kinds (correct / evident
// failure / non-evident failure) and implements the exact rule set of
// §5.2.1; the availability/performance simulator uses it.
//
// The reply level works on live responses (payload bytes, error, latency)
// as collected by the middleware from real release endpoints, and offers
// the adjudication strategies discussed in §4.2 and §6.1: the paper's
// random-among-valid rule, majority voting, and fastest-valid.
package adjudicate

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"time"

	"wsupgrade/internal/pool"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/xrand"
)

// Sentinel adjudication failures. Both are "evident" failures of the
// composite service: the consumer receives an exception rather than a
// wrong answer.
var (
	// ErrNoResponses corresponds to the §5.2.1 rule "if no response has
	// been collected the middleware returns 'Web Service unavailable'".
	ErrNoResponses = errors.New("adjudicate: no responses collected within timeout")
	// ErrAllEvident corresponds to "if all collected responses are
	// evidently incorrect then the middleware raises an exception".
	ErrAllEvident = errors.New("adjudicate: all collected responses evidently incorrect")
)

// ---------------------------------------------------------------------------
// Kind-level adjudication (§5.2.1), used by the simulation study.

// KindVerdict is the system-level outcome of one adjudicated request.
type KindVerdict struct {
	// Outcome is the kind of the response delivered to the consumer.
	// It is meaningful only when Unavailable is false.
	Outcome relmodel.OutcomeKind
	// Unavailable is set when no release responded within the timeout;
	// the consumer receives "Web Service unavailable".
	Unavailable bool
}

// Kinds applies the §5.2.1 rules to the outcome kinds of the responses
// collected before the timeout:
//
//   - nothing collected → "Web Service unavailable";
//   - all collected responses evidently incorrect → an exception, itself
//     an evident failure of the composite service;
//   - otherwise a response is selected at random among the valid (not
//     evidently incorrect) ones; identical responses make the choice
//     immaterial, and a lone valid response is returned as-is.
//
// The random pick means the consumer can still receive a non-evidently
// incorrect response even when a correct one was collected — exactly the
// exposure the paper quantifies in Tables 5 and 6.
func Kinds(collected []relmodel.OutcomeKind, rng *xrand.Rand) KindVerdict {
	if len(collected) == 0 {
		return KindVerdict{Unavailable: true}
	}
	nvalid := 0
	for _, k := range collected {
		if k != relmodel.EvidentFailure {
			nvalid++
		}
	}
	if nvalid == 0 {
		return KindVerdict{Outcome: relmodel.EvidentFailure}
	}
	pick := rng.Intn(nvalid)
	for _, k := range collected {
		if k != relmodel.EvidentFailure {
			if pick == 0 {
				return KindVerdict{Outcome: k}
			}
			pick--
		}
	}
	return KindVerdict{Outcome: relmodel.EvidentFailure} // unreachable
}

// ---------------------------------------------------------------------------
// Reply-level adjudication, used by the live middleware.

// Reply is one release's response to an intercepted consumer request.
type Reply struct {
	// Release identifies the responding release (its version string).
	Release string
	// Body is the response payload. It is meaningful only when Err is nil.
	Body []byte
	// Err, when non-nil, marks an evident failure: a transport error, a
	// timeout, or a SOAP fault raised by the release.
	Err error
	// Latency is the observed execution time of the release.
	Latency time.Duration
	// Header carries transport metadata of the exchange (e.g. the
	// release's version header, or the fault-injection marker the test
	// harness's ground-truth oracle reads). May be nil.
	Header http.Header
	// Buf, when non-nil, is the pooled buffer Body aliases. Ownership
	// belongs to the dispatch layer, which releases it once the reply
	// has been judged, recorded and (for the winner) written;
	// adjudicators must neither retain nor release it. A winner handed
	// to a consumer carries one extra reference, discharged with
	// ReleaseBody after the response is written.
	Buf *pool.Buf
}

// Valid reports whether the reply is not an evident failure.
func (r Reply) Valid() bool { return r.Err == nil }

// ReleaseBody discharges the reply's reference to its pooled body
// buffer and drops the alias; Body must not be read afterwards. Safe
// on replies with no pooled body.
func (r *Reply) ReleaseBody() {
	r.Buf.Release()
	r.Buf = nil
	r.Body = nil
}

// Adjudicator selects the response returned to the consumer from the
// replies collected within the middleware's timeout.
//
// Implementations must be deterministic given the rng stream and must not
// retain or mutate the replies slice.
type Adjudicator interface {
	// Adjudicate returns the winning reply, or an error when no valid
	// response can be produced (ErrNoResponses, ErrAllEvident).
	Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error)
	// Name identifies the strategy in logs and reports.
	Name() string
}

// RandomValid is the paper's §5.2.1 strategy: any valid reply, chosen
// uniformly at random.
type RandomValid struct{}

var _ Adjudicator = RandomValid{}

// Adjudicate implements Adjudicator.
//
//wsu:noalloc
func (RandomValid) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	nvalid := countValid(replies)
	switch {
	case len(replies) == 0:
		return Reply{}, ErrNoResponses
	case nvalid == 0:
		//wsu:allow noalloc -- error construction on the all-evident path, off the hot path
		return Reply{}, fmt.Errorf("%w: %d replies", ErrAllEvident, len(replies))
	}
	pick := rng.Intn(nvalid)
	for i := range replies {
		if replies[i].Valid() {
			if pick == 0 {
				return replies[i], nil
			}
			pick--
		}
	}
	return Reply{}, ErrNoResponses // unreachable
}

// Name implements Adjudicator.
func (RandomValid) Name() string { return "random-valid" }

// Majority groups the valid replies by exact payload equality and returns
// a representative of the largest group; ties are broken uniformly at
// random among the tied groups. With two releases this detects
// disagreement (group sizes 1+1) but cannot out-vote it, so a tie between
// two singleton groups falls back to a random pick — the natural
// degradation of voting at redundancy level two (§4.2).
type Majority struct{}

var _ Adjudicator = Majority{}

// group is Majority's payload-equality bucket. The scratch slices are
// pooled (see groupScratch): voting allocates nothing in steady state.
type group struct {
	rep  Reply
	size int
}

// groupScratch recycles Majority's per-call group buckets. A slice is
// recycled with every element zeroed so pooled buckets never retain a
// reply's body or header past the call.
var groupScratch pool.Slice[group]

// Adjudicate implements Adjudicator.
//
//wsu:noalloc
func (Majority) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	nvalid := countValid(replies)
	switch {
	case len(replies) == 0:
		return Reply{}, ErrNoResponses
	case nvalid == 0:
		//wsu:allow noalloc -- error construction on the all-evident path, off the hot path
		return Reply{}, fmt.Errorf("%w: %d replies", ErrAllEvident, len(replies))
	}
	groups := groupScratch.Get(len(replies))
next:
	for i := range replies {
		if !replies[i].Valid() {
			continue
		}
		for j := range groups {
			if bytes.Equal(groups[j].rep.Body, replies[i].Body) {
				groups[j].size++
				continue next
			}
		}
		groups = append(groups, group{rep: replies[i], size: 1})
	}
	best := 0
	for i := range groups {
		if groups[i].size > best {
			best = groups[i].size
		}
	}
	tied := 0
	for i := range groups {
		if groups[i].size == best {
			tied++
		}
	}
	pick := rng.Intn(tied)
	var winner Reply
	for i := range groups {
		if groups[i].size == best {
			if pick == 0 {
				winner = groups[i].rep
				break
			}
			pick--
		}
	}
	for i := range groups {
		groups[i] = group{} // drop body/header references before pooling
	}
	groupScratch.Put(groups)
	return winner, nil
}

// Name implements Adjudicator.
func (Majority) Name() string { return "majority" }

// FastestValid returns the valid reply with the lowest latency — the
// paper's "parallel execution for maximum responsiveness" mode (§4.2,
// mode 2). Latency ties break deterministically by release name.
type FastestValid struct{}

var _ Adjudicator = FastestValid{}

// Adjudicate implements Adjudicator.
//
//wsu:noalloc
func (FastestValid) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	// A single min-scan: only the fastest reply is delivered, so sorting
	// (and the valid-subset scratch it needed) is wasted work.
	best := -1
	for i := range replies {
		if !replies[i].Valid() {
			continue
		}
		if best < 0 || faster(&replies[i], &replies[best]) {
			best = i
		}
	}
	switch {
	case len(replies) == 0:
		return Reply{}, ErrNoResponses
	case best < 0:
		//wsu:allow noalloc -- error construction on the all-evident path, off the hot path
		return Reply{}, fmt.Errorf("%w: %d replies", ErrAllEvident, len(replies))
	}
	return replies[best], nil
}

// faster orders replies by latency, ties broken deterministically by
// release name.
func faster(a, b *Reply) bool {
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	return a.Release < b.Release
}

// Name implements Adjudicator.
func (FastestValid) Name() string { return "fastest-valid" }

// Preferred returns the reply of the named release when it is valid and
// falls back to the given Adjudicator otherwise. The manager uses it for
// the "old only" and "new only" lifecycle phases in which one release is
// authoritative while others are merely observed.
type Preferred struct {
	Release  string
	Fallback Adjudicator
}

var _ Adjudicator = Preferred{}

// Adjudicate implements Adjudicator.
//
//wsu:noalloc
func (p Preferred) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	for _, r := range replies {
		if r.Release == p.Release && r.Valid() {
			return r, nil
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = defaultFallback
	}
	return fb.Adjudicate(replies, rng)
}

// defaultFallback is preboxed at package level: converting RandomValid{}
// to the interface inside Adjudicate would allocate on every preferred
// miss.
var defaultFallback Adjudicator = RandomValid{}

// Name implements Adjudicator.
func (p Preferred) Name() string { return "preferred(" + p.Release + ")" }

func countValid(replies []Reply) int {
	n := 0
	for i := range replies {
		if replies[i].Valid() {
			n++
		}
	}
	return n
}
