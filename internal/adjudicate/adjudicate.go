// Package adjudicate implements the response adjudication of the managed
// upgrade middleware (§4.2, §5.2.1): deciding which of the responses
// collected from the concurrently running releases is returned to the
// consumer of the Web Service.
//
// Two layers are provided.
//
// The kind level works on abstract outcome kinds (correct / evident
// failure / non-evident failure) and implements the exact rule set of
// §5.2.1; the availability/performance simulator uses it.
//
// The reply level works on live responses (payload bytes, error, latency)
// as collected by the middleware from real release endpoints, and offers
// the adjudication strategies discussed in §4.2 and §6.1: the paper's
// random-among-valid rule, majority voting, and fastest-valid.
package adjudicate

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/xrand"
)

// Sentinel adjudication failures. Both are "evident" failures of the
// composite service: the consumer receives an exception rather than a
// wrong answer.
var (
	// ErrNoResponses corresponds to the §5.2.1 rule "if no response has
	// been collected the middleware returns 'Web Service unavailable'".
	ErrNoResponses = errors.New("adjudicate: no responses collected within timeout")
	// ErrAllEvident corresponds to "if all collected responses are
	// evidently incorrect then the middleware raises an exception".
	ErrAllEvident = errors.New("adjudicate: all collected responses evidently incorrect")
)

// ---------------------------------------------------------------------------
// Kind-level adjudication (§5.2.1), used by the simulation study.

// KindVerdict is the system-level outcome of one adjudicated request.
type KindVerdict struct {
	// Outcome is the kind of the response delivered to the consumer.
	// It is meaningful only when Unavailable is false.
	Outcome relmodel.OutcomeKind
	// Unavailable is set when no release responded within the timeout;
	// the consumer receives "Web Service unavailable".
	Unavailable bool
}

// Kinds applies the §5.2.1 rules to the outcome kinds of the responses
// collected before the timeout:
//
//   - nothing collected → "Web Service unavailable";
//   - all collected responses evidently incorrect → an exception, itself
//     an evident failure of the composite service;
//   - otherwise a response is selected at random among the valid (not
//     evidently incorrect) ones; identical responses make the choice
//     immaterial, and a lone valid response is returned as-is.
//
// The random pick means the consumer can still receive a non-evidently
// incorrect response even when a correct one was collected — exactly the
// exposure the paper quantifies in Tables 5 and 6.
func Kinds(collected []relmodel.OutcomeKind, rng *xrand.Rand) KindVerdict {
	if len(collected) == 0 {
		return KindVerdict{Unavailable: true}
	}
	valid := collected[:0:0]
	for _, k := range collected {
		if k != relmodel.EvidentFailure {
			valid = append(valid, k)
		}
	}
	if len(valid) == 0 {
		return KindVerdict{Outcome: relmodel.EvidentFailure}
	}
	return KindVerdict{Outcome: valid[rng.Intn(len(valid))]}
}

// ---------------------------------------------------------------------------
// Reply-level adjudication, used by the live middleware.

// Reply is one release's response to an intercepted consumer request.
type Reply struct {
	// Release identifies the responding release (its version string).
	Release string
	// Body is the response payload. It is meaningful only when Err is nil.
	Body []byte
	// Err, when non-nil, marks an evident failure: a transport error, a
	// timeout, or a SOAP fault raised by the release.
	Err error
	// Latency is the observed execution time of the release.
	Latency time.Duration
	// Header carries transport metadata of the exchange (e.g. the
	// release's version header, or the fault-injection marker the test
	// harness's ground-truth oracle reads). May be nil.
	Header http.Header
}

// Valid reports whether the reply is not an evident failure.
func (r Reply) Valid() bool { return r.Err == nil }

// Adjudicator selects the response returned to the consumer from the
// replies collected within the middleware's timeout.
//
// Implementations must be deterministic given the rng stream and must not
// retain or mutate the replies slice.
type Adjudicator interface {
	// Adjudicate returns the winning reply, or an error when no valid
	// response can be produced (ErrNoResponses, ErrAllEvident).
	Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error)
	// Name identifies the strategy in logs and reports.
	Name() string
}

// RandomValid is the paper's §5.2.1 strategy: any valid reply, chosen
// uniformly at random.
type RandomValid struct{}

var _ Adjudicator = RandomValid{}

// Adjudicate implements Adjudicator.
func (RandomValid) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	valid := validOf(replies)
	switch {
	case len(replies) == 0:
		return Reply{}, ErrNoResponses
	case len(valid) == 0:
		return Reply{}, fmt.Errorf("%w: %d replies", ErrAllEvident, len(replies))
	default:
		return valid[rng.Intn(len(valid))], nil
	}
}

// Name implements Adjudicator.
func (RandomValid) Name() string { return "random-valid" }

// Majority groups the valid replies by exact payload equality and returns
// a representative of the largest group; ties are broken uniformly at
// random among the tied groups. With two releases this detects
// disagreement (group sizes 1+1) but cannot out-vote it, so a tie between
// two singleton groups falls back to a random pick — the natural
// degradation of voting at redundancy level two (§4.2).
type Majority struct{}

var _ Adjudicator = Majority{}

// Adjudicate implements Adjudicator.
func (Majority) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	valid := validOf(replies)
	switch {
	case len(replies) == 0:
		return Reply{}, ErrNoResponses
	case len(valid) == 0:
		return Reply{}, fmt.Errorf("%w: %d replies", ErrAllEvident, len(replies))
	}
	type group struct {
		rep  Reply
		size int
	}
	var groups []group
next:
	for _, r := range valid {
		for i := range groups {
			if bytes.Equal(groups[i].rep.Body, r.Body) {
				groups[i].size++
				continue next
			}
		}
		groups = append(groups, group{rep: r, size: 1})
	}
	best := 0
	for _, g := range groups {
		if g.size > best {
			best = g.size
		}
	}
	tied := groups[:0:0]
	for _, g := range groups {
		if g.size == best {
			tied = append(tied, g)
		}
	}
	return tied[rng.Intn(len(tied))].rep, nil
}

// Name implements Adjudicator.
func (Majority) Name() string { return "majority" }

// FastestValid returns the valid reply with the lowest latency — the
// paper's "parallel execution for maximum responsiveness" mode (§4.2,
// mode 2). Latency ties break deterministically by release name.
type FastestValid struct{}

var _ Adjudicator = FastestValid{}

// Adjudicate implements Adjudicator.
func (FastestValid) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	valid := validOf(replies)
	switch {
	case len(replies) == 0:
		return Reply{}, ErrNoResponses
	case len(valid) == 0:
		return Reply{}, fmt.Errorf("%w: %d replies", ErrAllEvident, len(replies))
	}
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].Latency != valid[j].Latency {
			return valid[i].Latency < valid[j].Latency
		}
		return valid[i].Release < valid[j].Release
	})
	return valid[0], nil
}

// Name implements Adjudicator.
func (FastestValid) Name() string { return "fastest-valid" }

// Preferred returns the reply of the named release when it is valid and
// falls back to the given Adjudicator otherwise. The manager uses it for
// the "old only" and "new only" lifecycle phases in which one release is
// authoritative while others are merely observed.
type Preferred struct {
	Release  string
	Fallback Adjudicator
}

var _ Adjudicator = Preferred{}

// Adjudicate implements Adjudicator.
func (p Preferred) Adjudicate(replies []Reply, rng *xrand.Rand) (Reply, error) {
	for _, r := range replies {
		if r.Release == p.Release && r.Valid() {
			return r, nil
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = RandomValid{}
	}
	return fb.Adjudicate(replies, rng)
}

// Name implements Adjudicator.
func (p Preferred) Name() string { return "preferred(" + p.Release + ")" }

func validOf(replies []Reply) []Reply {
	valid := replies[:0:0]
	for _, r := range replies {
		if r.Valid() {
			valid = append(valid, r)
		}
	}
	return valid
}
