package adjudicate

import (
	"testing"
	"time"

	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/xrand"
)

// TestAdjudicatorsSteadyStateZeroAlloc holds every reply-level strategy
// to zero allocations per adjudication on a realistic mixed reply set
// (the success path; the error paths wrap sentinels and may allocate).
func TestAdjudicatorsSteadyStateZeroAlloc(t *testing.T) {
	replies := []Reply{
		{Release: "1.0", Body: []byte("<r><x>42</x></r>"), Latency: 120 * time.Millisecond},
		{Release: "1.1", Body: []byte("<r><x>42</x></r>"), Latency: 80 * time.Millisecond},
		{Release: "1.2", Body: []byte("<r><x>41</x></r>"), Latency: 60 * time.Millisecond},
		{Release: "1.3", Err: ErrNoResponses, Latency: 10 * time.Millisecond},
	}
	rng := xrand.New(5)
	for _, adj := range []Adjudicator{
		RandomValid{},
		Majority{},
		FastestValid{},
		Preferred{Release: "1.1"},
		Preferred{Release: "gone", Fallback: Majority{}},
	} {
		// Warm the group scratch pool outside the measurement.
		if _, err := adj.Adjudicate(replies, rng); err != nil {
			t.Fatalf("%s: %v", adj.Name(), err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := adj.Adjudicate(replies, rng); err != nil {
				t.Fatalf("%s: %v", adj.Name(), err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per adjudication, want 0", adj.Name(), allocs)
		}
	}
}

// TestKindsZeroAlloc covers the kind-level §5.2.1 rule used by the
// simulation studies (hot inside 10k-request simulation loops).
func TestKindsZeroAlloc(t *testing.T) {
	collected := []relmodel.OutcomeKind{
		relmodel.Correct, relmodel.EvidentFailure, relmodel.NonEvidentFailure,
	}
	rng := xrand.New(6)
	allocs := testing.AllocsPerRun(200, func() {
		v := Kinds(collected, rng)
		if v.Unavailable {
			t.Fatal("unexpectedly unavailable")
		}
	})
	if allocs != 0 {
		t.Errorf("Kinds: %v allocs, want 0", allocs)
	}
}

// TestMajorityScratchDoesNotLeakReplies pins the pooling discipline:
// after an adjudication, recycled group buckets must not retain the
// replies' bodies (the pool would otherwise extend body lifetimes past
// the dispatch that owns them).
func TestMajorityScratchDoesNotLeakReplies(t *testing.T) {
	replies := []Reply{
		{Release: "1.0", Body: []byte("<r>1</r>")},
		{Release: "1.1", Body: []byte("<r>1</r>")},
	}
	if _, err := (Majority{}).Adjudicate(replies, xrand.New(7)); err != nil {
		t.Fatal(err)
	}
	scratch := groupScratch.Get(0)
	for i := 0; i < cap(scratch); i++ {
		g := scratch[:cap(scratch)][i]
		if g.rep.Body != nil || g.rep.Header != nil || g.size != 0 {
			t.Fatalf("pooled group %d retains %+v", i, g)
		}
	}
	groupScratch.Put(scratch)
}

// TestFastestValidMatchesSortSemantics pins the linear min-scan against
// the previous sort-based implementation: lowest latency wins, latency
// ties break by release name, evident failures never win.
func TestFastestValidMatchesSortSemantics(t *testing.T) {
	rng := xrand.New(8)
	replies := []Reply{
		{Release: "1.2", Body: []byte("b"), Latency: 50 * time.Millisecond},
		{Release: "1.0", Err: ErrAllEvident, Latency: 1 * time.Millisecond},
		{Release: "1.3", Body: []byte("c"), Latency: 50 * time.Millisecond},
		{Release: "1.1", Body: []byte("a"), Latency: 90 * time.Millisecond},
	}
	win, err := (FastestValid{}).Adjudicate(replies, rng)
	if err != nil {
		t.Fatal(err)
	}
	if win.Release != "1.2" {
		t.Fatalf("winner %s, want 1.2 (latency tie broken by name)", win.Release)
	}
}
