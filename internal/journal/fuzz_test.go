package journal

import (
	"bytes"
	"errors"
	"testing"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
)

// fuzzSeed builds a valid journal image without *testing.T plumbing.
func fuzzSeed() []byte {
	var buf bytes.Buffer
	buf.Write(magic)
	entries := []Entry{
		{Kind: KindReleaseAdd, Time: 1, Release: &Release{Version: "1.0", URL: "http://old/"}},
		{Kind: KindReleaseAdd, Time: 2, Release: &Release{Version: "2.0", URL: "http://new/"}},
		{Kind: KindTransition, Time: 3, Transition: &lifecycle.Transition{
			From: lifecycle.PhaseOldOnly, To: lifecycle.PhaseObservation, Cause: lifecycle.CauseManual}},
		{Kind: KindSnapshot, Time: 4, Snapshot: &Snapshot{
			Phase:    lifecycle.PhaseObservation,
			Mode:     2,
			Quorum:   1,
			Releases: []Release{{Version: "1.0", URL: "http://old/"}, {Version: "2.0", URL: "http://new/"}},
			Campaign: monitor.CampaignState{
				Joint: bayes.JointCounts{N: 120, BOnly: 3},
				PerOp: map[string]bayes.JointCounts{"add": {N: 120, BOnly: 3}},
			},
		}},
		{Kind: KindTransition, Time: 5, Transition: &lifecycle.Transition{
			From: lifecycle.PhaseObservation, To: lifecycle.PhaseParallel, Cause: lifecycle.CausePolicy, Demands: 150}},
		{Kind: KindReleaseRemove, Time: 6, Release: &Release{Version: "1.0"}},
	}
	for _, e := range entries {
		frame, err := encodeFrame(e)
		if err != nil {
			panic(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

// FuzzReplay: arbitrary mutations and truncations of a journal must
// yield either a clean replay (of some valid prefix) or a typed
// *CorruptError — never a panic, and never a fold that a second decode
// of the reported valid prefix disagrees with.
func FuzzReplay(f *testing.F) {
	seed := fuzzSeed()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(magic)
	f.Add(seed[:len(seed)-1])
	f.Add(seed[:len(magic)+3])
	f.Add(append(append([]byte(nil), seed...), make([]byte, 64)...))
	// A few deterministic bit-flips as seeds; the fuzzer mutates further.
	for _, off := range []int{0, len(magic), len(magic) + 5, len(seed) / 2, len(seed) - 2} {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0x41
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, validEnd, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		if validEnd < 0 || validEnd > len(data) {
			t.Fatalf("validEnd %d outside [0,%d]", validEnd, len(data))
		}
		if st.Entries < 0 || st.TransitionsAfterSnapshot < 0 {
			t.Fatalf("negative counters: %+v", st)
		}
		// The reported valid prefix must itself decode cleanly to the
		// same state — otherwise Open's truncate-and-resume would change
		// what a later replay sees (silent state corruption).
		st2, validEnd2, err2 := Decode(data[:validEnd])
		if err2 != nil {
			t.Fatalf("valid prefix failed to re-decode: %v", err2)
		}
		if validEnd2 != validEnd && !(validEnd == 0 && len(data) > 0) {
			t.Fatalf("prefix re-decode moved validEnd %d -> %d", validEnd, validEnd2)
		}
		if st2.Entries != st.Entries || st2.Phase != st.Phase ||
			st2.LastCause != st.LastCause ||
			st2.TransitionsAfterSnapshot != st.TransitionsAfterSnapshot ||
			len(st2.Releases) != len(st.Releases) {
			t.Fatalf("prefix re-decode diverged:\n%+v\n%+v", st2, st)
		}
	})
}
